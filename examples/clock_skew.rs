//! What clock skew does to event ordering — the paper's core motivation,
//! made visible.
//!
//! Two events occur 30 ms apart in true time on different sites. Whether
//! the system can *prove* the order depends on the global granularity
//! `g_g` (which must exceed the clock-ensemble precision Π): with
//! `g_g = 10 ms` the pair is clearly ordered; with `g_g = 100 ms` it is
//! concurrent; and a SEQ detection appears/disappears accordingly.
//!
//! Run with `cargo run --example clock_skew`.

use decs::core::{CompositeTimestamp, PrimitiveTimestamp};
use decs::distrib::{Engine, EngineConfig};
use decs::simnet::ScenarioBuilder;
use decs::snoop::{Context, EventExpr as E};
use decs_chronos::{Granularity, Nanos};

fn order_with_gg(gg_per_second: u64, gap_ms: u64) -> (String, usize) {
    let scenario = ScenarioBuilder::new(2, 11)
        .max_offset_ns(2_000_000) // ±2 ms initial offset
        .max_drift_ppb(10_000)
        .global_granularity(Granularity::per_second(gg_per_second).unwrap())
        .build()
        .unwrap();

    // Stamp the two occurrences directly through the site time sources.
    let a = scenario
        .time_source(0)
        .stamp(Nanos::from_millis(1000))
        .unwrap();
    let b = scenario
        .time_source(1)
        .stamp(Nanos::from_millis(1000 + gap_ms))
        .unwrap();
    let ta = CompositeTimestamp::singleton(PrimitiveTimestamp::new(a.site, a.global, a.local));
    let tb = CompositeTimestamp::singleton(PrimitiveTimestamp::new(b.site, b.global, b.local));
    let relation = format!("{}", ta.relation(&tb));

    // And confirm with the full engine: does `A ; B` fire?
    let mut engine = Engine::new(
        &scenario,
        EngineConfig::default(),
        &["A", "B"],
        &[("AB", E::seq(E::prim("A"), E::prim("B")), Context::Chronicle)],
    )
    .unwrap();
    engine
        .inject(Nanos::from_millis(1000), 0, "A", vec![])
        .unwrap();
    engine
        .inject(Nanos::from_millis(1000 + gap_ms), 1, "B", vec![])
        .unwrap();
    let detections = engine.run_for(Nanos::from_secs(3));
    (relation, detections.len())
}

fn main() {
    println!("true gap between A@site0 and B@site1: 30 ms\n");
    println!("{:>10} │ {:^12} │ SEQ detections", "g_g", "relation");
    println!("───────────┼──────────────┼───────────────");
    for (label, gg) in [("10 ms", 100u64), ("25 ms", 40), ("100 ms", 10)] {
        let (rel, dets) = order_with_gg(gg, 30);
        println!("{label:>10} │ {rel:^12} │ {dets}");
    }

    println!("\nWith a coarse g_g the 30 ms gap drowns inside one global tick:");
    println!("the events become concurrent (~) and the sequence is undetectable —");
    println!("exactly the trade-off the paper's 2g_g-restricted order formalizes.");

    // Sanity: fine granularity proves the order, coarse does not.
    let (fine, fine_dets) = order_with_gg(100, 30);
    let (coarse, coarse_dets) = order_with_gg(10, 30);
    assert_eq!(fine, "<");
    assert_eq!(fine_dets, 1);
    assert_eq!(coarse, "~");
    assert_eq!(coarse_dets, 0);
}
