//! Supply-chain tracking — site-local detection + event masks.
//!
//! Warehouses are sites; each detects its *local* composite events
//! (`dispatch_cycle = pick ; pack ; ship`) on its own clock, and the
//! global detector correlates across warehouses:
//!
//! * `relay` — a dispatch cycle at one warehouse strictly followed by a
//!   dispatch cycle at another (provable under the `2g_g` order only);
//! * `cold_chain_breach` — a temperature reading above the threshold
//!   (mask `{1 >= 8}` on the shared `temp` feed) between a ship and the
//!   next delivery confirmation.
//!
//! Run with `cargo run --example supply_chain`.

use decs::distrib::{Engine, EngineConfig};
use decs::sentinel::parse_expr;
use decs::simnet::ScenarioBuilder;
use decs::snoop::Context;
use decs_chronos::{Granularity, Nanos};

fn main() {
    let scenario = ScenarioBuilder::new(3, 2026)
        .global_granularity(Granularity::per_second(10).unwrap())
        .build()
        .unwrap();

    let local_cycle = parse_expr("(pick ; pack) ; ship").unwrap();
    let relay = parse_expr("dispatch_cycle ; dispatch_cycle").unwrap();
    // A warm reading (≥ 8 °C) inside a ship→deliver window.
    let breach = parse_expr("A(ship, temp{1 >= 8}, deliver)").unwrap();

    let mut engine = Engine::with_local(
        &scenario,
        EngineConfig::default(),
        &["pick", "pack", "ship", "deliver", "temp"],
        &[("dispatch_cycle", local_cycle, Context::Chronicle)],
        &[
            ("relay", relay, Context::Chronicle),
            ("cold_chain_breach", breach, Context::Unrestricted),
        ],
    )
    .unwrap();

    // Warehouse 0 dispatches a parcel…
    let s = Nanos::from_millis;
    engine.inject(s(1_000), 0, "pick", vec![]).unwrap();
    engine.inject(s(1_400), 0, "pack", vec![]).unwrap();
    engine
        .inject(s(2_000), 0, "ship", vec![0i64.into(), 4i64.into()])
        .unwrap();
    // …temperature spikes in transit (site 1 sensor, 9 °C)…
    engine
        .inject(s(3_000), 1, "temp", vec![7i64.into(), 9i64.into()])
        .unwrap();
    // …and a cool reading that must NOT trigger (3 °C)…
    engine
        .inject(s(3_300), 1, "temp", vec![7i64.into(), 3i64.into()])
        .unwrap();
    // …warehouse 1 relays the parcel with its own full cycle…
    engine.inject(s(4_000), 1, "pick", vec![]).unwrap();
    engine.inject(s(4_300), 1, "pack", vec![]).unwrap();
    engine
        .inject(s(5_000), 1, "ship", vec![1i64.into(), 5i64.into()])
        .unwrap();
    // …delivery confirmed at site 2.
    engine.inject(s(6_000), 2, "deliver", vec![]).unwrap();

    let detections = engine.run_for(Nanos::from_secs(9));
    println!("supply-chain detections:");
    for d in &detections {
        println!("  {:<22} @ {}", d.name, d.occ.time);
    }
    println!(
        "\nlocal dispatch cycles: warehouse0={}, warehouse1={}",
        engine.local_detections(0),
        engine.local_detections(1)
    );

    let count = |n: &str| detections.iter().filter(|d| d.name == n).count();
    assert_eq!(engine.local_detections(0), 1);
    assert_eq!(engine.local_detections(1), 1);
    assert_eq!(count("dispatch_cycle"), 2, "both local cycles reported");
    assert_eq!(count("relay"), 1, "cycle@w0 strictly before cycle@w1");
    // Two ship events open two A-windows; the single warm reading falls
    // inside both ship@2s and (being before 5s) only the first window.
    assert!(count("cold_chain_breach") >= 1, "warm reading detected");
    println!("\nsupply chain OK");
}
