//! ICU patient monitoring — temporal operators in an active database.
//!
//! A bedside monitor generates sensor readings into the object store;
//! ECA rules watch for clinically meaningful *composite* patterns:
//!
//! * `sustained_tachy` — two high-heart-rate readings with no normal
//!   reading in between (`not(normal)[high, high]`);
//! * `no_response` — an alarm not acknowledged within 30 ticks
//!   (`alarm + 30`, cancelled logically by the condition checking an ack);
//! * `obs_window` — `A*` accumulating all readings between rounds, fired
//!   at the next nurse round with the full set of values.
//!
//! Everything here is the *centralized* engine (a single ICU server),
//! showing the Section 3 semantics and the sentinel layer working with
//! temporal operators.
//!
//! Run with `cargo run --example hospital_icu`.

use decs::sentinel::{Condition, RuleEngine};
use decs::snoop::Context;

fn main() {
    let mut icu = RuleEngine::new();
    icu.create_table("vitals", &["patient", "hr"]).unwrap();
    for ev in ["hr_high", "hr_normal", "alarm", "ack", "nurse_round"] {
        icu.register_event(ev).unwrap();
    }

    icu.define_event_dsl(
        "sustained_tachy",
        "not(hr_normal)[hr_high, hr_high]",
        Context::Chronicle,
    )
    .unwrap();
    icu.define_event_dsl("no_response", "alarm + 30", Context::Chronicle)
        .unwrap();
    icu.define_event_dsl(
        "obs_window",
        "A*(nurse_round, vitals_insert, nurse_round)",
        Context::Continuous,
    )
    .unwrap();

    icu.on(
        "call_doctor",
        "sustained_tachy",
        Condition::Always,
        "sustained tachycardia — calling physician",
    );
    icu.on(
        "escalate",
        "no_response",
        Condition::Always,
        "alarm unacknowledged for 30 ticks — escalating",
    );
    icu.on(
        "chart",
        "obs_window",
        Condition::MinTuples(3),
        "observation window charted",
    );

    // ── A shift unfolds ────────────────────────────────────────────────
    icu.raise("nurse_round", vec![]).unwrap();
    icu.insert("vitals", vec!["bed-4".into(), 82i64.into()])
        .unwrap();
    icu.insert("vitals", vec!["bed-4".into(), 126i64.into()])
        .unwrap();
    icu.raise("hr_high", vec!["bed-4".into()]).unwrap();
    icu.insert("vitals", vec!["bed-4".into(), 131i64.into()])
        .unwrap();
    icu.raise("hr_high", vec!["bed-4".into()]).unwrap(); // no hr_normal between → tachy!
    icu.raise("alarm", vec!["bed-4".into()]).unwrap();
    // The nurse never acks; 30 ticks pass.
    let now = icu.now();
    icu.tick(now + 31).unwrap(); // no_response fires
    icu.raise("nurse_round", vec![]).unwrap(); // closes the A* window

    println!("ICU shift log:");
    for fired in icu.log() {
        println!("  [{}] {:?}", fired.rule, fired.output);
    }

    let rules_fired: Vec<&str> = icu.log().iter().map(|f| f.rule.as_str()).collect();
    assert!(rules_fired.contains(&"call_doctor"), "{rules_fired:?}");
    assert!(rules_fired.contains(&"escalate"), "{rules_fired:?}");
    assert!(rules_fired.contains(&"chart"), "{rules_fired:?}");
    println!("\nall three clinical rules fired as expected");
}
