//! Multi-exchange stock monitoring — the classic active-database workload.
//!
//! Three exchange sites publish price updates with their own (drifting)
//! clocks. The global detector watches for:
//!
//! * `cross_exchange_momentum` — a trade on exchange 0 strictly followed
//!   by a trade on exchange 1 (sequence across sites: only counts when the
//!   `2g_g` order can actually prove the order);
//! * `quiet_halt` — a halt with no trade in the preceding window
//!   (`not(trade)[halt_armed, halt]` shaped with explicit events);
//! * `burst` — `A*` accumulation of price updates between two trades.
//!
//! Run with `cargo run --example stock_monitor`.

use decs::distrib::{Engine, EngineConfig};
use decs::simnet::ScenarioBuilder;
use decs::snoop::{Context, EventExpr as E};
use decs::workloads::{scenarios::names, stock_trace};
use decs_chronos::{Granularity, Nanos};

fn main() {
    let sites = 3;
    let scenario = ScenarioBuilder::new(sites, 7)
        .global_granularity(Granularity::per_second(10).unwrap())
        .build()
        .unwrap();
    println!(
        "{} exchanges, Π = {:.1} ms, g_g = {}",
        sites,
        scenario.precision().nanos() as f64 / 1e6,
        scenario.base.gg()
    );

    let defs: Vec<(&str, E, Context)> = vec![
        (
            "cross_exchange_momentum",
            E::seq(E::prim("trade"), E::prim("trade")),
            Context::Chronicle,
        ),
        (
            "burst",
            E::aperiodic_star(E::prim("trade"), E::prim("price_update"), E::prim("trade")),
            Context::Continuous,
        ),
        (
            "halted_after_trade",
            E::seq(E::prim("trade"), E::prim("halt")),
            Context::Recent,
        ),
    ];
    let mut engine = Engine::new(&scenario, EngineConfig::default(), names::STOCK, &defs).unwrap();

    // Replay a deterministic 2-second ticker trace.
    let trace = stock_trace(sites, Nanos::from_secs(2), 99);
    println!("injecting {} market events", trace.len());
    for inj in &trace {
        engine
            .inject(
                inj.at,
                inj.site,
                names::STOCK[inj.event],
                inj.values.clone(),
            )
            .unwrap();
    }

    let detections = engine.run_for(Nanos::from_secs(4));
    let mut counts = std::collections::BTreeMap::new();
    for d in &detections {
        *counts.entry(d.name.clone()).or_insert(0u64) += 1;
    }
    println!("\ndetections by composite event:");
    for (name, n) in &counts {
        println!("  {name:<28} {n}");
    }
    let m = engine.metrics();
    println!("\nengine metrics:");
    println!("  events received      {}", m.events_received);
    println!("  events released      {}", m.events_released);
    println!("  detections           {}", m.detections);
    println!("  reassembly parks     {}", m.reassembly_parks);
    println!("  max buffered         {}", m.max_buffered);
    println!(
        "  mean stability lag   {:.2} ms",
        m.mean_stability_latency_ns() as f64 / 1e6
    );

    // A burst detection accumulates price updates between two trades —
    // show one with its parameter count.
    if let Some(b) = detections.iter().find(|d| d.name == "burst") {
        println!(
            "\nexample burst: {} constituents, stamped {}",
            b.occ.params.len(),
            b.occ.time
        );
    }
    assert!(m.events_received > 0);
}
