//! Quickstart: the three layers of `decs` in five minutes.
//!
//! 1. The **formal core** — distributed timestamps and their partial order.
//! 2. The **centralized engine** — Snoop operators over an active store.
//! 3. The **distributed engine** — the same expression detected across
//!    sites with drifting clocks.
//!
//! Run with `cargo run --example quickstart`.

use decs::core::{cts, max_op, CompositeRelation};
use decs::distrib::{Engine, EngineConfig};
use decs::sentinel::{Condition, RuleEngine};
use decs::simnet::ScenarioBuilder;
use decs::snoop::{Context, EventExpr};
use decs_chronos::{Granularity, Nanos};

fn main() {
    // ── 1. The formal core ──────────────────────────────────────────────
    // Composite timestamps are *sets* of (site, global, local) triples.
    let t1 = cts(&[(1, 8, 80), (2, 7, 70)]);
    let t2 = cts(&[(3, 9, 90)]);
    println!("T(e1) = {t1}");
    println!("T(e2) = {t2}");
    println!("relation: T(e1) {} T(e2)", t1.relation(&t2));
    assert_eq!(t1.relation(&t2), CompositeRelation::Before);
    println!("Max(T(e1), T(e2)) = {}\n", max_op(&t1, &t2));

    // ── 2. Centralized active rules ─────────────────────────────────────
    let mut engine = RuleEngine::new();
    engine.create_table("stock", &["symbol", "price"]).unwrap();
    engine
        .define_event_dsl("spike", "stock_update ; stock_update", Context::Chronicle)
        .unwrap();
    engine.on(
        "alert",
        "spike",
        Condition::Threshold {
            index: 1,
            threshold: 105.0,
            above: true,
        },
        "price spiked above 105",
    );
    let row = engine
        .insert("stock", vec!["IBM".into(), 100.0.into()])
        .unwrap();
    engine
        .update("stock", row, vec!["IBM".into(), 103.0.into()])
        .unwrap();
    engine
        .update("stock", row, vec!["IBM".into(), 107.5.into()])
        .unwrap();
    for fired in engine.log() {
        println!(
            "centralized rule fired: {} → {:?}",
            fired.rule, fired.output
        );
    }
    assert_eq!(engine.log().len(), 1);

    // ── 3. The distributed engine ───────────────────────────────────────
    // Two sites with drifting clocks, g_g = 1/10 s (the paper's example),
    // detecting A ; B across sites.
    let scenario = ScenarioBuilder::new(2, 42)
        .global_granularity(Granularity::per_second(10).unwrap())
        .build()
        .unwrap();
    println!(
        "\nscenario: Π = {} ns, g_g = {}",
        scenario.precision().nanos(),
        scenario.base.gg()
    );
    let mut dist = Engine::new(
        &scenario,
        EngineConfig::default(),
        &["A", "B"],
        &[(
            "AthenB",
            EventExpr::seq(EventExpr::prim("A"), EventExpr::prim("B")),
            Context::Chronicle,
        )],
    )
    .unwrap();
    dist.inject(Nanos::from_secs(1), 0, "A", vec![]).unwrap();
    dist.inject(Nanos::from_secs(2), 1, "B", vec![]).unwrap();
    // …and a concurrent pair that must NOT count as a sequence:
    dist.inject(Nanos::from_millis(3_000), 0, "A", vec![])
        .unwrap();
    dist.inject(Nanos::from_millis(3_020), 1, "B", vec![])
        .unwrap();
    let detections = dist.run_for(Nanos::from_secs(5));
    for d in &detections {
        println!("distributed detection: {} @ {}", d.name, d.occ.time);
    }
    assert_eq!(
        detections.len(),
        1,
        "the concurrent A/B pair is not a sequence under <_p"
    );
    println!("\nquickstart OK");
}
