//! Distributed intrusion detection with ECA rules.
//!
//! Four edge sites stream authentication/network events to a global
//! detector; the composite events feed Sentinel ECA rules (conditions over
//! accumulated parameters, log actions):
//!
//! * `brute_force` — three failed logins in a row (`(fail ; fail) ; fail`);
//! * `scan_then_breach` — a port scan strictly followed by a privilege
//!   escalation anywhere in the fleet;
//! * `fail_then_ok` — a failed login strictly followed by a successful one
//!   (credential-stuffing success heuristic).
//!
//! Run with `cargo run --example intrusion_detection`.

use decs::distrib::{Engine, EngineConfig};
use decs::sentinel::{parse_expr, Condition, RuleEngine, RuleOccurrence};
use decs::simnet::ScenarioBuilder;
use decs::snoop::Context;
use decs::workloads::{intrusion_trace, scenarios::names};
use decs_chronos::{Granularity, Nanos};

fn main() {
    let scenario = ScenarioBuilder::new(4, 1234)
        .global_granularity(Granularity::per_second(10).unwrap())
        .build()
        .unwrap();

    // Composite events, written in the DSL.
    let brute = parse_expr("(login_fail ; login_fail) ; login_fail").unwrap();
    let breach = parse_expr("port_scan ; privilege_esc").unwrap();
    let stuffing = parse_expr("login_fail ; login_ok").unwrap();

    let mut engine = Engine::new(
        &scenario,
        EngineConfig::default(),
        names::INTRUSION,
        &[
            ("brute_force", brute, Context::Chronicle),
            ("scan_then_breach", breach, Context::Recent),
            ("fail_then_ok", stuffing, Context::Chronicle),
        ],
    )
    .unwrap();

    // ECA rules run over the distributed detections.
    let mut rules = RuleEngine::new();
    rules.on(
        "page_oncall",
        "brute_force",
        Condition::Always,
        "three failed logins — paging on-call",
    );
    rules.on(
        "lockdown",
        "scan_then_breach",
        Condition::Always,
        "scan followed by escalation — lockdown",
    );
    rules.on(
        "watch_user",
        "fail_then_ok",
        Condition::MinTuples(2),
        "possible credential stuffing",
    );

    let trace = intrusion_trace(4, Nanos::from_secs(2), 5);
    println!("replaying {} security events from 4 sites", trace.len());
    for inj in &trace {
        engine
            .inject(
                inj.at,
                inj.site,
                names::INTRUSION[inj.event],
                inj.values.clone(),
            )
            .unwrap();
    }
    let detections = engine.run_for(Nanos::from_secs(4));

    for d in &detections {
        rules.apply_detection(&d.name, RuleOccurrence::Distributed(d.occ.clone()));
    }

    let mut counts = std::collections::BTreeMap::new();
    for f in rules.log() {
        *counts.entry(f.rule.clone()).or_insert(0u64) += 1;
    }
    println!("\nrule firings:");
    for (rule, n) in &counts {
        println!("  {rule:<14} {n}");
    }
    println!(
        "\n({} composite detections; {} events released by the coordinator)",
        detections.len(),
        engine.metrics().events_released
    );
    assert!(!detections.is_empty());
    assert!(!rules.log().is_empty());
}
