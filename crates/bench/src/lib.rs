//! Shared helpers for the experiment binaries and criterion benches:
//! seeded random timestamp universes and a minimal fixed-width table
//! printer (so every experiment prints paper-style rows).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use decs_core::{cts, pts, CompositeTimestamp, PrimitiveTimestamp, RawTimestampSet};
use decs_simnet::SplitMix64;

/// Deterministically sample a conforming primitive timestamp:
/// sites `< sites`, local ticks `< horizon`, global = local / 10.
pub fn random_primitive(rng: &mut SplitMix64, sites: u32, horizon: u64) -> PrimitiveTimestamp {
    let site = rng.next_below(u64::from(sites)) as u32 + 1;
    let local = rng.next_below(horizon);
    pts(site, local / 10, local)
}

/// Sample a normalized composite timestamp with up to `width` constituents.
pub fn random_composite(
    rng: &mut SplitMix64,
    sites: u32,
    horizon: u64,
    width: usize,
) -> CompositeTimestamp {
    let n = rng.next_range(1, width as u64) as usize;
    CompositeTimestamp::from_primitives((0..n).map(|_| random_primitive(rng, sites, horizon)))
}

/// Sample a *raw* (possibly non-maximal) timestamp set, as [10] would
/// carry.
pub fn random_raw_set(
    rng: &mut SplitMix64,
    sites: u32,
    horizon: u64,
    width: usize,
) -> RawTimestampSet {
    let n = rng.next_range(1, width as u64) as usize;
    RawTimestampSet::new((0..n).map(|_| random_primitive(rng, sites, horizon)))
}

/// A composite timestamp whose members all sit at distinct fresh sites
/// within one global tick around `g` (maximally concurrent).
pub fn concurrent_composite(base_site: u32, g: u64, width: usize) -> CompositeTimestamp {
    cts(&(0..width as u32)
        .map(|i| (base_site + i, g, g * 10 + u64::from(i)))
        .collect::<Vec<_>>())
}

/// Print a fixed-width table row.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    let mut out = String::new();
    for (i, c) in cells.iter().enumerate() {
        let w = widths.get(i).copied().unwrap_or(12);
        out.push_str(&format!("{c:<w$} "));
    }
    out.trim_end().to_string()
}

/// Print a table: header, separator, rows.
pub fn print_table(header: &[&str], widths: &[usize], rows: &[Vec<String>]) {
    println!(
        "{}",
        row(
            &header.iter().map(|s| (*s).to_string()).collect::<Vec<_>>(),
            widths
        )
    );
    let total: usize = widths.iter().sum::<usize>() + widths.len();
    println!("{}", "─".repeat(total));
    for r in rows {
        println!("{}", row(r, widths));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(1);
        for _ in 0..50 {
            assert_eq!(
                random_composite(&mut a, 4, 200, 5),
                random_composite(&mut b, 4, 200, 5)
            );
        }
    }

    #[test]
    fn composite_generator_respects_invariant() {
        let mut rng = SplitMix64::new(2);
        for _ in 0..200 {
            assert!(random_composite(&mut rng, 5, 300, 6).invariant_holds());
        }
    }

    #[test]
    fn concurrent_composite_is_fully_concurrent() {
        let c = concurrent_composite(10, 8, 4);
        assert_eq!(c.len(), 4);
        assert!(c.invariant_holds());
    }

    #[test]
    fn table_rows_align() {
        let r = row(&["ab".into(), "c".into()], &[4, 3]);
        assert_eq!(r, "ab   c");
    }
}
