//! E9 (extension) — detection latency vs `g_g` and heartbeat interval.
//!
//! The stability rule delays releasing a notification until every site's
//! watermark passes its global tick + 1·g_g, so end-to-end detection
//! latency grows with the global granularity and with the heartbeat
//! period. This experiment sweeps both and reports the coordinator's mean
//! stability latency and the end-to-end detection latency of a cross-site
//! sequence workload.
//!
//! Run: `cargo run -p decs-bench --bin detection_latency` (add
//! `--release` for stable numbers)

use decs_bench::print_table;
use decs_chronos::{Granularity, Nanos};
use decs_distrib::{Engine, EngineConfig};
use decs_simnet::ScenarioBuilder;
use decs_snoop::{Context, EventExpr as E};

struct Row {
    gg_ms: u64,
    hb_ms: u64,
    detections: usize,
    mean_stability_ms: f64,
    mean_e2e_ms: f64,
}

fn run(gg_ms: u64, hb_ms: u64) -> Row {
    let scenario = ScenarioBuilder::new(4, 99)
        .max_offset_ns(1_000_000)
        .max_drift_ppb(5_000)
        .global_granularity(Granularity::from_millis(gg_ms).unwrap())
        .build()
        .unwrap();
    let mut engine = Engine::new(
        &scenario,
        EngineConfig {
            heartbeat_interval: Nanos::from_millis(hb_ms),
            ..EngineConfig::default()
        },
        &["A", "B"],
        &[("X", E::seq(E::prim("A"), E::prim("B")), Context::Chronicle)],
    )
    .unwrap();

    // A;B pairs, 4·g_g apart so each pair is provably ordered; pairs are
    // spaced well apart.
    let mut b_times = Vec::new();
    let mut t = 1_000_000_000u64;
    for k in 0..40u64 {
        let site_a = (k % 4) as u32;
        let site_b = ((k + 1) % 4) as u32;
        engine.inject(Nanos(t), site_a, "A", vec![]).unwrap();
        let tb = t + 4 * gg_ms * 1_000_000;
        engine.inject(Nanos(tb), site_b, "B", vec![]).unwrap();
        b_times.push(tb);
        t = tb + 10 * gg_ms * 1_000_000;
    }
    let detections = engine.run_for(Nanos(t + 5_000_000_000));
    let m = engine.metrics();
    // End-to-end: detection true time − terminator injection true time.
    let mut e2e_sum = 0f64;
    for (d, tb) in detections.iter().zip(&b_times) {
        e2e_sum += (d.detected_at.get().saturating_sub(*tb)) as f64 / 1e6;
    }
    Row {
        gg_ms,
        hb_ms,
        detections: detections.len(),
        mean_stability_ms: m.mean_stability_latency_ns() as f64 / 1e6,
        mean_e2e_ms: if detections.is_empty() {
            f64::NAN
        } else {
            e2e_sum / detections.len() as f64
        },
    }
}

fn main() {
    println!("E9 — detection latency vs global granularity and heartbeat\n");
    let mut rows = Vec::new();
    for gg_ms in [10u64, 50, 100, 200] {
        for hb_ms in [5u64, 20, 100] {
            let r = run(gg_ms, hb_ms);
            rows.push(vec![
                format!("{}", r.gg_ms),
                format!("{}", r.hb_ms),
                format!("{}", r.detections),
                format!("{:.2}", r.mean_stability_ms),
                format!("{:.2}", r.mean_e2e_ms),
            ]);
        }
    }
    print_table(
        &[
            "g_g (ms)",
            "heartbeat (ms)",
            "detections",
            "stability lat (ms)",
            "e2e latency (ms)",
        ],
        &[9, 15, 11, 19, 17],
        &rows,
    );
    println!("\nexpected shape: latency grows ~linearly with g_g (the stability");
    println!("rule waits out ≈2 global ticks) plus one heartbeat period; all 40");
    println!("sequences detect in every configuration.");
}
