//! E5 — mechanical validity check of every candidate ordering
//! (Section 5.1's analysis + the counterexample against [10]).
//!
//! For each candidate we search randomized universes of (a) normalized
//! composite timestamps and (b) raw Schwiderski-style sets for
//! irreflexivity and transitivity violations. We also quantify how often
//! the literal Definition 5.9 `Max` diverges from Theorem 5.4's
//! `max(T1 ∪ T2)` (the paper-internal inconsistency documented in
//! DESIGN.md), and how often Theorem 5.3's "iff" converse fails.
//!
//! Run: `cargo run -p decs-bench --bin ordering_validity`

use decs_bench::{print_table, random_composite, random_raw_set};
use decs_core::alt::{find_irreflexivity_violation, find_transitivity_violation, Candidate};
use decs_core::join::{def59_agrees, max_op};
use decs_core::properties::thm_5_3_iff;
use decs_core::RawTimestampSet;
use decs_simnet::SplitMix64;

fn main() {
    println!("E5 / Section 5.1 — validity of candidate composite orderings\n");

    let mut rng = SplitMix64::new(20_240_607);
    const ROUNDS: usize = 60;
    const UNIVERSE: usize = 24;

    // (candidate, irreflexive-on-raw, transitive-on-raw, transitive-on-normalized)
    let mut rows = Vec::new();
    for cand in Candidate::ALL {
        let mut refl_raw = 0usize;
        let mut trans_raw = 0usize;
        let mut trans_norm = 0usize;
        for _ in 0..ROUNDS {
            let raw: Vec<RawTimestampSet> = (0..UNIVERSE)
                .map(|_| random_raw_set(&mut rng, 4, 120, 4))
                .collect();
            let norm: Vec<RawTimestampSet> = (0..UNIVERSE)
                .map(|_| RawTimestampSet::from(random_composite(&mut rng, 4, 120, 4)))
                .collect();
            if find_irreflexivity_violation(cand, &raw).is_some() {
                refl_raw += 1;
            }
            if find_transitivity_violation(cand, &raw).is_some() {
                trans_raw += 1;
            }
            if find_transitivity_violation(cand, &norm).is_some() {
                trans_norm += 1;
            }
        }
        let verdict = if refl_raw == 0 && trans_raw == 0 && trans_norm == 0 {
            "strict partial order"
        } else {
            "NOT a partial order"
        };
        rows.push(vec![
            cand.name().to_string(),
            format!("{refl_raw}/{ROUNDS}"),
            format!("{trans_raw}/{ROUNDS}"),
            format!("{trans_norm}/{ROUNDS}"),
            verdict.to_string(),
        ]);
    }
    print_table(
        &[
            "candidate",
            "refl.viol(raw)",
            "trans.viol(raw)",
            "trans.viol(norm)",
            "verdict",
        ],
        &[18, 15, 16, 17, 22],
        &rows,
    );

    println!("\npaper's conclusions, reproduced mechanically:");
    println!("  ∃∃ (<_p1) and the [10]-style ordering fail; <_p, <_g, ∀∀, min are valid;");
    println!("  <_p/<_g remain valid even on raw (non-maximal) sets.\n");

    // Definition 5.9 vs Theorem 5.4 divergence rate.
    let mut pairs = 0u64;
    let mut diverged = 0u64;
    let mut thm53_pairs = 0u64;
    let mut thm53_fail = 0u64;
    for _ in 0..20_000 {
        let a = random_composite(&mut rng, 4, 120, 4);
        let b = random_composite(&mut rng, 4, 120, 4);
        pairs += 1;
        if !def59_agrees(&a, &b) {
            diverged += 1;
            // The divergence is always an ordered pair where the "earlier"
            // set keeps an undominated member.
            debug_assert!(a.happens_before(&b) || b.happens_before(&a));
            let m = max_op(&a, &b);
            debug_assert!(m.invariant_holds());
        }
        thm53_pairs += 1;
        if !thm_5_3_iff(&a, &b) {
            thm53_fail += 1;
        }
    }
    println!("fidelity findings over {pairs} random normalized pairs:");
    println!(
        "  Definition 5.9 (case analysis) ≠ Theorem 5.4 (max of union): {diverged} pairs ({:.2}%)",
        100.0 * diverged as f64 / pairs as f64
    );
    println!(
        "  Theorem 5.3 converse (⪯̃ ⇒ ~ ∨ <) fails:                    {thm53_fail} pairs ({:.2}%)",
        100.0 * thm53_fail as f64 / thm53_pairs as f64
    );
    println!("  (both findings documented in DESIGN.md §1; we take Thm 5.4 as normative)");
}
