//! E7 (extension) — quantifying "least restricted".
//!
//! The paper argues `<_p` is the least restricted valid ordering. This
//! experiment measures, over random universes, the fraction of timestamp
//! pairs each valid candidate can order (in either direction), sweeping
//! the timestamp-set width and the time horizon (event density). The
//! expected shape: `<_p` ≥ every other valid candidate on every row, with
//! the gap growing with set width; `∃∃` orders the most pairs but is
//! invalid (E5).
//!
//! Run: `cargo run -p decs-bench --bin restrictiveness`

use decs_bench::{print_table, random_composite};
use decs_core::alt::Candidate;
use decs_core::RawTimestampSet;
use decs_simnet::SplitMix64;

fn main() {
    println!("E7 — comparability rate (% of random pairs ordered) by candidate\n");

    let mut rng = SplitMix64::new(7_777);
    const PAIRS: usize = 30_000;

    let mut rows = Vec::new();
    for (width, horizon) in [
        (1usize, 300u64),
        (2, 300),
        (4, 300),
        (6, 300),
        (4, 60),
        (4, 1200),
    ] {
        let mut counts = vec![0u64; Candidate::ALL.len()];
        let mut concurrent = 0u64;
        for _ in 0..PAIRS {
            let a = RawTimestampSet::from(random_composite(&mut rng, 5, horizon, width));
            let b = RawTimestampSet::from(random_composite(&mut rng, 5, horizon, width));
            for (i, cand) in Candidate::ALL.iter().enumerate() {
                if cand.eval(&a, &b) || cand.eval(&b, &a) {
                    counts[i] += 1;
                }
            }
            let an = a.normalize().unwrap();
            let bn = b.normalize().unwrap();
            if an.concurrent(&bn) {
                concurrent += 1;
            }
        }
        let pct = |c: u64| format!("{:.1}%", 100.0 * c as f64 / PAIRS as f64);
        rows.push(vec![
            format!("w≤{width}, h={horizon}"),
            pct(counts[0]), // ∃∃ (invalid, upper envelope)
            pct(counts[1]), // <_p
            pct(counts[2]), // <_g
            pct(counts[3]), // ∀∀
            pct(counts[4]), // min
            pct(counts[5]), // [10]
            pct(concurrent),
        ]);
    }
    print_table(
        &[
            "universe", "∃∃*", "<_p", "<_g", "∀∀", "min", "[10]*", "~ rate",
        ],
        &[14, 8, 8, 8, 8, 8, 8, 8],
        &rows,
    );
    println!("\n  (* = not a valid strict partial order; shown as envelope only)");
    println!("\nexpected shape, checked on each row: <_p ≥ ∀∀ and <_p ≥ min;");
    println!("the advantage grows with set width; everything shrinks as the");
    println!("horizon shrinks (denser events ⇒ more concurrency).");
}
