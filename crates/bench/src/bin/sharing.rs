//! E16 — cross-definition operator sharing (the hash-consed plan IR).
//!
//! Measures serial feed throughput of the shared-plan backend
//! ([`CentralDetector::plan`]) against independent per-definition
//! compilation ([`CentralDetector::sharded`], the `plan_sharing: false`
//! oracle) on definition sets with a controlled **overlap fraction**:
//! of `N` definitions, `overlap%` are copies of one common deep body over
//! a shared primitive triple (the plan collapses them to a single operator
//! subtree with per-definition fan-out) and the rest are structurally
//! identical bodies over *private* primitive triples (no sharing possible,
//! same cost on both backends). The workload cycles over every registered
//! primitive, so both populations do real work.
//!
//! Detection counts are asserted equal between the backends on every
//! configuration — a mismatch is a correctness bug, not a slow run.
//!
//! Run: `cargo run --release -p decs-bench --bin sharing` (full, writes
//! `BENCH_sharing.json` in the current directory).
//! `--smoke` runs a quick pass, validates the committed
//! `BENCH_sharing.json` (malformed JSON, a missing 50%-overlap row, or a
//! headline speedup below 1.5x fails with a nonzero exit) and writes its
//! own results under `target/`.

use decs_snoop::{CentralDetector, Context, EventExpr as E, EventExpr};
use std::fmt::Write as _;
use std::time::Instant;

/// Total definitions per configuration.
const DEFS: usize = 16;

/// The common body over a primitive triple: `¬(b)[a, c]`. The workload
/// drives it guard-heavy (openers and guards pile up, closers are where
/// the window scan happens, emissions are rare and tiny), so operator
/// *execution* — the part the plan runs once per trigger instead of once
/// per duplicate definition — dominates the constant per-definition
/// fan-out bookkeeping that every backend pays.
fn body(a: &str, b: &str, c: &str) -> EventExpr {
    E::not(E::prim(b), E::prim(a), E::prim(c))
}

/// The primitive names a configuration needs: one shared triple plus a
/// private triple per non-overlapping definition.
fn primitives(unique_defs: usize) -> Vec<String> {
    let mut names: Vec<String> = ["S0", "S1", "S2"].iter().map(|s| s.to_string()).collect();
    for i in 0..unique_defs {
        for k in 0..3 {
            names.push(format!("U{i}_{k}"));
        }
    }
    names
}

/// Build a detector with `dup` copies of the common body and
/// `DEFS - dup` private-triple bodies.
fn build(shared_plan: bool, dup: usize) -> CentralDetector {
    let mut d = if shared_plan {
        CentralDetector::plan()
    } else {
        CentralDetector::sharded()
    };
    for n in primitives(DEFS - dup) {
        d.register(&n).unwrap();
    }
    for i in 0..dup {
        d.define(
            &format!("D{i}"),
            &body("S0", "S1", "S2"),
            Context::Chronicle,
        )
        .unwrap();
    }
    for i in 0..DEFS - dup {
        let (a, b, c) = (format!("U{i}_0"), format!("U{i}_1"), format!("U{i}_2"));
        d.define(
            &format!("D{}", dup + i),
            &body(&a, &b, &c),
            Context::Chronicle,
        )
        .unwrap();
    }
    // Both legs run with clock-driven buffer GC off: the bench measures
    // detection work on accumulated operator state, and GC equivalence is
    // `hotpath`'s subject, not this one's. The setting is identical for
    // both backends, so the ratio stays apples-to-apples.
    d.set_buffer_gc(false);
    d
}

/// Feed `events` occurrences, cycling the guard-heavy `[a, b, a, c]`
/// pattern round-robin over every registered triple (opener, window-
/// killing guard, opener, closer — the closer's window scan is the hot
/// operation); returns (elapsed seconds, detections produced).
fn drive(d: &mut CentralDetector, events: u64) -> (f64, u64) {
    let names = primitives(DEFS); // superset order; trim to the catalog
    let live: Vec<&str> = names
        .iter()
        .map(|s| s.as_str())
        .filter(|n| d.catalog().lookup(n).is_ok())
        .collect();
    let triples: Vec<[&str; 3]> = live.chunks(3).map(|t| [t[0], t[1], t[2]]).collect();
    let mut detections = 0u64;
    let start = Instant::now();
    for i in 0..events {
        let [a, b, c] = triples[((i / 4) as usize) % triples.len()];
        let name = [a, b, a, c][(i % 4) as usize];
        detections += d.feed_bare(name, i).unwrap().len() as u64;
    }
    (start.elapsed().as_secs_f64(), detections)
}

struct Row {
    overlap_pct: usize,
    shared_meps: f64,
    unshared_meps: f64,
    detections: u64,
    plan_nodes: usize,
    shared_nodes: usize,
    sharing_ratio: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.shared_meps / self.unshared_meps
    }
}

/// Best-of-3 throughput for one backend (fresh detector per repetition —
/// feeding mutates operator state).
fn throughput(shared_plan: bool, dup: usize, events: u64) -> (f64, u64) {
    let mut best = 0.0f64;
    let mut detections = 0;
    for _ in 0..3 {
        let mut d = build(shared_plan, dup);
        let (secs, det) = drive(&mut d, events);
        best = best.max(events as f64 / secs / 1e6);
        detections = det;
    }
    (best, detections)
}

fn run_config(overlap_pct: usize, events: u64) -> Row {
    let dup = DEFS * overlap_pct / 100;
    let (shared_meps, det_shared) = throughput(true, dup, events);
    let (unshared_meps, det_unshared) = throughput(false, dup, events);
    // The hard equivalence gate: both backends must detect identically.
    assert_eq!(
        det_shared, det_unshared,
        "backend detection mismatch at overlap {overlap_pct}%"
    );
    let stats = build(true, dup).plan_stats();
    Row {
        overlap_pct,
        shared_meps,
        unshared_meps,
        detections: det_shared,
        plan_nodes: stats.plan_nodes,
        shared_nodes: stats.shared_nodes,
        sharing_ratio: stats.sharing_ratio,
    }
}

fn render_json(mode: &str, events: u64, rows: &[Row]) -> String {
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"bench\": \"sharing\",");
    let _ = writeln!(j, "  \"schema\": 1,");
    let _ = writeln!(j, "  \"mode\": \"{mode}\",");
    let _ = writeln!(j, "  \"threads\": {threads},");
    let _ = writeln!(j, "  \"defs\": {DEFS},");
    let _ = writeln!(j, "  \"events\": {events},");
    let _ = writeln!(j, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            j,
            "    {{\"name\": \"overlap_{}\", \"overlap_pct\": {}, \
             \"shared_meps\": {:.3}, \"unshared_meps\": {:.3}, \
             \"speedup\": {:.2}, \"detections\": {}, \"plan_nodes\": {}, \
             \"shared_nodes\": {}, \"sharing_ratio\": {:.3}}}{comma}",
            r.overlap_pct,
            r.overlap_pct,
            r.shared_meps,
            r.unshared_meps,
            r.speedup(),
            r.detections,
            r.plan_nodes,
            r.shared_nodes,
            r.sharing_ratio
        );
    }
    let _ = writeln!(j, "  ]");
    let _ = writeln!(j, "}}");
    j
}

/// Pull `"field": <number>` out of the row object named `name` (same
/// substring scanner as the other bench smokes — the baseline is our own
/// emission, so anything it can't find is malformed).
fn extract(json: &str, name: &str, field: &str) -> Option<f64> {
    let obj = &json[json.find(&format!("\"name\": \"{name}\""))?..];
    let obj = &obj[..obj.find('}')?];
    let at = obj.find(&format!("\"{field}\":"))? + field.len() + 4;
    let rest = &obj[at..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn smoke(baseline_path: &str) -> i32 {
    // A quick pass still runs every overlap point — `run_config` hard-
    // asserts shared == unshared detections, which is the smoke's real
    // correctness gate.
    let events = 20_000;
    let rows: Vec<Row> = [0, 25, 50, 75]
        .iter()
        .map(|&p| run_config(p, events))
        .collect();
    let json = render_json("smoke", events, &rows);
    std::fs::create_dir_all("target").ok();
    std::fs::write("target/BENCH_sharing_smoke.json", &json).ok();
    print!("{json}");

    let Ok(baseline) = std::fs::read_to_string(baseline_path) else {
        eprintln!("smoke: FAIL — missing baseline {baseline_path}");
        return 1;
    };
    let mut failed = false;
    for p in [0, 25, 50, 75] {
        if extract(&baseline, &format!("overlap_{p}"), "speedup").is_none() {
            eprintln!("smoke: FAIL — baseline is malformed (no overlap_{p} row)");
            failed = true;
        }
    }
    // The committed artifact must carry the headline: ≥1.5x feed
    // throughput at 50% overlap. The ratio is machine-independent enough
    // to enforce unconditionally (both legs run on the same machine).
    match extract(&baseline, "overlap_50", "speedup") {
        Some(s) if s >= 1.5 => {}
        Some(s) => {
            eprintln!("smoke: FAIL — baseline 50%-overlap speedup {s:.2} < 1.5x");
            failed = true;
        }
        None => {} // already reported as malformed above
    }
    if failed {
        1
    } else {
        eprintln!("smoke: OK");
        0
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--smoke") {
        std::process::exit(smoke("BENCH_sharing.json"));
    }

    eprintln!("E16 — cross-definition operator sharing (full run)");
    // The no-GC guard scan is quadratic in per-triple rounds by design,
    // so the full run stays at a size where the slowest (75%-overlap,
    // unshared) leg finishes in tens of seconds.
    let events = 120_000;
    let rows: Vec<Row> = [0, 25, 50, 75]
        .iter()
        .map(|&p| {
            let r = run_config(p, events);
            eprintln!(
                "overlap {:>2}%: shared {:.2} Mev/s, unshared {:.2} Mev/s ({:.2}x), \
                 plan {} nodes ({} shared)",
                r.overlap_pct,
                r.shared_meps,
                r.unshared_meps,
                r.speedup(),
                r.plan_nodes,
                r.shared_nodes
            );
            r
        })
        .collect();
    let json = render_json("full", events, &rows);
    std::fs::write("BENCH_sharing.json", &json).expect("write BENCH_sharing.json");
    print!("{json}");
    eprintln!("wrote BENCH_sharing.json");
}
