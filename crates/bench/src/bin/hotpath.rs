//! E13 — hot-path timestamp kernels and watermark-driven buffer GC.
//!
//! Three measurements, emitted as `BENCH_hotpath.json`:
//!
//! 1. **Relation kernels** — ns/op of the cached-bound fast paths
//!    (`relation`, `happens_before`, `max_op`) against the literal
//!    Definition 5.3/5.9 pairwise scans (`*_naive`), on band-separated
//!    pairs (where the `1·g_g`-gap fast path short-circuits) and on
//!    overlapping-band pairs (where both fall back to the scan).
//! 2. **Buffer occupancy** — operator-buffer entries after a 1M-event
//!    NOT/ANY-heavy stream with GC on (bounded) vs GC off at smaller N
//!    (linear growth; the NOT workload is also quadratic in scan time
//!    without GC, which is why its no-GC leg uses a small N).
//! 3. **Detection latency** — a distributed-engine run with GC on and off:
//!    identical detections, comparable stability latency.
//!
//! Run: `cargo run --release -p decs-bench --bin hotpath` (full, writes
//! `BENCH_hotpath.json` in the current directory).
//! `--smoke` runs a quick pass, validates the committed
//! `BENCH_hotpath.json` (malformed JSON or a >2x slowdown of any fast
//! kernel fails with a nonzero exit) and writes its own results under
//! `target/`.

use decs_bench::concurrent_composite;
use decs_chronos::{Granularity, Nanos};
use decs_core::{max_op, max_op_naive};
use decs_distrib::{Engine, EngineConfig};
use decs_simnet::ScenarioBuilder;
use decs_snoop::{CentralDetector, Context, EventExpr as E};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// Best-of-3 wall-clock ns per call of `f`, after one warmup pass.
fn time_ns<O>(iters: u64, mut f: impl FnMut() -> O) -> f64 {
    for _ in 0..iters / 4 {
        black_box(f());
    }
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        best = best.min(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    best
}

struct Kernel {
    name: &'static str,
    naive_ns: f64,
    fast_ns: f64,
}

impl Kernel {
    fn speedup(&self) -> f64 {
        self.naive_ns / self.fast_ns
    }
}

/// The kernel matrix: each entry measures one relation kernel on one pair
/// shape, fast path vs naive oracle.
fn bench_kernels(iters: u64) -> Vec<Kernel> {
    // Width-4 stamps. Band-separated pairs (gap ≫ 1 global tick) hit the
    // O(1) cached-bound paths; overlapping pairs fall through to the scan.
    let sep_a = concurrent_composite(1, 100, 4);
    let sep_b = concurrent_composite(1, 200, 4); // same sites, far band
    let dis_b = concurrent_composite(10, 200, 4); // disjoint sites, far band
    let ovl_a = concurrent_composite(1, 100, 4);
    let ovl_b = concurrent_composite(5, 100, 4); // overlapping band
    let mut out = Vec::new();
    let mut kernel = |name, naive_ns, fast_ns| {
        out.push(Kernel {
            name,
            naive_ns,
            fast_ns,
        })
    };
    kernel(
        "relation_band_separated_w4",
        time_ns(iters, || sep_a.relation_naive(&sep_b)),
        time_ns(iters, || sep_a.relation(&sep_b)),
    );
    kernel(
        "relation_disjoint_sites_w4",
        time_ns(iters, || sep_a.relation_naive(&dis_b)),
        time_ns(iters, || sep_a.relation(&dis_b)),
    );
    kernel(
        "relation_overlapping_w4",
        time_ns(iters, || ovl_a.relation_naive(&ovl_b)),
        time_ns(iters, || ovl_a.relation(&ovl_b)),
    );
    kernel(
        "happens_before_band_separated_w4",
        time_ns(iters, || sep_a.happens_before_naive(&sep_b)),
        time_ns(iters, || sep_a.happens_before(&sep_b)),
    );
    kernel(
        // max_op's dominance shortcut needs disjoint site masks *and* the
        // band gap (same-site pairs would need the local clocks compared).
        "max_op_disjoint_dominant_w4",
        time_ns(iters, || max_op_naive(&sep_a, &dis_b)),
        time_ns(iters, || max_op(&sep_a, &dis_b)),
    );
    out
}

struct OccRow {
    workload: &'static str,
    gc: bool,
    events: u64,
    final_occupancy: usize,
    peak_occupancy: usize,
    evicted: u64,
    throughput_meps: f64,
}

/// Drive a `CentralDetector` with `events` primitive occurrences of the
/// given NOT- or ANY-heavy workload, sampling occupancy as it goes.
fn occupancy_run(workload: &'static str, gc: bool, events: u64) -> OccRow {
    let mut d = CentralDetector::new();
    for n in ["A", "B", "C"] {
        d.register(n).unwrap();
    }
    match workload {
        // Guards + cancelled openers strand state in the NOT node.
        "not_chronicle" => d
            .define(
                "X",
                &E::not(E::prim("B"), E::prim("A"), E::prim("C")),
                Context::Chronicle,
            )
            .unwrap(),
        // Unrestricted ANY buffers grow although only the tops are live.
        "any_unrestricted" => d
            .define(
                "X",
                &E::any(2, vec![E::prim("A"), E::prim("B")]),
                Context::Unrestricted,
            )
            .unwrap(),
        _ => unreachable!("unknown workload"),
    };
    d.set_buffer_gc(gc);
    let mut peak = 0usize;
    let start = Instant::now();
    for i in 0..events {
        let (name, tick) = match workload {
            "not_chronicle" => (
                ["A", "B", "A", "C"][(i % 4) as usize],
                (i / 4) * 10 + (i % 4),
            ),
            _ => (["A", "B"][(i % 2) as usize], i),
        };
        d.feed_bare(name, tick).unwrap();
        if i % 1024 == 0 {
            peak = peak.max(d.buffered_occupancy());
        }
    }
    let secs = start.elapsed().as_secs_f64();
    OccRow {
        workload,
        gc,
        events,
        final_occupancy: d.buffered_occupancy(),
        peak_occupancy: peak.max(d.buffered_occupancy()),
        evicted: d.gc_evicted(),
        throughput_meps: events as f64 / secs / 1e6,
    }
}

struct LatencyRow {
    detections: usize,
    mean_stability_ms: f64,
    gc_evicted: u64,
    node_buffer_peak: usize,
    retransmits: u64,
    acks_sent: u64,
    duplicates_dropped: u64,
    parked_peak: usize,
    suspect_sites: usize,
    plan_nodes: usize,
    shared_nodes: usize,
    sharing_ratio: f64,
    batch_ingest_events: u64,
    arena_bytes: u64,
    ring_full_spins: u64,
}

/// Distributed-engine leg: the NOT workload across 4 sites, GC on or off.
fn latency_run(buffer_gc: bool) -> LatencyRow {
    let scenario = ScenarioBuilder::new(4, 42)
        .max_offset_ns(1_000_000)
        .global_granularity(Granularity::from_millis(100).unwrap())
        .build()
        .unwrap();
    let mut engine = Engine::new(
        &scenario,
        EngineConfig {
            buffer_gc,
            ..EngineConfig::default()
        },
        &["A", "B", "C"],
        &[(
            "X",
            E::not(E::prim("B"), E::prim("A"), E::prim("C")),
            Context::Chronicle,
        )],
    )
    .unwrap();
    for round in 0..50u64 {
        let t = 1_000_000_000 + round * 1_600_000_000;
        engine.inject(Nanos(t), 0, "A", vec![]).unwrap();
        engine
            .inject(Nanos(t + 400_000_000), 1, "B", vec![])
            .unwrap();
        engine
            .inject(Nanos(t + 800_000_000), 2, "A", vec![])
            .unwrap();
        engine
            .inject(Nanos(t + 1_200_000_000), 3, "C", vec![])
            .unwrap();
    }
    let detections = engine.run_for(Nanos::from_secs(90));
    let m = engine.metrics();
    LatencyRow {
        detections: detections.len(),
        mean_stability_ms: m.mean_stability_latency_ns() as f64 / 1e6,
        gc_evicted: m.gc_evicted,
        node_buffer_peak: m.node_buffer_peak,
        retransmits: m.retransmits,
        acks_sent: m.acks_sent,
        duplicates_dropped: m.duplicates_dropped,
        parked_peak: m.parked_peak,
        suspect_sites: m.suspect_sites,
        plan_nodes: m.plan_nodes,
        shared_nodes: m.shared_nodes,
        sharing_ratio: m.sharing_ratio,
        batch_ingest_events: m.batch_ingest_events,
        arena_bytes: m.arena_bytes,
        ring_full_spins: m.ring_full_spins,
    }
}

fn render_json(
    mode: &str,
    kernels: &[Kernel],
    occupancy: &[OccRow],
    latency: &[(bool, LatencyRow)],
) -> String {
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"bench\": \"hotpath\",");
    let _ = writeln!(j, "  \"schema\": 1,");
    let _ = writeln!(j, "  \"mode\": \"{mode}\",");
    let _ = writeln!(j, "  \"threads\": {threads},");
    let _ = writeln!(j, "  \"kernels\": [");
    for (i, k) in kernels.iter().enumerate() {
        let comma = if i + 1 < kernels.len() { "," } else { "" };
        let _ = writeln!(
            j,
            "    {{\"name\": \"{}\", \"naive_ns\": {:.2}, \"fast_ns\": {:.2}, \
             \"speedup\": {:.2}, \"fast_mops\": {:.1}}}{comma}",
            k.name,
            k.naive_ns,
            k.fast_ns,
            k.speedup(),
            1e3 / k.fast_ns
        );
    }
    let _ = writeln!(j, "  ],");
    let _ = writeln!(j, "  \"occupancy\": [");
    for (i, r) in occupancy.iter().enumerate() {
        let comma = if i + 1 < occupancy.len() { "," } else { "" };
        let _ = writeln!(
            j,
            "    {{\"workload\": \"{}\", \"gc\": {}, \"events\": {}, \
             \"final_occupancy\": {}, \"peak_occupancy\": {}, \"evicted\": {}, \
             \"throughput_meps\": {:.2}}}{comma}",
            r.workload,
            r.gc,
            r.events,
            r.final_occupancy,
            r.peak_occupancy,
            r.evicted,
            r.throughput_meps
        );
    }
    let _ = writeln!(j, "  ],");
    let _ = writeln!(j, "  \"latency\": [");
    for (i, (gc, r)) in latency.iter().enumerate() {
        let comma = if i + 1 < latency.len() { "," } else { "" };
        let _ = writeln!(
            j,
            "    {{\"gc\": {gc}, \"detections\": {}, \"mean_stability_ms\": {:.2}, \
             \"gc_evicted\": {}, \"node_buffer_peak\": {}, \"retransmits\": {}, \
             \"acks_sent\": {}, \"duplicates_dropped\": {}, \"parked_peak\": {}, \
             \"suspect_sites\": {}, \"plan_nodes\": {}, \"shared_nodes\": {}, \
             \"sharing_ratio\": {:.3}, \"batch_ingest_events\": {}, \
             \"arena_bytes\": {}, \"ring_full_spins\": {}}}{comma}",
            r.detections,
            r.mean_stability_ms,
            r.gc_evicted,
            r.node_buffer_peak,
            r.retransmits,
            r.acks_sent,
            r.duplicates_dropped,
            r.parked_peak,
            r.suspect_sites,
            r.plan_nodes,
            r.shared_nodes,
            r.sharing_ratio,
            r.batch_ingest_events,
            r.arena_bytes,
            r.ring_full_spins
        );
    }
    let _ = writeln!(j, "  ]");
    let _ = writeln!(j, "}}");
    j
}

/// Pull `"field": <number>` out of the kernel object named `name`. The
/// baseline file is our own emission, so plain substring scanning is an
/// adequate parser — anything it can't find is treated as malformed.
fn extract(json: &str, name: &str, field: &str) -> Option<f64> {
    let obj = &json[json.find(&format!("\"name\": \"{name}\""))?..];
    let obj = &obj[..obj.find('}')?];
    let at = obj.find(&format!("\"{field}\":"))? + field.len() + 4;
    let rest = &obj[at..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn smoke(baseline_path: &str) -> i32 {
    let kernels = bench_kernels(200_000);
    let occ = occupancy_run("not_chronicle", true, 20_000);
    let json = render_json("smoke", &kernels, &[occ], &[]);
    std::fs::create_dir_all("target").ok();
    std::fs::write("target/BENCH_hotpath_smoke.json", &json).ok();
    print!("{json}");

    let Ok(baseline) = std::fs::read_to_string(baseline_path) else {
        eprintln!("smoke: FAIL — missing baseline {baseline_path}");
        return 1;
    };
    let mut failed = false;
    // Absolute ns are only comparable when the baseline was produced on a
    // machine with the same parallelism (a proxy for "the same class of
    // hardware"); on a mismatch only the machine-independent speedup
    // ratios below are enforced. Pre-schema baselines carry no stamp and
    // keep the old always-compare behaviour.
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let base_threads = {
        let at = baseline
            .find("\"threads\":")
            .map(|i| i + "\"threads\":".len());
        at.and_then(|i| {
            let rest = &baseline[i..];
            let end = rest.find([',', '\n']).unwrap_or(rest.len());
            rest[..end].trim().parse::<usize>().ok()
        })
    };
    let comparable = base_threads.is_none() || base_threads == Some(threads);
    if !comparable {
        eprintln!(
            "smoke: note — baseline ran on {} thread(s), this machine has {}; \
             skipping absolute-ns kernel comparisons",
            base_threads.unwrap(),
            threads
        );
    }
    for k in &kernels {
        let Some(base_fast) = extract(&baseline, k.name, "fast_ns") else {
            eprintln!(
                "smoke: FAIL — baseline is malformed (no fast_ns for {})",
                k.name
            );
            failed = true;
            continue;
        };
        if comparable && k.fast_ns > 2.0 * base_fast {
            eprintln!(
                "smoke: FAIL — {} regressed {:.2} ns → {:.2} ns (>2x)",
                k.name, base_fast, k.fast_ns
            );
            failed = true;
        }
    }
    // The committed artifact must still carry the headline: the
    // band-separated relation kernel at ≥2x over the naive scan.
    match extract(&baseline, "relation_band_separated_w4", "speedup") {
        Some(s) if s >= 2.0 => {}
        Some(s) => {
            eprintln!("smoke: FAIL — baseline band-separated speedup {s:.2} < 2x");
            failed = true;
        }
        None => {
            eprintln!("smoke: FAIL — baseline is malformed (no band-separated speedup)");
            failed = true;
        }
    }
    if failed {
        1
    } else {
        eprintln!("smoke: OK");
        0
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--smoke") {
        std::process::exit(smoke("BENCH_hotpath.json"));
    }

    eprintln!("E13 — hot-path kernels + buffer GC (full run)");
    let kernels = bench_kernels(2_000_000);
    let occupancy = vec![
        occupancy_run("not_chronicle", true, 1_000_000),
        // The no-GC NOT leg is small on purpose: dead guards make every
        // closer scan O(buffered²), which is part of what GC removes.
        occupancy_run("not_chronicle", false, 20_000),
        occupancy_run("any_unrestricted", true, 1_000_000),
        occupancy_run("any_unrestricted", false, 1_000_000),
    ];
    let latency = vec![(true, latency_run(true)), (false, latency_run(false))];
    let json = render_json("full", &kernels, &occupancy, &latency);
    std::fs::write("BENCH_hotpath.json", &json).expect("write BENCH_hotpath.json");
    print!("{json}");
    eprintln!("wrote BENCH_hotpath.json");
}
