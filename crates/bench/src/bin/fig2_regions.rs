//! E2 — Figure 2: the region grid around a composite timestamp.
//!
//! Regenerates the paper's 2-D picture for
//! `T(e) = {(Site3, 8, 81), (Site6, 7, 72)}`: the four lines at global
//! ticks 5, 7, 8, 9 and the classification of probes across the grid
//! (sites on the Y axis, global time on the X axis), rendered in ASCII.
//!
//! Run: `cargo run -p decs-bench --bin fig2_regions`

use decs_core::{classify_region, cts, Region, RegionMap};

fn glyph(r: Region) -> char {
    match r {
        Region::Before => '<',
        Region::WeakBefore => 'w',
        Region::Concurrent => '~',
        Region::WeakAfter => 'W',
        Region::After => '>',
        Region::Crossing => 'x',
    }
}

fn main() {
    let reference = cts(&[(3, 8, 81), (6, 7, 72)]);
    let map = RegionMap::new(reference.clone());
    println!("E2 / Figure 2 — regions around T(e) = {reference}\n");
    println!(
        "Line1 = {:?}  Line2 = {}  Line3 = {}  Line4 = {}",
        map.line1, map.line2, map.line3, map.line4
    );
    println!("  T(e1) <  T(e)  ⇔  at/before Line1");
    println!("  T(e1) ~  T(e)  ⇔  between Line2 and Line3");
    println!("  T(e)  <  T(e1) ⇔  at/after Line4");
    println!("  T(e1) ⪯̃ T(e)  ⇔  at/before Line3");
    println!("  T(e)  ⪯̃ T(e1) ⇔  at/after Line2\n");

    // The grid: probe singletons at each (site, global) cell.
    println!("        global →  0  1  2  3  4  5  6  7  8  9 10 11 12");
    for site in 1..=8u32 {
        let mut line = format!("  site {site}        ");
        for g in 0..=12u64 {
            let probe = cts(&[(site, g, g * 10 + 5)]);
            let r = classify_region(&reference, &probe);
            line.push_str(&format!(" {} ", glyph(r)));
        }
        let marker = match site {
            3 => "   ← member (s3, 8, 81)",
            6 => "   ← member (s6, 7, 72)",
            _ => "",
        };
        println!("{line}{marker}");
    }
    println!("\n  legend: '<' before   'w' weak-before-only   '~' concurrent");
    println!("          '>' after    'W' weak-after-only    'x' crossing\n");

    // Cross-check: the line-based classifier agrees with the exact one on
    // fresh sites.
    let mut disagreements = 0;
    for g in 0..=12u64 {
        let probe = cts(&[(9, g, g * 10)]);
        if map.classify_global(g) != classify_region(&reference, &probe) {
            disagreements += 1;
        }
    }
    println!("line-classifier vs exact relations on fresh sites: {disagreements} disagreements");
    assert_eq!(disagreements, 0);

    // The weak band (between Line1 and Line2) is where Theorem 5.3's
    // converse fails — show the witness.
    let witness = cts(&[(9, 6, 60)]);
    println!(
        "\nweak-band witness {witness}: ⪯̃ T(e) = {}, < T(e) = {}, ~ T(e) = {}",
        witness.weak_leq(&reference),
        witness.happens_before(&reference),
        witness.concurrent(&reference),
    );
    println!("  → ⪯̃ holds without < or ~ (see DESIGN.md, Theorem 5.3 finding).");
}
