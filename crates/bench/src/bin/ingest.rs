//! E18 — columnar batch ingestion (the struct-of-arrays hot path).
//!
//! Measures feed throughput of the columnar [`EventBatch`] path
//! (`CentralDetector::feed_columnar`: types, stamps and parameter handles
//! staged in parallel vectors, routed rows materialized once per batch)
//! against the per-event `feed_bare` oracle, on the E16 sharing workload
//! shape (16 `¬(b)[a, c]` definitions over private primitive triples —
//! `BENCH_sharing.json`'s `overlap_0` row) with watermark-driven buffer
//! GC **on** (the steady-state configuration every other engine path
//! runs; E16 measures the GC-off accumulation regime on purpose). On top
//! of the single-thread pair it emits a 1/2/4-worker scaling curve for
//! the columnar path over the lock-free SPSC pool (`enable_worker_pool_
//! exact`, so the curve is measured even when the host caps lower).
//!
//! Detections are hard-asserted identical between the oracle and every
//! columnar leg — a mismatch is a correctness bug, not a slow run.
//!
//! Run: `cargo run --release -p decs-bench --features parallel --bin
//! ingest` (full, writes `BENCH_ingest.json` in the current directory).
//! `--smoke` runs a quick pass, validates the committed
//! `BENCH_ingest.json` (malformed JSON, a single-thread columnar
//! throughput under the 0.2 Meps acceptance floor, or — on a comparable
//! machine — a >20% relative regression of the current build against the
//! committed baseline fails with a nonzero exit) and writes its own
//! results under `target/`.

use decs_snoop::{CentralDetector, CentralTime, Context, EventBatch, EventExpr as E, EventId};
use std::fmt::Write as _;
use std::time::Instant;

/// Definitions per configuration (the E16 shape).
const DEFS: usize = 16;

/// Rows staged per columnar batch. Large enough to amortize the per-call
/// clock advance and GC sweep, small enough to stay cache-resident.
const BATCH: usize = 1024;

fn primitives() -> Vec<String> {
    let mut names = Vec::new();
    for i in 0..DEFS {
        for k in 0..3 {
            names.push(format!("U{i}_{k}"));
        }
    }
    names
}

/// 16 private-triple `¬(b)[a, c]` definitions, buffer GC on; `workers >
/// 0` attaches an exact-sized pool (bypassing the available-parallelism
/// cap so the scaling curve is measured everywhere).
fn build(workers: usize) -> CentralDetector {
    let mut d = CentralDetector::plan();
    for n in primitives() {
        d.register(&n).unwrap();
    }
    for i in 0..DEFS {
        let (a, b, c) = (format!("U{i}_0"), format!("U{i}_1"), format!("U{i}_2"));
        d.define(
            &format!("D{i}"),
            &E::not(E::prim(&b), E::prim(&a), E::prim(&c)),
            Context::Chronicle,
        )
        .unwrap();
    }
    d.set_buffer_gc(true);
    if workers > 0 {
        d.enable_worker_pool_exact(workers);
    }
    d
}

/// The guard-heavy `[a, b, a, c]` drive pattern, round-robin over every
/// triple, as `(type index, tick)` rows. Type indices point into the
/// catalog-ordered primitive list.
fn row(i: u64) -> (usize, u64) {
    let triple = ((i / 4) as usize) % DEFS;
    let slot = [0usize, 1, 0, 2][(i % 4) as usize];
    (triple * 3 + slot, i)
}

/// Oracle: one `feed_bare` call per event. Returns (elapsed seconds,
/// detected occurrences in order).
fn drive_per_event(
    d: &mut CentralDetector,
    events: u64,
) -> (f64, Vec<decs_snoop::Occurrence<CentralTime>>) {
    let names = primitives();
    let mut out = Vec::new();
    let start = Instant::now();
    for i in 0..events {
        let (ty, tick) = row(i);
        out.extend(d.feed_bare(&names[ty], tick).unwrap());
    }
    (start.elapsed().as_secs_f64(), out)
}

/// Candidate: the same rows staged struct-of-arrays, `BATCH` at a time,
/// through `feed_columnar`. Timing includes the staging loop — that *is*
/// the ingest path a `Msg::Batch` decode feeds.
fn drive_columnar(
    d: &mut CentralDetector,
    events: u64,
) -> (f64, Vec<decs_snoop::Occurrence<CentralTime>>) {
    let tys: Vec<EventId> = primitives()
        .iter()
        .map(|n| d.catalog().lookup(n).unwrap())
        .collect();
    let mut batch = EventBatch::with_capacity(BATCH);
    let mut out = Vec::new();
    let start = Instant::now();
    let mut i = 0u64;
    while i < events {
        batch.clear();
        while i < events && batch.len() < BATCH {
            let (ty, tick) = row(i);
            batch.push_bare(tys[ty], CentralTime(tick));
            i += 1;
        }
        out.extend(d.feed_columnar(&batch).unwrap());
    }
    (start.elapsed().as_secs_f64(), out)
}

struct Row {
    name: String,
    workers: usize,
    meps: f64,
    detections: u64,
    ring_full_spins: u64,
}

/// Best-of-3 throughput for one leg (fresh detector per repetition —
/// feeding mutates operator state), hard-asserting detections against
/// the oracle's when one is supplied.
fn leg(
    name: &str,
    workers: usize,
    events: u64,
    columnar: bool,
    oracle: Option<&[decs_snoop::Occurrence<CentralTime>]>,
) -> (Row, Vec<decs_snoop::Occurrence<CentralTime>>) {
    let mut best = 0.0f64;
    let mut det = Vec::new();
    let mut spins = 0;
    for _ in 0..3 {
        let mut d = build(workers);
        let (secs, out) = if columnar {
            drive_columnar(&mut d, events)
        } else {
            drive_per_event(&mut d, events)
        };
        best = best.max(events as f64 / secs / 1e6);
        spins = d.ring_full_spins();
        det = out;
    }
    if let Some(oracle) = oracle {
        assert_eq!(
            det.as_slice(),
            oracle,
            "columnar leg `{name}` diverged from the per-event oracle"
        );
    }
    (
        Row {
            name: name.to_string(),
            workers,
            meps: best,
            detections: det.len() as u64,
            ring_full_spins: spins,
        },
        det,
    )
}

fn run_all(events: u64) -> Vec<Row> {
    let (oracle_row, oracle) = leg("per_event", 0, events, false, None);
    let mut rows = vec![oracle_row];
    let (serial, _) = leg("columnar", 0, events, true, Some(&oracle));
    rows.push(serial);
    for w in [1usize, 2, 4] {
        let (r, _) = leg(&format!("columnar_w{w}"), w, events, true, Some(&oracle));
        rows.push(r);
    }
    rows
}

fn render_json(mode: &str, events: u64, rows: &[Row]) -> String {
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let base = rows[0].meps;
    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"bench\": \"ingest\",");
    let _ = writeln!(j, "  \"schema\": 2,");
    let _ = writeln!(j, "  \"mode\": \"{mode}\",");
    let _ = writeln!(j, "  \"threads\": {threads},");
    let _ = writeln!(j, "  \"defs\": {DEFS},");
    let _ = writeln!(j, "  \"batch\": {BATCH},");
    let _ = writeln!(j, "  \"events\": {events},");
    let _ = writeln!(j, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        // Schema 2: every row carries its own threads/schema stamp, so a
        // consumer holding a single row out of context (or a future
        // multi-machine merge of rows) can still decide comparability.
        let _ = writeln!(
            j,
            "    {{\"name\": \"{}\", \"schema\": 2, \"threads\": {threads}, \
             \"workers\": {}, \"meps\": {:.3}, \
             \"speedup_vs_per_event\": {:.2}, \"detections\": {}, \
             \"ring_full_spins\": {}}}{comma}",
            r.name,
            r.workers,
            r.meps,
            r.meps / base,
            r.detections,
            r.ring_full_spins
        );
    }
    let _ = writeln!(j, "  ]");
    let _ = writeln!(j, "}}");
    j
}

/// Pull `"field": <number>` out of the row object named `name` (same
/// substring scanner as the other bench smokes — the baseline is our own
/// emission, so anything it can't find is malformed).
fn extract(json: &str, name: &str, field: &str) -> Option<f64> {
    let obj = &json[json.find(&format!("\"name\": \"{name}\""))?..];
    let obj = &obj[..obj.find('}')?];
    let at = obj.find(&format!("\"{field}\":"))? + field.len() + 4;
    let rest = &obj[at..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn stamped_threads(json: &str) -> Option<usize> {
    let at = json.find("\"threads\":")? + "\"threads\":".len();
    let rest = &json[at..];
    let end = rest.find([',', '\n']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn smoke(baseline_path: &str) -> i32 {
    // A quick pass still runs every leg — `leg` hard-asserts columnar ==
    // per-event detections, which is the smoke's real correctness gate.
    let events = 40_000;
    let rows = run_all(events);
    let json = render_json("smoke", events, &rows);
    std::fs::create_dir_all("target").ok();
    std::fs::write("target/BENCH_ingest_smoke.json", &json).ok();
    print!("{json}");

    let Ok(baseline) = std::fs::read_to_string(baseline_path) else {
        eprintln!("smoke: FAIL — missing baseline {baseline_path}");
        return 1;
    };
    let mut failed = false;
    for name in [
        "per_event",
        "columnar",
        "columnar_w1",
        "columnar_w2",
        "columnar_w4",
    ] {
        if extract(&baseline, name, "meps").is_none() {
            eprintln!("smoke: FAIL — baseline is malformed (no {name} row)");
            failed = true;
        }
    }
    // The committed artifact must carry the acceptance headline: the
    // single-thread columnar path at ≥0.2 Meps (10x the E16 overlap_0
    // per-event baseline).
    match extract(&baseline, "columnar", "meps") {
        Some(m) if m >= 0.2 => {}
        Some(m) => {
            eprintln!("smoke: FAIL — baseline columnar throughput {m:.3} Meps < 0.2 Meps floor");
            failed = true;
        }
        None => {} // already reported as malformed above
    }
    // Absolute Meps are only comparable on the same class of machine; the
    // thread stamp is the proxy, matching the hotpath smoke's policy.
    // Schema-2 baselines stamp threads on every row — prefer the row-level
    // stamp of the row actually compared, falling back to the top-level
    // stamp for schema-1 artifacts.
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let baseline_threads = extract(&baseline, "columnar", "threads")
        .map(|t| t as usize)
        .or_else(|| stamped_threads(&baseline));
    let comparable = baseline_threads == Some(threads);
    if comparable {
        if let Some(base) = extract(&baseline, "columnar", "meps") {
            let now = extract(&json, "columnar", "meps").unwrap_or(0.0);
            if now < 0.8 * base {
                eprintln!(
                    "smoke: FAIL — columnar throughput regressed {base:.3} Meps → \
                     {now:.3} Meps (>20%)"
                );
                failed = true;
            }
        }
    } else {
        eprintln!(
            "smoke: note — baseline ran on a different machine class; \
             skipping the 20% regression comparison"
        );
    }
    // The 4-worker scaling gate arms only when the baseline machine had
    // real parallelism to scale into.
    if let Some(bt) = baseline_threads {
        if bt >= 4 {
            match extract(&baseline, "columnar_w4", "speedup_vs_per_event") {
                Some(s) if s >= 2.0 => {}
                Some(s) => {
                    eprintln!(
                        "smoke: FAIL — baseline 4-worker speedup {s:.2} < 2x on a \
                         {bt}-thread machine"
                    );
                    failed = true;
                }
                None => {}
            }
        }
    }
    if failed {
        1
    } else {
        eprintln!("smoke: OK");
        0
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--smoke") {
        std::process::exit(smoke("BENCH_ingest.json"));
    }

    eprintln!("E18 — columnar batch ingestion (full run)");
    let events = 400_000;
    let rows = run_all(events);
    for r in &rows {
        eprintln!(
            "{:>12}: {:.3} Mev/s ({} detections, {} ring-full spins)",
            r.name, r.meps, r.detections, r.ring_full_spins
        );
    }
    let json = render_json("full", events, &rows);
    std::fs::write("BENCH_ingest.json", &json).expect("write BENCH_ingest.json");
    print!("{json}");
    eprintln!("wrote BENCH_ingest.json");
}
