//! E10 (extension) — scalability with the number of sites.
//!
//! Fixed aggregate event rate, growing site count: how do simulation
//! throughput, message counts, stability-buffer occupancy, and detections
//! behave? The watermark rule needs *every* site's heartbeat, so the
//! stability latency is governed by the slowest site — flat in sites —
//! while message volume grows linearly (heartbeats dominate).
//!
//! Run: `cargo run -p decs-bench --release --bin scalability`

use decs_bench::print_table;
use decs_chronos::{Granularity, Nanos};
use decs_distrib::{Engine, EngineConfig};
use decs_simnet::ScenarioBuilder;
use decs_snoop::{Context, EventExpr as E};
use decs_workloads::{ArrivalModel, WorkloadSpec};
use std::time::Instant;

fn main() {
    println!("E10 — scalability vs number of sites (fixed aggregate rate)\n");
    let mut rows = Vec::new();
    for sites in [1u32, 2, 4, 8, 16, 32] {
        let scenario = ScenarioBuilder::new(sites, 2024)
            .max_offset_ns(1_000_000)
            .global_granularity(Granularity::per_second(10).unwrap())
            .build()
            .unwrap();
        let mut engine = Engine::new(
            &scenario,
            EngineConfig::default(),
            &["A", "B"],
            &[(
                "X",
                E::seq(E::prim("A"), E::prim("B")),
                Context::Chronicle,
            )],
        )
        .unwrap();
        // ~2000 events/s aggregate over 2 s, split across sites.
        let spec = WorkloadSpec {
            sites,
            duration: Nanos::from_secs(2),
            arrivals: ArrivalModel::Poisson {
                mean_ns: 500_000 * u64::from(sites),
            },
            event_types: 2,
            seed: 5,
        };
        let trace = spec.generate();
        let names = ["A", "B"];
        for inj in &trace {
            engine
                .inject(inj.at, inj.site, names[inj.event], inj.values.clone())
                .unwrap();
        }
        let wall = Instant::now();
        let detections = engine.run_for(Nanos::from_secs(5));
        let elapsed = wall.elapsed().as_secs_f64();
        let m = engine.metrics();
        rows.push(vec![
            format!("{sites}"),
            format!("{}", trace.len()),
            format!("{}", m.events_released),
            format!("{}", m.heartbeats_received),
            format!("{}", detections.len()),
            format!("{}", m.max_buffered),
            format!("{:.1}", m.mean_stability_latency_ns() as f64 / 1e6),
            format!("{:.0}", trace.len() as f64 / elapsed),
        ]);
    }
    print_table(
        &[
            "sites",
            "events",
            "released",
            "heartbeats",
            "detections",
            "max buf",
            "stab lat(ms)",
            "events/s(wall)",
        ],
        &[6, 8, 9, 11, 11, 8, 13, 15],
        &rows,
    );
    println!("\nexpected shape: heartbeat volume ∝ sites; stability latency ≈ flat");
    println!("(set by g_g + heartbeat, not by the site count); wall-clock");
    println!("throughput degrades mildly with the extra message load.");
}
