//! E10 (extension) — scalability with the number of sites, and with the
//! batched notification protocol.
//!
//! Fixed aggregate event rate, growing site count: how do simulation
//! throughput, message counts, stability-buffer occupancy, and detections
//! behave? The watermark rule needs *every* site's heartbeat, so the
//! stability latency is governed by the slowest site — flat in sites —
//! while message volume grows linearly (heartbeats dominate). Batching
//! coalesces each site's interval of events plus the watermark into one
//! message, collapsing that per-message coordinator work.
//!
//! Run: `cargo run -p decs-bench --release --bin scalability [batch_ms]`
//! where `batch_ms` is the batch flush interval in milliseconds for the
//! site sweep (default 0 = per-event transport). A second table sweeps the
//! batch interval at a fixed site count regardless of the argument.

use decs_bench::print_table;
use decs_chronos::{Granularity, Nanos};
use decs_distrib::{Engine, EngineConfig, Metrics};
use decs_simnet::ScenarioBuilder;
use decs_snoop::{Context, EventExpr as E};
use decs_workloads::{ArrivalModel, WorkloadSpec};
use std::time::Instant;

struct RunOutcome {
    events: usize,
    detections: usize,
    metrics: Metrics,
    elapsed: f64,
}

fn run(sites: u32, batch_ms: u64) -> RunOutcome {
    let scenario = ScenarioBuilder::new(sites, 2024)
        .max_offset_ns(1_000_000)
        .global_granularity(Granularity::per_second(10).unwrap())
        .build()
        .unwrap();
    let mut engine = Engine::new(
        &scenario,
        EngineConfig {
            batch_interval: Nanos::from_millis(batch_ms),
            ..EngineConfig::default()
        },
        &["A", "B"],
        &[("X", E::seq(E::prim("A"), E::prim("B")), Context::Chronicle)],
    )
    .unwrap();
    // ~2000 events/s aggregate over 2 s, split across sites.
    let spec = WorkloadSpec {
        sites,
        duration: Nanos::from_secs(2),
        arrivals: ArrivalModel::Poisson {
            mean_ns: 500_000 * u64::from(sites),
        },
        event_types: 2,
        seed: 5,
    };
    let trace = spec.generate();
    let names = ["A", "B"];
    for inj in &trace {
        engine
            .inject(inj.at, inj.site, names[inj.event], inj.values.clone())
            .unwrap();
    }
    let wall = Instant::now();
    let detections = engine.run_for(Nanos::from_secs(5));
    RunOutcome {
        events: trace.len(),
        detections: detections.len(),
        metrics: engine.metrics(),
        elapsed: wall.elapsed().as_secs_f64(),
    }
}

fn main() {
    let batch_ms: u64 = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("batch_ms must be a number"))
        .unwrap_or(0);
    println!("E10 — scalability vs number of sites (fixed aggregate rate)");
    println!("site transport: {}\n", transport(batch_ms));
    let mut rows = Vec::new();
    for sites in [1u32, 2, 4, 8, 16, 32] {
        let r = run(sites, batch_ms);
        let m = &r.metrics;
        rows.push(vec![
            format!("{sites}"),
            format!("{}", r.events),
            format!("{}", m.events_released),
            format!("{}", m.messages_processed),
            format!("{}", m.batches_received),
            format!("{}", r.detections),
            format!("{}", m.max_buffered),
            format!("{:.1}", m.mean_stability_latency_ns() as f64 / 1e6),
            format!("{:.0}", r.events as f64 / r.elapsed),
        ]);
    }
    print_table(
        &[
            "sites",
            "events",
            "released",
            "msgs proc",
            "batches",
            "detections",
            "max buf",
            "stab lat(ms)",
            "events/s(wall)",
        ],
        &[6, 8, 9, 10, 8, 11, 8, 13, 15],
        &rows,
    );

    // Second sweep: fixed sites, growing batch interval. The heartbeat
    // interval is 20 ms, so batch_ms = 20 is the like-for-like comparison:
    // same watermark cadence, events riding along for free.
    let sites = 8u32;
    println!("\nbatch-interval sweep at {sites} sites (heartbeat = 20 ms)\n");
    let baseline = run(sites, 0);
    let mut rows = Vec::new();
    for bms in [0u64, 5, 10, 20, 50, 100] {
        let r = if bms == 0 {
            run(sites, 0)
        } else {
            run(sites, bms)
        };
        let m = &r.metrics;
        let reduction =
            baseline.metrics.messages_processed as f64 / m.messages_processed.max(1) as f64;
        rows.push(vec![
            format!("{}", bms),
            format!("{}", m.messages_processed),
            format!("{}", m.batches_received),
            format!("{}", m.batch_size_max),
            format!("{:.2}x", reduction),
            format!("{}", r.detections),
            format!("{:.1}", m.mean_stability_latency_ns() as f64 / 1e6),
        ]);
    }
    print_table(
        &[
            "batch(ms)",
            "msgs proc",
            "batches",
            "max batch",
            "msg reduction",
            "detections",
            "stab lat(ms)",
        ],
        &[10, 10, 8, 10, 14, 11, 13],
        &rows,
    );
    println!("\nexpected shape: per-event messages ≈ events + heartbeats; batching");
    println!("folds both into one message per site per interval, so at");
    println!("batch = heartbeat the coordinator processes ≥2x fewer messages");
    println!("with identical detections; stability latency grows with the");
    println!("batch interval (events wait for the next flush).");
}

fn transport(batch_ms: u64) -> String {
    if batch_ms == 0 {
        "per-event (Msg::Event + Msg::Heartbeat)".to_string()
    } else {
        format!("batched (Msg::Batch every {batch_ms} ms)")
    }
}
