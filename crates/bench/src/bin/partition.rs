//! E20 — the partitioned detection plane: throughput and cross-partition
//! forwarding cost as a function of the coordinator replica count.
//!
//! One fixed seeded workload runs through the engine at N = 1 (the
//! classic single-coordinator plane) and N = 2, 4 coordinator replicas
//! (definitions rendezvous-partitioned, announcements
//! subscription-routed, cross-partition composites forwarded replica →
//! replica). Every multi-replica row **hard-asserts** that its detection
//! stream is bit-identical to the N = 1 run — the partition-invariance
//! headline, here measured rather than only asserted — and records the
//! wall-clock drive time, the per-replica announcement fan-in, and the
//! cross-partition forward ratio (relayed cascade events per routed
//! announcement received).
//!
//! Two throughput columns, two deployment models. `keps` is this
//! process's single-threaded drive rate: the simulation steps replicas
//! sequentially, so it *falls* as N grows and message volume rises.
//! `agg_keps` is the aggregate ingest throughput of the deployment the
//! partitioning exists for — one process per replica, all running
//! concurrently — computed as events / max per-replica handler time
//! (`Engine::replica_busy_ns`). Because announcements are
//! subscription-routed rather than broadcast, the busiest replica's
//! share of the work shrinks with N and `agg_keps` rises; the smoke gate
//! hard-asserts that scaling on the committed baseline.
//!
//! Run: `cargo run --release -p decs-bench --bin partition` (full,
//! writes `BENCH_partition.json` in the current directory).
//! `--smoke` runs a reduced workload, hard-asserts detection equality at
//! every replica count, and validates the committed
//! `BENCH_partition.json` (malformed JSON or a diverged row fail with a
//! nonzero exit).

use decs_chronos::{Granularity, Nanos};
use decs_core::CompositeTimestamp;
use decs_distrib::{Engine, EngineConfig};
use decs_simnet::{Scenario, ScenarioBuilder, SplitMix64};
use decs_snoop::{Context, EventExpr as E, Occurrence};
use std::fmt::Write as _;
use std::time::Instant;

const SITES: u32 = 4;
const SEED: u64 = 42;
const REPLICAS: [usize; 3] = [1, 2, 4];

struct Row {
    replicas: usize,
    detections: usize,
    match_single: bool,
    events: usize,
    wall_ms: f64,
    keps: f64,
    /// Handler time of the busiest replica, ms — the critical path a
    /// parallel one-process-per-replica deployment pays for this traffic.
    max_busy_ms: f64,
    /// Aggregate routed-path ingest throughput: events / max_busy — what
    /// the plane sustains when replicas run concurrently and each only
    /// processes its subscribed share of the announcements.
    agg_keps: f64,
    routed_received: u64,
    relay_events: u64,
    relays_sent: u64,
    forward_ratio: f64,
}

type Keys = Vec<(String, Occurrence<CompositeTimestamp>)>;

fn scenario() -> Scenario {
    ScenarioBuilder::new(SITES, SEED)
        .global_granularity(Granularity::per_second(10).unwrap())
        .max_offset_ns(1_000_000)
        .build()
        .unwrap()
}

/// Independent per-stream definitions riding alongside the chained core:
/// each consumes its own two-primitive alphabet, so subscription routing
/// delivers its announcements to exactly one replica. This is the
/// partitioning story — many mostly-independent definitions — and what
/// makes the busiest replica's share of the work shrink as N grows.
const USERS: usize = 24;

/// Definitions that chain across partitions — Y consumes X, Z consumes Y,
/// so rendezvous placement forces replica → replica forwarding — plus
/// `USERS` independent per-stream sequences over a disjoint alphabet.
fn defs() -> Vec<(String, E, Context)> {
    let mut d = vec![
        (
            "X".to_owned(),
            E::seq(E::prim("A"), E::prim("B")),
            Context::Chronicle,
        ),
        (
            "Y".to_owned(),
            E::and(E::prim("X"), E::prim("C")),
            Context::Recent,
        ),
        (
            "Z".to_owned(),
            E::or(E::prim("Y"), E::seq(E::prim("C"), E::prim("D"))),
            Context::Chronicle,
        ),
        (
            "W".to_owned(),
            E::and(E::prim("X"), E::prim("D")),
            Context::Chronicle,
        ),
    ];
    for u in 0..USERS {
        let ctx = if u % 2 == 0 {
            Context::Chronicle
        } else {
            Context::Recent
        };
        d.push((
            format!("U{u}"),
            E::seq(E::prim(&user_prim(u, 0)), E::prim(&user_prim(u, 1))),
            ctx,
        ));
    }
    d
}

fn user_prim(user: usize, half: usize) -> String {
    format!("P{user}_{half}")
}

fn primitives() -> Vec<String> {
    let mut p: Vec<String> = ["A", "B", "C", "D"].map(str::to_owned).to_vec();
    for u in 0..USERS {
        p.push(user_prim(u, 0));
        p.push(user_prim(u, 1));
    }
    p
}

/// Deterministic workload shared by every replica count: `events`
/// injections over the first `span_ms` milliseconds on random sites.
/// Roughly a quarter of the traffic hits the chained A–D core (feeding
/// the cross-partition forward path); the rest is spread across the
/// per-stream alphabets (feeding the routed scaling path).
fn workload(events: usize, span_ms: u64) -> Vec<(u64, u32, String)> {
    let mut rng = SplitMix64::new(0xE18_4EC0);
    (0..events)
        .map(|_| {
            let ms = rng.next_range(10, span_ms);
            let site = rng.next_below(u64::from(SITES)) as u32;
            let ev = if rng.next_below(4) == 0 {
                match rng.next_below(4) {
                    0 => "A".to_owned(),
                    1 => "B".to_owned(),
                    2 => "C".to_owned(),
                    _ => "D".to_owned(),
                }
            } else {
                let u = rng.next_below(USERS as u64) as usize;
                user_prim(u, rng.next_below(2) as usize)
            };
            (ms, site, ev)
        })
        .collect()
}

fn keys(det: Vec<decs_distrib::Detection>) -> Keys {
    det.into_iter().map(|d| (d.name, d.occ)).collect()
}

fn run_case(
    replicas: usize,
    w: &[(u64, u32, String)],
    horizon_secs: u64,
    single: Option<&Keys>,
) -> (Row, Keys) {
    let config = EngineConfig {
        coordinator_replicas: replicas,
        ..EngineConfig::default()
    };
    let d = defs();
    let d: Vec<(&str, E, Context)> = d.iter().map(|(n, e, c)| (n.as_str(), e.clone(), *c)).collect();
    let prims = primitives();
    let prims: Vec<&str> = prims.iter().map(String::as_str).collect();
    let mut e = Engine::new(&scenario(), config, &prims, &d).unwrap();
    for (ms, site, ev) in w {
        e.inject(Nanos::from_millis(*ms), *site, ev, vec![]).unwrap();
    }
    let start = Instant::now();
    let det = keys(e.run_until(Nanos::from_secs(horizon_secs)));
    let wall = start.elapsed();
    let m = e.metrics();
    let max_busy_ns = e.replica_busy_ns().into_iter().max().unwrap_or(0).max(1);
    let row = Row {
        replicas,
        detections: det.len(),
        match_single: single.is_none_or(|s| det == *s),
        events: w.len(),
        wall_ms: wall.as_secs_f64() * 1e3,
        keps: w.len() as f64 / wall.as_secs_f64() / 1e3,
        max_busy_ms: max_busy_ns as f64 / 1e6,
        agg_keps: w.len() as f64 / (max_busy_ns as f64 / 1e9) / 1e3,
        routed_received: m.routed_received,
        relay_events: m.relay_events,
        relays_sent: m.relays_sent,
        forward_ratio: if m.events_received == 0 {
            0.0
        } else {
            m.relay_events as f64 / m.events_received as f64
        },
    };
    (row, det)
}

fn run_matrix(events: usize, span_ms: u64, horizon_secs: u64) -> Vec<Row> {
    let w = workload(events, span_ms);
    let mut rows = Vec::new();
    let mut single: Option<Keys> = None;
    for &replicas in &REPLICAS {
        let (row, det) = run_case(replicas, &w, horizon_secs, single.as_ref());
        assert!(
            row.match_single,
            "N = {replicas} detections diverged from N = 1"
        );
        rows.push(row);
        single.get_or_insert(det);
    }
    rows
}

fn render_json(mode: &str, rows: &[Row]) -> String {
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"bench\": \"partition\",");
    let _ = writeln!(j, "  \"schema\": 2,");
    let _ = writeln!(j, "  \"mode\": \"{mode}\",");
    let _ = writeln!(j, "  \"threads\": {threads},");
    let _ = writeln!(j, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            j,
            "    {{\"replicas\": {}, \"detections\": {}, \"match_single\": {}, \
             \"events\": {}, \"wall_ms\": {:.1}, \"keps\": {:.1}, \
             \"max_busy_ms\": {:.2}, \"agg_keps\": {:.1}, \
             \"routed_received\": {}, \"relay_events\": {}, \"relays_sent\": {}, \
             \"forward_ratio\": {:.4}}}{comma}",
            r.replicas,
            r.detections,
            r.match_single,
            r.events,
            r.wall_ms,
            r.keps,
            r.max_busy_ms,
            r.agg_keps,
            r.routed_received,
            r.relay_events,
            r.relays_sent,
            r.forward_ratio
        );
    }
    let _ = writeln!(j, "  ]");
    let _ = writeln!(j, "}}");
    j
}

/// Pull `"field": <value>` out of the row with the given replica count.
/// The baseline is our own emission, so substring scanning is an
/// adequate parser — anything it can't find is treated as malformed.
fn extract<'a>(json: &'a str, replicas: usize, field: &str) -> Option<&'a str> {
    let obj = &json[json.find(&format!("\"replicas\": {replicas},"))?..];
    let obj = &obj[..obj.find('}')?];
    let at = obj.find(&format!("\"{field}\":"))? + field.len() + 4;
    let rest = &obj[at..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

fn check_rows(rows: &[Row]) -> bool {
    let mut failed = false;
    for r in rows {
        if !r.match_single {
            eprintln!("FAIL — N = {} detections diverged from N = 1", r.replicas);
            failed = true;
        }
        if r.replicas > 1 && r.relay_events == 0 {
            eprintln!(
                "FAIL — N = {} forwarded nothing across partitions (plan not chained?)",
                r.replicas
            );
            failed = true;
        }
        if r.replicas > 1 && r.routed_received == 0 {
            eprintln!("FAIL — N = {} received no routed announcements", r.replicas);
            failed = true;
        }
        if r.detections == 0 {
            eprintln!("FAIL — N = {} detected nothing", r.replicas);
            failed = true;
        }
    }
    failed
}

fn smoke(baseline_path: &str) -> i32 {
    let rows = run_matrix(400, 3_000, 16);
    let json = render_json("smoke", &rows);
    std::fs::create_dir_all("target").ok();
    std::fs::write("target/BENCH_partition_smoke.json", &json).ok();
    print!("{json}");

    let mut failed = check_rows(&rows);

    let Ok(baseline) = std::fs::read_to_string(baseline_path) else {
        eprintln!("smoke: FAIL — missing baseline {baseline_path}");
        return 1;
    };
    for &replicas in &REPLICAS {
        match extract(&baseline, replicas, "match_single") {
            Some("true") => {}
            Some(v) => {
                eprintln!("smoke: FAIL — baseline N = {replicas} has match_single = {v}");
                failed = true;
            }
            None => {
                eprintln!("smoke: FAIL — baseline is malformed (no row for N = {replicas})");
                failed = true;
            }
        }
    }
    match extract(&baseline, 4, "relay_events").and_then(|v| v.parse::<u64>().ok()) {
        Some(n) if n > 0 => {}
        _ => {
            eprintln!("smoke: FAIL — baseline N = 4 forwarded nothing across partitions");
            failed = true;
        }
    }
    // The scaling headline: on the routed (non-broadcast) path the busiest
    // replica processes a shrinking share of the announcements, so the
    // aggregate ingest throughput of a parallel deployment must *rise*
    // with the replica count in the committed full-run baseline.
    let agg = |r| extract(&baseline, r, "agg_keps").and_then(|v| v.parse::<f64>().ok());
    match (agg(1), agg(4)) {
        (Some(a1), Some(a4)) if a4 > a1 => {}
        (Some(a1), Some(a4)) => {
            eprintln!(
                "smoke: FAIL — baseline aggregate throughput does not scale \
                 with replicas (N = 1: {a1:.1} keps, N = 4: {a4:.1} keps)"
            );
            failed = true;
        }
        _ => {
            eprintln!("smoke: FAIL — baseline is malformed (missing agg_keps)");
            failed = true;
        }
    }
    if failed {
        1
    } else {
        eprintln!("smoke: OK");
        0
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--smoke") {
        std::process::exit(smoke("BENCH_partition.json"));
    }

    eprintln!("E20 — partitioned plane throughput vs replica count (full run)");
    let rows = run_matrix(24_000, 20_000, 30);
    assert!(!check_rows(&rows), "full run failed its invariants");
    let json = render_json("full", &rows);
    std::fs::write("BENCH_partition.json", &json).expect("write BENCH_partition.json");
    print!("{json}");
    eprintln!("wrote BENCH_partition.json");
}
