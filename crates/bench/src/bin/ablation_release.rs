//! E11 (ablation) — what the watermark stability rule buys.
//!
//! DESIGN.md calls out the release policy as the engine's key design
//! choice. This ablation runs the *same* workload through the engine under
//! the `Stable` policy (watermark-gated, canonical order) and the
//! `Immediate` policy (feed on arrival), across a sweep of link jitter
//! settings, and measures:
//!
//! * detection-set divergence between network conditions (Stable must be
//!   0 by construction; Immediate drifts with timing);
//! * detections lost/ghosted by arrival-order processing relative to the
//!   stable reference;
//! * the latency advantage Immediate buys — the price/benefit trade.
//!
//! Run: `cargo run -p decs-bench --release --bin ablation_release`

use decs_bench::print_table;
use decs_chronos::{Granularity, Nanos};
use decs_distrib::{Engine, EngineConfig, ReleasePolicy};
use decs_simnet::{LinkConfig, ScenarioBuilder};
use decs_snoop::{Context, EventExpr as E};
use decs_workloads::{ArrivalModel, WorkloadSpec};

fn detections(
    policy: ReleasePolicy,
    link: LinkConfig,
    trace: &[decs_workloads::Injection],
) -> (Vec<(String, String)>, f64) {
    let scenario = ScenarioBuilder::new(4, 404)
        .max_offset_ns(1_000_000)
        .global_granularity(Granularity::per_second(10).unwrap())
        .build()
        .unwrap();
    let mut e = Engine::new(
        &scenario,
        EngineConfig {
            release_policy: policy,
            ..EngineConfig::default()
        },
        &["A", "B"],
        &[("X", E::seq(E::prim("A"), E::prim("B")), Context::Chronicle)],
    )
    .unwrap();
    for s in 0..4 {
        e.set_link(s, link);
    }
    let names = ["A", "B"];
    for inj in trace {
        e.inject(inj.at, inj.site, names[inj.event], inj.values.clone())
            .unwrap();
    }
    let det = e.run_for(Nanos::from_secs(8));
    let lat = e.metrics().mean_stability_latency_ns() as f64 / 1e6;
    (
        det.into_iter()
            .map(|d| (d.name, d.occ.time.to_string()))
            .collect(),
        lat,
    )
}

fn main() {
    println!("E11 — ablation: watermark stability vs immediate release\n");
    let trace = WorkloadSpec {
        sites: 4,
        duration: Nanos::from_secs(3),
        arrivals: ArrivalModel::Poisson {
            mean_ns: 60_000_000,
        },
        event_types: 2,
        seed: 17,
    }
    .generate();
    println!(
        "workload: {} events over 3 s on 4 sites (g_g = 100 ms)\n",
        trace.len()
    );

    let links = [
        (
            "calm (0.1ms ±0)",
            LinkConfig {
                base_latency_ns: 100_000,
                jitter_ns: 0,
                fifo: true,
                ..LinkConfig::lan()
            },
        ),
        ("LAN (0.5ms ±0.2)", LinkConfig::lan()),
        ("WAN (40ms ±10)", LinkConfig::wan()),
        (
            "hostile (50ms ±49)",
            LinkConfig {
                base_latency_ns: 50_000_000,
                jitter_ns: 49_000_000,
                fifo: false,
                ..LinkConfig::lan()
            },
        ),
    ];

    // Reference: stable policy under the calm network.
    let (reference, _) = detections(ReleasePolicy::Stable, links[0].1, &trace);

    let mut rows = Vec::new();
    for (label, link) in links {
        let (stable, stable_lat) = detections(ReleasePolicy::Stable, link, &trace);
        let (immediate, _) = detections(ReleasePolicy::Immediate, link, &trace);
        let stable_div = if stable == reference { "0" } else { "≠" };
        let missing = reference.iter().filter(|d| !immediate.contains(d)).count();
        let ghosts = immediate.iter().filter(|d| !reference.contains(d)).count();
        rows.push(vec![
            label.to_string(),
            format!("{}", stable.len()),
            stable_div.to_string(),
            format!("{:.1}", stable_lat),
            format!("{}", immediate.len()),
            format!("{missing}"),
            format!("{ghosts}"),
        ]);
    }
    print_table(
        &[
            "network",
            "stable det",
            "stable divergence",
            "stable lat(ms)",
            "immediate det",
            "missing",
            "ghosts",
        ],
        &[20, 11, 18, 15, 14, 8, 7],
        &rows,
    );
    println!("\nreading: 'missing' = reference detections the immediate policy loses");
    println!("(terminator processed before its initiator arrived); 'ghosts' =");
    println!("pairings that differ from the canonical ones. The stable policy is");
    println!("identical across all four networks — that invariance is what the");
    println!("watermark machinery buys, at the cost of its latency column.");
}
