//! E3 — Section 5.1's restrictiveness examples, evaluated under every
//! candidate ordering.
//!
//! Run: `cargo run -p decs-bench --bin ex_orderings`

use decs_bench::print_table;
use decs_core::alt::Candidate;
use decs_core::{pts, RawTimestampSet};

fn raw(t: &[(u32, u64, u64)]) -> RawTimestampSet {
    RawTimestampSet::new(t.iter().map(|&(s, g, l)| pts(s, g, l)))
}

fn main() {
    println!("E3 / Section 5.1 — candidate orderings on the paper's examples\n");

    let cases: Vec<(&str, RawTimestampSet, RawTimestampSet)> = vec![
        (
            "ex.1: {(s1,8,80),(s2,7,70)} vs {(s3,9,90)}",
            raw(&[(1, 8, 80), (2, 7, 70)]),
            raw(&[(3, 9, 90)]),
        ),
        (
            "ex.2: {(s1,8,80),(s2,7,70)} vs {(s1,8,81),(s2,7,71)}",
            raw(&[(1, 8, 80), (2, 7, 70)]),
            raw(&[(1, 8, 81), (2, 7, 71)]),
        ),
        (
            "∀∀ case: {(s1,1,10),(s2,1,11)} vs {(s3,5,50),(s4,6,60)}",
            raw(&[(1, 1, 10), (2, 1, 11)]),
            raw(&[(3, 5, 50), (4, 6, 60)]),
        ),
    ];

    let header: Vec<&str> = std::iter::once("pair")
        .chain(Candidate::ALL.iter().map(|c| c.name()))
        .collect();
    let widths = vec![55, 14, 14, 14, 14, 14, 16];
    let mut rows = Vec::new();
    for (label, a, b) in &cases {
        let mut cells = vec![(*label).to_string()];
        for cand in Candidate::ALL {
            cells.push(if cand.eval(a, b) { "yes" } else { "no" }.to_string());
        }
        rows.push(cells);
    }
    print_table(&header, &widths, &rows);

    println!("\nPaper's claims, checked:");
    println!("  ex.1 satisfies <_p but not <_p2 (∀∀)  — too restricted");
    println!("  ex.2 satisfies <_p but not <_p3 (min) — too restricted");
    assert!(Candidate::ForallExistsBack.eval(&cases[0].1, &cases[0].2));
    assert!(!Candidate::ForallForall.eval(&cases[0].1, &cases[0].2));
    assert!(Candidate::ForallExistsBack.eval(&cases[1].1, &cases[1].2));
    assert!(!Candidate::MinAnchored.eval(&cases[1].1, &cases[1].2));
}
