//! E17 — durability: crash-recovery cost as a function of the snapshot
//! interval.
//!
//! One fixed seeded workload runs through the durable engine; the
//! coordinator is killed at a fixed mid-run point and recovered from its
//! WAL + latest snapshot. The sweep varies the snapshot interval (in
//! watermark ticks; `0` rows mean snapshots disabled, i.e. recovery
//! replays the whole log). Every row records the WAL volume at the kill
//! point, how many records replay had to re-consume, the wall-clock
//! recovery time, and whether the post-recovery detections are
//! **bit-for-bit identical** to an uninterrupted, durability-off run —
//! the replay-equivalence headline, here measured rather than only
//! asserted.
//!
//! Run: `cargo run --release -p decs-bench --bin recovery` (full, writes
//! `BENCH_recovery.json` in the current directory).
//! `--smoke` runs a reduced workload, hard-asserts detection equality at
//! every interval, and validates the committed `BENCH_recovery.json`
//! (malformed JSON, a diverged row, or a no-op recovery fail with a
//! nonzero exit).

use decs_chronos::{Granularity, Nanos};
use decs_core::CompositeTimestamp;
use decs_distrib::{Engine, EngineConfig};
use decs_simnet::{Scenario, ScenarioBuilder, SplitMix64};
use decs_snoop::{Context, EventExpr as E, Occurrence};
use std::fmt::Write as _;

const SITES: u32 = 3;
const SEED: u64 = 42;
/// Snapshot intervals swept, in watermark ticks; 0 = snapshots disabled.
const INTERVALS: [u64; 4] = [0, 16, 4, 1];
const KILL_MS: u64 = 2_000;

struct Row {
    snapshot_interval: u64,
    kill_ms: u64,
    detections: usize,
    match_clean: bool,
    wal_appends: u64,
    wal_kib: f64,
    snapshots_taken: u64,
    recovery_replayed: u64,
    recovery_ms: f64,
}

type Keys = Vec<(String, Occurrence<CompositeTimestamp>)>;

fn scenario() -> Scenario {
    ScenarioBuilder::new(SITES, SEED)
        .global_granularity(Granularity::per_second(10).unwrap())
        .max_offset_ns(1_000_000)
        .build()
        .unwrap()
}

fn defs() -> Vec<(&'static str, E, Context)> {
    vec![
        ("X", E::seq(E::prim("A"), E::prim("B")), Context::Chronicle),
        (
            "Y",
            E::and(E::seq(E::prim("A"), E::prim("B")), E::prim("C")),
            Context::Recent,
        ),
        ("Z", E::or(E::prim("C"), E::prim("B")), Context::Chronicle),
    ]
}

/// Deterministic workload shared by every interval: `events` injections
/// over the first 4 s on random sites.
fn workload(events: usize) -> Vec<(u64, u32, &'static str)> {
    let mut rng = SplitMix64::new(0xE17_4EC0);
    (0..events)
        .map(|_| {
            let ms = rng.next_range(10, 4_000);
            let site = rng.next_below(u64::from(SITES)) as u32;
            let ev = match rng.next_below(3) {
                0 => "A",
                1 => "B",
                _ => "C",
            };
            (ms, site, ev)
        })
        .collect()
}

fn engine(wal_dir: Option<&std::path::Path>, interval: u64) -> Engine {
    let config = EngineConfig {
        durability: wal_dir.is_some(),
        snapshot_interval: if interval == 0 { u64::MAX } else { interval },
        wal_dir: wal_dir.map(|p| p.to_string_lossy().into_owned()),
        ..EngineConfig::default()
    };
    let d = defs();
    Engine::new(&scenario(), config, &["A", "B", "C"], &d).unwrap()
}

fn inject_all(e: &mut Engine, w: &[(u64, u32, &'static str)]) {
    for &(ms, site, ev) in w {
        e.inject(Nanos::from_millis(ms), site, ev, vec![]).unwrap();
    }
}

fn keys(det: Vec<decs_distrib::Detection>) -> Keys {
    det.into_iter().map(|d| (d.name, d.occ)).collect()
}

fn run_case(interval: u64, w: &[(u64, u32, &'static str)], horizon_secs: u64, clean: &Keys) -> Row {
    let dir = std::env::temp_dir().join(format!(
        "decs-bench-recovery-{}-{interval}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let mut e = engine(Some(&dir), interval);
    inject_all(&mut e, w);
    let mut det = keys(e.run_until(Nanos::from_millis(KILL_MS)));
    e.crash_and_recover_coordinator()
        .expect("recovery must succeed");
    det.extend(keys(e.run_until(Nanos::from_secs(horizon_secs))));
    let m = e.metrics();
    let row = Row {
        snapshot_interval: interval,
        kill_ms: KILL_MS,
        detections: det.len(),
        match_clean: det == *clean,
        wal_appends: m.wal_appends,
        wal_kib: m.wal_bytes as f64 / 1024.0,
        snapshots_taken: m.snapshots_taken,
        recovery_replayed: m.recovery_replayed,
        recovery_ms: m.recovery_ns as f64 / 1e6,
    };
    let _ = std::fs::remove_dir_all(&dir);
    row
}

fn run_matrix(events: usize, horizon_secs: u64) -> Vec<Row> {
    let w = workload(events);
    // Reference: durability off, never crashes.
    let mut e = engine(None, 0);
    inject_all(&mut e, &w);
    let clean = keys(e.run_until(Nanos::from_secs(horizon_secs)));
    INTERVALS
        .iter()
        .map(|&interval| run_case(interval, &w, horizon_secs, &clean))
        .collect()
}

fn render_json(mode: &str, rows: &[Row]) -> String {
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"bench\": \"recovery\",");
    let _ = writeln!(j, "  \"schema\": 1,");
    let _ = writeln!(j, "  \"mode\": \"{mode}\",");
    let _ = writeln!(j, "  \"threads\": {threads},");
    let _ = writeln!(j, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            j,
            "    {{\"snapshot_interval\": {}, \"kill_ms\": {}, \"detections\": {}, \
             \"match_clean\": {}, \"wal_appends\": {}, \"wal_kib\": {:.1}, \
             \"snapshots_taken\": {}, \"recovery_replayed\": {}, \"recovery_ms\": {:.3}}}{comma}",
            r.snapshot_interval,
            r.kill_ms,
            r.detections,
            r.match_clean,
            r.wal_appends,
            r.wal_kib,
            r.snapshots_taken,
            r.recovery_replayed,
            r.recovery_ms
        );
    }
    let _ = writeln!(j, "  ]");
    let _ = writeln!(j, "}}");
    j
}

/// Pull `"field": <value>` out of the row with the given snapshot
/// interval. The baseline is our own emission, so substring scanning is
/// an adequate parser — anything it can't find is treated as malformed.
fn extract<'a>(json: &'a str, interval: u64, field: &str) -> Option<&'a str> {
    let obj = &json[json.find(&format!("\"snapshot_interval\": {interval},"))?..];
    let obj = &obj[..obj.find('}')?];
    let at = obj.find(&format!("\"{field}\":"))? + field.len() + 4;
    let rest = &obj[at..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

fn check_rows(rows: &[Row]) -> bool {
    let mut failed = false;
    for r in rows {
        if !r.match_clean {
            eprintln!(
                "FAIL — detections diverged from the uninterrupted run at interval {}",
                r.snapshot_interval
            );
            failed = true;
        }
        if r.wal_appends == 0 {
            eprintln!(
                "FAIL — WAL logged nothing at interval {} (durability inert?)",
                r.snapshot_interval
            );
            failed = true;
        }
        if r.snapshot_interval == 1 && r.snapshots_taken == 0 {
            eprintln!("FAIL — interval 1 took no snapshots");
            failed = true;
        }
    }
    // Snapshots exist to bound replay: the no-snapshot row must replay at
    // least as much as the tightest-interval row.
    let replay_of = |i: u64| {
        rows.iter()
            .find(|r| r.snapshot_interval == i)
            .map(|r| r.recovery_replayed)
    };
    if let (Some(none), Some(tight)) = (replay_of(0), replay_of(1)) {
        if none < tight {
            eprintln!("FAIL — snapshots increased replay ({none} < {tight})");
            failed = true;
        }
        if none == 0 {
            eprintln!("FAIL — no-snapshot recovery replayed nothing");
            failed = true;
        }
    }
    failed
}

fn smoke(baseline_path: &str) -> i32 {
    let rows = run_matrix(40, 20);
    let json = render_json("smoke", &rows);
    std::fs::create_dir_all("target").ok();
    std::fs::write("target/BENCH_recovery_smoke.json", &json).ok();
    print!("{json}");

    let mut failed = check_rows(&rows);

    let Ok(baseline) = std::fs::read_to_string(baseline_path) else {
        eprintln!("smoke: FAIL — missing baseline {baseline_path}");
        return 1;
    };
    for &interval in &INTERVALS {
        match extract(&baseline, interval, "match_clean") {
            Some("true") => {}
            Some(v) => {
                eprintln!("smoke: FAIL — baseline interval {interval} has match_clean = {v}");
                failed = true;
            }
            None => {
                eprintln!("smoke: FAIL — baseline is malformed (no row for interval {interval})");
                failed = true;
            }
        }
    }
    match extract(&baseline, 0, "recovery_replayed").and_then(|v| v.parse::<u64>().ok()) {
        Some(n) if n > 0 => {}
        _ => {
            eprintln!("smoke: FAIL — baseline no-snapshot recovery replayed nothing");
            failed = true;
        }
    }
    if failed {
        1
    } else {
        eprintln!("smoke: OK");
        0
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--smoke") {
        std::process::exit(smoke("BENCH_recovery.json"));
    }

    eprintln!("E17 — recovery cost vs snapshot interval (full run)");
    let rows = run_matrix(200, 30);
    assert!(!check_rows(&rows), "full run failed its invariants");
    let json = render_json("full", &rows);
    std::fs::write("BENCH_recovery.json", &json).expect("write BENCH_recovery.json");
    print!("{json}");
    eprintln!("wrote BENCH_recovery.json");
}
