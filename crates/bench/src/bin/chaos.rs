//! E15 — chaos: detection under a lossy network, as a function of the
//! message drop rate.
//!
//! One fixed seeded workload runs through the distributed engine at drop
//! rates 0% / 1% / 5% / 20% (applied to both directions of every
//! site↔coordinator link, with 2% duplication on the lossy legs). For
//! every rate the bench records the detection count, whether the
//! detections are **bit-for-bit identical** to the fault-free run (the
//! chaos suite's headline, here measured rather than only asserted), the
//! mean stability latency, and the retransmission overhead (retransmits,
//! acks, duplicates dropped, link-level drops).
//!
//! Run: `cargo run --release -p decs-bench --bin chaos` (full, writes
//! `BENCH_chaos.json` in the current directory).
//! `--smoke` runs a reduced workload, hard-asserts detection equality at
//! every drop rate, and validates the committed `BENCH_chaos.json`
//! (malformed JSON, a non-matching row, or zero retransmissions on the
//! lossy legs fail with a nonzero exit).

use decs_chronos::{Granularity, Nanos};
use decs_core::CompositeTimestamp;
use decs_distrib::{Engine, EngineConfig};
use decs_simnet::{LinkConfig, ScenarioBuilder, SplitMix64};
use decs_snoop::{Context, EventExpr as E};
use std::fmt::Write as _;

const SITES: u32 = 4;
const DROP_PPM: [u32; 4] = [0, 10_000, 50_000, 200_000];
/// Duplication rate on the lossy legs (0 on the clean leg).
const DUP_PPM: u32 = 20_000;

struct Row {
    drop_ppm: u32,
    detections: usize,
    match_clean: bool,
    mean_stability_ms: f64,
    retransmits: u64,
    acks_sent: u64,
    duplicates_dropped: u64,
    link_dropped: u64,
    retx_per_msg: f64,
}

type Keys = Vec<(String, CompositeTimestamp)>;

/// Deterministic workload shared by every rate: `events` injections over
/// the first 3 s on random sites.
fn workload(events: usize) -> Vec<(u64, u32, &'static str)> {
    let mut rng = SplitMix64::new(0xE15_C4A05);
    (0..events)
        .map(|_| {
            let ms = rng.next_range(10, 3_000);
            let site = rng.next_below(u64::from(SITES)) as u32;
            let ev = if rng.next_below(2) == 0 { "A" } else { "B" };
            (ms, site, ev)
        })
        .collect()
}

fn run_case(drop_ppm: u32, w: &[(u64, u32, &'static str)], horizon_secs: u64) -> (Keys, Row) {
    let scenario = ScenarioBuilder::new(SITES, 42)
        .global_granularity(Granularity::per_second(10).unwrap())
        .max_offset_ns(1_000_000)
        .build()
        .unwrap();
    let mut e = Engine::new(
        &scenario,
        EngineConfig::default(),
        &["A", "B"],
        &[("X", E::seq(E::prim("A"), E::prim("B")), Context::Chronicle)],
    )
    .unwrap();
    if drop_ppm > 0 {
        for site in 0..SITES {
            e.set_link_pair(site, LinkConfig::lan().with_faults(drop_ppm, DUP_PPM));
        }
    }
    for &(ms, site, ev) in w {
        e.inject(Nanos::from_millis(ms), site, ev, vec![]).unwrap();
    }
    let det = e.run_for(Nanos::from_secs(horizon_secs));
    let keys: Keys = det.into_iter().map(|d| (d.name, d.occ.time)).collect();
    let m = e.metrics();
    let c = e.fault_counters();
    let row = Row {
        drop_ppm,
        detections: keys.len(),
        match_clean: true, // filled by the caller against the 0% run
        mean_stability_ms: m.mean_stability_latency_ns() as f64 / 1e6,
        retransmits: m.retransmits,
        acks_sent: m.acks_sent,
        duplicates_dropped: m.duplicates_dropped,
        link_dropped: c.dropped,
        retx_per_msg: if m.messages_processed == 0 {
            0.0
        } else {
            m.retransmits as f64 / m.messages_processed as f64
        },
    };
    (keys, row)
}

fn run_matrix(events: usize, horizon_secs: u64) -> Vec<Row> {
    let w = workload(events);
    let mut clean_keys: Option<Keys> = None;
    let mut rows = Vec::new();
    for &ppm in &DROP_PPM {
        let (keys, mut row) = run_case(ppm, &w, horizon_secs);
        match &clean_keys {
            None => clean_keys = Some(keys),
            Some(clean) => row.match_clean = *clean == keys,
        }
        rows.push(row);
    }
    rows
}

fn render_json(mode: &str, rows: &[Row]) -> String {
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"bench\": \"chaos\",");
    let _ = writeln!(j, "  \"schema\": 1,");
    let _ = writeln!(j, "  \"mode\": \"{mode}\",");
    let _ = writeln!(j, "  \"threads\": {threads},");
    let _ = writeln!(j, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            j,
            "    {{\"drop_ppm\": {}, \"detections\": {}, \"match_clean\": {}, \
             \"mean_stability_ms\": {:.2}, \"retransmits\": {}, \"acks_sent\": {}, \
             \"duplicates_dropped\": {}, \"link_dropped\": {}, \"retx_per_msg\": {:.4}}}{comma}",
            r.drop_ppm,
            r.detections,
            r.match_clean,
            r.mean_stability_ms,
            r.retransmits,
            r.acks_sent,
            r.duplicates_dropped,
            r.link_dropped,
            r.retx_per_msg
        );
    }
    let _ = writeln!(j, "  ]");
    let _ = writeln!(j, "}}");
    j
}

/// Pull `"field": <value>` out of the row with the given drop rate. The
/// baseline is our own emission, so substring scanning is an adequate
/// parser — anything it can't find is treated as malformed.
fn extract<'a>(json: &'a str, drop_ppm: u32, field: &str) -> Option<&'a str> {
    let obj = &json[json.find(&format!("\"drop_ppm\": {drop_ppm},"))?..];
    let obj = &obj[..obj.find('}')?];
    let at = obj.find(&format!("\"{field}\":"))? + field.len() + 4;
    let rest = &obj[at..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

fn smoke(baseline_path: &str) -> i32 {
    let rows = run_matrix(40, 20);
    let json = render_json("smoke", &rows);
    std::fs::create_dir_all("target").ok();
    std::fs::write("target/BENCH_chaos_smoke.json", &json).ok();
    print!("{json}");

    let mut failed = false;
    for r in &rows {
        if !r.match_clean {
            eprintln!(
                "smoke: FAIL — detections diverged from the fault-free run at {} ppm",
                r.drop_ppm
            );
            failed = true;
        }
        if r.drop_ppm >= 50_000 && r.retransmits == 0 {
            eprintln!(
                "smoke: FAIL — no retransmissions at {} ppm (protocol inert?)",
                r.drop_ppm
            );
            failed = true;
        }
    }

    let Ok(baseline) = std::fs::read_to_string(baseline_path) else {
        eprintln!("smoke: FAIL — missing baseline {baseline_path}");
        return 1;
    };
    for &ppm in &DROP_PPM {
        match extract(&baseline, ppm, "match_clean") {
            Some("true") => {}
            Some(v) => {
                eprintln!("smoke: FAIL — baseline row {ppm} ppm has match_clean = {v}");
                failed = true;
            }
            None => {
                eprintln!("smoke: FAIL — baseline is malformed (no row for {ppm} ppm)");
                failed = true;
            }
        }
    }
    match extract(&baseline, 0, "detections").and_then(|v| v.parse::<u64>().ok()) {
        Some(d) if d > 0 => {}
        _ => {
            eprintln!("smoke: FAIL — baseline fault-free run detected nothing");
            failed = true;
        }
    }
    if failed {
        1
    } else {
        eprintln!("smoke: OK");
        0
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--smoke") {
        std::process::exit(smoke("BENCH_chaos.json"));
    }

    eprintln!("E15 — detection vs drop rate (full run)");
    let rows = run_matrix(200, 30);
    for r in &rows {
        assert!(
            r.match_clean,
            "detections diverged at {} ppm — the reliability layer is broken",
            r.drop_ppm
        );
    }
    let json = render_json("full", &rows);
    std::fs::write("BENCH_chaos.json", &json).expect("write BENCH_chaos.json");
    print!("{json}");
    eprintln!("wrote BENCH_chaos.json");
}
