//! E15 — chaos: detection under a lossy network, as a function of the
//! message drop rate.
//!
//! One fixed seeded workload runs through the distributed engine at drop
//! rates 0% / 1% / 5% / 20% (applied to both directions of every
//! site↔coordinator link, with 2% duplication on the lossy legs). For
//! every rate the bench records the detection count, whether the
//! detections are **bit-for-bit identical** to the fault-free run (the
//! chaos suite's headline, here measured rather than only asserted), the
//! mean stability latency, and the retransmission overhead (retransmits,
//! acks, duplicates dropped, link-level drops).
//!
//! A second matrix runs **crash/restart schedules**: durable sites are
//! killed mid-run and restarted (single crash, crash under a lossy
//! network, two staggered crashes). Each row records bit-identity against
//! a fault-free oracle on the same workload filtered of the injections
//! the dead site never saw, plus the lifecycle metrics — restarts,
//! rejoins, epoch reached, Hello→consumed rejoin latency, and the mean
//! stability latency of the post-rejoin releases.
//!
//! Run: `cargo run --release -p decs-bench --bin chaos` (full, writes
//! `BENCH_chaos.json` in the current directory).
//! `--smoke` runs a reduced workload, hard-asserts detection equality at
//! every drop rate *and* every crash schedule, and validates the
//! committed `BENCH_chaos.json` (malformed JSON, a non-matching row, a
//! schedule row with no rejoin, or zero retransmissions on the lossy
//! legs fail with a nonzero exit).

use decs_chronos::{Granularity, Nanos};
use decs_core::CompositeTimestamp;
use decs_distrib::{Engine, EngineConfig};
use decs_simnet::{LinkConfig, ScenarioBuilder, SplitMix64};
use decs_snoop::{Context, EventExpr as E};
use std::fmt::Write as _;

const SITES: u32 = 4;
const DROP_PPM: [u32; 4] = [0, 10_000, 50_000, 200_000];
/// Duplication rate on the lossy legs (0 on the clean leg).
const DUP_PPM: u32 = 20_000;

struct Row {
    drop_ppm: u32,
    detections: usize,
    match_clean: bool,
    mean_stability_ms: f64,
    retransmits: u64,
    acks_sent: u64,
    duplicates_dropped: u64,
    link_dropped: u64,
    retx_per_msg: f64,
}

type Keys = Vec<(String, CompositeTimestamp)>;

/// Deterministic workload shared by every rate: `events` injections over
/// the first 3 s on random sites.
fn workload(events: usize) -> Vec<(u64, u32, &'static str)> {
    let mut rng = SplitMix64::new(0xE15_C4A05);
    (0..events)
        .map(|_| {
            let ms = rng.next_range(10, 3_000);
            let site = rng.next_below(u64::from(SITES)) as u32;
            let ev = if rng.next_below(2) == 0 { "A" } else { "B" };
            (ms, site, ev)
        })
        .collect()
}

fn run_case(drop_ppm: u32, w: &[(u64, u32, &'static str)], horizon_secs: u64) -> (Keys, Row) {
    let scenario = ScenarioBuilder::new(SITES, 42)
        .global_granularity(Granularity::per_second(10).unwrap())
        .max_offset_ns(1_000_000)
        .build()
        .unwrap();
    let mut e = Engine::new(
        &scenario,
        EngineConfig::default(),
        &["A", "B"],
        &[("X", E::seq(E::prim("A"), E::prim("B")), Context::Chronicle)],
    )
    .unwrap();
    if drop_ppm > 0 {
        for site in 0..SITES {
            e.set_link_pair(site, LinkConfig::lan().with_faults(drop_ppm, DUP_PPM));
        }
    }
    for &(ms, site, ev) in w {
        e.inject(Nanos::from_millis(ms), site, ev, vec![]).unwrap();
    }
    let det = e.run_for(Nanos::from_secs(horizon_secs));
    let keys: Keys = det.into_iter().map(|d| (d.name, d.occ.time)).collect();
    let m = e.metrics();
    let c = e.fault_counters();
    let row = Row {
        drop_ppm,
        detections: keys.len(),
        match_clean: true, // filled by the caller against the 0% run
        mean_stability_ms: m.mean_stability_latency_ns() as f64 / 1e6,
        retransmits: m.retransmits,
        acks_sent: m.acks_sent,
        duplicates_dropped: m.duplicates_dropped,
        link_dropped: c.dropped,
        retx_per_msg: if m.messages_processed == 0 {
            0.0
        } else {
            m.retransmits as f64 / m.messages_processed as f64
        },
    };
    (keys, row)
}

/// One crash/restart schedule: `crashes` holds `(site, crash_ms,
/// restart_ms)` actions. Both instants land at +500 µs so they never tie
/// with a whole-millisecond injection in the event queue.
struct Schedule {
    name: &'static str,
    drop_ppm: u32,
    crashes: &'static [(u32, u64, u64)],
}

const SCHEDULES: [Schedule; 3] = [
    Schedule {
        name: "single_crash",
        drop_ppm: 0,
        crashes: &[(1, 1_200, 2_700)],
    },
    Schedule {
        name: "crash_lossy",
        drop_ppm: 50_000,
        crashes: &[(2, 1_500, 3_200)],
    },
    Schedule {
        name: "double_crash",
        drop_ppm: 10_000,
        crashes: &[(0, 900, 2_000), (3, 1_800, 3_300)],
    },
];

struct CrashRow {
    name: &'static str,
    drop_ppm: u32,
    detections: usize,
    match_clean: bool,
    site_restarts: u64,
    rejoins: u64,
    epoch_max: u64,
    rejoin_latency_ms: f64,
    post_rejoin_stability_ms: f64,
    retransmits: u64,
    retx_per_msg: f64,
}

fn crash_engine(config: EngineConfig) -> Engine {
    let scenario = ScenarioBuilder::new(SITES, 42)
        .global_granularity(Granularity::per_second(10).unwrap())
        .max_offset_ns(1_000_000)
        .build()
        .unwrap();
    Engine::new(
        &scenario,
        config,
        &["A", "B"],
        &[("X", E::seq(E::prim("A"), E::prim("B")), Context::Chronicle)],
    )
    .unwrap()
}

/// An injection at whole-ms `ms` reaches a site crashed over
/// `(crash+500 µs, restart+500 µs)` iff it is outside `(crash, restart]`.
fn survives(s: &Schedule, ms: u64, site: u32) -> bool {
    !s.crashes
        .iter()
        .any(|&(cs, crash, restart)| site == cs && ms > crash && ms <= restart)
}

fn run_crash_case(s: &Schedule, w: &[(u64, u32, &'static str)], horizon_secs: u64) -> CrashRow {
    // Fault-free oracle on the same workload minus the injections the
    // dead site never saw: those occurrences exist nowhere, so the clean
    // run must not count them either.
    let clean: Keys = {
        let mut e = crash_engine(EngineConfig::default());
        for &(ms, site, ev) in w.iter().filter(|&&(ms, site, _)| survives(s, ms, site)) {
            e.inject(Nanos::from_millis(ms), site, ev, vec![]).unwrap();
        }
        e.run_for(Nanos::from_secs(horizon_secs))
            .into_iter()
            .map(|d| (d.name, d.occ.time))
            .collect()
    };

    let dir = std::env::temp_dir().join(format!("decs-chaos-{}-{}", std::process::id(), s.name));
    let _ = std::fs::remove_dir_all(&dir);
    let mut e = crash_engine(EngineConfig {
        site_durability: true,
        wal_dir: Some(dir.to_string_lossy().into_owned()),
        retransmit_jitter_seed: Some(0xE15),
        ..EngineConfig::default()
    });
    if s.drop_ppm > 0 {
        for site in 0..SITES {
            e.set_link_pair(site, LinkConfig::lan().with_faults(s.drop_ppm, DUP_PPM));
        }
    }
    let mut restart_max = 0u64;
    for &(site, crash, restart) in s.crashes {
        e.crash_site(Nanos(crash * 1_000_000 + 500_000), site);
        e.restart_site(Nanos(restart * 1_000_000 + 500_000), site);
        restart_max = restart_max.max(restart);
    }
    for &(ms, site, ev) in w {
        e.inject(Nanos::from_millis(ms), site, ev, vec![]).unwrap();
    }
    // Split the run at the last restart so the stability latency of the
    // post-rejoin releases can be isolated from the pre-crash steady state.
    let mut det = e.run_until(Nanos::from_millis(restart_max));
    let at_rejoin = e.metrics();
    det.extend(e.run_until(Nanos::from_secs(horizon_secs)));
    let m = e.metrics();
    let _ = std::fs::remove_dir_all(&dir);

    let keys: Keys = det.into_iter().map(|d| (d.name, d.occ.time)).collect();
    let post_released = m.events_released - at_rejoin.events_released;
    let post_sum = m.stability_latency_sum_ns - at_rejoin.stability_latency_sum_ns;
    CrashRow {
        name: s.name,
        drop_ppm: s.drop_ppm,
        detections: keys.len(),
        match_clean: keys == clean,
        site_restarts: m.site_restarts,
        rejoins: m.rejoins,
        epoch_max: m.epoch_max,
        rejoin_latency_ms: m.rejoin_latency_ns as f64 / 1e6,
        post_rejoin_stability_ms: if post_released == 0 {
            0.0
        } else {
            (post_sum / u128::from(post_released)) as f64 / 1e6
        },
        retransmits: m.retransmits,
        retx_per_msg: if m.messages_processed == 0 {
            0.0
        } else {
            m.retransmits as f64 / m.messages_processed as f64
        },
    }
}

fn run_crash_matrix(events: usize, horizon_secs: u64) -> Vec<CrashRow> {
    let w = workload(events);
    SCHEDULES
        .iter()
        .map(|s| run_crash_case(s, &w, horizon_secs))
        .collect()
}

fn run_matrix(events: usize, horizon_secs: u64) -> Vec<Row> {
    let w = workload(events);
    let mut clean_keys: Option<Keys> = None;
    let mut rows = Vec::new();
    for &ppm in &DROP_PPM {
        let (keys, mut row) = run_case(ppm, &w, horizon_secs);
        match &clean_keys {
            None => clean_keys = Some(keys),
            Some(clean) => row.match_clean = *clean == keys,
        }
        rows.push(row);
    }
    rows
}

fn render_json(mode: &str, rows: &[Row], crash_rows: &[CrashRow]) -> String {
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"bench\": \"chaos\",");
    let _ = writeln!(j, "  \"schema\": 2,");
    let _ = writeln!(j, "  \"mode\": \"{mode}\",");
    let _ = writeln!(j, "  \"threads\": {threads},");
    let _ = writeln!(j, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            j,
            "    {{\"drop_ppm\": {}, \"detections\": {}, \"match_clean\": {}, \
             \"mean_stability_ms\": {:.2}, \"retransmits\": {}, \"acks_sent\": {}, \
             \"duplicates_dropped\": {}, \"link_dropped\": {}, \"retx_per_msg\": {:.4}}}{comma}",
            r.drop_ppm,
            r.detections,
            r.match_clean,
            r.mean_stability_ms,
            r.retransmits,
            r.acks_sent,
            r.duplicates_dropped,
            r.link_dropped,
            r.retx_per_msg
        );
    }
    let _ = writeln!(j, "  ],");
    let _ = writeln!(j, "  \"crash_rows\": [");
    for (i, r) in crash_rows.iter().enumerate() {
        let comma = if i + 1 < crash_rows.len() { "," } else { "" };
        let _ = writeln!(
            j,
            "    {{\"schedule\": \"{}\", \"drop_ppm\": {}, \"detections\": {}, \
             \"match_clean\": {}, \"site_restarts\": {}, \"rejoins\": {}, \
             \"epoch_max\": {}, \"rejoin_latency_ms\": {:.3}, \
             \"post_rejoin_stability_ms\": {:.2}, \"retransmits\": {}, \
             \"retx_per_msg\": {:.4}}}{comma}",
            r.name,
            r.drop_ppm,
            r.detections,
            r.match_clean,
            r.site_restarts,
            r.rejoins,
            r.epoch_max,
            r.rejoin_latency_ms,
            r.post_rejoin_stability_ms,
            r.retransmits,
            r.retx_per_msg
        );
    }
    let _ = writeln!(j, "  ]");
    let _ = writeln!(j, "}}");
    j
}

/// Pull `"field": <value>` out of the row with the given drop rate. The
/// baseline is our own emission, so substring scanning is an adequate
/// parser — anything it can't find is treated as malformed.
fn extract<'a>(json: &'a str, drop_ppm: u32, field: &str) -> Option<&'a str> {
    let obj = &json[json.find(&format!("\"drop_ppm\": {drop_ppm},"))?..];
    let obj = &obj[..obj.find('}')?];
    let at = obj.find(&format!("\"{field}\":"))? + field.len() + 4;
    let rest = &obj[at..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

/// Pull `"field": <value>` out of the crash row with the given schedule
/// name.
fn extract_sched<'a>(json: &'a str, name: &str, field: &str) -> Option<&'a str> {
    let obj = &json[json.find(&format!("\"schedule\": \"{name}\","))?..];
    let obj = &obj[..obj.find('}')?];
    let at = obj.find(&format!("\"{field}\":"))? + field.len() + 4;
    let rest = &obj[at..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

fn smoke(baseline_path: &str) -> i32 {
    let rows = run_matrix(40, 20);
    let crash_rows = run_crash_matrix(40, 20);
    let json = render_json("smoke", &rows, &crash_rows);
    std::fs::create_dir_all("target").ok();
    std::fs::write("target/BENCH_chaos_smoke.json", &json).ok();
    print!("{json}");

    let mut failed = false;
    for r in &rows {
        if !r.match_clean {
            eprintln!(
                "smoke: FAIL — detections diverged from the fault-free run at {} ppm",
                r.drop_ppm
            );
            failed = true;
        }
        if r.drop_ppm >= 50_000 && r.retransmits == 0 {
            eprintln!(
                "smoke: FAIL — no retransmissions at {} ppm (protocol inert?)",
                r.drop_ppm
            );
            failed = true;
        }
    }
    for (r, s) in crash_rows.iter().zip(&SCHEDULES) {
        if !r.match_clean {
            eprintln!(
                "smoke: FAIL — schedule {} diverged from its fault-free oracle",
                r.name
            );
            failed = true;
        }
        let expected = s.crashes.len() as u64;
        if r.site_restarts != expected || r.rejoins < expected || r.epoch_max != 1 {
            eprintln!(
                "smoke: FAIL — schedule {} lifecycle off: restarts {} (want {}), \
                 rejoins {}, epoch_max {}",
                r.name, r.site_restarts, expected, r.rejoins, r.epoch_max
            );
            failed = true;
        }
    }

    let Ok(baseline) = std::fs::read_to_string(baseline_path) else {
        eprintln!("smoke: FAIL — missing baseline {baseline_path}");
        return 1;
    };
    for &ppm in &DROP_PPM {
        match extract(&baseline, ppm, "match_clean") {
            Some("true") => {}
            Some(v) => {
                eprintln!("smoke: FAIL — baseline row {ppm} ppm has match_clean = {v}");
                failed = true;
            }
            None => {
                eprintln!("smoke: FAIL — baseline is malformed (no row for {ppm} ppm)");
                failed = true;
            }
        }
    }
    match extract(&baseline, 0, "detections").and_then(|v| v.parse::<u64>().ok()) {
        Some(d) if d > 0 => {}
        _ => {
            eprintln!("smoke: FAIL — baseline fault-free run detected nothing");
            failed = true;
        }
    }
    for s in &SCHEDULES {
        match extract_sched(&baseline, s.name, "match_clean") {
            Some("true") => {}
            Some(v) => {
                eprintln!(
                    "smoke: FAIL — baseline schedule {} has match_clean = {v}",
                    s.name
                );
                failed = true;
            }
            None => {
                eprintln!(
                    "smoke: FAIL — baseline is malformed (no crash row for {})",
                    s.name
                );
                failed = true;
            }
        }
        match extract_sched(&baseline, s.name, "rejoins").and_then(|v| v.parse::<u64>().ok()) {
            Some(n) if n >= s.crashes.len() as u64 => {}
            _ => {
                eprintln!(
                    "smoke: FAIL — baseline schedule {} recorded no rejoin",
                    s.name
                );
                failed = true;
            }
        }
    }
    if failed {
        1
    } else {
        eprintln!("smoke: OK");
        0
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--smoke") {
        std::process::exit(smoke("BENCH_chaos.json"));
    }

    eprintln!("E15 — detection vs drop rate (full run)");
    let rows = run_matrix(200, 30);
    for r in &rows {
        assert!(
            r.match_clean,
            "detections diverged at {} ppm — the reliability layer is broken",
            r.drop_ppm
        );
    }
    eprintln!("E15 — detection across crash/restart schedules");
    let crash_rows = run_crash_matrix(200, 30);
    for r in &crash_rows {
        assert!(
            r.match_clean,
            "schedule {} diverged — site recovery is broken",
            r.name
        );
    }
    let json = render_json("full", &rows, &crash_rows);
    std::fs::write("BENCH_chaos.json", &json).expect("write BENCH_chaos.json");
    print!("{json}");
    eprintln!("wrote BENCH_chaos.json");
}
