//! E14 — persistent worker pool: throughput vs worker count.
//!
//! Measures [`ShardedDetector::feed_batch`] on composite-timestamp
//! workloads sized so per-shard work (in-band `<_p` relation checks
//! against a large initiator buffer) dominates round dispatch:
//!
//! 1. **independent** — 8 disjoint `SEQ(A_i, B_i)` definitions
//!    (stage count 1): a batch fans out to all shards in one pool round.
//! 2. **cascading** — 8 `X_i = SEQ(A_i, B)` definitions sharing the
//!    terminator `B`, each feeding `Y_i = SEQ(X_i, C_i)` (stage count 2):
//!    cross-definition routes, so batches run as staged cascade waves.
//!
//! Each workload runs serially (no pool) and on pools of 1/2/4/8 workers;
//! the detection streams are asserted bit-for-bit identical before any
//! number is reported. Results go to `BENCH_parallel.json`, stamped with
//! `threads` (the machine's available parallelism) and a `schema` version
//! so the smoke gate can skip cross-machine comparisons cleanly: scaling
//! ratios are only enforced when the baseline machine actually had the
//! cores to scale.
//!
//! Run: `cargo run --release -p decs-bench --features parallel --bin
//! parallel` (full, writes `BENCH_parallel.json`). `--smoke` runs a quick
//! pass, validates the committed baseline and writes its own results under
//! `target/`.

use decs_bench::concurrent_composite;
use decs_core::CompositeTimestamp;
use decs_snoop::{Context, EventExpr as E, Occurrence, ShardedDetector};
use std::fmt::Write as _;
use std::time::Instant;

const DEFS: usize = 8;

/// Per-run sizing: buffered in-band initiators per definition (each one
/// costs a full `<_p` check per terminator) and measured batch rounds.
#[derive(Clone, Copy)]
struct Sizing {
    band_inits: usize,
    rounds: usize,
}

const FULL: Sizing = Sizing {
    band_inits: 768,
    rounds: 32,
};
const SMOKE: Sizing = Sizing {
    band_inits: 96,
    rounds: 8,
};

/// One measured configuration: `workers == 0` is the serial path.
/// `effective_workers` is what the pool actually ran after the
/// available-parallelism cap (oversubscription beyond the machine's
/// cores can no longer push throughput below the serial baseline).
struct CurvePoint {
    workers: usize,
    effective_workers: usize,
    events: u64,
    elapsed_ms: f64,
    events_per_sec: f64,
    detections: usize,
    parallel_rounds: u64,
    pool_busy_ms: f64,
}

struct WorkloadResult {
    name: &'static str,
    stage_count: usize,
    curve: Vec<CurvePoint>,
}

impl WorkloadResult {
    /// Throughput at `w` workers over throughput at 1 worker.
    fn speedup(&self, w: usize) -> f64 {
        let at = |workers| {
            self.curve
                .iter()
                .find(|p| p.workers == workers)
                .map_or(f64::NAN, |p| p.events_per_sec)
        };
        at(w) / at(1)
    }
}

fn ty(d: &ShardedDetector<CompositeTimestamp>, name: &str) -> decs_snoop::EventId {
    d.catalog().lookup(name).expect("registered")
}

fn stamp(base_site: usize, g: u64) -> CompositeTimestamp {
    concurrent_composite(base_site as u32, g, 4)
}

/// 8 disjoint `SEQ(A_i, B_i)` definitions, Unrestricted. Seeded with a few
/// certainly-before initiators (they match every terminator, so detections
/// flow) and `band_inits` in-band initiators per definition (concurrent
/// with the terminators, so every one costs a full relation check and none
/// is ever consumed — per-round work stays constant).
fn build_independent(s: Sizing) -> ShardedDetector<CompositeTimestamp> {
    let mut d = ShardedDetector::new();
    for i in 0..DEFS {
        d.register(&format!("A{i}")).unwrap();
        d.register(&format!("B{i}")).unwrap();
    }
    for i in 0..DEFS {
        d.define(
            &format!("S{i}"),
            &E::seq(E::prim(&format!("A{i}")), E::prim(&format!("B{i}"))),
            Context::Unrestricted,
        )
        .unwrap();
    }
    for i in 0..DEFS {
        let a = ty(&d, &format!("A{i}"));
        for k in 0..4u64 {
            d.feed(Occurrence::bare(a, stamp(100 + i * 8, 50 + k)));
        }
        for k in 0..s.band_inits {
            d.feed(Occurrence::bare(
                a,
                stamp(100 + i * 8, 1000 + (k % 2) as u64),
            ));
        }
    }
    d
}

/// Measured phase for the independent workload: batches of 4 terminators
/// per definition. No cross-shard routes → one pool round per batch.
fn run_independent(
    d: &mut ShardedDetector<CompositeTimestamp>,
    s: Sizing,
) -> (u64, Vec<Occurrence<CompositeTimestamp>>) {
    let bs: Vec<_> = (0..DEFS).map(|i| ty(d, &format!("B{i}"))).collect();
    let mut detected = Vec::new();
    let mut events = 0u64;
    for _ in 0..s.rounds {
        let mut batch = Vec::with_capacity(DEFS * 4);
        for j in 0..4usize {
            for (i, &b) in bs.iter().enumerate() {
                batch.push(Occurrence::bare(b, stamp(300 + (i * 4 + j) * 8, 1001)));
            }
        }
        events += batch.len() as u64;
        detected.extend(d.feed_batch(batch).detected);
    }
    (events, detected)
}

/// 8 `X_i = SEQ(A_i, B)` definitions sharing the terminator `B`, each
/// feeding `Y_i = SEQ(X_i, C_i)` — cross-definition routes with stage
/// count 2, so batches run as staged cascade waves. Chronicle, so each `B`
/// consumes one certainly-before `A_i` per shard (those are pre-seeded for
/// the whole measured phase) while the in-band `A_i`s are scanned but
/// never consumed.
fn build_cascading(s: Sizing) -> ShardedDetector<CompositeTimestamp> {
    let mut d = ShardedDetector::new();
    for i in 0..DEFS {
        d.register(&format!("A{i}")).unwrap();
    }
    d.register("B").unwrap();
    for i in 0..DEFS {
        d.register(&format!("C{i}")).unwrap();
    }
    for i in 0..DEFS {
        d.define(
            &format!("X{i}"),
            &E::seq(E::prim(&format!("A{i}")), E::prim("B")),
            Context::Chronicle,
        )
        .unwrap();
    }
    for i in 0..DEFS {
        d.define(
            &format!("Y{i}"),
            &E::seq(E::prim(&format!("X{i}")), E::prim(&format!("C{i}"))),
            Context::Chronicle,
        )
        .unwrap();
    }
    assert_eq!(d.stage_count(), 2);
    assert!(d.has_cross_shard_routes());
    let b_per_phase = (s.rounds * 4) as u64;
    for i in 0..DEFS {
        let a = ty(&d, &format!("A{i}"));
        for k in 0..b_per_phase {
            d.feed(Occurrence::bare(a, stamp(100 + i * 8, 10 + k)));
        }
        for k in 0..s.band_inits {
            d.feed(Occurrence::bare(
                a,
                stamp(100 + i * 8, 1000 + (k % 2) as u64),
            ));
        }
    }
    d
}

/// Measured phase for the cascading workload: each round feeds 4 shared
/// terminators `B` (every one triggers all 8 `X` shards, and its `X_i`
/// detections cascade into the `Y` shards as a second wave) plus one
/// `C_i` per definition (terminating `Y_i` against the accumulated `X_i`
/// initiators).
fn run_cascading(
    d: &mut ShardedDetector<CompositeTimestamp>,
    s: Sizing,
) -> (u64, Vec<Occurrence<CompositeTimestamp>>) {
    let b = ty(d, "B");
    let cs: Vec<_> = (0..DEFS).map(|i| ty(d, &format!("C{i}"))).collect();
    let mut detected = Vec::new();
    let mut events = 0u64;
    for _ in 0..s.rounds {
        let mut batch = Vec::with_capacity(4 + DEFS);
        for j in 0..4usize {
            batch.push(Occurrence::bare(b, stamp(300 + j * 8, 1001)));
        }
        for (i, &c) in cs.iter().enumerate() {
            batch.push(Occurrence::bare(c, stamp(400 + i * 8, 1004)));
        }
        events += batch.len() as u64;
        detected.extend(d.feed_batch(batch).detected);
    }
    (events, detected)
}

/// A workload's measured phase: feed the batches, return (events fed,
/// detection stream).
type MeasuredRun = fn(
    &mut ShardedDetector<CompositeTimestamp>,
    Sizing,
) -> (u64, Vec<Occurrence<CompositeTimestamp>>);

/// Run one workload across the whole worker curve, asserting every
/// configuration's detection stream is bit-for-bit identical to serial.
fn bench_workload(
    name: &'static str,
    s: Sizing,
    build: fn(Sizing) -> ShardedDetector<CompositeTimestamp>,
    run: MeasuredRun,
) -> WorkloadResult {
    let mut curve = Vec::new();
    let mut reference: Option<Vec<Occurrence<CompositeTimestamp>>> = None;
    let mut stage_count = 0;
    for workers in [0usize, 1, 2, 4, 8] {
        let mut d = build(s);
        stage_count = d.stage_count();
        if workers > 0 {
            d.enable_pool(workers);
        }
        let start = Instant::now();
        let (events, detected) = run(&mut d, s);
        let elapsed = start.elapsed().as_secs_f64();
        match &reference {
            None => {
                assert!(!detected.is_empty(), "{name}: workload must detect");
                reference = Some(detected);
            }
            Some(expect) => assert_eq!(
                expect, &detected,
                "{name}: {workers}-worker run diverged from serial"
            ),
        }
        curve.push(CurvePoint {
            workers,
            effective_workers: d.worker_count(),
            events,
            elapsed_ms: elapsed * 1e3,
            events_per_sec: events as f64 / elapsed,
            detections: reference.as_ref().map_or(0, Vec::len),
            parallel_rounds: d.parallel_rounds(),
            pool_busy_ms: d.pool_busy_ns() as f64 / 1e6,
        });
        eprintln!(
            "  {name:<12} workers={workers} {:>9.0} ev/s ({:.1} ms, {} rounds)",
            events as f64 / elapsed,
            elapsed * 1e3,
            curve.last().unwrap().parallel_rounds,
        );
    }
    WorkloadResult {
        name,
        stage_count,
        curve,
    }
}

fn threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn render_json(mode: &str, results: &[WorkloadResult]) -> String {
    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"bench\": \"parallel\",");
    let _ = writeln!(j, "  \"schema\": 1,");
    let _ = writeln!(j, "  \"mode\": \"{mode}\",");
    let _ = writeln!(j, "  \"threads\": {},", threads());
    let _ = writeln!(j, "  \"workloads\": [");
    for (i, w) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(
            j,
            "    {{\"workload\": \"{}\", \"defs\": {DEFS}, \"stage_count\": {}, \"curve\": [",
            w.name, w.stage_count
        );
        for (k, p) in w.curve.iter().enumerate() {
            let comma = if k + 1 < w.curve.len() { "," } else { "" };
            let _ = writeln!(
                j,
                "      {{\"workers\": {}, \"effective_workers\": {}, \"events\": {}, \
                 \"elapsed_ms\": {:.2}, \"events_per_sec\": {:.0}, \"detections\": {}, \
                 \"parallel_rounds\": {}, \"pool_busy_ms\": {:.2}}}{comma}",
                p.workers,
                p.effective_workers,
                p.events,
                p.elapsed_ms,
                p.events_per_sec,
                p.detections,
                p.parallel_rounds,
                p.pool_busy_ms
            );
        }
        let _ = writeln!(j, "    ]}}{comma}");
    }
    let _ = writeln!(j, "  ],");
    // Flat summary entries so the smoke gate can parse with a substring
    // scanner (same shape as the hotpath kernels).
    let _ = writeln!(j, "  \"summary\": [");
    for (i, w) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(
            j,
            "    {{\"name\": \"{}_speedup_4v1\", \"value\": {:.3}}}{comma}",
            w.name,
            w.speedup(4)
        );
    }
    let _ = writeln!(j, "  ]");
    let _ = writeln!(j, "}}");
    j
}

/// Pull `"field": <number>` out of the object named `name` (summary
/// entries are flat, so substring scanning is an adequate parser).
fn extract(json: &str, name: &str, field: &str) -> Option<f64> {
    let obj = &json[json.find(&format!("\"name\": \"{name}\""))?..];
    let obj = &obj[..obj.find('}')?];
    let at = obj.find(&format!("\"{field}\":"))? + field.len() + 4;
    let rest = &obj[at..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Pull a top-level `"field": <number>`.
fn extract_top(json: &str, field: &str) -> Option<f64> {
    let at = json.find(&format!("\"{field}\":"))? + field.len() + 4;
    let rest = &json[at..];
    let end = rest.find([',', '\n']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn smoke(baseline_path: &str) -> i32 {
    // The quick pass itself asserts serial == pooled determinism for every
    // worker count; a divergence panics, which is the hard failure.
    let results = [
        bench_workload("independent", SMOKE, build_independent, run_independent),
        bench_workload("cascading", SMOKE, build_cascading, run_cascading),
    ];
    let json = render_json("smoke", &results);
    std::fs::create_dir_all("target").ok();
    std::fs::write("target/BENCH_parallel_smoke.json", &json).ok();
    print!("{json}");

    let Ok(baseline) = std::fs::read_to_string(baseline_path) else {
        eprintln!("smoke: FAIL — missing baseline {baseline_path}");
        return 1;
    };
    let mut failed = false;
    if !baseline.contains("\"bench\": \"parallel\"") {
        eprintln!("smoke: FAIL — baseline is not a parallel-bench artifact");
        failed = true;
    }
    let schema = extract_top(&baseline, "schema");
    if schema != Some(1.0) {
        eprintln!("smoke: FAIL — baseline schema {schema:?} (expected 1)");
        failed = true;
    }
    let Some(base_threads) = extract_top(&baseline, "threads") else {
        eprintln!("smoke: FAIL — baseline carries no thread count");
        return 1;
    };
    for w in ["independent", "cascading"] {
        let key = format!("{w}_speedup_4v1");
        let Some(speedup) = extract(&baseline, &key, "value") else {
            eprintln!("smoke: FAIL — baseline is malformed (no {key})");
            failed = true;
            continue;
        };
        // Throughput ratios only mean something when the baseline machine
        // had the cores: with fewer threads than workers the pool is
        // time-sliced and the honest ratio is ~1x.
        if base_threads >= 4.0 {
            if speedup < 2.0 {
                eprintln!(
                    "smoke: FAIL — baseline {key} = {speedup:.2} < 2x at {base_threads} threads"
                );
                failed = true;
            }
        } else {
            eprintln!(
                "smoke: note — baseline ran on {base_threads} thread(s); \
                 skipping the {key} >= 2x scaling check ({key} = {speedup:.2})"
            );
        }
    }
    if failed {
        1
    } else {
        eprintln!("smoke: OK");
        0
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--smoke") {
        std::process::exit(smoke("BENCH_parallel.json"));
    }

    eprintln!(
        "E14 — persistent worker pool throughput curve ({} threads available)",
        threads()
    );
    let results = [
        bench_workload("independent", FULL, build_independent, run_independent),
        bench_workload("cascading", FULL, build_cascading, run_cascading),
    ];
    let json = render_json("full", &results);
    std::fs::write("BENCH_parallel.json", &json).expect("write BENCH_parallel.json");
    print!("{json}");
    eprintln!("wrote BENCH_parallel.json");
}
