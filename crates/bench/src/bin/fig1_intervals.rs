//! E1 — Figure 1: open and closed intervals of primitive timestamps.
//!
//! Regenerates the paper's interval picture: for cross-site endpoints
//! `T(e1)`, `T(e2)`, the open interval admits members only from global
//! ticks `[g1+2, g2−2]` (a `1·g_g` guard band at each end; non-empty only
//! when `g1 < g2 − 3·g_g`), while the closed interval *widens* to
//! `[g1−1, g2+1]`.
//!
//! Run: `cargo run -p decs-bench --bin fig1_intervals`

use decs_bench::print_table;
use decs_core::{pts, ClosedInterval, OpenInterval};

fn main() {
    println!("E1 / Figure 1 — interval semantics of primitive timestamps");
    println!("(endpoints at different sites; granularity = 1 global tick)\n");

    // Sweep the endpoint gap to exhibit the non-emptiness bound.
    println!("Open interval (T(e1), T(e2)), e1 at global 2:");
    let mut rows = Vec::new();
    for g2 in 4..=9u64 {
        let lo = pts(1, 2, 20);
        let hi = pts(2, g2, g2 * 10);
        let iv = OpenInterval::new(lo, hi).expect("2 < g2 − 1 holds for g2 ≥ 4");
        let range = iv
            .cross_site_global_range()
            .map(|(a, b)| format!("[{a}, {b}]"))
            .unwrap_or_else(|| "∅".to_string());
        rows.push(vec![
            format!("(s1,2) .. (s2,{g2})"),
            format!("{}", g2 - 2),
            iv.cross_site_possibly_nonempty().to_string(),
            range,
        ]);
    }
    print_table(
        &["endpoints", "gap", "non-empty?", "member global ticks"],
        &[20, 5, 11, 20],
        &rows,
    );

    println!("\n  → the paper's bound: non-empty requires g1 < g2 − 3·g_g (gap ≥ 4).\n");

    println!("Closed interval [T(e1), T(e2)] — widens by 1 tick each side:");
    let mut rows = Vec::new();
    for (g1, g2) in [(5u64, 5u64), (5, 6), (4, 7)] {
        let lo = pts(1, g1, g1 * 10);
        let hi = pts(2, g2, g2 * 10);
        let iv = ClosedInterval::new(lo, hi).expect("lo ⪯ hi");
        let (a, b) = iv.cross_site_global_range();
        rows.push(vec![
            format!("(s1,{g1}) .. (s2,{g2})"),
            format!("[{a}, {b}]"),
        ]);
    }
    print_table(&["endpoints", "member global ticks"], &[20, 20], &rows);

    // Verify membership at the boundaries against the exact relations.
    println!("\nBoundary membership checks (probe at fresh site s9):");
    let open = OpenInterval::new(pts(1, 2, 20), pts(2, 8, 80)).unwrap();
    let closed = ClosedInterval::new(pts(1, 5, 50), pts(2, 6, 60)).unwrap();
    let mut rows = Vec::new();
    for g in 2..=9u64 {
        let probe = pts(9, g, g * 10);
        rows.push(vec![
            format!("global {g}"),
            open.contains(&probe).to_string(),
            closed.contains(&probe).to_string(),
        ]);
    }
    print_table(
        &["probe", "∈ (s1@2, s2@8) open", "∈ [s1@5, s2@6] closed"],
        &[10, 20, 22],
        &rows,
    );
    println!("\nE1 regenerated: guard bands and widening match Figure 1.");
}
