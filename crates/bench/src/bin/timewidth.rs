//! E19 — timestamp-kernel width sweep: version-vector compares and joins
//! vs the naive member scans, as composite stamps get wide.
//!
//! Two measurement families, emitted as `BENCH_timewidth.json`:
//!
//! 1. **Kernels** — ns/op of the per-site merge-walk kernels against the
//!    literal Definition 5.3/5.9 member scans, at widths 2/8/32/128, on
//!    the three shapes the operator nodes actually produce:
//!    * `seq_inband` — adjacent-band, fully site-shared pairs, decided by
//!      per-site local clocks (a banded SEQ buffer's in-band `before`
//!      compare);
//!    * `relation_mixed` — half-overlapping site sets in one band (a NOT
//!      guard check / generic `relation` on incomparable stamps);
//!    * `any_join` — `max_op` over half-overlapping stamps (the `Max` an
//!      ANY/SEQ emission runs per detection).
//!
//!    Every shape defeats the O(1) site-mask and band-separation fast
//!    paths, so fast = the vector kernel, naive = the O(|T1|·|T2|) scan.
//! 2. **Workloads** — end-to-end operator throughput with wide stamps:
//!    `long_seq` (one termination sweeping a banded buffer of initiators,
//!    one in-band compare + join per pairing) and `wide_any` (an m-of-n
//!    join per arrival), at each width.
//!
//! Run: `cargo run --release -p decs-bench --bin timewidth` (full, writes
//! `BENCH_timewidth.json` in the current directory).
//! `--smoke` re-measures the kernels quickly, validates the committed
//! `BENCH_timewidth.json` (malformed JSON, a >2x regression of a width-32
//! kernel, or a baseline width-32 speedup below 5x fails with a nonzero
//! exit) and writes its own results under `target/`.

use decs_core::{cts, max_op, max_op_naive, CompositeTimestamp};
use decs_snoop::nodes::any::AnyNode;
use decs_snoop::nodes::seq::SeqNode;
use decs_snoop::nodes::{OperatorNode, Sink};
use decs_snoop::{Context, EventId, Occurrence};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

const WIDTHS: [usize; 4] = [2, 8, 32, 128];

/// A width-`w` stamp: sites `base..base+w`, all in band `g`, locals offset
/// by `salt` (so distinct stamps at one site stay clock-consistent).
fn wide(base: u32, g: u64, w: usize, salt: u64) -> CompositeTimestamp {
    cts(&(0..w as u32)
        .map(|i| (base + i, g, salt + g * 1000 + u64::from(i)))
        .collect::<Vec<_>>())
}

/// Best-of-3 wall-clock ns per call of `f`, after one warmup pass.
fn time_ns<O>(iters: u64, mut f: impl FnMut() -> O) -> f64 {
    for _ in 0..iters / 4 {
        black_box(f());
    }
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        best = best.min(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    best
}

struct Kernel {
    name: String,
    width: usize,
    naive_ns: f64,
    fast_ns: f64,
}

impl Kernel {
    fn speedup(&self) -> f64 {
        self.naive_ns / self.fast_ns
    }
}

/// The kernel sweep. `base_iters` is the per-measurement iteration count
/// at width 2; wider shapes scale it down so naive legs stay bounded.
fn bench_kernels(base_iters: u64) -> Vec<Kernel> {
    let mut out = Vec::new();
    for w in WIDTHS {
        let iters = (base_iters * 2 / w as u64).max(2_000);
        // seq_inband: same sites, adjacent bands, ordered by locals. The
        // band gap is exactly one tick, so the separation fast path
        // (`max_global + 1 < min_global`) cannot fire.
        let lo = wide(0, 100, w, 0);
        let hi = wide(0, 101, w, 0);
        debug_assert!(lo.happens_before(&hi));
        out.push(Kernel {
            name: format!("seq_inband_w{w}"),
            width: w,
            naive_ns: time_ns(iters, || lo.happens_before_naive(&hi)),
            fast_ns: time_ns(iters, || lo.happens_before(&hi)),
        });
        // relation_mixed: half-shared sites in one band, locals ordered on
        // the shared half — incomparable, and neither mask nor band path
        // can short-circuit.
        let a = wide(0, 100, w, 0);
        let b = wide(w as u32 / 2, 100, w, 500_000);
        out.push(Kernel {
            name: format!("relation_mixed_w{w}"),
            width: w,
            naive_ns: time_ns(iters, || a.relation_naive(&b)),
            fast_ns: time_ns(iters, || a.relation(&b)),
        });
        // any_join: Max over the same half-shared pair; the shared run is
        // dominated on one side, so survivors come from both stamps.
        out.push(Kernel {
            name: format!("any_join_w{w}"),
            width: w,
            naive_ns: time_ns(iters, || max_op_naive(&a, &b)),
            fast_ns: time_ns(iters, || max_op(&a, &b)),
        });
    }
    out
}

struct WorkloadRow {
    workload: &'static str,
    width: usize,
    emissions: u64,
    ns_per_emission: f64,
}

/// `long_seq`: a banded buffer of `m` wide initiators swept by repeated
/// in-band terminations (Unrestricted keeps the buffer, so every round
/// does `m` vector compares + `m` joins).
fn long_seq(w: usize, m: usize, rounds: u64) -> WorkloadRow {
    let mut seq: SeqNode<CompositeTimestamp> = SeqNode::new(Context::Unrestricted);
    let mut em = Vec::new();
    let mut tr: Vec<(u64, u64)> = Vec::new();
    {
        let mut sink = Sink::new(EventId(9), &mut em, &mut tr);
        for i in 0..m {
            let occ = Occurrence::bare(EventId(0), wide(0, 100, w, i as u64 * 1_000_000));
            seq.on_child(0, &occ, &mut sink);
        }
        // Warm up scratch + emission capacity.
        let t = Occurrence::bare(EventId(1), wide(0, 101, w, u64::from(u32::MAX)));
        seq.on_child(1, &t, &mut sink);
    }
    assert_eq!(em.len(), m, "long_seq fixture: not all initiators matched");
    let term = Occurrence::bare(EventId(1), wide(0, 101, w, u64::from(u32::MAX)));
    let start = Instant::now();
    for _ in 0..rounds {
        em.clear();
        let mut sink = Sink::new(EventId(9), &mut em, &mut tr);
        seq.on_child(1, &term, &mut sink);
    }
    let emissions = rounds * m as u64;
    WorkloadRow {
        workload: "long_seq",
        width: w,
        emissions,
        ns_per_emission: start.elapsed().as_nanos() as f64 / emissions as f64,
    }
}

/// `wide_any`: ANY(2; …) under Unrestricted re-detects on every arrival;
/// each detection is one `Max` join of two half-overlapping wide stamps.
fn wide_any(w: usize, rounds: u64) -> WorkloadRow {
    let mut any: AnyNode<CompositeTimestamp> = AnyNode::new(Context::Unrestricted, 2, 2);
    let mut em = Vec::new();
    let mut tr: Vec<(u64, u64)> = Vec::new();
    {
        let mut sink = Sink::new(EventId(9), &mut em, &mut tr);
        let a = Occurrence::bare(EventId(0), wide(0, 100, w, 0));
        any.on_child(0, &a, &mut sink);
        let b = Occurrence::bare(EventId(1), wide(w as u32 / 2, 100, w, 500_000));
        any.on_child(1, &b, &mut sink);
    }
    assert_eq!(em.len(), 1, "wide_any fixture: warm-up did not detect");
    let arrival = Occurrence::bare(EventId(1), wide(w as u32 / 2, 100, w, 500_000));
    let start = Instant::now();
    for _ in 0..rounds {
        em.clear();
        let mut sink = Sink::new(EventId(9), &mut em, &mut tr);
        any.on_child(1, &arrival, &mut sink);
    }
    WorkloadRow {
        workload: "wide_any",
        width: w,
        emissions: rounds,
        ns_per_emission: start.elapsed().as_nanos() as f64 / rounds as f64,
    }
}

fn render_json(mode: &str, kernels: &[Kernel], workloads: &[WorkloadRow]) -> String {
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"bench\": \"timewidth\",");
    let _ = writeln!(j, "  \"schema\": 1,");
    let _ = writeln!(j, "  \"mode\": \"{mode}\",");
    let _ = writeln!(j, "  \"threads\": {threads},");
    let _ = writeln!(j, "  \"kernels\": [");
    for (i, k) in kernels.iter().enumerate() {
        let comma = if i + 1 < kernels.len() { "," } else { "" };
        let _ = writeln!(
            j,
            "    {{\"name\": \"{}\", \"width\": {}, \"naive_ns\": {:.2}, \
             \"fast_ns\": {:.2}, \"speedup\": {:.2}}}{comma}",
            k.name,
            k.width,
            k.naive_ns,
            k.fast_ns,
            k.speedup()
        );
    }
    let _ = writeln!(j, "  ],");
    let _ = writeln!(j, "  \"workloads\": [");
    for (i, r) in workloads.iter().enumerate() {
        let comma = if i + 1 < workloads.len() { "," } else { "" };
        let _ = writeln!(
            j,
            "    {{\"workload\": \"{}\", \"width\": {}, \"emissions\": {}, \
             \"ns_per_emission\": {:.1}}}{comma}",
            r.workload, r.width, r.emissions, r.ns_per_emission
        );
    }
    let _ = writeln!(j, "  ]");
    let _ = writeln!(j, "}}");
    j
}

/// Pull `"field": <number>` out of the kernel object named `name`. The
/// baseline file is our own emission, so plain substring scanning is an
/// adequate parser — anything it can't find is treated as malformed.
fn extract(json: &str, name: &str, field: &str) -> Option<f64> {
    let obj = &json[json.find(&format!("\"name\": \"{name}\""))?..];
    let obj = &obj[..obj.find('}')?];
    let at = obj.find(&format!("\"{field}\":"))? + field.len() + 4;
    let rest = &obj[at..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn smoke(baseline_path: &str) -> i32 {
    let kernels = bench_kernels(100_000);
    let json = render_json("smoke", &kernels, &[]);
    std::fs::create_dir_all("target").ok();
    std::fs::write("target/BENCH_timewidth_smoke.json", &json).ok();
    print!("{json}");

    let Ok(baseline) = std::fs::read_to_string(baseline_path) else {
        eprintln!("smoke: FAIL — missing baseline {baseline_path}");
        return 1;
    };
    let mut failed = false;
    // Absolute ns only compare within a machine class; the thread count
    // stamped in the baseline is the proxy (same convention as the
    // hotpath/ingest smokes). Ratios are enforced unconditionally.
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let base_threads = baseline
        .find("\"threads\":")
        .map(|i| i + "\"threads\":".len())
        .and_then(|i| {
            let rest = &baseline[i..];
            let end = rest.find([',', '\n']).unwrap_or(rest.len());
            rest[..end].trim().parse::<usize>().ok()
        });
    let comparable = base_threads.is_none() || base_threads == Some(threads);
    if !comparable {
        eprintln!(
            "smoke: note — baseline ran on {} thread(s), this machine has {}; \
             skipping absolute-ns kernel comparisons",
            base_threads.unwrap(),
            threads
        );
    }
    for k in &kernels {
        let Some(base_fast) = extract(&baseline, &k.name, "fast_ns") else {
            eprintln!(
                "smoke: FAIL — baseline is malformed (no fast_ns for {})",
                k.name
            );
            failed = true;
            continue;
        };
        if k.width == 32 && comparable && k.fast_ns > 2.0 * base_fast {
            eprintln!(
                "smoke: FAIL — {} regressed {:.2} ns → {:.2} ns (>2x)",
                k.name, base_fast, k.fast_ns
            );
            failed = true;
        }
        // The committed artifact must carry the headline: every width-32
        // vector kernel at ≥5x over the naive member scan.
        if k.width == 32 {
            match extract(&baseline, &k.name, "speedup") {
                Some(s) if s >= 5.0 => {}
                Some(s) => {
                    eprintln!("smoke: FAIL — baseline {} speedup {s:.2} < 5x", k.name);
                    failed = true;
                }
                None => {
                    eprintln!(
                        "smoke: FAIL — baseline is malformed (no speedup for {})",
                        k.name
                    );
                    failed = true;
                }
            }
        }
    }
    if failed {
        1
    } else {
        eprintln!("smoke: OK");
        0
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--smoke") {
        std::process::exit(smoke("BENCH_timewidth.json"));
    }

    eprintln!("E19 — timestamp-kernel width sweep (full run)");
    let kernels = bench_kernels(1_000_000);
    let mut workloads = Vec::new();
    for w in WIDTHS {
        workloads.push(long_seq(w, 256, 2_000));
        workloads.push(wide_any(w, 200_000));
    }
    let json = render_json("full", &kernels, &workloads);
    std::fs::write("BENCH_timewidth.json", &json).expect("write BENCH_timewidth.json");
    print!("{json}");
    eprintln!("wrote BENCH_timewidth.json");
}
