//! E12 (reference artifact) — the operator × parameter-context detection
//! matrix, printed from live detectors.
//!
//! One canonical trace per operator; each cell is the number of
//! detections under that context. The same numbers are pinned by
//! `crates/snoop/tests/operator_matrix.rs`; this binary regenerates the
//! table for documentation.
//!
//! Run: `cargo run -p decs-bench --bin context_matrix`

use decs_bench::print_table;
use decs_snoop::{CentralDetector, Context, EventExpr as E};

type Case = (&'static str, E, &'static [(&'static str, u64)]);

fn run(expr: &E, ctx: Context, trace: &[(&str, u64)]) -> usize {
    let mut d = CentralDetector::new();
    for n in ["A", "B", "C"] {
        d.register(n).unwrap();
    }
    d.define("X", expr, ctx).unwrap();
    let mut count = 0;
    for &(n, t) in trace {
        count += d.feed_bare(n, t).unwrap().len();
    }
    // Drain any outstanding timers within a bounded horizon.
    count += d.advance_to(10_000).unwrap().len();
    count
}

fn main() {
    println!("E12 — operator × context detection counts\n");

    const AABB: &[(&str, u64)] = &[("A", 1), ("A", 2), ("B", 3), ("B", 4)];
    const WINDOW: &[(&str, u64)] = &[("A", 1), ("C", 2), ("C", 3), ("B", 5)];
    const ANYT: &[(&str, u64)] = &[("A", 1), ("B", 2), ("C", 3)];

    let cases: Vec<Case> = vec![
        ("A ∧ B on AABB", E::and(E::prim("A"), E::prim("B")), AABB),
        ("A ∨ B on AABB", E::or(E::prim("A"), E::prim("B")), AABB),
        ("A ; B on AABB", E::seq(E::prim("A"), E::prim("B")), AABB),
        (
            "¬(C)[A,B] on ACCB",
            E::not(E::prim("C"), E::prim("A"), E::prim("B")),
            WINDOW,
        ),
        (
            "A(A,C,B) on ACCB",
            E::aperiodic(E::prim("A"), E::prim("C"), E::prim("B")),
            WINDOW,
        ),
        (
            "A*(A,C,B) on ACCB",
            E::aperiodic_star(E::prim("A"), E::prim("C"), E::prim("B")),
            WINDOW,
        ),
        (
            "ANY(2;A,B,C) on ABC",
            E::any(2, vec![E::prim("A"), E::prim("B"), E::prim("C")]),
            ANYT,
        ),
        ("A + 10 on AABB", E::plus(E::prim("A"), 10), AABB),
        (
            "P(A,[7],B) on A..B",
            E::periodic(E::prim("A"), 7, E::prim("B")),
            &[("A", 10), ("B", 41)],
        ),
    ];

    let header = [
        "operator / trace",
        "unrestr",
        "recent",
        "chron",
        "contin",
        "cumul",
    ];
    let widths = [22, 8, 7, 6, 7, 6];
    let mut rows = Vec::new();
    for (label, expr, trace) in &cases {
        let mut cells = vec![(*label).to_string()];
        for ctx in Context::ALL {
            cells.push(run(expr, ctx, trace).to_string());
        }
        rows.push(cells);
    }
    print_table(&header, &widths, &rows);
    println!("\ntraces: AABB = A@1 A@2 B@3 B@4; ACCB = A@1 C@2 C@3 B@5; ABC = A@1 B@2 C@3.");
    println!("These cells are pinned by crates/snoop/tests/operator_matrix.rs.");
}
