//! E4 — the Section 5 worked example: three physical clocks, five
//! composite timestamps, full pairwise relation matrix.
//!
//! Clocks k, l, m have granularity `g = 1/100 s`; the reference clock has
//! `g_z = 1/1000 s`; clocks are synchronized with precision `Π < 1/10 s`;
//! the global granularity is `g_g = 1/10 s`.
//!
//! Run: `cargo run -p decs-bench --bin ex_clocks`

use decs_bench::print_table;
use decs_chronos::{GlobalTimeBase, Granularity, LocalClock, Nanos, Precision, TruncMode};
use decs_core::cts;

fn main() {
    println!("E4 / Section 5 worked example\n");

    // First reproduce the timestamp derivation itself: a local reading of
    // 91548276 ticks of a 1/100 s clock truncates to global tick 9154827.
    let g_local = Granularity::per_second(100).unwrap();
    let base = GlobalTimeBase::new(
        Granularity::per_second(10).unwrap(),
        TruncMode::Floor,
        Precision::from_nanos(99_999_999),
    )
    .unwrap();
    let clock = LocalClock::perfect(g_local);
    let local = clock.read(Nanos(915_482_765_000_000)).unwrap();
    let global = base.global_of_local(local, g_local).unwrap();
    println!(
        "clock reading at true t = 915482.765 s: local = {}, global = {}",
        local.get(),
        global.get()
    );
    assert_eq!(local.get(), 91_548_276);
    assert_eq!(global.get(), 9_154_827);

    // The five composite timestamps (sites: k = 1, l = 2, m = 3).
    let stamps = [
        (
            "T(e1)",
            cts(&[(1, 9_154_827, 91_548_276), (3, 9_154_827, 91_548_277)]),
        ),
        (
            "T(e2)",
            cts(&[(2, 9_154_827, 91_548_276), (1, 9_154_827, 91_548_277)]),
        ),
        (
            "T(e3)",
            cts(&[(3, 9_154_827, 91_548_276), (2, 9_154_827, 91_548_277)]),
        ),
        (
            "T(e4)",
            cts(&[(1, 9_154_828, 91_548_288), (2, 9_154_827, 91_548_277)]),
        ),
        (
            "T(e5)",
            cts(&[(1, 9_154_829, 91_548_289), (2, 9_154_828, 91_548_287)]),
        ),
    ];
    println!("\ncomposite timestamps (k=s1, l=s2, m=s3):");
    for (n, t) in &stamps {
        println!("  {n} = {t}");
    }

    println!("\npairwise relation matrix (row REL column):");
    let header: Vec<&str> = std::iter::once("")
        .chain(stamps.iter().map(|(n, _)| *n))
        .collect();
    let widths = vec![6, 6, 6, 6, 6, 6];
    let mut rows = Vec::new();
    for (n, a) in &stamps {
        let mut cells = vec![(*n).to_string()];
        for (_, b) in &stamps {
            cells.push(a.relation(b).to_string());
        }
        rows.push(cells);
    }
    print_table(&header, &widths, &rows);

    println!("\npaper's reported relations, checked:");
    println!("  T(e1) ≬ T(e2) ≬ T(e3) (pairwise incomparable — shared sites order locally)");
    println!("  T(e4) ~ T(e3)");
    println!("  T(e3) < T(e5)");
    assert!(stamps[0].1.incomparable(&stamps[1].1));
    assert!(stamps[1].1.incomparable(&stamps[2].1));
    assert!(stamps[3].1.concurrent(&stamps[2].1));
    assert!(stamps[2].1.happens_before(&stamps[4].1));
}
