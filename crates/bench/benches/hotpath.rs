//! Criterion benches for the hot-path kernels (E13): each fast-path
//! relation kernel against its naive Definition 5.3/5.9 oracle, on
//! band-separated pairs (cached-bound short circuit) and overlapping
//! pairs (scan fallback), plus the width scaling of the fast paths.
//!
//! The `hotpath` bin regenerates `BENCH_hotpath.json` from the same
//! kernels; this group is the interactive `cargo bench` view.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use decs_bench::concurrent_composite;
use decs_core::{max_op, max_op_naive, CompositeTimestamp};

/// (band-separated same-site, band-separated disjoint-site, overlapping)
/// width-4 pairs, mirroring the bin's kernel matrix.
fn pairs() -> [(CompositeTimestamp, CompositeTimestamp); 3] {
    [
        (
            concurrent_composite(1, 100, 4),
            concurrent_composite(1, 200, 4),
        ),
        (
            concurrent_composite(1, 100, 4),
            concurrent_composite(10, 200, 4),
        ),
        (
            concurrent_composite(1, 100, 4),
            concurrent_composite(5, 100, 4),
        ),
    ]
}

const SHAPES: [&str; 3] = ["band_separated", "disjoint_sites", "overlapping"];

fn bench_relation(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotpath_relation");
    for (shape, (a, b)) in SHAPES.iter().zip(pairs()) {
        g.bench_with_input(BenchmarkId::new("fast", shape), &(), |bch, ()| {
            bch.iter(|| black_box(a.relation(&b)))
        });
        g.bench_with_input(BenchmarkId::new("naive", shape), &(), |bch, ()| {
            bch.iter(|| black_box(a.relation_naive(&b)))
        });
    }
    g.finish();
}

fn bench_happens_before(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotpath_happens_before");
    for (shape, (a, b)) in SHAPES.iter().zip(pairs()) {
        g.bench_with_input(BenchmarkId::new("fast", shape), &(), |bch, ()| {
            bch.iter(|| black_box(a.happens_before(&b)))
        });
        g.bench_with_input(BenchmarkId::new("naive", shape), &(), |bch, ()| {
            bch.iter(|| black_box(a.happens_before_naive(&b)))
        });
    }
    g.finish();
}

fn bench_max_op_kernel(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotpath_max_op");
    for (shape, (a, b)) in SHAPES.iter().zip(pairs()) {
        g.bench_with_input(BenchmarkId::new("fast", shape), &(), |bch, ()| {
            bch.iter(|| black_box(max_op(&a, &b)))
        });
        g.bench_with_input(BenchmarkId::new("naive", shape), &(), |bch, ()| {
            bch.iter(|| black_box(max_op_naive(&a, &b)))
        });
    }
    g.finish();
}

fn bench_fast_vs_width(c: &mut Criterion) {
    // The fast band-separated path is O(1) in the member count; the naive
    // scan is O(|T1|·|T2|). Width sweep makes the asymptotic gap visible.
    let mut g = c.benchmark_group("hotpath_relation_vs_width");
    for width in [1usize, 2, 4, 8, 16] {
        let a = concurrent_composite(1, 100, width);
        let b = concurrent_composite(1, 200, width);
        g.bench_with_input(BenchmarkId::new("fast", width), &(), |bch, ()| {
            bch.iter(|| black_box(a.relation(&b)))
        });
        g.bench_with_input(BenchmarkId::new("naive", width), &(), |bch, ()| {
            bch.iter(|| black_box(a.relation_naive(&b)))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_relation,
    bench_happens_before,
    bench_max_op_kernel,
    bench_fast_vs_width
);
criterion_main!(benches);
