//! Criterion benches for the formal core: primitive relations, composite
//! ordering vs set width, `max(ST)`, and the `Max`/join operators
//! (supports E10's cost-vs-width series).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use decs_bench::{concurrent_composite, random_composite, random_primitive};
use decs_core::{max_op, max_set};
use decs_simnet::SplitMix64;

fn bench_primitive_relations(c: &mut Criterion) {
    let mut rng = SplitMix64::new(1);
    let pairs: Vec<_> = (0..1024)
        .map(|_| {
            (
                random_primitive(&mut rng, 6, 500),
                random_primitive(&mut rng, 6, 500),
            )
        })
        .collect();
    let mut g = c.benchmark_group("primitive");
    g.bench_function("relation", |b| {
        let mut i = 0;
        b.iter(|| {
            let (x, y) = &pairs[i & 1023];
            i += 1;
            black_box(x.relation(y))
        })
    });
    g.bench_function("weak_leq", |b| {
        let mut i = 0;
        b.iter(|| {
            let (x, y) = &pairs[i & 1023];
            i += 1;
            black_box(x.weak_leq(y))
        })
    });
    g.finish();
}

fn bench_composite_ordering(c: &mut Criterion) {
    let mut g = c.benchmark_group("composite_relation_vs_width");
    for width in [1usize, 2, 4, 8, 16] {
        let a = concurrent_composite(1, 100, width);
        let b = concurrent_composite(100, 101, width);
        g.bench_with_input(BenchmarkId::from_parameter(width), &width, |bch, _| {
            bch.iter(|| black_box(a.relation(&b)))
        });
    }
    g.finish();
}

fn bench_max_op(c: &mut Criterion) {
    let mut g = c.benchmark_group("max_op_vs_width");
    for width in [1usize, 2, 4, 8, 16] {
        let a = concurrent_composite(1, 100, width);
        let b = concurrent_composite(100, 100, width);
        g.bench_with_input(BenchmarkId::from_parameter(width), &width, |bch, _| {
            bch.iter(|| black_box(max_op(&a, &b)))
        });
    }
    g.finish();
}

fn bench_max_set(c: &mut Criterion) {
    let mut rng = SplitMix64::new(2);
    let mut g = c.benchmark_group("max_set");
    for n in [4usize, 16, 64] {
        let st: Vec<_> = (0..n).map(|_| random_primitive(&mut rng, 6, 500)).collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &st, |bch, st| {
            bch.iter(|| black_box(max_set(st)))
        });
    }
    g.finish();
}

fn bench_construction(c: &mut Criterion) {
    let mut rng = SplitMix64::new(3);
    c.bench_function("composite_from_primitives_w4", |b| {
        b.iter(|| black_box(random_composite(&mut rng, 6, 500, 4)))
    });
}

criterion_group!(
    benches,
    bench_primitive_relations,
    bench_composite_ordering,
    bench_max_op,
    bench_max_set,
    bench_construction
);
criterion_main!(benches);
