//! Criterion benches for the full distributed engine (E9/E10 companions):
//! end-to-end simulation cost vs site count and vs heartbeat rate.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use decs_chronos::{Granularity, Nanos};
use decs_distrib::{Engine, EngineConfig};
use decs_simnet::ScenarioBuilder;
use decs_snoop::{Context, EventExpr as E};
use decs_workloads::{ArrivalModel, WorkloadSpec};

fn run_engine(sites: u32, heartbeat_ms: u64, trace: &[decs_workloads::Injection]) -> usize {
    let scenario = ScenarioBuilder::new(sites, 2024)
        .max_offset_ns(1_000_000)
        .global_granularity(Granularity::per_second(10).unwrap())
        .build()
        .unwrap();
    let mut engine = Engine::new(
        &scenario,
        EngineConfig {
            heartbeat_interval: Nanos::from_millis(heartbeat_ms),
            ..EngineConfig::default()
        },
        &["A", "B"],
        &[("X", E::seq(E::prim("A"), E::prim("B")), Context::Chronicle)],
    )
    .unwrap();
    let names = ["A", "B"];
    for inj in trace {
        engine
            .inject(inj.at, inj.site, names[inj.event], inj.values.clone())
            .unwrap();
    }
    engine.run_for(Nanos::from_secs(2)).len()
}

fn workload(sites: u32) -> Vec<decs_workloads::Injection> {
    WorkloadSpec {
        sites,
        duration: Nanos::from_millis(500),
        arrivals: ArrivalModel::Poisson {
            mean_ns: 2_000_000 * u64::from(sites),
        },
        event_types: 2,
        seed: 5,
    }
    .generate()
}

fn bench_sites(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_vs_sites");
    g.sample_size(10);
    for sites in [2u32, 4, 8] {
        let trace = workload(sites);
        g.throughput(Throughput::Elements(trace.len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(sites), &trace, |b, trace| {
            b.iter(|| black_box(run_engine(sites, 20, trace)))
        });
    }
    g.finish();
}

fn bench_heartbeat(c: &mut Criterion) {
    let trace = workload(4);
    let mut g = c.benchmark_group("engine_vs_heartbeat");
    g.sample_size(10);
    g.throughput(Throughput::Elements(trace.len() as u64));
    for hb in [5u64, 20, 100] {
        g.bench_with_input(BenchmarkId::from_parameter(hb), &hb, |b, &hb| {
            b.iter(|| black_box(run_engine(4, hb, &trace)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sites, bench_heartbeat);
criterion_main!(benches);
