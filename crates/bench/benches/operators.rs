//! Criterion benches for operator detection throughput (E8): every Snoop
//! operator × parameter context, centralized time domain, plus the
//! centralized-vs-distributed feed cost on identical single-site traces.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use decs_core::{cts, CompositeTimestamp};
use decs_snoop::{CentralTime, Context, Detector, EventExpr as E};

const TRACE_LEN: u64 = 512;

fn operator_exprs() -> Vec<(&'static str, E)> {
    vec![
        ("and", E::and(E::prim("A"), E::prim("B"))),
        ("or", E::or(E::prim("A"), E::prim("B"))),
        ("seq", E::seq(E::prim("A"), E::prim("B"))),
        ("not", E::not(E::prim("C"), E::prim("A"), E::prim("B"))),
        (
            "aperiodic",
            E::aperiodic(E::prim("A"), E::prim("C"), E::prim("B")),
        ),
        (
            "aperiodic_star",
            E::aperiodic_star(E::prim("A"), E::prim("C"), E::prim("B")),
        ),
        (
            "any2of3",
            E::any(2, vec![E::prim("A"), E::prim("B"), E::prim("C")]),
        ),
    ]
}

/// Round-robin A, C, B trace — exercises initiator/mid/terminator paths.
fn trace() -> Vec<(&'static str, u64)> {
    (0..TRACE_LEN)
        .map(|i| {
            let name = match i % 3 {
                0 => "A",
                1 => "C",
                _ => "B",
            };
            (name, i + 1)
        })
        .collect()
}

fn bench_operators_centralized(c: &mut Criterion) {
    let tr = trace();
    let mut g = c.benchmark_group("central_ops");
    g.throughput(Throughput::Elements(TRACE_LEN));
    for (name, expr) in operator_exprs() {
        // Chronicle keeps buffers bounded, so the bench measures steady
        // state rather than unbounded buffer growth.
        g.bench_with_input(BenchmarkId::new(name, "chronicle"), &expr, |b, expr| {
            b.iter(|| {
                let mut d: Detector<CentralTime> = Detector::new();
                for n in ["A", "B", "C"] {
                    d.register(n).unwrap();
                }
                d.define("X", expr, Context::Chronicle).unwrap();
                let mut count = 0usize;
                for &(n, t) in &tr {
                    count += d
                        .feed_named(n, CentralTime(t), vec![])
                        .unwrap()
                        .detected
                        .len();
                }
                black_box(count)
            })
        });
    }
    g.finish();
}

fn bench_contexts(c: &mut Criterion) {
    let tr = trace();
    let expr = E::seq(E::prim("A"), E::prim("B"));
    let mut g = c.benchmark_group("seq_by_context");
    g.throughput(Throughput::Elements(TRACE_LEN));
    for ctx in Context::ALL {
        g.bench_with_input(BenchmarkId::from_parameter(ctx), &ctx, |b, &ctx| {
            b.iter(|| {
                let mut d: Detector<CentralTime> = Detector::new();
                for n in ["A", "B", "C"] {
                    d.register(n).unwrap();
                }
                d.define("X", &expr, ctx).unwrap();
                let mut count = 0usize;
                for &(n, t) in &tr {
                    count += d
                        .feed_named(n, CentralTime(t), vec![])
                        .unwrap()
                        .detected
                        .len();
                }
                black_box(count)
            })
        });
    }
    g.finish();
}

fn bench_central_vs_distributed_feed(c: &mut Criterion) {
    let tr = trace();
    let expr = E::seq(E::prim("A"), E::prim("B"));
    let mut g = c.benchmark_group("time_domain_cost");
    g.throughput(Throughput::Elements(TRACE_LEN));
    g.bench_function("central_ticks", |b| {
        b.iter(|| {
            let mut d: Detector<CentralTime> = Detector::new();
            for n in ["A", "B", "C"] {
                d.register(n).unwrap();
            }
            d.define("X", &expr, Context::Chronicle).unwrap();
            let mut count = 0usize;
            for &(n, t) in &tr {
                count += d
                    .feed_named(n, CentralTime(t), vec![])
                    .unwrap()
                    .detected
                    .len();
            }
            black_box(count)
        })
    });
    g.bench_function("composite_singletons", |b| {
        b.iter(|| {
            let mut d: Detector<CompositeTimestamp> = Detector::new();
            for n in ["A", "B", "C"] {
                d.register(n).unwrap();
            }
            d.define("X", &expr, Context::Chronicle).unwrap();
            let mut count = 0usize;
            for &(n, t) in &tr {
                let ts = cts(&[(1, t / 10, t)]);
                count += d.feed_named(n, ts, vec![]).unwrap().detected.len();
            }
            black_box(count)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_operators_centralized,
    bench_contexts,
    bench_central_vs_distributed_feed
);
criterion_main!(benches);
