//! Criterion benches for the batched notification protocol: end-to-end
//! engine cost vs batch interval (0 = per-event transport), and the raw
//! sharded-detector batch feed vs per-occurrence feeds.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use decs_chronos::{Granularity, Nanos};
use decs_core::CompositeTimestamp;
use decs_distrib::{Engine, EngineConfig};
use decs_simnet::ScenarioBuilder;
use decs_snoop::{Context, EventExpr as E, Occurrence, ShardedDetector};
use decs_workloads::{ArrivalModel, WorkloadSpec};

fn run_engine(sites: u32, batch_ms: u64, trace: &[decs_workloads::Injection]) -> usize {
    let scenario = ScenarioBuilder::new(sites, 2024)
        .max_offset_ns(1_000_000)
        .global_granularity(Granularity::per_second(10).unwrap())
        .build()
        .unwrap();
    let mut engine = Engine::new(
        &scenario,
        EngineConfig {
            batch_interval: Nanos::from_millis(batch_ms),
            ..EngineConfig::default()
        },
        &["A", "B"],
        &[("X", E::seq(E::prim("A"), E::prim("B")), Context::Chronicle)],
    )
    .unwrap();
    let names = ["A", "B"];
    for inj in trace {
        engine
            .inject(inj.at, inj.site, names[inj.event], inj.values.clone())
            .unwrap();
    }
    engine.run_for(Nanos::from_secs(2)).len()
}

fn workload(sites: u32) -> Vec<decs_workloads::Injection> {
    WorkloadSpec {
        sites,
        duration: Nanos::from_millis(500),
        arrivals: ArrivalModel::Poisson {
            mean_ns: 1_000_000 * u64::from(sites),
        },
        event_types: 2,
        seed: 5,
    }
    .generate()
}

/// End-to-end engine cost as the batch interval grows (0 = per-event).
fn bench_batch_interval(c: &mut Criterion) {
    let trace = workload(4);
    let mut g = c.benchmark_group("engine_vs_batch_interval");
    g.sample_size(10);
    g.throughput(Throughput::Elements(trace.len() as u64));
    for batch_ms in [0u64, 5, 20, 100] {
        g.bench_with_input(
            BenchmarkId::from_parameter(batch_ms),
            &batch_ms,
            |b, &batch_ms| b.iter(|| black_box(run_engine(4, batch_ms, &trace))),
        );
    }
    g.finish();
}

/// Raw sharded-detector cost: one `feed_batch` vs N single feeds over the
/// same occurrences (the coordinator's release-path hot loop).
fn bench_feed_batch(c: &mut Criterion) {
    fn detector() -> ShardedDetector<CompositeTimestamp> {
        let mut d = ShardedDetector::new();
        for n in ["A", "B", "C"] {
            d.register(n).unwrap();
        }
        d.define("X", &E::seq(E::prim("A"), E::prim("B")), Context::Chronicle)
            .unwrap();
        d.define("Y", &E::and(E::prim("B"), E::prim("C")), Context::Chronicle)
            .unwrap();
        d
    }
    let proto = detector();
    let names = ["A", "B", "C"];
    let occs: Vec<Occurrence<CompositeTimestamp>> = (0..512u64)
        .map(|k| {
            let ty = proto.catalog().lookup(names[(k % 3) as usize]).unwrap();
            Occurrence::bare(ty, decs_core::cts(&[(0, 10 * k, 100 * k)]))
        })
        .collect();
    let mut g = c.benchmark_group("sharded_feed");
    g.throughput(Throughput::Elements(occs.len() as u64));
    g.bench_function("per_event", |b| {
        b.iter(|| {
            let mut d = detector();
            let mut n = 0usize;
            for occ in &occs {
                n += d.feed(occ.clone()).detected.len();
            }
            black_box(n)
        })
    });
    g.bench_function("batched", |b| {
        b.iter(|| {
            let mut d = detector();
            black_box(d.feed_batch(occs.clone()).detected.len())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_batch_interval, bench_feed_batch);
criterion_main!(benches);
