//! Allocation accounting for the ANY/SEQ join sites.
//!
//! Like `crates/core/tests/alloc_count.rs`, this is a dedicated test
//! binary with exactly one `#[test]` so the counting global allocator sees
//! no concurrent traffic.
//!
//! The fixtures use *bare* occurrences (one empty parameter tuple) under
//! `CentralTime`, so the allocations inherent to an emission are its
//! concatenated parameter vec and the `Arc` wrapping it — every other
//! count is join-site staging. What it pins:
//!
//! * `SeqNode` termination (the banded buffer) allocates exactly two
//!   counts per emitted pairing (params vec + `Arc`) — the matched-index
//!   staging reuses the buffer's scratch, independent of how many
//!   initiators match;
//! * `AnyNode` m-of-n detection allocates the emission plus one
//!   borrowed-parts vec — no per-part occurrence clones, no slot vec.

use decs_snoop::nodes::any::AnyNode;
use decs_snoop::nodes::seq::SeqNode;
use decs_snoop::nodes::{OperatorNode, Sink};
use decs_snoop::{CentralTime, Context, EventId, Occurrence};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs_during<R>(f: impl FnOnce() -> R) -> (usize, R) {
    let before = ALLOCS.load(Ordering::Relaxed);
    let r = f();
    (ALLOCS.load(Ordering::Relaxed) - before, r)
}

fn bare(ty: u32, t: u64) -> Occurrence<CentralTime> {
    Occurrence::bare(EventId(ty), CentralTime(t))
}

#[test]
fn join_sites_allocate_only_per_emission() {
    // --- SEQ: Unrestricted keeps initiators, so repeated terminations are
    // a steady state; M matched initiators must cost exactly M emission
    // Arcs once buffers and scratch are warm.
    const M: usize = 32;
    let mut seq: SeqNode<CentralTime> = SeqNode::new(Context::Unrestricted);
    let mut em: Vec<Occurrence<CentralTime>> = Vec::new();
    let mut tr: Vec<(u64, u64)> = Vec::new();
    {
        let mut sink = Sink::new(EventId(9), &mut em, &mut tr);
        for i in 0..M {
            seq.on_child(0, &bare(0, i as u64 + 1), &mut sink);
        }
        // Warm up: first termination grows the scratch and emissions vec.
        seq.on_child(1, &bare(1, 100), &mut sink);
    }
    assert_eq!(em.len(), M, "fixture drifted: not all initiators matched");
    em.clear();
    em.reserve(M);
    let term = bare(1, 101);
    let (n, ()) = allocs_during(|| {
        let mut sink = Sink::new(EventId(9), &mut em, &mut tr);
        seq.on_child(1, &term, &mut sink);
    });
    assert_eq!(em.len(), M);
    assert_eq!(
        n,
        2 * M,
        "SEQ termination with {M} matches must allocate exactly params + Arc per emission"
    );

    // --- ANY(2 of N): Unrestricted re-fires on every arrival once m slots
    // are populated; a detection must cost one borrowed-parts vec plus the
    // emission Arc, regardless of how many slots the node has.
    const N: usize = 64;
    let mut any: AnyNode<CentralTime> = AnyNode::new(Context::Unrestricted, 2, N);
    let mut em: Vec<Occurrence<CentralTime>> = Vec::new();
    {
        let mut sink = Sink::new(EventId(9), &mut em, &mut tr);
        any.on_child(0, &bare(0, 1), &mut sink);
        // Warm up slot scratch + emissions (this arrival already detects).
        any.on_child(N - 1, &bare(1, 2), &mut sink);
    }
    assert_eq!(em.len(), 1, "fixture drifted: warm-up did not detect");
    em.clear();
    em.reserve(2);
    let arrival = bare(1, 3);
    let (n, ()) = allocs_during(|| {
        let mut sink = Sink::new(EventId(9), &mut em, &mut tr);
        any.on_child(N - 1, &arrival, &mut sink);
    });
    assert_eq!(em.len(), 1);
    assert!(
        n <= 5,
        "ANY detection must allocate at most the parts vec + one emission, got {n}"
    );
}
