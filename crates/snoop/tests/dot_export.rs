//! Graphviz export of compiled detection graphs.

use decs_snoop::CentralTime;
use decs_snoop::{Catalog, Context, EventExpr as E, EventGraph};

#[test]
fn dot_contains_nodes_edges_and_names() {
    let mut cat = Catalog::new();
    for n in ["A", "B", "C"] {
        cat.register(n).unwrap();
    }
    let mut g: EventGraph<CentralTime> = EventGraph::new();
    g.compile(
        &mut cat,
        "X",
        &E::seq(E::and(E::prim("A"), E::prim("B")), E::prim("C")),
        Context::Chronicle,
    )
    .unwrap();
    let dot = g.to_dot(&cat);
    assert!(dot.starts_with("digraph decs {"));
    assert!(dot.ends_with("}\n"));
    // Sources appear with their names; the named root is a doubleoctagon.
    for n in ["\"A\"", "\"B\"", "\"C\"", "\"X\""] {
        assert!(dot.contains(n), "missing {n} in:\n{dot}");
    }
    assert!(dot.contains("doubleoctagon"));
    // Two operator nodes: the AND (box) and the SEQ (named).
    assert_eq!(dot.matches("shape=box").count(), 1);
    // Slot labels 0 and 1 appear on edges.
    assert!(dot.contains("label=\"0\""));
    assert!(dot.contains("label=\"1\""));
}

#[test]
fn dot_is_deterministic_for_same_graph_content() {
    let build = || {
        let mut cat = Catalog::new();
        cat.register("A").unwrap();
        let mut g: EventGraph<CentralTime> = EventGraph::new();
        g.compile(&mut cat, "Alias", &E::prim("A"), Context::Recent)
            .unwrap();
        g.to_dot(&cat)
    };
    assert_eq!(build(), build());
}
