//! Graphviz export of compiled detection graphs and shared plans.

use decs_snoop::CentralTime;
use decs_snoop::{Catalog, Context, EventExpr as E, EventGraph, PlanDetector};

#[test]
fn dot_contains_nodes_edges_and_names() {
    let mut cat = Catalog::new();
    for n in ["A", "B", "C"] {
        cat.register(n).unwrap();
    }
    let mut g: EventGraph<CentralTime> = EventGraph::new();
    g.compile(
        &mut cat,
        "X",
        &E::seq(E::and(E::prim("A"), E::prim("B")), E::prim("C")),
        Context::Chronicle,
    )
    .unwrap();
    let dot = g.to_dot(&cat);
    assert!(dot.starts_with("digraph decs {"));
    assert!(dot.ends_with("}\n"));
    // Sources appear with their names; the named root is a doubleoctagon.
    for n in ["\"A\"", "\"B\"", "\"C\"", "\"X\""] {
        assert!(dot.contains(n), "missing {n} in:\n{dot}");
    }
    assert!(dot.contains("doubleoctagon"));
    // Two operator nodes: the AND (box) and the SEQ (named).
    assert_eq!(dot.matches("shape=box").count(), 1);
    // Slot labels 0 and 1 appear on edges.
    assert!(dot.contains("label=\"0\""));
    assert!(dot.contains("label=\"1\""));
}

#[test]
fn dot_is_deterministic_for_same_graph_content() {
    let build = || {
        let mut cat = Catalog::new();
        cat.register("A").unwrap();
        let mut g: EventGraph<CentralTime> = EventGraph::new();
        g.compile(&mut cat, "Alias", &E::prim("A"), Context::Recent)
            .unwrap();
        g.to_dot(&cat)
    };
    assert_eq!(build(), build());
}

/// Two definitions over the same `Seq(A, B)` body, one of which extends
/// it with a `; C` tail.
fn shared_plan() -> PlanDetector<CentralTime> {
    let mut p: PlanDetector<CentralTime> = PlanDetector::new();
    for n in ["A", "B", "C"] {
        p.register(n).unwrap();
    }
    let body = E::seq(E::prim("A"), E::prim("B"));
    p.define("X", &body, Context::Chronicle).unwrap();
    p.define("Y", &E::seq(body, E::prim("C")), Context::Chronicle)
        .unwrap();
    p
}

#[test]
fn plan_dot_renders_each_shared_node_once() {
    let p = shared_plan();
    let dot = p.to_dot();
    assert!(dot.starts_with("digraph decs_plan {"));
    assert!(dot.ends_with("}\n"));
    // Two unique operator boxes (inner SEQ shared by X and Y, outer SEQ
    // private to Y) — not the three an unshared render would show.
    assert_eq!(p.plan_node_count(), 2);
    assert_eq!(dot.matches("shape=box").count(), 2);
    // The shared SEQ is marked with a double border; exactly one node is.
    assert_eq!(p.shared_node_count(), 1);
    assert_eq!(dot.matches("peripheries=2").count(), 1);
    // Event sources render once each.
    for n in ["\"A\"", "\"B\"", "\"C\""] {
        assert_eq!(dot.matches(n).count(), 1, "{n} duplicated in:\n{dot}");
    }
}

#[test]
fn plan_dot_clusters_definitions_with_fanout_edges() {
    let dot = shared_plan().to_dot();
    // One cluster outline per definition, holding its named composite.
    for d in 0..2 {
        assert!(dot.contains(&format!("subgraph cluster_def{d}")));
    }
    for n in ["\"X\"", "\"Y\""] {
        assert!(dot.contains(n), "missing {n} in:\n{dot}");
    }
    assert_eq!(dot.matches("doubleoctagon").count(), 2);
    // A dashed fan-out edge leaves the shared root for each definition.
    assert_eq!(dot.matches("style=dashed").count(), 2);
    // The shared inner SEQ (node 0) feeds both X's cluster and Y's
    // private outer SEQ.
    assert!(dot.contains("n0 -> def0 [style=dashed]"));
    assert!(dot.contains("n0 -> n1"));
    assert!(dot.contains("n1 -> def1 [style=dashed]"));
}

#[test]
fn plan_dot_is_deterministic() {
    assert_eq!(shared_plan().to_dot(), shared_plan().to_dot());
}
