//! The paper's extension claim, tested as a metamorphic property: on a
//! single site, the distributed semantics (composite timestamps, `<_p`,
//! `Max`) must detect *exactly* the same composite events as the
//! centralized semantics (total order, `max`) — because same-site
//! timestamps are totally ordered by their local ticks.
//!
//! We generate random event traces and random expressions, run both
//! detectors, and compare detection counts and occurrence times.

use decs_core::{cts, CompositeTimestamp};
use decs_snoop::{CentralTime, Context, Detector, EventExpr, Occurrence};
use proptest::prelude::*;

/// Build a random expression over primitive names "A", "B", "C".
fn expr_strategy() -> impl Strategy<Value = EventExpr> {
    let leaf = prop_oneof![
        Just(EventExpr::prim("A")),
        Just(EventExpr::prim("B")),
        Just(EventExpr::prim("C")),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| EventExpr::and(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| EventExpr::or(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| EventExpr::seq(a, b)),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(g, o, c)| EventExpr::not(g, o, c)),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(o, m, c)| EventExpr::aperiodic(o, m, c)),
            (inner.clone(), inner.clone(), inner)
                .prop_map(|(o, m, c)| EventExpr::aperiodic_star(o, m, c)),
        ]
    })
}

fn context_strategy() -> impl Strategy<Value = Context> {
    prop_oneof![
        Just(Context::Unrestricted),
        Just(Context::Recent),
        Just(Context::Chronicle),
        Just(Context::Continuous),
        Just(Context::Cumulative),
    ]
}

/// A trace of (event index 0..3, strictly increasing tick).
fn trace_strategy() -> impl Strategy<Value = Vec<(usize, u64)>> {
    proptest::collection::vec((0usize..3, 1u64..4), 0..24).prop_map(|gaps| {
        let mut t = 0;
        gaps.into_iter()
            .map(|(e, gap)| {
                t += gap;
                (e, t)
            })
            .collect()
    })
}

/// Single-site composite timestamp for local tick `t` (global = t / 10).
fn dist_time(t: u64) -> CompositeTimestamp {
    cts(&[(1, t / 10, t)])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn single_site_distributed_equals_centralized(
        expr in expr_strategy(),
        ctx in context_strategy(),
        trace in trace_strategy(),
    ) {
        let names = ["A", "B", "C"];

        let mut central: Detector<CentralTime> = Detector::new();
        let mut distrib: Detector<CompositeTimestamp> = Detector::new();
        for n in names {
            central.register(n).unwrap();
            distrib.register(n).unwrap();
        }
        central.define("X", &expr, ctx).unwrap();
        distrib.define("X", &expr, ctx).unwrap();

        let mut central_dets: Vec<Occurrence<CentralTime>> = Vec::new();
        let mut distrib_dets: Vec<Occurrence<CompositeTimestamp>> = Vec::new();
        for &(e, t) in &trace {
            let rc = central
                .feed_named(names[e], CentralTime(t), vec![])
                .unwrap();
            prop_assert!(rc.timers.is_empty());
            central_dets.extend(rc.detected);
            let rd = distrib
                .feed_named(names[e], dist_time(t), vec![])
                .unwrap();
            distrib_dets.extend(rd.detected);
        }

        prop_assert_eq!(
            central_dets.len(),
            distrib_dets.len(),
            "detection counts diverge for {} [{}]",
            expr,
            ctx
        );
        for (c, d) in central_dets.iter().zip(distrib_dets.iter()) {
            // The distributed occurrence time must be the single-site stamp
            // of the same tick the centralized detector reported.
            let tick = c.time.get();
            prop_assert_eq!(&d.time, &dist_time(tick), "time diverges for {}", expr);
            // And the constituent parameter lists must match in shape.
            prop_assert_eq!(c.params.len(), d.params.len());
        }
    }
}
