//! The full operator × context semantics matrix, at the graph level.
//!
//! For each operator we fix one canonical trace and assert the exact
//! detection count (and, where meaningful, the detection times) under
//! *every* parameter context. These tables pin the semantics: any change
//! to a node's state machine that alters a cell is caught here.

use decs_snoop::{CentralDetector, CentralTime, Context, EventExpr as E, Occurrence};

/// Run `expr` (over primitives A, B, C) against a trace of (name, tick).
fn run(expr: &E, ctx: Context, trace: &[(&str, u64)]) -> Vec<Occurrence<CentralTime>> {
    let mut d = CentralDetector::new();
    for n in ["A", "B", "C"] {
        d.register(n).unwrap();
    }
    d.define("X", expr, ctx).unwrap();
    let mut out = Vec::new();
    for &(n, t) in trace {
        out.extend(d.feed_bare(n, t).unwrap());
    }
    out
}

fn counts(expr: &E, trace: &[(&str, u64)]) -> [usize; 5] {
    Context::ALL.map(|ctx| run(expr, ctx, trace).len())
}

// Trace used by the binary operators: two initiators, two terminators.
const AABB: [(&str, u64); 4] = [("A", 1), ("A", 2), ("B", 3), ("B", 4)];

#[test]
fn and_matrix() {
    let expr = E::and(E::prim("A"), E::prim("B"));
    // unrestricted, recent, chronicle, continuous, cumulative
    assert_eq!(counts(&expr, &AABB), [4, 2, 2, 2, 1]);
}

#[test]
fn seq_matrix() {
    let expr = E::seq(E::prim("A"), E::prim("B"));
    assert_eq!(counts(&expr, &AABB), [4, 2, 2, 2, 1]);
}

#[test]
fn seq_interleaved_matrix() {
    // A B A B: strict order restricts which pairs exist.
    let trace = [("A", 1), ("B", 2), ("A", 3), ("B", 4)];
    let expr = E::seq(E::prim("A"), E::prim("B"));
    // unrestricted: (1,2),(1,4),(3,4) = 3
    // recent: B@2 with A@1; B@4 with A@3 = 2
    // chronicle: (1,2),(3,4) = 2
    // continuous: B@2 consumes A@1; B@4 consumes A@3 = 2
    // cumulative: B@2 merges {A@1}; B@4 merges {A@3} = 2
    assert_eq!(counts(&expr, &trace), [3, 2, 2, 2, 2]);
}

#[test]
fn or_matrix_is_context_free() {
    let expr = E::or(E::prim("A"), E::prim("B"));
    assert_eq!(counts(&expr, &AABB), [4, 4, 4, 4, 4]);
}

#[test]
fn not_matrix() {
    // Window A..B with guard C.
    let clean = [("A", 1), ("B", 5)];
    let dirty = [("A", 1), ("C", 3), ("B", 5)];
    let expr = E::not(E::prim("C"), E::prim("A"), E::prim("B"));
    assert_eq!(counts(&expr, &clean), [1, 1, 1, 1, 1]);
    assert_eq!(counts(&expr, &dirty), [0, 0, 0, 0, 0]);
    // Two windows, guard inside the first only.
    let mixed = [("A", 1), ("C", 2), ("A", 3), ("B", 5)];
    // unrestricted: window A@3 survives = 1 (A@1 cancelled)
    // recent: only A@3 buffered = 1
    // chronicle: oldest *matching* = A@3 (A@1 fails the guard test) = 1
    // continuous: both windows checked, A@3 survives = 1
    // cumulative: merge of surviving = 1
    assert_eq!(counts(&expr, &mixed), [1, 1, 1, 1, 1]);
}

#[test]
fn aperiodic_matrix() {
    // A C C B C: window open at 1, two mids inside, closed at 4; late C ignored.
    let trace = [("A", 1), ("C", 2), ("C", 3), ("B", 4), ("C", 5)];
    let expr = E::aperiodic(E::prim("A"), E::prim("C"), E::prim("B"));
    assert_eq!(counts(&expr, &trace), [2, 2, 2, 2, 2]);
    // Two overlapping windows: per-mid signalling differs by context.
    let overlap = [("A", 1), ("A", 2), ("C", 3), ("B", 4)];
    // unrestricted/continuous/cumulative: one detection per open window = 2
    // recent: latest window only = 1; chronicle: oldest window = 1
    assert_eq!(counts(&expr, &overlap), [2, 1, 1, 2, 2]);
}

#[test]
fn aperiodic_star_matrix() {
    let trace = [("A", 1), ("C", 2), ("C", 3), ("B", 4)];
    let expr = E::aperiodic_star(E::prim("A"), E::prim("C"), E::prim("B"));
    for ctx in Context::ALL {
        let det = run(&expr, ctx, &trace);
        assert_eq!(det.len(), 1, "{ctx}");
        // opener + 2 mids + closer accumulated.
        assert_eq!(det[0].params.len(), 4, "{ctx}");
        assert_eq!(det[0].time, CentralTime(4), "{ctx}");
    }
    // Two windows closed by one B.
    let overlap = [("A", 1), ("C", 2), ("A", 3), ("B", 5)];
    let c = counts(&expr, &overlap);
    // unrestricted/recent(latest only)/continuous: per-window; chronicle:
    // oldest only; cumulative: merged single.
    assert_eq!(c, [2, 1, 1, 2, 1]);
}

#[test]
fn any_matrix() {
    let expr = E::any(2, vec![E::prim("A"), E::prim("B"), E::prim("C")]);
    let trace = [("A", 1), ("B", 2), ("C", 3)];
    // unrestricted: B@2 fires with A; C@3 fires with {A or B} (terminator
    // picks first non-empty slots) = 2. recent: same buffers kept = 2.
    // chronicle/continuous/cumulative: B@2 consumes A and B; C@3 alone = 1.
    assert_eq!(counts(&expr, &trace), [2, 2, 1, 1, 1]);
}

#[test]
fn plus_fires_per_occurrence() {
    let expr = E::plus(E::prim("A"), 10);
    let mut d = CentralDetector::new();
    for n in ["A", "B", "C"] {
        d.register(n).unwrap();
    }
    d.define("X", &expr, Context::Chronicle).unwrap();
    d.feed_bare("A", 1).unwrap();
    d.feed_bare("A", 5).unwrap();
    let det = d.advance_to(100).unwrap();
    assert_eq!(det.len(), 2);
    assert_eq!(det[0].time, CentralTime(11));
    assert_eq!(det[1].time, CentralTime(15));
}

#[test]
fn periodic_exact_fire_times() {
    let expr = E::periodic(E::prim("A"), 7, E::prim("B"));
    let mut d = CentralDetector::new();
    for n in ["A", "B", "C"] {
        d.register(n).unwrap();
    }
    d.define("X", &expr, Context::Chronicle).unwrap();
    d.feed_bare("A", 10).unwrap();
    let det = d.advance_to(40).unwrap();
    let times: Vec<u64> = det.iter().map(|o| o.time.get()).collect();
    assert_eq!(times, vec![17, 24, 31, 38]);
    d.feed_bare("B", 41).unwrap();
    assert!(d.advance_to(100).unwrap().is_empty());
}

#[test]
fn nested_composites_under_mixed_contexts() {
    // Outer SEQ over an inner AND: each layer keeps its own context.
    let expr = E::seq(E::and(E::prim("A"), E::prim("B")), E::prim("C"));
    let trace = [("A", 1), ("B", 2), ("C", 3), ("A", 4), ("B", 5), ("C", 6)];
    let c = counts(&expr, &trace);
    // chronicle: (A1∧B2);C3 and (A4∧B5);C6 = 2
    assert_eq!(c[2], 2);
    // unrestricted: AND fires at 2 (A1,B2), 5 (A4,B5) and also (A4? no —
    // A4 pairs with B2? yes unrestricted AND pairs across: A4 arrives,
    // pairs with B2 → fires at 4; B5 pairs with A1 and A4 → two more.
    // SEQ then pairs each AND occurrence with every later C.
    assert!(c[0] >= c[2]);
    // every context detects at least the two "clean" groups.
    for (i, n) in c.iter().enumerate() {
        assert!(*n >= 1, "context #{i} detected nothing");
    }
}

#[test]
fn detection_times_use_terminator_max() {
    let expr = E::and(E::prim("A"), E::prim("B"));
    for ctx in Context::ALL {
        let det = run(&expr, ctx, &[("A", 1), ("B", 9)]);
        assert_eq!(det.len(), 1, "{ctx}");
        assert_eq!(det[0].time, CentralTime(9), "{ctx}");
    }
}

#[test]
fn param_accumulation_order_is_initiator_then_terminator() {
    let expr = E::seq(E::prim("A"), E::prim("B"));
    let mut d = CentralDetector::new();
    let a = d.register("A").unwrap();
    let b = d.register("B").unwrap();
    d.register("C").unwrap();
    d.define("X", &expr, Context::Chronicle).unwrap();
    d.feed("A", 1, vec![1i64.into()]).unwrap();
    let det = d.feed("B", 2, vec![2i64.into()]).unwrap();
    assert_eq!(det[0].params[0].source, a);
    assert_eq!(det[0].params[1].source, b);
}
