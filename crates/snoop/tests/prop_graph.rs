//! Randomized graph-level properties: masks filter soundly, detection
//! counts are monotone in the context hierarchy for SEQ, and feeding is
//! deterministic.

use decs_snoop::{CentralDetector, CentralTime, Context, Detector, EventExpr as E, Mask, Value};
use proptest::prelude::*;

fn trace_strategy() -> impl Strategy<Value = Vec<(usize, i64)>> {
    // (event 0/1, integer parameter)
    proptest::collection::vec((0usize..2, 0i64..200), 0..30)
}

fn run_counts(expr: &E, ctx: Context, trace: &[(usize, i64)]) -> usize {
    let names = ["A", "B"];
    let mut d = CentralDetector::new();
    for n in names {
        d.register(n).unwrap();
    }
    d.define("X", expr, ctx).unwrap();
    let mut count = 0;
    for (k, &(ev, v)) in trace.iter().enumerate() {
        count += d
            .feed(names[ev], k as u64 + 1, vec![Value::Int(v)])
            .unwrap()
            .len();
    }
    count
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Masked detection counts equal unmasked detection over the filtered
    /// trace: filtering inside the graph ≡ filtering the input.
    #[test]
    fn mask_equals_prefiltering(trace in trace_strategy(), bound in 0i64..200) {
        let masked = E::seq(
            E::masked(E::prim("A"), Mask::AtLeast { index: 0, min: bound }),
            E::prim("B"),
        );
        let plain = E::seq(E::prim("A"), E::prim("B"));
        let filtered: Vec<(usize, i64)> = trace
            .iter()
            .copied()
            .filter(|&(ev, v)| ev != 0 || v >= bound)
            .collect();
        for ctx in [Context::Chronicle, Context::Unrestricted, Context::Continuous] {
            prop_assert_eq!(
                run_counts(&masked, ctx, &trace),
                run_counts(&plain, ctx, &filtered),
                "ctx {} bound {}", ctx, bound
            );
        }
    }

    /// Chronicle, Continuous and Recent detection counts never exceed the
    /// unrestricted count (restriction property of the contexts).
    #[test]
    fn restricted_contexts_detect_no_more_than_unrestricted(trace in trace_strategy()) {
        let expr = E::seq(E::prim("A"), E::prim("B"));
        let unrestricted = run_counts(&expr, Context::Unrestricted, &trace);
        for ctx in [Context::Recent, Context::Chronicle, Context::Continuous, Context::Cumulative] {
            prop_assert!(run_counts(&expr, ctx, &trace) <= unrestricted, "{ctx}");
        }
    }

    /// AND is commutative in its operands (same counts).
    #[test]
    fn and_is_commutative(trace in trace_strategy()) {
        let ab = E::and(E::prim("A"), E::prim("B"));
        let ba = E::and(E::prim("B"), E::prim("A"));
        for ctx in Context::ALL {
            prop_assert_eq!(run_counts(&ab, ctx, &trace), run_counts(&ba, ctx, &trace));
        }
    }

    /// OR counts are the sum of the operands' occurrence counts.
    #[test]
    fn or_counts_everything(trace in trace_strategy()) {
        let expr = E::or(E::prim("A"), E::prim("B"));
        prop_assert_eq!(run_counts(&expr, Context::Chronicle, &trace), trace.len());
    }

    /// Feeding the same trace twice into fresh detectors is identical
    /// (no hidden global state besides occurrence uids).
    #[test]
    fn detection_is_deterministic(trace in trace_strategy()) {
        let expr = E::aperiodic_star(E::prim("A"), E::prim("B"), E::prim("A"));
        let a = run_counts(&expr, Context::Continuous, &trace);
        let b = run_counts(&expr, Context::Continuous, &trace);
        prop_assert_eq!(a, b);
    }

    /// The generic Detector over CentralTime and the CentralDetector agree
    /// when no timers are involved.
    #[test]
    fn detector_wrappers_agree(trace in trace_strategy()) {
        let expr = E::seq(E::prim("A"), E::prim("B"));
        let names = ["A", "B"];
        let wrapped = run_counts(&expr, Context::Chronicle, &trace);
        let mut raw: Detector<CentralTime> = Detector::new();
        for n in names {
            raw.register(n).unwrap();
        }
        raw.define("X", &expr, Context::Chronicle).unwrap();
        let mut count = 0;
        for (k, &(ev, v)) in trace.iter().enumerate() {
            count += raw
                .feed_named(names[ev], CentralTime(k as u64 + 1), vec![Value::Int(v)])
                .unwrap()
                .detected
                .len();
        }
        prop_assert_eq!(wrapped, count);
    }
}
