//! Lock-free single-producer/single-consumer rings (`parallel` feature).
//!
//! The worker pool's round protocol is strictly SPSC in both directions:
//! the pump is the only thread that enqueues a worker's job and the only
//! thread that dequeues its result, and each worker owns exactly one job
//! consumer and one result producer. A classic Lamport ring — one
//! producer-owned tail, one consumer-owned head, a fixed slot array —
//! therefore needs no locks and no CAS: a push is one relaxed tail read,
//! one acquire head read, one slot write and one release tail store;
//! a pop mirrors it.
//!
//! Capacities are pre-sized to the round protocol (at most one
//! outstanding job and one outstanding result per worker per round, plus
//! slack for a round dispatched while the previous result is still in
//! flight), so a full ring is a pathological condition the pool only
//! spins on briefly and counts (`ring_full_spins`).

#![allow(unsafe_code)] // the sanctioned exception to the crate-level deny

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Shared state of one ring. `head` is only stored by the consumer,
/// `tail` only by the producer; both are monotonically increasing logical
/// indices (slot = index % capacity), so `tail - head` is the occupancy.
struct Ring<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    head: AtomicUsize,
    tail: AtomicUsize,
}

// Slots are only touched by the side that owns them per the head/tail
// protocol; the atomics publish ownership hand-off (release/acquire).
unsafe impl<T: Send> Send for Ring<T> {}
unsafe impl<T: Send> Sync for Ring<T> {}

impl<T> Drop for Ring<T> {
    fn drop(&mut self) {
        // Sole owner at drop time: drain whatever was never popped.
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Relaxed);
        for i in head..tail {
            let slot = self.slots[i % self.slots.len()].get();
            unsafe { (*slot).assume_init_drop() };
        }
    }
}

/// The sending half. Not `Clone` — single producer by construction.
pub(crate) struct Producer<T> {
    ring: Arc<Ring<T>>,
}

/// The receiving half. Not `Clone` — single consumer by construction.
pub(crate) struct Consumer<T> {
    ring: Arc<Ring<T>>,
}

/// A fixed-capacity SPSC ring.
pub(crate) fn ring<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    assert!(capacity > 0, "ring capacity must be positive");
    let slots = (0..capacity)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect::<Vec<_>>()
        .into_boxed_slice();
    let ring = Arc::new(Ring {
        slots,
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
    });
    (
        Producer {
            ring: Arc::clone(&ring),
        },
        Consumer { ring },
    )
}

impl<T> Producer<T> {
    /// Push `value`, or hand it back when the ring is full.
    pub(crate) fn push(&self, value: T) -> Result<(), T> {
        let r = &*self.ring;
        let tail = r.tail.load(Ordering::Relaxed);
        let head = r.head.load(Ordering::Acquire);
        if tail - head == r.slots.len() {
            return Err(value);
        }
        let slot = r.slots[tail % r.slots.len()].get();
        unsafe { (*slot).write(value) };
        r.tail.store(tail + 1, Ordering::Release);
        Ok(())
    }

    /// Whether the matching consumer has been dropped.
    pub(crate) fn closed(&self) -> bool {
        Arc::strong_count(&self.ring) == 1
    }
}

impl<T> Consumer<T> {
    /// Pop the oldest value, or `None` when the ring is empty.
    pub(crate) fn pop(&self) -> Option<T> {
        let r = &*self.ring;
        let head = r.head.load(Ordering::Relaxed);
        let tail = r.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let slot = r.slots[head % r.slots.len()].get();
        let value = unsafe { (*slot).assume_init_read() };
        r.head.store(head + 1, Ordering::Release);
        Some(value)
    }

    /// Whether the matching producer has been dropped (a final `pop`
    /// sweep may still yield values pushed before the drop).
    pub(crate) fn closed(&self) -> bool {
        Arc::strong_count(&self.ring) == 1
    }
}

/// Cooperative backoff for ring waits. Spins briefly (cheap when the
/// other side is mid-operation on another core), then yields, then — for
/// long idle stretches, e.g. a worker waiting for the next round on a
/// loaded single-core machine — sleeps in short naps so an idle pool
/// costs ~nothing. Returns after one step; callers loop around it.
pub(crate) struct Backoff {
    step: u32,
}

impl Backoff {
    const SPINS: u32 = 64;
    const YIELDS: u32 = 256;

    pub(crate) fn new() -> Self {
        Backoff { step: 0 }
    }

    /// Wait one step. Escalates spin → yield → 50 µs nap.
    pub(crate) fn wait(&mut self) {
        if self.step < Self::SPINS {
            std::hint::spin_loop();
        } else if self.step < Self::SPINS + Self::YIELDS {
            std::thread::yield_now();
        } else {
            std::thread::sleep(std::time::Duration::from_micros(50));
        }
        self.step = self.step.saturating_add(1);
    }

    /// Back to the spin tier (progress was made).
    pub(crate) fn reset(&mut self) {
        self.step = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_capacity() {
        let (tx, rx) = ring::<u32>(4);
        for i in 0..4 {
            tx.push(i).unwrap();
        }
        assert_eq!(tx.push(99), Err(99)); // full
        for i in 0..4 {
            assert_eq!(rx.pop(), Some(i));
        }
        assert_eq!(rx.pop(), None);
        // Wraps around the slot array.
        tx.push(7).unwrap();
        assert_eq!(rx.pop(), Some(7));
    }

    #[test]
    fn drops_undelivered_values() {
        let counted = Arc::new(());
        let (tx, rx) = ring::<Arc<()>>(2);
        tx.push(Arc::clone(&counted)).unwrap();
        tx.push(Arc::clone(&counted)).unwrap();
        assert_eq!(Arc::strong_count(&counted), 3);
        drop(tx);
        drop(rx); // ring dropped with 2 queued values
        assert_eq!(Arc::strong_count(&counted), 1);
    }

    #[test]
    fn closed_reports_peer_drop() {
        let (tx, rx) = ring::<u8>(1);
        assert!(!tx.closed());
        drop(rx);
        assert!(tx.closed());
        let (tx2, rx2) = ring::<u8>(1);
        tx2.push(5).unwrap();
        drop(tx2);
        assert!(rx2.closed());
        assert_eq!(rx2.pop(), Some(5)); // drained after close
    }

    #[test]
    fn cross_thread_stream() {
        let (tx, rx) = ring::<u64>(8);
        let producer = std::thread::spawn(move || {
            let mut backoff = Backoff::new();
            for i in 0..10_000u64 {
                let mut v = i;
                loop {
                    match tx.push(v) {
                        Ok(()) => break,
                        Err(back) => {
                            v = back;
                            backoff.wait();
                        }
                    }
                }
                backoff.reset();
            }
        });
        let mut backoff = Backoff::new();
        let mut expect = 0u64;
        while expect < 10_000 {
            match rx.pop() {
                Some(v) => {
                    assert_eq!(v, expect);
                    expect += 1;
                    backoff.reset();
                }
                None => backoff.wait(),
            }
        }
        producer.join().unwrap();
    }
}
