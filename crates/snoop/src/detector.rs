//! Detection drivers.
//!
//! [`Detector`] wraps a catalog and a graph for any time domain and leaves
//! timer servicing to the caller. [`CentralDetector`] is the Section 3
//! centralized semantics: time is a total-order tick counter, so the driver
//! itself can service timer requests from a priority queue — feeding an
//! occurrence at tick `t` first fires every timer due at or before `t`.

use crate::batch::EventBatch;
use crate::context::Context;
use crate::error::Result;
use crate::event::{Catalog, EventId, Occurrence, Value};
use crate::expr::EventExpr;
use crate::graph::{EventGraph, FeedResult, TimerId, TimerRequest};
use crate::plan::{PlanDetector, PlanStats};
use crate::shard::{ShardId, ShardedDetector};
use crate::time::{CentralTime, EventTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A catalog + graph pair for any time domain. Timer requests surface in
/// the returned [`FeedResult`]; the caller decides how to schedule them.
#[derive(Debug, Default)]
pub struct Detector<T: EventTime> {
    catalog: Catalog,
    graph: EventGraph<T>,
}

impl<T: EventTime> Detector<T> {
    /// An empty detector.
    pub fn new() -> Self {
        Detector {
            catalog: Catalog::new(),
            graph: EventGraph::new(),
        }
    }

    /// Register a primitive event type.
    pub fn register(&mut self, name: &str) -> Result<EventId> {
        self.catalog.register(name)
    }

    /// Define a named composite event.
    pub fn define(&mut self, name: &str, expr: &EventExpr, ctx: Context) -> Result<EventId> {
        self.graph.compile(&mut self.catalog, name, expr, ctx)
    }

    /// The catalog (name ↔ id mapping).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The underlying graph.
    pub fn graph(&self) -> &EventGraph<T> {
        &self.graph
    }

    /// Feed a primitive occurrence.
    pub fn feed(&mut self, occ: Occurrence<T>) -> FeedResult<T> {
        self.graph.feed(occ)
    }

    /// Feed by name with parameters.
    pub fn feed_named(&mut self, name: &str, time: T, values: Vec<Value>) -> Result<FeedResult<T>> {
        let ty = self.catalog.lookup(name)?;
        Ok(self.graph.feed(Occurrence::primitive(ty, time, values)))
    }

    /// Deliver a timer with a driver-assigned timestamp.
    pub fn fire_timer(&mut self, id: TimerId, time: T) -> Result<FeedResult<T>> {
        self.graph.fire_timer(id, time)
    }

    /// Advance the low watermark: the caller promises every future stamp's
    /// global ticks are `≥ low`. Evicts provably-dead buffered state and
    /// returns the evicted count (see [`EventGraph::advance_watermark`]).
    pub fn advance_watermark(&mut self, low: u64) -> u64 {
        self.graph.advance_watermark(low)
    }

    /// Total occurrences buffered across operator nodes.
    pub fn buffered_occupancy(&self) -> usize {
        self.graph.buffered_occupancy()
    }

    /// Capture the graph's buffered operator state (see
    /// [`EventGraph::save_state`]). A state saved from a freshly compiled
    /// detector doubles as a "pristine" image to reset to after a site
    /// restart.
    pub fn save_state(&self) -> crate::state::GraphState<T> {
        self.graph.save_state()
    }

    /// Restore previously saved operator state into this detector's graph
    /// (see [`EventGraph::restore_state`]).
    pub fn restore_state(&mut self, state: crate::state::GraphState<T>) -> Result<()> {
        self.graph.restore_state(state)
    }
}

/// Backend of a [`CentralDetector`]: one monolithic graph (the default),
/// one graph per definition (batch fan-out and — with the `parallel`
/// feature — the persistent worker pool), or the hash-consed shared plan,
/// which adds cross-definition operator sharing on top of the sharded
/// execution model.
#[derive(Debug)]
enum Core {
    Mono(Detector<CentralTime>),
    Sharded(ShardedDetector<CentralTime>),
    Plan(PlanDetector<CentralTime>),
}

/// The centralized detector (Section 3): totally ordered ticks with an
/// internal timer queue. Occurrences must be fed in non-decreasing tick
/// order (as a single physical clock produces them).
#[derive(Debug)]
pub struct CentralDetector {
    core: Core,
    /// Due timers: `(fire_tick, owning shard, id)`, min-heap. The shard is
    /// always 0 with the monolithic backend.
    timers: BinaryHeap<Reverse<(u64, ShardId, u64)>>,
    /// Highest tick seen (for monotonicity checking).
    now: u64,
    /// Whether the clock drives buffer GC (on by default).
    gc: bool,
    /// Total entries evicted by watermark GC.
    gc_evicted: u64,
    /// Highest buffered occupancy observed at a GC point.
    buffer_peak: usize,
}

impl Default for CentralDetector {
    fn default() -> Self {
        Self::new()
    }
}

impl CentralDetector {
    /// An empty centralized detector over one monolithic graph.
    pub fn new() -> Self {
        Self::with_core(Core::Mono(Detector::new()))
    }

    /// An empty centralized detector with the definition-sharded backend:
    /// every `define` compiles into its own shard, so [`Self::feed_batch`]
    /// can fan a batch out across definitions and (with the `parallel`
    /// feature) run it on a persistent worker pool. Detection output is
    /// identical to the monolithic backend.
    pub fn sharded() -> Self {
        Self::with_core(Core::Sharded(ShardedDetector::new()))
    }

    /// An empty centralized detector with the hash-consed shared-plan
    /// backend: definitions compile into one plan of unique operator
    /// nodes, so structurally identical subexpressions across definitions
    /// execute once per trigger (see [`PlanDetector`]). Detection output
    /// is identical to the other backends.
    pub fn plan() -> Self {
        Self::with_core(Core::Plan(PlanDetector::new()))
    }

    fn with_core(core: Core) -> Self {
        CentralDetector {
            core,
            timers: BinaryHeap::new(),
            now: 0,
            gc: true,
            gc_evicted: 0,
            buffer_peak: 0,
        }
    }

    /// Attach a persistent worker pool to the sharded or plan backend
    /// (see [`ShardedDetector::enable_pool`]). Returns `true` if the pool
    /// was attached; the monolithic backend always runs serially.
    #[cfg(feature = "parallel")]
    pub fn enable_worker_pool(&mut self, workers: usize) -> bool {
        match &mut self.core {
            Core::Sharded(s) => {
                s.enable_pool(workers);
                true
            }
            Core::Plan(p) => {
                p.enable_pool(workers);
                true
            }
            Core::Mono(_) => false,
        }
    }

    /// Like [`Self::enable_worker_pool`] but bypassing the backend's
    /// available-parallelism cap (see [`ShardedDetector::enable_pool_exact`]).
    #[cfg(feature = "parallel")]
    pub fn enable_worker_pool_exact(&mut self, workers: usize) -> bool {
        match &mut self.core {
            Core::Sharded(s) => {
                s.enable_pool_exact(workers);
                true
            }
            Core::Plan(p) => {
                p.enable_pool_exact(workers);
                true
            }
            Core::Mono(_) => false,
        }
    }

    /// Worker threads in the pool (0 = serial / monolithic backend).
    pub fn worker_count(&self) -> usize {
        match &self.core {
            Core::Sharded(s) => s.worker_count(),
            Core::Plan(p) => p.worker_count(),
            Core::Mono(_) => 0,
        }
    }

    /// Backoff steps spent waiting on full or empty pool rings so far
    /// (0 = serial or never contended).
    pub fn ring_full_spins(&self) -> u64 {
        match &self.core {
            Core::Sharded(s) => s.ring_full_spins(),
            Core::Plan(p) => p.ring_full_spins(),
            Core::Mono(_) => 0,
        }
    }

    /// Topological stages in the definition dependency DAG (1 for the
    /// monolithic backend, which is a single stage by construction).
    pub fn stage_count(&self) -> usize {
        match &self.core {
            Core::Sharded(s) => s.stage_count(),
            Core::Plan(p) => p.stage_count(),
            Core::Mono(_) => 1,
        }
    }

    /// Smallest timer delay any definition can request, or `None` when no
    /// definition uses a temporal operator (`+`, `P`, `P*`).
    pub fn min_timer_delay(&self) -> Option<u64> {
        match &self.core {
            Core::Mono(d) => d.graph().min_timer_delay(),
            Core::Sharded(s) => s.min_timer_delay(),
            Core::Plan(p) => p.min_timer_delay(),
        }
    }

    /// Plan statistics for the active backend. The monolithic and sharded
    /// backends compile every definition independently, so they report
    /// zero shared nodes and a sharing ratio of 0.
    pub fn plan_stats(&self) -> PlanStats {
        match &self.core {
            Core::Mono(d) => {
                let n = d.graph().node_count();
                PlanStats {
                    plan_nodes: n,
                    shared_nodes: 0,
                    position_count: n,
                    sharing_ratio: 0.0,
                }
            }
            Core::Sharded(s) => {
                let n = s.node_count();
                PlanStats {
                    plan_nodes: n,
                    shared_nodes: 0,
                    position_count: n,
                    sharing_ratio: 0.0,
                }
            }
            Core::Plan(p) => p.plan_stats(),
        }
    }

    /// Enable or disable clock-driven buffer GC (on by default). GC is
    /// behavior-preserving, so this only trades memory for time.
    pub fn set_buffer_gc(&mut self, enabled: bool) {
        self.gc = enabled;
    }

    /// Total buffered entries evicted by watermark GC so far.
    pub fn gc_evicted(&self) -> u64 {
        self.gc_evicted
    }

    /// Occurrences currently buffered across operator nodes.
    pub fn buffered_occupancy(&self) -> usize {
        match &self.core {
            Core::Mono(d) => d.buffered_occupancy(),
            Core::Sharded(s) => s.buffered_occupancy(),
            Core::Plan(p) => p.buffered_occupancy(),
        }
    }

    /// Highest occupancy observed at a GC point (post-eviction).
    pub fn buffer_peak(&self) -> usize {
        self.buffer_peak
    }

    /// Register a primitive event type.
    pub fn register(&mut self, name: &str) -> Result<EventId> {
        match &mut self.core {
            Core::Mono(d) => d.register(name),
            Core::Sharded(s) => s.register(name),
            Core::Plan(p) => p.register(name),
        }
    }

    /// Define a named composite event.
    pub fn define(&mut self, name: &str, expr: &EventExpr, ctx: Context) -> Result<EventId> {
        match &mut self.core {
            Core::Mono(d) => d.define(name, expr, ctx),
            Core::Sharded(s) => s.define(name, expr, ctx),
            Core::Plan(p) => p.define(name, expr, ctx),
        }
    }

    /// The catalog.
    pub fn catalog(&self) -> &Catalog {
        match &self.core {
            Core::Mono(d) => d.catalog(),
            Core::Sharded(s) => s.catalog(),
            Core::Plan(p) => p.catalog(),
        }
    }

    /// The current clock tick (highest seen).
    pub fn now(&self) -> CentralTime {
        CentralTime(self.now)
    }

    /// Advance the clock to `tick`, firing every due timer, and return the
    /// composite occurrences those timers produced.
    pub fn advance_to(&mut self, tick: u64) -> Result<Vec<Occurrence<CentralTime>>> {
        let mut detected = Vec::new();
        while let Some(&Reverse((due, shard, id))) = self.timers.peek() {
            if due > tick {
                break;
            }
            self.timers.pop();
            let (det, timers) = match &mut self.core {
                Core::Mono(d) => {
                    let r = d.fire_timer(TimerId(id), CentralTime(due))?;
                    (r.detected, tag_mono(r.timers))
                }
                Core::Sharded(s) => {
                    let r = s.fire_timer(shard, TimerId(id), CentralTime(due))?;
                    (r.detected, r.timers)
                }
                Core::Plan(p) => {
                    let r = p.fire_timer(shard, TimerId(id), CentralTime(due))?;
                    (r.detected, r.timers)
                }
            };
            self.absorb(det, timers, due, &mut detected);
        }
        self.now = self.now.max(tick);
        if self.gc {
            // Feeds are non-decreasing and due timers have been drained, so
            // every future stamp is ≥ `now`: `now` is a valid low watermark.
            self.run_gc();
        }
        Ok(detected)
    }

    /// Feed a primitive occurrence at tick `t` (≥ the last fed tick), first
    /// firing due timers. Returns every named composite occurrence detected
    /// by the timers and the occurrence itself, in order.
    pub fn feed(
        &mut self,
        name: &str,
        tick: u64,
        values: Vec<Value>,
    ) -> Result<Vec<Occurrence<CentralTime>>> {
        let mut detected = self.advance_to(tick)?;
        let ty = self.catalog().lookup(name)?;
        let occ = Occurrence::primitive(ty, CentralTime(tick), values);
        self.feed_occ(occ, tick, &mut detected);
        Ok(detected)
    }

    /// Feed without parameters.
    pub fn feed_bare(&mut self, name: &str, tick: u64) -> Result<Vec<Occurrence<CentralTime>>> {
        self.feed(name, tick, Vec::new())
    }

    /// Feed a whole batch of `(name, tick, values)` triples (ticks
    /// non-decreasing). Semantically identical to calling [`Self::feed`]
    /// on each triple in order. Timer-free definition sets are fed through
    /// the backend's batch path in stretches split at due-timer boundaries
    /// — with the sharded backend that is [`ShardedDetector::feed_batch`],
    /// which runs on the worker pool when one is enabled. Definition sets
    /// with temporal operators arm timers whose due ticks derive from the
    /// arming occurrence, so they keep the ordered per-occurrence path.
    pub fn feed_batch(
        &mut self,
        batch: Vec<(&str, u64, Vec<Value>)>,
    ) -> Result<Vec<Occurrence<CentralTime>>> {
        // Resolve every name first so an unknown name fails atomically,
        // before any state changes.
        let mut occs = std::collections::VecDeque::with_capacity(batch.len());
        for (name, tick, values) in batch {
            let ty = self.catalog().lookup(name)?;
            occs.push_back(Occurrence::primitive(ty, CentralTime(tick), values));
        }
        let batchable = self.min_timer_delay().is_none();
        let mut out = Vec::new();
        while let Some(front) = occs.front() {
            let first = front.time.get();
            out.extend(self.advance_to(first)?);
            if !batchable {
                let occ = occs.pop_front().expect("front exists");
                self.feed_occ(occ, first, &mut out);
                continue;
            }
            // No definition can arm a timer, so the only split points are
            // the timers already queued (none, for timer-free graphs —
            // the general form keeps the invariant obvious).
            let next_due = self
                .timers
                .peek()
                .map_or(u64::MAX, |&Reverse((due, _, _))| due);
            let split = occs
                .iter()
                .position(|o| o.time.get() >= next_due)
                .unwrap_or(occs.len())
                .max(1);
            let prefix: Vec<_> = occs.drain(..split).collect();
            let last = prefix.last().expect("split ≥ 1").time.get();
            let (det, timers) = match &mut self.core {
                Core::Mono(d) => {
                    let mut det = Vec::new();
                    let mut tmr = Vec::new();
                    for occ in prefix {
                        let r = d.feed(occ);
                        det.extend(r.detected);
                        tmr.extend(tag_mono(r.timers));
                    }
                    (det, tmr)
                }
                Core::Sharded(s) => {
                    let r = s.feed_batch(prefix);
                    (r.detected, r.timers)
                }
                Core::Plan(p) => {
                    let r = p.feed_batch(prefix);
                    (r.detected, r.timers)
                }
            };
            debug_assert!(timers.is_empty(), "timer-free graph armed a timer");
            self.absorb(det, timers, last, &mut out);
            self.now = self.now.max(last);
        }
        if self.gc {
            self.run_gc();
        }
        Ok(out)
    }

    /// Feed a columnar batch (ticks non-decreasing). Semantically
    /// identical to materializing every row and calling [`Self::feed`] on
    /// each in order, but the hot path stays struct-of-arrays: timer-free
    /// definition sets hand the whole batch to the backend's columnar
    /// path (which materializes only routed rows), the clock advances
    /// once per stretch instead of once per row, and watermark GC runs
    /// once per call instead of once per occurrence.
    pub fn feed_columnar(
        &mut self,
        batch: &EventBatch<CentralTime>,
    ) -> Result<Vec<Occurrence<CentralTime>>> {
        let n = batch.len();
        let batchable = self.min_timer_delay().is_none();
        let mut out = Vec::new();
        let mut i = 0;
        while i < n {
            let first = batch.time(i).get();
            out.extend(self.advance_to(first)?);
            if !batchable {
                self.feed_occ(batch.occurrence(i), first, &mut out);
                i += 1;
                continue;
            }
            // No definition can arm a timer, so the only split points are
            // the timers already queued (none, for timer-free graphs).
            let next_due = self
                .timers
                .peek()
                .map_or(u64::MAX, |&Reverse((due, _, _))| due);
            let mut split = i + 1;
            while split < n && batch.time(split).get() < next_due {
                split += 1;
            }
            let last = batch.time(split - 1).get();
            let (det, timers) = match &mut self.core {
                Core::Mono(d) => {
                    let mut det = Vec::new();
                    let mut tmr = Vec::new();
                    for k in i..split {
                        let r = d.feed(batch.occurrence(k));
                        det.extend(r.detected);
                        tmr.extend(tag_mono(r.timers));
                    }
                    (det, tmr)
                }
                Core::Sharded(s) => {
                    let r = if i == 0 && split == n {
                        s.feed_batch_columnar(batch)
                    } else {
                        s.feed_batch(batch.materialize_range(i..split))
                    };
                    (r.detected, r.timers)
                }
                Core::Plan(p) => {
                    let r = if i == 0 && split == n {
                        p.feed_batch_columnar(batch)
                    } else {
                        p.feed_batch(batch.materialize_range(i..split))
                    };
                    (r.detected, r.timers)
                }
            };
            debug_assert!(timers.is_empty(), "timer-free graph armed a timer");
            self.absorb(det, timers, last, &mut out);
            self.now = self.now.max(last);
            i = split;
        }
        if self.gc {
            self.run_gc();
        }
        Ok(out)
    }

    /// Resolve a detected occurrence's type name.
    pub fn name_of(&self, occ: &Occurrence<CentralTime>) -> &str {
        self.catalog().name(occ.ty)
    }

    fn feed_occ(
        &mut self,
        occ: Occurrence<CentralTime>,
        base_tick: u64,
        detected: &mut Vec<Occurrence<CentralTime>>,
    ) {
        let (det, timers) = match &mut self.core {
            Core::Mono(d) => {
                let r = d.feed(occ);
                (r.detected, tag_mono(r.timers))
            }
            Core::Sharded(s) => {
                let r = s.feed(occ);
                (r.detected, r.timers)
            }
            Core::Plan(p) => {
                let r = p.feed(occ);
                (r.detected, r.timers)
            }
        };
        self.absorb(det, timers, base_tick, detected);
    }

    fn absorb(
        &mut self,
        det: Vec<Occurrence<CentralTime>>,
        timers: Vec<(ShardId, TimerRequest)>,
        base_tick: u64,
        detected: &mut Vec<Occurrence<CentralTime>>,
    ) {
        for (shard, t) in timers {
            self.timers
                .push(Reverse((base_tick + t.delay_ticks, shard, t.id.0)));
        }
        detected.extend(det);
    }

    fn run_gc(&mut self) {
        let low = self.now;
        let evicted = match &mut self.core {
            Core::Mono(d) => d.advance_watermark(low),
            Core::Sharded(s) => s.advance_watermark(low),
            Core::Plan(p) => p.advance_watermark(low),
        };
        self.gc_evicted += evicted;
        self.buffer_peak = self.buffer_peak.max(self.buffered_occupancy());
    }
}

/// Tag a monolithic graph's timer requests with the lone shard id 0.
fn tag_mono(timers: Vec<TimerRequest>) -> Vec<(ShardId, TimerRequest)> {
    timers.into_iter().map(|t| (0, t)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::EventExpr as E;

    fn detector_with(expr: EventExpr, ctx: Context) -> CentralDetector {
        let mut d = CentralDetector::new();
        for n in ["A", "B", "C"] {
            d.register(n).unwrap();
        }
        d.define("X", &expr, ctx).unwrap();
        d
    }

    #[test]
    fn seq_end_to_end() {
        let mut d = detector_with(E::seq(E::prim("A"), E::prim("B")), Context::Chronicle);
        assert!(d.feed_bare("A", 1).unwrap().is_empty());
        let det = d.feed_bare("B", 2).unwrap();
        assert_eq!(det.len(), 1);
        assert_eq!(d.name_of(&det[0]), "X");
        assert_eq!(det[0].time, CentralTime(2));
    }

    #[test]
    fn plus_fires_via_timer_queue() {
        let mut d = detector_with(E::plus(E::prim("A"), 10), Context::Chronicle);
        assert!(d.feed_bare("A", 5).unwrap().is_empty());
        // Nothing yet at tick 14…
        assert!(d.advance_to(14).unwrap().is_empty());
        // …fires at 15.
        let det = d.advance_to(15).unwrap();
        assert_eq!(det.len(), 1);
        assert_eq!(det[0].time, CentralTime(15));
    }

    #[test]
    fn plus_fires_lazily_on_next_feed() {
        let mut d = detector_with(E::plus(E::prim("A"), 10), Context::Chronicle);
        d.feed_bare("A", 5).unwrap();
        // Feeding B at 20 first services the due timer at 15.
        let det = d.feed_bare("B", 20).unwrap();
        assert_eq!(det.len(), 1);
        assert_eq!(det[0].time, CentralTime(15));
    }

    #[test]
    fn periodic_repeats_until_closed() {
        let mut d = detector_with(
            E::periodic(E::prim("A"), 10, E::prim("B")),
            Context::Chronicle,
        );
        d.feed_bare("A", 0).unwrap();
        let det = d.advance_to(35).unwrap();
        // Fires at 10, 20, 30.
        assert_eq!(det.len(), 3);
        assert_eq!(det[2].time, CentralTime(30));
        // Close the window; later ticks produce nothing.
        d.feed_bare("B", 36).unwrap();
        assert!(d.advance_to(100).unwrap().is_empty());
    }

    #[test]
    fn periodic_star_counts_fires() {
        let mut d = detector_with(
            E::periodic_star(E::prim("A"), 10, E::prim("B")),
            Context::Chronicle,
        );
        d.feed_bare("A", 0).unwrap();
        let det = d.feed_bare("B", 25).unwrap();
        assert_eq!(det.len(), 1);
        assert_eq!(det[0].params.last().unwrap().values[0].as_int(), Some(2));
    }

    #[test]
    fn nested_composite() {
        // X = (A ∧ B) ; C
        let mut d = detector_with(
            E::seq(E::and(E::prim("A"), E::prim("B")), E::prim("C")),
            Context::Chronicle,
        );
        d.feed_bare("B", 1).unwrap();
        d.feed_bare("A", 2).unwrap();
        let det = d.feed_bare("C", 3).unwrap();
        assert_eq!(det.len(), 1);
        assert_eq!(det[0].params.len(), 3);
    }

    #[test]
    fn or_of_seq() {
        let mut d = detector_with(
            E::or(
                E::seq(E::prim("A"), E::prim("B")),
                E::seq(E::prim("A"), E::prim("C")),
            ),
            Context::Chronicle,
        );
        d.feed_bare("A", 1).unwrap();
        assert_eq!(d.feed_bare("C", 2).unwrap().len(), 1);
    }

    #[test]
    fn clock_driven_gc_evicts_dead_not_state() {
        // X = ¬(B)[A, C]: cancelled openers and dead guards accumulate
        // without GC; the clock watermark reclaims them.
        let expr = E::not(E::prim("B"), E::prim("A"), E::prim("C"));
        let mut gc_on = detector_with(expr.clone(), Context::Chronicle);
        let mut gc_off = detector_with(expr, Context::Chronicle);
        gc_off.set_buffer_gc(false);
        let mut on_det = Vec::new();
        let mut off_det = Vec::new();
        for round in 0..50u64 {
            let t = round * 10;
            for (name, dt) in [("A", 0), ("B", 1), ("A", 2), ("C", 3)] {
                on_det.extend(gc_on.feed_bare(name, t + dt).unwrap());
                off_det.extend(gc_off.feed_bare(name, t + dt).unwrap());
            }
        }
        // Same detection stream with and without GC…
        assert_eq!(on_det.len(), off_det.len());
        for (a, b) in on_det.iter().zip(&off_det) {
            assert_eq!(a.time, b.time);
        }
        // …but the GC run reclaimed the dead openers/guards.
        assert!(gc_on.gc_evicted() > 0);
        assert!(gc_on.buffered_occupancy() < gc_off.buffered_occupancy());
    }

    #[test]
    fn now_tracks_feeds() {
        let mut d = detector_with(E::seq(E::prim("A"), E::prim("B")), Context::Chronicle);
        d.feed_bare("A", 7).unwrap();
        assert_eq!(d.now(), CentralTime(7));
    }

    /// Two cross-referencing timer-free definitions plus one timer def
    /// when `with_timers` — exercises both feed_batch arms.
    fn populate(d: &mut CentralDetector, with_timers: bool) {
        for n in ["A", "B", "C"] {
            d.register(n).unwrap();
        }
        d.define("X", &E::seq(E::prim("A"), E::prim("B")), Context::Chronicle)
            .unwrap();
        d.define(
            "Y",
            &E::and(E::prim("X"), E::prim("C")),
            Context::Unrestricted,
        )
        .unwrap();
        if with_timers {
            d.define("D", &E::plus(E::prim("C"), 3), Context::Chronicle)
                .unwrap();
        }
    }

    fn batch_trace() -> Vec<(&'static str, u64)> {
        vec![
            ("A", 1),
            ("B", 2),
            ("C", 3),
            ("A", 4),
            ("C", 5),
            ("B", 9),
            ("C", 10),
            ("B", 12),
        ]
    }

    fn run_serial(mut d: CentralDetector, with_timers: bool) -> Vec<(String, u64)> {
        populate(&mut d, with_timers);
        let mut out = Vec::new();
        for (n, t) in batch_trace() {
            out.extend(d.feed_bare(n, t).unwrap());
        }
        out.extend(d.advance_to(100).unwrap());
        out.iter()
            .map(|o| (d.name_of(o).to_owned(), o.time.get()))
            .collect()
    }

    fn run_batched(mut d: CentralDetector, with_timers: bool) -> Vec<(String, u64)> {
        populate(&mut d, with_timers);
        let batch = batch_trace()
            .into_iter()
            .map(|(n, t)| (n, t, Vec::new()))
            .collect();
        let mut out = d.feed_batch(batch).unwrap();
        out.extend(d.advance_to(100).unwrap());
        out.iter()
            .map(|o| (d.name_of(o).to_owned(), o.time.get()))
            .collect()
    }

    #[test]
    fn sharded_backend_matches_mono() {
        for with_timers in [false, true] {
            let mono = run_serial(CentralDetector::new(), with_timers);
            let sharded = run_serial(CentralDetector::sharded(), with_timers);
            assert!(!mono.is_empty());
            assert_eq!(mono, sharded, "with_timers={with_timers}");
        }
    }

    #[test]
    fn plan_backend_matches_mono() {
        for with_timers in [false, true] {
            let mono = run_serial(CentralDetector::new(), with_timers);
            let plan = run_serial(CentralDetector::plan(), with_timers);
            assert!(!mono.is_empty());
            assert_eq!(mono, plan, "with_timers={with_timers}");
        }
    }

    #[test]
    fn feed_batch_equals_serial_feeds_on_all_backends() {
        for with_timers in [false, true] {
            let reference = run_serial(CentralDetector::new(), with_timers);
            assert_eq!(
                run_batched(CentralDetector::new(), with_timers),
                reference,
                "mono, with_timers={with_timers}"
            );
            assert_eq!(
                run_batched(CentralDetector::sharded(), with_timers),
                reference,
                "sharded, with_timers={with_timers}"
            );
            assert_eq!(
                run_batched(CentralDetector::plan(), with_timers),
                reference,
                "plan, with_timers={with_timers}"
            );
        }
    }

    fn run_columnar(mut d: CentralDetector, with_timers: bool) -> Vec<(String, u64)> {
        populate(&mut d, with_timers);
        let mut batch = EventBatch::new();
        for (n, t) in batch_trace() {
            let ty = d.catalog().lookup(n).unwrap();
            batch.push_bare(ty, CentralTime(t));
        }
        let mut out = d.feed_columnar(&batch).unwrap();
        out.extend(d.advance_to(100).unwrap());
        out.iter()
            .map(|o| (d.name_of(o).to_owned(), o.time.get()))
            .collect()
    }

    #[test]
    fn feed_columnar_equals_serial_feeds_on_all_backends() {
        for with_timers in [false, true] {
            let reference = run_serial(CentralDetector::new(), with_timers);
            for make in [
                CentralDetector::new,
                CentralDetector::sharded,
                CentralDetector::plan,
            ] {
                assert_eq!(
                    run_columnar(make(), with_timers),
                    reference,
                    "with_timers={with_timers}"
                );
            }
        }
    }

    #[test]
    fn plan_stats_report_sharing_only_on_plan_backend() {
        // Two definitions over the same Seq(A, B) body: the plan backend
        // shares the Seq node; the others compile it twice.
        let build = |mut d: CentralDetector| {
            for n in ["A", "B", "C"] {
                d.register(n).unwrap();
            }
            let body = E::seq(E::prim("A"), E::prim("B"));
            d.define("X", &body, Context::Chronicle).unwrap();
            d.define("Y", &body, Context::Chronicle).unwrap();
            d
        };
        let plan = build(CentralDetector::plan()).plan_stats();
        assert_eq!(plan.shared_nodes, 1);
        assert!(plan.sharing_ratio > 0.0);
        assert!(plan.position_count > plan.plan_nodes);
        for other in [
            build(CentralDetector::new()).plan_stats(),
            build(CentralDetector::sharded()).plan_stats(),
        ] {
            assert_eq!(other.shared_nodes, 0);
            assert_eq!(other.sharing_ratio, 0.0);
            assert_eq!(other.position_count, other.plan_nodes);
        }
    }

    #[test]
    fn min_timer_delay_reports_temporal_operators() {
        let mut d = CentralDetector::sharded();
        populate(&mut d, false);
        assert_eq!(d.min_timer_delay(), None);
        let mut d = CentralDetector::sharded();
        populate(&mut d, true);
        assert_eq!(d.min_timer_delay(), Some(3));
        assert_eq!(d.stage_count(), 2); // Y references X
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn pooled_sharded_backend_matches_mono_batches() {
        for with_timers in [false, true] {
            let reference = run_serial(CentralDetector::new(), with_timers);
            for make in [CentralDetector::sharded, CentralDetector::plan] {
                let mut d = make();
                populate(&mut d, with_timers);
                assert!(d.enable_worker_pool_exact(2));
                assert_eq!(d.worker_count(), 2);
                let batch = batch_trace()
                    .into_iter()
                    .map(|(n, t)| (n, t, Vec::new()))
                    .collect();
                let mut out = d.feed_batch(batch).unwrap();
                out.extend(d.advance_to(100).unwrap());
                let got: Vec<(String, u64)> = out
                    .iter()
                    .map(|o| (d.name_of(o).to_owned(), o.time.get()))
                    .collect();
                assert_eq!(got, reference, "with_timers={with_timers}");
            }
        }
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn enable_worker_pool_is_rejected_on_mono_backend() {
        let mut d = CentralDetector::new();
        assert!(!d.enable_worker_pool(4));
        assert_eq!(d.worker_count(), 0);
    }
}
