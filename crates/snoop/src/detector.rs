//! Detection drivers.
//!
//! [`Detector`] wraps a catalog and a graph for any time domain and leaves
//! timer servicing to the caller. [`CentralDetector`] is the Section 3
//! centralized semantics: time is a total-order tick counter, so the driver
//! itself can service timer requests from a priority queue — feeding an
//! occurrence at tick `t` first fires every timer due at or before `t`.

use crate::context::Context;
use crate::error::Result;
use crate::event::{Catalog, EventId, Occurrence, Value};
use crate::expr::EventExpr;
use crate::graph::{EventGraph, FeedResult, TimerId};
use crate::time::{CentralTime, EventTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A catalog + graph pair for any time domain. Timer requests surface in
/// the returned [`FeedResult`]; the caller decides how to schedule them.
#[derive(Debug, Default)]
pub struct Detector<T: EventTime> {
    catalog: Catalog,
    graph: EventGraph<T>,
}

impl<T: EventTime> Detector<T> {
    /// An empty detector.
    pub fn new() -> Self {
        Detector {
            catalog: Catalog::new(),
            graph: EventGraph::new(),
        }
    }

    /// Register a primitive event type.
    pub fn register(&mut self, name: &str) -> Result<EventId> {
        self.catalog.register(name)
    }

    /// Define a named composite event.
    pub fn define(&mut self, name: &str, expr: &EventExpr, ctx: Context) -> Result<EventId> {
        self.graph.compile(&mut self.catalog, name, expr, ctx)
    }

    /// The catalog (name ↔ id mapping).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The underlying graph.
    pub fn graph(&self) -> &EventGraph<T> {
        &self.graph
    }

    /// Feed a primitive occurrence.
    pub fn feed(&mut self, occ: Occurrence<T>) -> FeedResult<T> {
        self.graph.feed(occ)
    }

    /// Feed by name with parameters.
    pub fn feed_named(&mut self, name: &str, time: T, values: Vec<Value>) -> Result<FeedResult<T>> {
        let ty = self.catalog.lookup(name)?;
        Ok(self.graph.feed(Occurrence::primitive(ty, time, values)))
    }

    /// Deliver a timer with a driver-assigned timestamp.
    pub fn fire_timer(&mut self, id: TimerId, time: T) -> Result<FeedResult<T>> {
        self.graph.fire_timer(id, time)
    }

    /// Advance the low watermark: the caller promises every future stamp's
    /// global ticks are `≥ low`. Evicts provably-dead buffered state and
    /// returns the evicted count (see [`EventGraph::advance_watermark`]).
    pub fn advance_watermark(&mut self, low: u64) -> u64 {
        self.graph.advance_watermark(low)
    }

    /// Total occurrences buffered across operator nodes.
    pub fn buffered_occupancy(&self) -> usize {
        self.graph.buffered_occupancy()
    }
}

/// The centralized detector (Section 3): totally ordered ticks with an
/// internal timer queue. Occurrences must be fed in non-decreasing tick
/// order (as a single physical clock produces them).
#[derive(Debug, Default)]
pub struct CentralDetector {
    inner: Detector<CentralTime>,
    /// Due timers: `(fire_tick, id)`, min-heap.
    timers: BinaryHeap<Reverse<(u64, u64)>>,
    /// Highest tick seen (for monotonicity checking).
    now: u64,
    /// Whether the clock drives buffer GC (on by default).
    gc: bool,
    /// Total entries evicted by watermark GC.
    gc_evicted: u64,
    /// Highest buffered occupancy observed at a GC point.
    buffer_peak: usize,
}

impl CentralDetector {
    /// An empty centralized detector.
    pub fn new() -> Self {
        CentralDetector {
            inner: Detector::new(),
            timers: BinaryHeap::new(),
            now: 0,
            gc: true,
            gc_evicted: 0,
            buffer_peak: 0,
        }
    }

    /// Enable or disable clock-driven buffer GC (on by default). GC is
    /// behavior-preserving, so this only trades memory for time.
    pub fn set_buffer_gc(&mut self, enabled: bool) {
        self.gc = enabled;
    }

    /// Total buffered entries evicted by watermark GC so far.
    pub fn gc_evicted(&self) -> u64 {
        self.gc_evicted
    }

    /// Occurrences currently buffered across operator nodes.
    pub fn buffered_occupancy(&self) -> usize {
        self.inner.buffered_occupancy()
    }

    /// Highest occupancy observed at a GC point (post-eviction).
    pub fn buffer_peak(&self) -> usize {
        self.buffer_peak
    }

    /// Register a primitive event type.
    pub fn register(&mut self, name: &str) -> Result<EventId> {
        self.inner.register(name)
    }

    /// Define a named composite event.
    pub fn define(&mut self, name: &str, expr: &EventExpr, ctx: Context) -> Result<EventId> {
        self.inner.define(name, expr, ctx)
    }

    /// The catalog.
    pub fn catalog(&self) -> &Catalog {
        self.inner.catalog()
    }

    /// The current clock tick (highest seen).
    pub fn now(&self) -> CentralTime {
        CentralTime(self.now)
    }

    /// Advance the clock to `tick`, firing every due timer, and return the
    /// composite occurrences those timers produced.
    pub fn advance_to(&mut self, tick: u64) -> Result<Vec<Occurrence<CentralTime>>> {
        let mut detected = Vec::new();
        while let Some(&Reverse((due, id))) = self.timers.peek() {
            if due > tick {
                break;
            }
            self.timers.pop();
            let r = self.inner.fire_timer(TimerId(id), CentralTime(due))?;
            self.absorb(r, due, &mut detected);
        }
        self.now = self.now.max(tick);
        if self.gc {
            // Feeds are non-decreasing and due timers have been drained, so
            // every future stamp is ≥ `now`: `now` is a valid low watermark.
            self.gc_evicted += self.inner.advance_watermark(self.now);
            self.buffer_peak = self.buffer_peak.max(self.inner.buffered_occupancy());
        }
        Ok(detected)
    }

    /// Feed a primitive occurrence at tick `t` (≥ the last fed tick), first
    /// firing due timers. Returns every named composite occurrence detected
    /// by the timers and the occurrence itself, in order.
    pub fn feed(
        &mut self,
        name: &str,
        tick: u64,
        values: Vec<Value>,
    ) -> Result<Vec<Occurrence<CentralTime>>> {
        let mut detected = self.advance_to(tick)?;
        let r = self.inner.feed_named(name, CentralTime(tick), values)?;
        self.absorb(r, tick, &mut detected);
        Ok(detected)
    }

    /// Feed without parameters.
    pub fn feed_bare(&mut self, name: &str, tick: u64) -> Result<Vec<Occurrence<CentralTime>>> {
        self.feed(name, tick, Vec::new())
    }

    /// Resolve a detected occurrence's type name.
    pub fn name_of(&self, occ: &Occurrence<CentralTime>) -> &str {
        self.inner.catalog().name(occ.ty)
    }

    fn absorb(
        &mut self,
        r: FeedResult<CentralTime>,
        base_tick: u64,
        detected: &mut Vec<Occurrence<CentralTime>>,
    ) {
        for t in r.timers {
            self.timers
                .push(Reverse((base_tick + t.delay_ticks, t.id.0)));
        }
        detected.extend(r.detected);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::EventExpr as E;

    fn detector_with(expr: EventExpr, ctx: Context) -> CentralDetector {
        let mut d = CentralDetector::new();
        for n in ["A", "B", "C"] {
            d.register(n).unwrap();
        }
        d.define("X", &expr, ctx).unwrap();
        d
    }

    #[test]
    fn seq_end_to_end() {
        let mut d = detector_with(E::seq(E::prim("A"), E::prim("B")), Context::Chronicle);
        assert!(d.feed_bare("A", 1).unwrap().is_empty());
        let det = d.feed_bare("B", 2).unwrap();
        assert_eq!(det.len(), 1);
        assert_eq!(d.name_of(&det[0]), "X");
        assert_eq!(det[0].time, CentralTime(2));
    }

    #[test]
    fn plus_fires_via_timer_queue() {
        let mut d = detector_with(E::plus(E::prim("A"), 10), Context::Chronicle);
        assert!(d.feed_bare("A", 5).unwrap().is_empty());
        // Nothing yet at tick 14…
        assert!(d.advance_to(14).unwrap().is_empty());
        // …fires at 15.
        let det = d.advance_to(15).unwrap();
        assert_eq!(det.len(), 1);
        assert_eq!(det[0].time, CentralTime(15));
    }

    #[test]
    fn plus_fires_lazily_on_next_feed() {
        let mut d = detector_with(E::plus(E::prim("A"), 10), Context::Chronicle);
        d.feed_bare("A", 5).unwrap();
        // Feeding B at 20 first services the due timer at 15.
        let det = d.feed_bare("B", 20).unwrap();
        assert_eq!(det.len(), 1);
        assert_eq!(det[0].time, CentralTime(15));
    }

    #[test]
    fn periodic_repeats_until_closed() {
        let mut d = detector_with(
            E::periodic(E::prim("A"), 10, E::prim("B")),
            Context::Chronicle,
        );
        d.feed_bare("A", 0).unwrap();
        let det = d.advance_to(35).unwrap();
        // Fires at 10, 20, 30.
        assert_eq!(det.len(), 3);
        assert_eq!(det[2].time, CentralTime(30));
        // Close the window; later ticks produce nothing.
        d.feed_bare("B", 36).unwrap();
        assert!(d.advance_to(100).unwrap().is_empty());
    }

    #[test]
    fn periodic_star_counts_fires() {
        let mut d = detector_with(
            E::periodic_star(E::prim("A"), 10, E::prim("B")),
            Context::Chronicle,
        );
        d.feed_bare("A", 0).unwrap();
        let det = d.feed_bare("B", 25).unwrap();
        assert_eq!(det.len(), 1);
        assert_eq!(det[0].params.last().unwrap().values[0].as_int(), Some(2));
    }

    #[test]
    fn nested_composite() {
        // X = (A ∧ B) ; C
        let mut d = detector_with(
            E::seq(E::and(E::prim("A"), E::prim("B")), E::prim("C")),
            Context::Chronicle,
        );
        d.feed_bare("B", 1).unwrap();
        d.feed_bare("A", 2).unwrap();
        let det = d.feed_bare("C", 3).unwrap();
        assert_eq!(det.len(), 1);
        assert_eq!(det[0].params.len(), 3);
    }

    #[test]
    fn or_of_seq() {
        let mut d = detector_with(
            E::or(
                E::seq(E::prim("A"), E::prim("B")),
                E::seq(E::prim("A"), E::prim("C")),
            ),
            Context::Chronicle,
        );
        d.feed_bare("A", 1).unwrap();
        assert_eq!(d.feed_bare("C", 2).unwrap().len(), 1);
    }

    #[test]
    fn clock_driven_gc_evicts_dead_not_state() {
        // X = ¬(B)[A, C]: cancelled openers and dead guards accumulate
        // without GC; the clock watermark reclaims them.
        let expr = E::not(E::prim("B"), E::prim("A"), E::prim("C"));
        let mut gc_on = detector_with(expr.clone(), Context::Chronicle);
        let mut gc_off = detector_with(expr, Context::Chronicle);
        gc_off.set_buffer_gc(false);
        let mut on_det = Vec::new();
        let mut off_det = Vec::new();
        for round in 0..50u64 {
            let t = round * 10;
            for (name, dt) in [("A", 0), ("B", 1), ("A", 2), ("C", 3)] {
                on_det.extend(gc_on.feed_bare(name, t + dt).unwrap());
                off_det.extend(gc_off.feed_bare(name, t + dt).unwrap());
            }
        }
        // Same detection stream with and without GC…
        assert_eq!(on_det.len(), off_det.len());
        for (a, b) in on_det.iter().zip(&off_det) {
            assert_eq!(a.time, b.time);
        }
        // …but the GC run reclaimed the dead openers/guards.
        assert!(gc_on.gc_evicted() > 0);
        assert!(gc_on.buffered_occupancy() < gc_off.buffered_occupancy());
    }

    #[test]
    fn now_tracks_feeds() {
        let mut d = detector_with(E::seq(E::prim("A"), E::prim("B")), Context::Chronicle);
        d.feed_bare("A", 7).unwrap();
        assert_eq!(d.now(), CentralTime(7));
    }
}
