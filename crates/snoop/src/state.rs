//! Serializable operator-state snapshots.
//!
//! Detection is deterministic over the released-event order, so crash
//! recovery is "restore a snapshot, replay the suffix". The snapshot of a
//! detector is the buffered state of every operator node plus the pending
//! timer bookkeeping — everything else (graph topology, subscriptions,
//! routes) is rebuilt from the definitions, which the recovering process
//! already has.
//!
//! Every operator serializes into the same lowest-common-denominator shape,
//! [`NodeState`]: a vector of counters, a vector of occurrence groups, and
//! a vector of timestamp groups. Each operator documents its own encoding
//! at its `save_state`/`restore_state` impl; a node given a state whose
//! shape it does not recognize fails with
//! [`SnoopError::SnapshotMismatch`](crate::SnoopError) rather than
//! guessing.
//!
//! [`Snapshot`] is the backend-facing trait: both detector backends
//! ([`crate::ShardedDetector`] and [`crate::PlanDetector`]) implement it,
//! as does the [`crate::AnyDetector`] wrapper, producing a
//! [`DetectorState`] that a freshly compiled detector with the *same
//! definitions* can restore.

use crate::error::{Result, SnoopError};
use crate::event::Occurrence;
use crate::time::EventTime;
use serde::{Deserialize, Serialize};

/// The buffered state of one operator node, in a shape-agnostic encoding
/// (see the module docs). An empty `NodeState` is the state of a stateless
/// node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeState<T> {
    /// Scalar counters (timer tags, flags, …).
    pub nums: Vec<u64>,
    /// Groups of buffered occurrences (operand buffers, windows, …).
    pub occs: Vec<Vec<Occurrence<T>>>,
    /// Groups of bare timestamps (guard times, accumulated fire times).
    pub times: Vec<Vec<T>>,
}

impl<T> Default for NodeState<T> {
    fn default() -> Self {
        NodeState {
            nums: Vec::new(),
            occs: Vec::new(),
            times: Vec::new(),
        }
    }
}

impl<T> NodeState<T> {
    /// An empty state (what stateless nodes save).
    pub fn empty() -> Self {
        NodeState::default()
    }

    /// Whether every component is empty.
    pub fn is_empty(&self) -> bool {
        self.nums.is_empty() && self.occs.is_empty() && self.times.is_empty()
    }
}

/// Shape-mismatch error helper used by `restore_state` impls.
pub(crate) fn shape_err(node: &str) -> SnoopError {
    SnoopError::SnapshotMismatch(format!("{node}: unrecognized state shape"))
}

/// Largest occurrence uid buffered anywhere in `nodes` (0 when none).
/// Restore impls bump the process-wide uid counter past this so fresh
/// occurrences minted after recovery cannot collide with restored ones
/// (the self-pairing guard compares uids).
pub(crate) fn max_buffered_uid<T>(nodes: &[NodeState<T>]) -> u64 {
    nodes
        .iter()
        .flat_map(|n| n.occs.iter())
        .flat_map(|group| group.iter())
        .map(|o| o.uid)
        .max()
        .unwrap_or(0)
}

/// The state of one compiled [`crate::EventGraph`]: per-node operator
/// states (in node-build order, which is deterministic per expression) and
/// the pending-timer table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphState<T> {
    /// One entry per graph node, in build order.
    pub nodes: Vec<NodeState<T>>,
    /// Pending timers as `(timer id, node index, node-internal tag)`,
    /// sorted by timer id.
    pub timers: Vec<(u64, u32, u64)>,
    /// The next timer id the graph will assign.
    pub next_timer: u64,
}

/// Pending-timer bookkeeping of one definition inside a shared plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DefTimers {
    /// Pending timers as `(timer id, position index, node-internal tag)`,
    /// sorted by timer id.
    pub timers: Vec<(u64, u32, u64)>,
    /// The next timer id this definition will assign.
    pub next_timer: u64,
}

/// The state of a shared-plan detector: per-plan-node operator states (in
/// node-creation order) and per-definition timer tables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanState<T> {
    /// One entry per plan node, in creation order.
    pub nodes: Vec<NodeState<T>>,
    /// Per-plan-node executed-delivery counters, in creation order.
    /// Restored so the hash-consing gate (a later `define` must not reuse
    /// a node that has executed) survives recovery.
    pub execs: Vec<u64>,
    /// One entry per definition, in definition order.
    pub defs: Vec<DefTimers>,
}

/// A whole detector's buffered state, tagged by backend. Restoring requires
/// a detector compiled from the same definitions with the same backend.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DetectorState<T> {
    /// One [`GraphState`] per definition shard.
    Sharded(Vec<GraphState<T>>),
    /// The hash-consed shared plan's state.
    Plan(PlanState<T>),
}

/// Save/restore of a detector's buffered operator state. Restoring into a
/// detector whose compiled shape differs from the saved one (different
/// definitions, different backend) fails with
/// [`SnoopError::SnapshotMismatch`](crate::SnoopError).
pub trait Snapshot<T: EventTime> {
    /// Serialize the buffered state of every operator node plus timer
    /// bookkeeping.
    fn save_state(&self) -> DetectorState<T>;

    /// Restore a state produced by [`Snapshot::save_state`] on a detector
    /// compiled from the same definitions.
    fn restore_state(&mut self, state: DetectorState<T>) -> Result<()>;
}
