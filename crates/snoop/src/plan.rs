//! Shared, hash-consed plan IR with cross-definition operator sharing.
//!
//! [`crate::ShardedDetector`] compiles every definition into its own
//! [`crate::graph::EventGraph`], so `Seq(A, B)` appearing under ten
//! definitions is compiled — and fed — ten times. [`PlanDetector`]
//! compiles all definitions into **one** plan of unique operator nodes:
//! structurally identical subexpressions (same operator, same context,
//! same children) hash-cons to a single [`PlanNode`] with multi-parent
//! fan-out, and each definition keeps a lightweight [`DefView`] of
//! *positions* (one per subexpression occurrence) that routes the shared
//! node's output to the definition's own parents.
//!
//! # Bit-for-bit equivalence
//!
//! The plan reproduces the sharded detector's output exactly — same
//! detections, same order, same timer tags — which `tests/prop_plan.rs`
//! pins property-style. Three mechanisms make this work:
//!
//! * **Execute-once + replay log** for stateful operators (`∧`, `;`, `¬`,
//!   `A`, `A*`, `ANY`): the first definition cursor to reach a shared node
//!   for a given delivery executes the operator and logs the emissions;
//!   later cursors *replay* the log, re-stamping each emission with their
//!   own synthetic event type and a fresh uid — exactly what their private
//!   copy of the operator would have produced (these operators only emit
//!   combined occurrences, which always carry fresh uids).
//! * **Always re-execute** for stateless forwarders (`∨`, masks,
//!   aliases): forwarding preserves the *input* occurrence's uid, which
//!   the self-pairing guard upstream operators apply depends on
//!   (`E ∧ E` must not pair an occurrence with itself). Re-executing a
//!   pure forwarder per position is free and keeps each definition's uid
//!   flow identical to independent compilation.
//! * **No consing of temporal operators** (`+`, `P`, `P*`): their timer
//!   tags and periodic state are driver-visible, so each definition keeps
//!   a private node (their *subexpressions* still share). Since cons keys
//!   embed child node ids, every ancestor of a temporal operator is
//!   automatically private too.
//!
//! Structural consing is deliberately **not** modulo commutativity:
//! `And(a, b)` and `And(b, a)` build their children in opposite order, so
//! a shared trigger reaches the two operand slots in opposite order and
//! the emitted parameter lists differ. Canonicalization (see
//! [`crate::expr::EventExpr::canonicalize`]) exists at the expression
//! layer for callers that *want* to opt into commutative normalization
//! before defining.

use crate::batch::EventBatch;
use crate::context::Context;
use crate::error::{Result, SnoopError};
use crate::event::{Catalog, EventId, Occurrence};
use crate::expr::EventExpr;
use crate::graph::{FeedResult, TimerId, TimerRequest};
use crate::nodes::mask::Mask;
use crate::nodes::{self, OperatorNode, Sink};
use crate::shard::{sort_canonical, ShardFeedResult, ShardId, ShardedDetector};
use crate::time::EventTime;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::fmt;

/// What a plan node's operand subscribes to: a leaf event type or another
/// plan node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum ChildKey {
    /// A primitive (or referenced named-composite) event type.
    Event(EventId),
    /// An internal plan node, by index.
    Node(usize),
}

/// Structural hash-consing key: operator + context + children. Two
/// subexpressions build the same plan node iff their keys are equal.
/// `Or`/`Mask`/`Alias` carry no context (the operators ignore it);
/// temporal operators never get a key (see module docs).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum ConsKey {
    Alias(ChildKey),
    And(Context, ChildKey, ChildKey),
    Or(ChildKey, ChildKey),
    Seq(Context, ChildKey, ChildKey),
    Not(Context, ChildKey, ChildKey, ChildKey),
    Aperiodic(Context, ChildKey, ChildKey, ChildKey),
    AperiodicStar(Context, ChildKey, ChildKey, ChildKey),
    Any(Context, usize, Vec<ChildKey>),
    Mask(Mask, ChildKey),
}

/// One unique operator instance in the shared plan.
pub(crate) struct PlanNode<T: EventTime> {
    pub(crate) op: Box<dyn OperatorNode<T>>,
    /// Every `(definition, position)` bound to this node, in bind order.
    /// Length > 1 means the node is shared.
    pub(crate) bound: Vec<(u32, u32)>,
    /// Operand sources `(child, slot)` in subscribe order (dot export).
    pub(crate) children: Vec<(ChildKey, usize)>,
    /// Operator label for diagnostics/dot.
    pub(crate) label: &'static str,
    /// Pure forwarders re-execute per position instead of logging.
    pub(crate) stateless: bool,
    /// Deliveries executed on this node so far.
    pub(crate) exec: u64,
    /// Delivery index of `log[0]` (trimmed prefix).
    pub(crate) base: u64,
    /// Emissions of each executed delivery still awaiting replay.
    pub(crate) log: Vec<Vec<Occurrence<T>>>,
}

impl<T: EventTime> fmt::Debug for PlanNode<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PlanNode")
            .field("label", &self.label)
            .field("bound", &self.bound)
            .field("children", &self.children)
            .field("stateless", &self.stateless)
            .field("exec", &self.exec)
            .finish()
    }
}

/// One subexpression occurrence inside a definition: which plan node
/// implements it, what event type its emissions carry for *this*
/// definition, and where they go next.
#[derive(Debug)]
pub(crate) struct Position {
    /// The plan node implementing this subexpression.
    pub(crate) node: usize,
    /// Synthetic (or, at the root, named) event type of this position.
    pub(crate) emits: EventId,
    /// Whether `emits` is the definition's user-visible name.
    pub(crate) named: bool,
    /// Subscribing parent positions `(position, slot)` within the same
    /// definition.
    pub(crate) parents: Vec<(u32, usize)>,
    /// Deliveries this cursor has consumed from `node` (equals the node's
    /// `exec` whenever the detector is quiescent).
    pub(crate) seen: u64,
}

/// A definition's private view of the shared plan.
#[derive(Debug)]
pub(crate) struct DefView {
    /// The named composite event this definition detects.
    pub(crate) emits: EventId,
    /// Event types that can make this definition react.
    pub(crate) subscribed: BTreeSet<EventId>,
    /// Subexpression positions in build (bottom-up) order.
    pub(crate) positions: Vec<Position>,
    /// Leaf event type → subscribing positions `(position, slot)`.
    pub(crate) subs: HashMap<EventId, Vec<(u32, usize)>>,
    /// Outstanding timers → `(position, node-internal tag)`.
    pub(crate) timers: HashMap<TimerId, (u32, u64)>,
    pub(crate) next_timer: u64,
}

/// Mutable access to plan nodes by id — implemented by the detector's
/// dense `Vec` and (under `parallel`) by the sparse per-worker cell, so
/// the feed path is written once.
pub(crate) trait NodeStore<T: EventTime> {
    /// The node with id `id`.
    fn node_mut(&mut self, id: usize) -> &mut PlanNode<T>;
}

impl<T: EventTime> NodeStore<T> for Vec<PlanNode<T>> {
    fn node_mut(&mut self, id: usize) -> &mut PlanNode<T> {
        &mut self[id]
    }
}

/// Where a compiled subexpression delivers its occurrences from.
#[derive(Clone, Copy)]
enum Src {
    /// A leaf event type (primitive or previously named composite).
    Event(EventId),
    /// A position (by index) in the definition under construction.
    Pos(u32),
}

fn key_of(def: &DefView, s: Src) -> ChildKey {
    match s {
        Src::Event(e) => ChildKey::Event(e),
        Src::Pos(p) => ChildKey::Node(def.positions[p as usize].node),
    }
}

/// Deliver `occ` to `pos`'s plan node on operand `slot` and return the
/// emissions (typed for this position) plus any timer requests.
fn deliver<T: EventTime>(
    store: &mut impl NodeStore<T>,
    pos: &mut Position,
    slot: usize,
    occ: &Occurrence<T>,
) -> (Vec<Occurrence<T>>, Vec<(u64, u64)>) {
    let node = store.node_mut(pos.node);
    let mut emissions = Vec::new();
    let mut timer_reqs = Vec::new();
    if node.stateless {
        // Pure forwarder: re-execute per position so each definition's
        // emission keeps its own input's uid (self-pairing guard).
        let mut sink = Sink::new(pos.emits, &mut emissions, &mut timer_reqs);
        node.op.on_child(slot, occ, &mut sink);
        return (emissions, timer_reqs);
    }
    if node.bound.len() == 1 {
        // Private node: plain execution, counters kept in lockstep so a
        // later define may still cons onto it while `exec == 0`.
        {
            let mut sink = Sink::new(pos.emits, &mut emissions, &mut timer_reqs);
            node.op.on_child(slot, occ, &mut sink);
        }
        node.exec += 1;
        pos.seen += 1;
        return (emissions, timer_reqs);
    }
    if pos.seen == node.exec {
        // First cursor to arrive: execute once and log for the others.
        {
            let mut sink = Sink::new(pos.emits, &mut emissions, &mut timer_reqs);
            node.op.on_child(slot, occ, &mut sink);
        }
        debug_assert!(
            timer_reqs.is_empty(),
            "shared stateful nodes never request timers"
        );
        node.log.push(emissions.clone());
        node.exec += 1;
        pos.seen += 1;
        (emissions, timer_reqs)
    } else {
        // Replay: re-stamp each logged emission with this position's event
        // type and a fresh uid — exactly what a private copy's combining
        // emission would have carried.
        debug_assert!(pos.seen < node.exec, "cursor ahead of node execution");
        let idx = (pos.seen - node.base) as usize;
        let replayed = node.log[idx]
            .iter()
            .map(|e| Occurrence::with_params(pos.emits, e.time.clone(), e.params.clone()))
            .collect();
        pos.seen += 1;
        (replayed, timer_reqs)
    }
}

/// Route one emission batch from position `p`: register timers, enqueue
/// parent deliveries, record named detections. Each emission is cloned
/// once per subscriber *minus one* — the last parent (or, for a named
/// position with no parents, the detection list) receives it by move.
fn postprocess_def<T: EventTime>(
    def: &mut DefView,
    p: u32,
    emissions: Vec<Occurrence<T>>,
    timer_reqs: Vec<(u64, u64)>,
    queue: &mut VecDeque<(u32, usize, Occurrence<T>)>,
    result: &mut FeedResult<T>,
) {
    for (tag, delay) in timer_reqs {
        let id = TimerId(def.next_timer);
        def.next_timer += 1;
        def.timers.insert(id, (p, tag));
        result.timers.push(TimerRequest {
            id,
            delay_ticks: delay,
        });
    }
    let pos = &def.positions[p as usize];
    let named = pos.named;
    for occ in emissions {
        match pos.parents.split_last() {
            Some((&(last, lslot), rest)) => {
                for &(parent, slot) in rest {
                    queue.push_back((parent, slot, occ.clone()));
                }
                if named {
                    queue.push_back((last, lslot, occ.clone()));
                    result.detected.push(occ);
                } else {
                    queue.push_back((last, lslot, occ));
                }
            }
            None => {
                if named {
                    result.detected.push(occ);
                }
            }
        }
    }
}

/// BFS over one definition's queued deliveries. `queue` is borrowed so
/// callers on the hot path can reuse one allocation across triggers; it
/// is empty again on return.
fn drain_def<T: EventTime>(
    store: &mut impl NodeStore<T>,
    def: &mut DefView,
    queue: &mut VecDeque<(u32, usize, Occurrence<T>)>,
    result: &mut FeedResult<T>,
) {
    while let Some((p, slot, occ)) = queue.pop_front() {
        let (emissions, timer_reqs) = {
            let pos = &mut def.positions[p as usize];
            deliver(store, pos, slot, &occ)
        };
        postprocess_def(def, p, emissions, timer_reqs, queue, result);
    }
}

/// Feed one occurrence through one definition's view of the plan.
pub(crate) fn feed_def_into<T: EventTime>(
    store: &mut impl NodeStore<T>,
    def: &mut DefView,
    occ: &Occurrence<T>,
    queue: &mut VecDeque<(u32, usize, Occurrence<T>)>,
) -> FeedResult<T> {
    let mut result = FeedResult {
        detected: Vec::new(),
        timers: Vec::new(),
    };
    let Some(subs) = def.subs.get(&occ.ty) else {
        return result;
    };
    debug_assert!(queue.is_empty(), "scratch queue must start empty");
    for &(p, slot) in subs {
        queue.push_back((p, slot, occ.clone()));
    }
    drain_def(store, def, queue, &mut result);
    result
}

/// Like [`feed_def_into`] but takes the trigger by move: the last
/// subscribing position receives the original, the rest clones — the
/// common single-subscriber route never clones at all.
pub(crate) fn feed_def_into_owned<T: EventTime>(
    store: &mut impl NodeStore<T>,
    def: &mut DefView,
    occ: Occurrence<T>,
    queue: &mut VecDeque<(u32, usize, Occurrence<T>)>,
) -> FeedResult<T> {
    let mut result = FeedResult {
        detected: Vec::new(),
        timers: Vec::new(),
    };
    let Some(subs) = def.subs.get(&occ.ty) else {
        return result;
    };
    debug_assert!(queue.is_empty(), "scratch queue must start empty");
    let (&(last, lslot), rest) = subs.split_last().expect("sub lists are non-empty");
    for &(p, slot) in rest {
        queue.push_back((p, slot, occ.clone()));
    }
    queue.push_back((last, lslot, occ));
    drain_def(store, def, queue, &mut result);
    result
}

/// Counts describing a compiled plan's degree of sharing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlanStats {
    /// Unique operator nodes in the plan.
    pub plan_nodes: usize,
    /// Plan nodes bound by more than one `(definition, position)`.
    pub shared_nodes: usize,
    /// Total subexpression positions across all definitions (what an
    /// unshared compilation would have built as nodes).
    pub position_count: usize,
    /// `1 - plan_nodes / position_count`: fraction of operator instances
    /// eliminated by sharing (0 with no definitions).
    pub sharing_ratio: f64,
}

/// Reusable hot-path buffers for the serial cascade. Kept on the
/// detector so the per-event loop of a batch feed allocates nothing:
/// the current wave, the next wave, the per-trigger detection round and
/// the BFS delivery queue all recycle their capacity across triggers.
/// Every buffer is empty between public calls.
#[derive(Debug)]
struct Scratch<T> {
    wave: Vec<Occurrence<T>>,
    next: Vec<Occurrence<T>>,
    round: Vec<Occurrence<T>>,
    queue: VecDeque<(u32, usize, Occurrence<T>)>,
}

impl<T> Default for Scratch<T> {
    fn default() -> Self {
        Scratch {
            wave: Vec::new(),
            next: Vec::new(),
            round: Vec::new(),
            queue: VecDeque::new(),
        }
    }
}

/// A catalog plus **one shared plan** across all composite definitions,
/// with per-definition views routing occurrences through it.
///
/// Drop-in replacement for [`ShardedDetector`] — same surface (`define`,
/// `feed`, `feed_batch`, `fire_timer(shard, …)`, watermark GC, the
/// `parallel` pool) and bit-for-bit identical output — but structurally
/// identical subexpressions across definitions execute once instead of
/// once per definition.
#[derive(Debug, Default)]
pub struct PlanDetector<T: EventTime> {
    catalog: Catalog,
    nodes: Vec<PlanNode<T>>,
    cons: HashMap<ConsKey, usize>,
    defs: Vec<DefView>,
    /// Event type → definitions subscribed to it, ascending. Indexed
    /// densely by `EventId` (an empty slot = unrouted) so the hot path
    /// routes with one bounds-checked load instead of a hash.
    routes: Vec<Vec<ShardId>>,
    /// Reusable hot-path buffers (empty between public calls).
    scratch: Scratch<T>,
    /// Topological level of each definition in the dependency DAG.
    levels: Vec<usize>,
    /// Union-find over definitions: defs sharing any plan node land in
    /// one component (the parallel scheduler's placement unit).
    uf: Vec<usize>,
    /// Cascade severing (see [`Self::set_cascade`]): when true, named
    /// detections are reported but never re-enter the wave as triggers.
    severed: bool,
    #[cfg(feature = "parallel")]
    pool: Option<crate::pool::WorkerPool<T>>,
}

impl<T: EventTime> PlanDetector<T> {
    /// An empty detector.
    pub fn new() -> Self {
        PlanDetector {
            catalog: Catalog::new(),
            nodes: Vec::new(),
            cons: HashMap::new(),
            defs: Vec::new(),
            routes: Vec::new(),
            scratch: Scratch::default(),
            levels: Vec::new(),
            uf: Vec::new(),
            severed: false,
            #[cfg(feature = "parallel")]
            pool: None,
        }
    }

    /// Enable or sever the detection cascade. With the cascade severed
    /// (`enabled == false`), a named composite detection is still reported
    /// in the feed result but is **not** re-fed to the definitions that
    /// subscribe to it — the caller owns cross-definition routing (a
    /// partitioned deployment where the subscribing definition may live on
    /// another detector replica). Default is enabled.
    pub fn set_cascade(&mut self, enabled: bool) {
        self.severed = !enabled;
    }

    /// Register a primitive event type.
    pub fn register(&mut self, name: &str) -> Result<EventId> {
        self.catalog.register(name)
    }

    /// Define a named composite event, hash-consing its subexpressions
    /// into the shared plan.
    pub fn define(&mut self, name: &str, expr: &EventExpr, ctx: Context) -> Result<EventId> {
        expr.validate()?;
        if expr.primitive_names().contains(&name) {
            return Err(SnoopError::CyclicDefinition(name.to_owned()));
        }
        let emits = self.catalog.register(name)?;
        // Pre-resolve every leaf so the build below is infallible (a
        // failed define leaves no orphan nodes in the shared plan).
        for leaf in expr.primitive_names() {
            self.catalog.lookup(leaf)?;
        }
        let d = self.defs.len();
        self.uf.push(d);
        let mut def = DefView {
            emits,
            subscribed: BTreeSet::new(),
            positions: Vec::new(),
            subs: HashMap::new(),
            timers: HashMap::new(),
            next_timer: 0,
        };
        let root = self.build(d, &mut def, expr, ctx);
        match root {
            Src::Pos(p) => {
                def.positions[p as usize].emits = emits;
                def.positions[p as usize].named = true;
            }
            Src::Event(e) => {
                // A pure alias: a forwarding OR node with one child. The
                // oracle gives the alias node the registered name directly
                // (no synthetic intern), so bind specially here.
                let key = ConsKey::Alias(ChildKey::Event(e));
                let n = self.cons_node(d, key, &[(ChildKey::Event(e), 0)], "alias", true, || {
                    Box::new(nodes::or::OrNode::new())
                });
                let p = def.positions.len() as u32;
                let seen = self.nodes[n].exec;
                self.nodes[n].bound.push((d as u32, p));
                def.positions.push(Position {
                    node: n,
                    emits,
                    named: true,
                    parents: Vec::new(),
                    seen,
                });
                def.subs.entry(e).or_default().push((p, 0));
            }
        }
        def.subscribed = def.subs.keys().copied().collect();
        let level = def
            .subscribed
            .iter()
            .filter_map(|ty| {
                self.defs
                    .iter()
                    .position(|dv| dv.emits == *ty)
                    .map(|j| self.levels[j] + 1)
            })
            .max()
            .unwrap_or(0);
        for &ty in &def.subscribed {
            let slot = ty.0 as usize;
            if slot >= self.routes.len() {
                self.routes.resize_with(slot + 1, Vec::new);
            }
            self.routes[slot].push(d);
        }
        self.levels.push(level);
        self.defs.push(def);
        Ok(emits)
    }

    /// Reuse a structurally identical node if one exists (and is safe to
    /// share), else push a fresh one. A stateful node is only reused while
    /// it has never executed a delivery — a later define must not inherit
    /// accumulated operator state the oracle's fresh graph would lack.
    fn cons_node(
        &mut self,
        d: usize,
        key: ConsKey,
        children: &[(ChildKey, usize)],
        label: &'static str,
        stateless: bool,
        mk: impl FnOnce() -> Box<dyn OperatorNode<T>>,
    ) -> usize {
        if let Some(&n) = self.cons.get(&key) {
            if stateless || self.nodes[n].exec == 0 {
                if let Some(&(owner, _)) = self.nodes[n].bound.first() {
                    self.union(owner as usize, d);
                }
                return n;
            }
        }
        let n = self.nodes.len();
        self.nodes.push(PlanNode {
            op: mk(),
            bound: Vec::new(),
            children: children.to_vec(),
            label,
            stateless,
            exec: 0,
            base: 0,
            log: Vec::new(),
        });
        self.cons.insert(key, n);
        n
    }

    /// Push a node that must stay private (temporal operators).
    fn fresh_node(
        &mut self,
        children: &[(ChildKey, usize)],
        label: &'static str,
        op: Box<dyn OperatorNode<T>>,
    ) -> usize {
        let n = self.nodes.len();
        self.nodes.push(PlanNode {
            op,
            bound: Vec::new(),
            children: children.to_vec(),
            label,
            stateless: false,
            exec: 0,
            base: 0,
            log: Vec::new(),
        });
        n
    }

    /// Bind `node` as the next position of definition `d`, interning the
    /// per-definition synthetic event type and wiring the operand
    /// subscriptions. Matches the oracle's catalog intern sequence exactly
    /// (`__node_{k}` for the k-th node of each definition's graph).
    fn bind(&mut self, d: usize, def: &mut DefView, node: usize, children: &[(Src, usize)]) -> Src {
        let p = def.positions.len() as u32;
        let emits = self.catalog.intern(&format!("__node_{p}"));
        let seen = self.nodes[node].exec;
        self.nodes[node].bound.push((d as u32, p));
        def.positions.push(Position {
            node,
            emits,
            named: false,
            parents: Vec::new(),
            seen,
        });
        for &(src, slot) in children {
            match src {
                Src::Event(e) => def.subs.entry(e).or_default().push((p, slot)),
                Src::Pos(c) => def.positions[c as usize].parents.push((p, slot)),
            }
        }
        Src::Pos(p)
    }

    fn build(&mut self, d: usize, def: &mut DefView, expr: &EventExpr, ctx: Context) -> Src {
        match expr {
            EventExpr::Primitive(name) => Src::Event(
                self.catalog
                    .lookup(name)
                    .expect("leaves pre-resolved in define"),
            ),
            EventExpr::And(a, b) => {
                let sa = self.build(d, def, a, ctx);
                let sb = self.build(d, def, b, ctx);
                let (ka, kb) = (key_of(def, sa), key_of(def, sb));
                let n = self.cons_node(
                    d,
                    ConsKey::And(ctx, ka, kb),
                    &[(ka, 0), (kb, 1)],
                    "and",
                    false,
                    || Box::new(nodes::and::AndNode::new(ctx)),
                );
                self.bind(d, def, n, &[(sa, 0), (sb, 1)])
            }
            EventExpr::Or(a, b) => {
                let sa = self.build(d, def, a, ctx);
                let sb = self.build(d, def, b, ctx);
                let (ka, kb) = (key_of(def, sa), key_of(def, sb));
                let n = self.cons_node(
                    d,
                    ConsKey::Or(ka, kb),
                    &[(ka, 0), (kb, 1)],
                    "or",
                    true,
                    || Box::new(nodes::or::OrNode::new()),
                );
                self.bind(d, def, n, &[(sa, 0), (sb, 1)])
            }
            EventExpr::Seq(a, b) => {
                let sa = self.build(d, def, a, ctx);
                let sb = self.build(d, def, b, ctx);
                let (ka, kb) = (key_of(def, sa), key_of(def, sb));
                let n = self.cons_node(
                    d,
                    ConsKey::Seq(ctx, ka, kb),
                    &[(ka, 0), (kb, 1)],
                    "seq",
                    false,
                    || Box::new(nodes::seq::SeqNode::new(ctx)),
                );
                self.bind(d, def, n, &[(sa, 0), (sb, 1)])
            }
            EventExpr::Not {
                guard,
                opener,
                closer,
            } => {
                let so = self.build(d, def, opener, ctx);
                let sg = self.build(d, def, guard, ctx);
                let sc = self.build(d, def, closer, ctx);
                let (ko, kg, kc) = (key_of(def, so), key_of(def, sg), key_of(def, sc));
                let n = self.cons_node(
                    d,
                    ConsKey::Not(ctx, ko, kg, kc),
                    &[
                        (ko, nodes::not::SLOT_OPENER),
                        (kg, nodes::not::SLOT_GUARD),
                        (kc, nodes::not::SLOT_CLOSER),
                    ],
                    "not",
                    false,
                    || Box::new(nodes::not::NotNode::new(ctx)),
                );
                self.bind(
                    d,
                    def,
                    n,
                    &[
                        (so, nodes::not::SLOT_OPENER),
                        (sg, nodes::not::SLOT_GUARD),
                        (sc, nodes::not::SLOT_CLOSER),
                    ],
                )
            }
            EventExpr::Aperiodic {
                opener,
                mid,
                closer,
            } => {
                let so = self.build(d, def, opener, ctx);
                let sm = self.build(d, def, mid, ctx);
                let sc = self.build(d, def, closer, ctx);
                let (ko, km, kc) = (key_of(def, so), key_of(def, sm), key_of(def, sc));
                let n = self.cons_node(
                    d,
                    ConsKey::Aperiodic(ctx, ko, km, kc),
                    &[
                        (ko, nodes::aperiodic::SLOT_OPENER),
                        (km, nodes::aperiodic::SLOT_MID),
                        (kc, nodes::aperiodic::SLOT_CLOSER),
                    ],
                    "aperiodic",
                    false,
                    || Box::new(nodes::aperiodic::ANode::new(ctx)),
                );
                self.bind(
                    d,
                    def,
                    n,
                    &[
                        (so, nodes::aperiodic::SLOT_OPENER),
                        (sm, nodes::aperiodic::SLOT_MID),
                        (sc, nodes::aperiodic::SLOT_CLOSER),
                    ],
                )
            }
            EventExpr::AperiodicStar {
                opener,
                mid,
                closer,
            } => {
                let so = self.build(d, def, opener, ctx);
                let sm = self.build(d, def, mid, ctx);
                let sc = self.build(d, def, closer, ctx);
                let (ko, km, kc) = (key_of(def, so), key_of(def, sm), key_of(def, sc));
                let n = self.cons_node(
                    d,
                    ConsKey::AperiodicStar(ctx, ko, km, kc),
                    &[
                        (ko, nodes::aperiodic::SLOT_OPENER),
                        (km, nodes::aperiodic::SLOT_MID),
                        (kc, nodes::aperiodic::SLOT_CLOSER),
                    ],
                    "aperiodic*",
                    false,
                    || Box::new(nodes::aperiodic::AStarNode::new(ctx)),
                );
                self.bind(
                    d,
                    def,
                    n,
                    &[
                        (so, nodes::aperiodic::SLOT_OPENER),
                        (sm, nodes::aperiodic::SLOT_MID),
                        (sc, nodes::aperiodic::SLOT_CLOSER),
                    ],
                )
            }
            EventExpr::Periodic {
                opener,
                period,
                closer,
            } => {
                let so = self.build(d, def, opener, ctx);
                let sc = self.build(d, def, closer, ctx);
                let (ko, kc) = (key_of(def, so), key_of(def, sc));
                let n = self.fresh_node(
                    &[
                        (ko, nodes::periodic::SLOT_OPENER),
                        (kc, nodes::periodic::SLOT_CLOSER),
                    ],
                    "periodic",
                    Box::new(nodes::periodic::PNode::new(*period)),
                );
                self.bind(
                    d,
                    def,
                    n,
                    &[
                        (so, nodes::periodic::SLOT_OPENER),
                        (sc, nodes::periodic::SLOT_CLOSER),
                    ],
                )
            }
            EventExpr::PeriodicStar {
                opener,
                period,
                closer,
            } => {
                let so = self.build(d, def, opener, ctx);
                let sc = self.build(d, def, closer, ctx);
                let (ko, kc) = (key_of(def, so), key_of(def, sc));
                let n = self.fresh_node(
                    &[
                        (ko, nodes::periodic::SLOT_OPENER),
                        (kc, nodes::periodic::SLOT_CLOSER),
                    ],
                    "periodic*",
                    Box::new(nodes::periodic::PStarNode::new(*period)),
                );
                self.bind(
                    d,
                    def,
                    n,
                    &[
                        (so, nodes::periodic::SLOT_OPENER),
                        (sc, nodes::periodic::SLOT_CLOSER),
                    ],
                )
            }
            EventExpr::Plus { base, delta } => {
                let sb = self.build(d, def, base, ctx);
                let kb = key_of(def, sb);
                let n = self.fresh_node(
                    &[(kb, 0)],
                    "plus",
                    Box::new(nodes::plus::PlusNode::new(*delta)),
                );
                self.bind(d, def, n, &[(sb, 0)])
            }
            EventExpr::Masked { base, mask } => {
                let sb = self.build(d, def, base, ctx);
                let kb = key_of(def, sb);
                let n = self.cons_node(
                    d,
                    ConsKey::Mask(mask.clone(), kb),
                    &[(kb, 0)],
                    "mask",
                    true,
                    || Box::new(nodes::mask::MaskNode::new(mask.clone())),
                );
                self.bind(d, def, n, &[(sb, 0)])
            }
            EventExpr::Any { m, alternatives } => {
                let sources: Vec<Src> = alternatives
                    .iter()
                    .map(|a| self.build(d, def, a, ctx))
                    .collect();
                let keys: Vec<ChildKey> = sources.iter().map(|&s| key_of(def, s)).collect();
                let children: Vec<(ChildKey, usize)> = keys
                    .iter()
                    .copied()
                    .enumerate()
                    .map(|(i, k)| (k, i))
                    .collect();
                let n = self.cons_node(
                    d,
                    ConsKey::Any(ctx, *m, keys),
                    &children,
                    "any",
                    false,
                    || Box::new(nodes::any::AnyNode::new(ctx, *m, alternatives.len())),
                );
                let wired: Vec<(Src, usize)> = sources
                    .iter()
                    .copied()
                    .enumerate()
                    .map(|(i, s)| (s, i))
                    .collect();
                self.bind(d, def, n, &wired)
            }
        }
    }

    /// The catalog (name ↔ id mapping).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Number of definitions (the plan analogue of a shard count — timer
    /// handles and routes are keyed by definition index).
    pub fn shard_count(&self) -> usize {
        self.defs.len()
    }

    /// Topological level of definition `d` in the dependency DAG.
    pub fn shard_level(&self, d: ShardId) -> usize {
        self.levels[d]
    }

    /// Number of topological stages in the definition dependency DAG.
    pub fn stage_count(&self) -> usize {
        self.levels.iter().max().map_or(0, |m| m + 1)
    }

    /// Event types definition `d` subscribes to, ascending.
    pub fn shard_subscriptions(&self, d: ShardId) -> impl Iterator<Item = EventId> + '_ {
        self.defs[d].subscribed.iter().copied()
    }

    /// Whether some definition references another definition's named
    /// event.
    pub fn has_cross_shard_routes(&self) -> bool {
        self.defs.iter().any(|dv| !self.route(dv.emits).is_empty())
    }

    /// The definitions subscribed to `ty`, ascending (empty = unrouted).
    fn route(&self, ty: EventId) -> &[ShardId] {
        self.routes.get(ty.0 as usize).map_or(&[], Vec::as_slice)
    }

    /// Smallest timer delay any node can request, or `None` when no
    /// definition uses a temporal operator. Runs **once per plan node**,
    /// not once per definition.
    pub fn min_timer_delay(&self) -> Option<u64> {
        self.nodes
            .iter()
            .filter_map(|n| n.op.min_timer_delay())
            .min()
    }

    /// Total outstanding timers across all definitions.
    pub fn pending_timer_count(&self) -> usize {
        self.defs.iter().map(|d| d.timers.len()).sum()
    }

    /// Advance the low watermark: operator GC runs **once per shared
    /// node** instead of once per definition copy. Returns the evicted
    /// count (counted per unique node, so it is legitimately lower than
    /// an unshared detector's on the same workload).
    pub fn advance_watermark(&mut self, low: u64) -> u64 {
        self.nodes.iter_mut().map(|n| n.op.on_watermark(low)).sum()
    }

    /// Total occurrences buffered across all plan nodes (per unique node;
    /// see [`Self::advance_watermark`] on comparability).
    pub fn buffered_occupancy(&self) -> usize {
        self.nodes.iter().map(|n| n.op.buffered_len()).sum()
    }

    /// Unique operator nodes in the plan.
    pub fn plan_node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Plan nodes bound by more than one position.
    pub fn shared_node_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.bound.len() > 1).count()
    }

    /// Total subexpression positions across all definitions.
    pub fn position_count(&self) -> usize {
        self.defs.iter().map(|d| d.positions.len()).sum()
    }

    /// Sharing counters for metrics export.
    pub fn plan_stats(&self) -> PlanStats {
        let plan_nodes = self.plan_node_count();
        let positions = self.position_count();
        PlanStats {
            plan_nodes,
            shared_nodes: self.shared_node_count(),
            position_count: positions,
            sharing_ratio: if positions == 0 {
                0.0
            } else {
                1.0 - plan_nodes as f64 / positions as f64
            },
        }
    }

    /// Number of connected components in the sharing graph over
    /// definitions (defs that share no node parallelize independently).
    pub fn component_count(&self) -> usize {
        (0..self.uf.len()).filter(|&i| self.find(i) == i).count()
    }

    fn find(&self, mut i: usize) -> usize {
        while self.uf[i] != i {
            i = self.uf[i];
        }
        i
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
        self.uf[hi] = lo;
    }

    /// Feed one occurrence, cascading named detections (canonical order)
    /// into the definitions that reference them.
    pub fn feed(&mut self, occ: Occurrence<T>) -> ShardFeedResult<T> {
        let mut out = ShardFeedResult::default();
        self.pump_one(occ, &mut out);
        self.trim_logs();
        out
    }

    /// Deliver a previously requested timer on the definition that owns
    /// it. Temporal nodes are always private, so this never touches the
    /// shared log.
    pub fn fire_timer(&mut self, d: ShardId, id: TimerId, time: T) -> Result<ShardFeedResult<T>> {
        let (p, tag) = self.defs[d]
            .timers
            .remove(&id)
            .ok_or(SnoopError::UnknownTimer(id.0))?;
        let mut result = FeedResult {
            detected: Vec::new(),
            timers: Vec::new(),
        };
        let mut queue = VecDeque::new();
        let mut emissions = Vec::new();
        let mut timer_reqs = Vec::new();
        {
            let def = &self.defs[d];
            let pos = &def.positions[p as usize];
            let node = &mut self.nodes[pos.node];
            debug_assert_eq!(node.bound.len(), 1, "timer nodes are private");
            let mut sink = Sink::new(pos.emits, &mut emissions, &mut timer_reqs);
            node.op.on_timer(tag, &time, &mut sink);
        }
        postprocess_def(
            &mut self.defs[d],
            p,
            emissions,
            timer_reqs,
            &mut queue,
            &mut result,
        );
        drain_def(&mut self.nodes, &mut self.defs[d], &mut queue, &mut result);
        let mut out = ShardFeedResult::default();
        out.timers.extend(result.timers.into_iter().map(|t| (d, t)));
        let mut round = result.detected;
        sort_canonical(&mut round);
        if self.severed {
            out.detected.extend(round);
        } else {
            let mut wave = Vec::with_capacity(round.len());
            for det in round {
                wave.push(det.clone());
                out.detected.push(det);
            }
            self.pump(wave, &mut out);
        }
        self.trim_logs();
        Ok(out)
    }

    /// Feed a whole batch; semantically identical to feeding each
    /// occurrence in order. With the `parallel` feature and a pool
    /// enabled, sharing components fan out across the persistent workers
    /// and the per-trigger canonical merge reproduces the serial output
    /// exactly.
    pub fn feed_batch(&mut self, occs: Vec<Occurrence<T>>) -> ShardFeedResult<T> {
        #[cfg(feature = "parallel")]
        if self.pool.is_some() && self.defs.len() > 1 && !occs.is_empty() {
            let out = if self.has_cross_shard_routes() {
                self.feed_batch_staged(occs)
            } else {
                self.feed_batch_fanout(occs)
            };
            self.trim_logs();
            return out;
        }
        let mut out = ShardFeedResult::default();
        for occ in occs {
            self.pump_one(occ, &mut out);
        }
        self.trim_logs();
        out
    }

    /// Feed a columnar batch: only routed rows are ever materialized into
    /// occurrences (an unrouted primitive type cannot contribute to any
    /// detection), then the batch path takes over. Bit-identical to
    /// materializing every row and calling [`Self::feed_batch`].
    pub fn feed_batch_columnar(&mut self, batch: &EventBatch<T>) -> ShardFeedResult<T> {
        let occs = batch.materialize_routed(|ty| !self.route(ty).is_empty());
        self.feed_batch(occs)
    }

    /// BFS cascade for a single trigger, on the detector scratch: the
    /// per-event loop of a serial batch feed allocates nothing.
    fn pump_one(&mut self, occ: Occurrence<T>, out: &mut ShardFeedResult<T>) {
        let mut s = std::mem::take(&mut self.scratch);
        debug_assert!(s.wave.is_empty());
        s.wave.push(occ);
        self.run_waves(&mut s, out);
        self.scratch = s;
    }

    /// BFS cascade: serial waves until no detections remain.
    fn pump(&mut self, wave: Vec<Occurrence<T>>, out: &mut ShardFeedResult<T>) {
        let mut s = std::mem::take(&mut self.scratch);
        debug_assert!(s.wave.is_empty());
        s.wave.extend(wave);
        self.run_waves(&mut s, out);
        self.scratch = s;
    }

    fn run_waves(&mut self, s: &mut Scratch<T>, out: &mut ShardFeedResult<T>) {
        while !s.wave.is_empty() {
            self.wave_step(s, out);
            std::mem::swap(&mut s.wave, &mut s.next);
        }
    }

    /// Run one cascade wave serially: route each occurrence of `s.wave`
    /// to the subscribed definitions (ascending), canonically merge the
    /// per-trigger detections into `out` and `s.next`. Each trigger moves
    /// into the *last* subscribed definition — the common single-route
    /// case never clones it.
    fn wave_step(&mut self, s: &mut Scratch<T>, out: &mut ShardFeedResult<T>) {
        let severed = self.severed;
        let PlanDetector {
            routes,
            nodes,
            defs,
            ..
        } = self;
        let Scratch {
            wave,
            next,
            round,
            queue,
        } = s;
        for occ in wave.drain(..) {
            let route: &[ShardId] = routes.get(occ.ty.0 as usize).map_or(&[], Vec::as_slice);
            let Some((&last, rest)) = route.split_last() else {
                continue;
            };
            debug_assert!(round.is_empty());
            for &d in rest {
                let r = feed_def_into(nodes, &mut defs[d], &occ, queue);
                out.timers.extend(r.timers.into_iter().map(|t| (d, t)));
                round.extend(r.detected);
            }
            let r = feed_def_into_owned(nodes, &mut defs[last], occ, queue);
            out.timers.extend(r.timers.into_iter().map(|t| (last, t)));
            round.extend(r.detected);
            sort_canonical(round);
            for det in round.drain(..) {
                if !severed {
                    next.push(det.clone());
                }
                out.detected.push(det);
            }
        }
    }

    /// One cascade wave over an owned vector (the staged pooled path's
    /// single-active-definition case).
    #[cfg(feature = "parallel")]
    fn serial_wave(
        &mut self,
        wave: Vec<Occurrence<T>>,
        out: &mut ShardFeedResult<T>,
    ) -> Vec<Occurrence<T>> {
        let mut s = std::mem::take(&mut self.scratch);
        debug_assert!(s.wave.is_empty());
        s.wave = wave;
        self.wave_step(&mut s, out);
        let next = std::mem::take(&mut s.next);
        self.scratch = s;
        next
    }

    /// Drop fully-replayed log entries. At the end of every public call
    /// all cursors of a shared node have consumed every execution (each
    /// delivery reaches all binder definitions in the same routing round),
    /// so the logs drain completely.
    fn trim_logs(&mut self) {
        let defs = &self.defs;
        for node in &mut self.nodes {
            if node.log.is_empty() {
                continue;
            }
            let min_seen = node
                .bound
                .iter()
                .map(|&(d, p)| defs[d as usize].positions[p as usize].seen)
                .min()
                .unwrap_or(node.exec);
            debug_assert_eq!(
                min_seen, node.exec,
                "shared-node cursor out of sync on `{}`",
                node.label
            );
            let drop = (min_seen - node.base) as usize;
            node.log.drain(..drop);
            node.base = min_seen;
        }
    }

    /// Attach a persistent worker pool of `workers` threads (clamped to
    /// `1..=shard_count` and to the machine's available parallelism —
    /// oversubscribing cores only adds hand-off latency) and route every
    /// subsequent [`Self::feed_batch`] through it. Sharing components are
    /// moved whole to a worker, so a shared node always travels with
    /// every definition bound to it.
    #[cfg(feature = "parallel")]
    pub fn enable_pool(&mut self, workers: usize) {
        let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
        self.enable_pool_exact(workers.min(hw));
    }

    /// Like [`Self::enable_pool`] but without the hardware cap (still
    /// clamped to `1..=shard_count`). Tests and determinism oracles use
    /// this to exercise multi-worker hand-off on machines with fewer
    /// cores than workers.
    #[cfg(feature = "parallel")]
    pub fn enable_pool_exact(&mut self, workers: usize) {
        let workers = workers.clamp(1, self.defs.len().max(1));
        self.pool = Some(crate::pool::WorkerPool::new(workers));
    }

    /// Worker threads in the persistent pool (0 = serial).
    pub fn worker_count(&self) -> usize {
        #[cfg(feature = "parallel")]
        if let Some(p) = &self.pool {
            return p.worker_count();
        }
        0
    }

    /// Parallel rounds dispatched to the pool so far.
    pub fn parallel_rounds(&self) -> u64 {
        #[cfg(feature = "parallel")]
        if let Some(p) = &self.pool {
            return p.rounds();
        }
        0
    }

    /// Total busy time across pool workers, in nanoseconds.
    pub fn pool_busy_ns(&self) -> u64 {
        #[cfg(feature = "parallel")]
        if let Some(p) = &self.pool {
            return p.busy_ns();
        }
        0
    }

    /// Backoff steps spent waiting on full or empty pool rings so far
    /// (0 = serial or never contended).
    pub fn ring_full_spins(&self) -> u64 {
        #[cfg(feature = "parallel")]
        if let Some(p) = &self.pool {
            return p.ring_full_spins();
        }
        0
    }

    /// Render the **shared plan once** in Graphviz `dot` syntax: event
    /// sources as ellipses, each unique operator node as a single box
    /// (bold double border when shared), per-definition clusters holding
    /// the named composite, and a dashed fan-out edge from each
    /// definition's root node into its cluster.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph decs_plan {\n  rankdir=BT;\n");
        let mut events: BTreeSet<EventId> = BTreeSet::new();
        for node in &self.nodes {
            for &(child, _) in &node.children {
                if let ChildKey::Event(e) = child {
                    events.insert(e);
                }
            }
        }
        for &e in &events {
            let _ = writeln!(
                out,
                "  ev{} [label={:?} shape=ellipse];",
                e.0,
                self.catalog.name(e)
            );
        }
        for (i, node) in self.nodes.iter().enumerate() {
            let shared = if node.bound.len() > 1 {
                " peripheries=2 style=bold"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "  n{} [label={:?} shape=box{}];",
                i, node.label, shared
            );
            for &(child, slot) in &node.children {
                match child {
                    ChildKey::Event(e) => {
                        let _ = writeln!(out, "  ev{} -> n{} [label=\"{}\"];", e.0, i, slot);
                    }
                    ChildKey::Node(c) => {
                        let _ = writeln!(out, "  n{} -> n{} [label=\"{}\"];", c, i, slot);
                    }
                }
            }
        }
        for (d, def) in self.defs.iter().enumerate() {
            let name = self.catalog.name(def.emits);
            let _ = writeln!(out, "  subgraph cluster_def{d} {{");
            let _ = writeln!(out, "    label={name:?};");
            let _ = writeln!(out, "    def{d} [label={name:?} shape=doubleoctagon];");
            let _ = writeln!(out, "  }}");
            if let Some(root) = def.positions.iter().rposition(|p| p.named) {
                let _ = writeln!(
                    out,
                    "  n{} -> def{} [style=dashed];",
                    def.positions[root].node, d
                );
            }
        }
        out.push_str("}\n");
        out
    }
}

impl<T: EventTime> crate::state::Snapshot<T> for PlanDetector<T> {
    fn save_state(&self) -> crate::state::DetectorState<T> {
        // Public calls end quiescent (`trim_logs`): every shared log is
        // empty and every cursor's `seen` equals its node's `exec` — so
        // only the operator state, the exec counters and the
        // per-definition timer tables need to be serialized. (`base` is
        // reconstructed as `exec` on restore; replay indices are relative
        // to it, so any common origin works.)
        debug_assert!(
            self.nodes.iter().all(|n| n.log.is_empty()),
            "snapshot of a non-quiescent plan"
        );
        crate::state::DetectorState::Plan(crate::state::PlanState {
            nodes: self.nodes.iter().map(|n| n.op.save_state()).collect(),
            execs: self.nodes.iter().map(|n| n.exec).collect(),
            defs: self
                .defs
                .iter()
                .map(|def| {
                    let mut timers: Vec<(u64, u32, u64)> = def
                        .timers
                        .iter()
                        .map(|(id, &(p, tag))| (id.0, p, tag))
                        .collect();
                    timers.sort_unstable();
                    crate::state::DefTimers {
                        timers,
                        next_timer: def.next_timer,
                    }
                })
                .collect(),
        })
    }

    fn restore_state(&mut self, state: crate::state::DetectorState<T>) -> Result<()> {
        let crate::state::DetectorState::Plan(plan) = state else {
            return Err(SnoopError::SnapshotMismatch(
                "sharded snapshot offered to a plan detector".into(),
            ));
        };
        if plan.nodes.len() != self.nodes.len() || plan.execs.len() != self.nodes.len() {
            return Err(SnoopError::SnapshotMismatch(format!(
                "plan has {} nodes, snapshot has {} (execs {})",
                self.nodes.len(),
                plan.nodes.len(),
                plan.execs.len()
            )));
        }
        if plan.defs.len() != self.defs.len() {
            return Err(SnoopError::SnapshotMismatch(format!(
                "plan has {} definitions, snapshot has {}",
                self.defs.len(),
                plan.defs.len()
            )));
        }
        let floor = crate::state::max_buffered_uid(&plan.nodes);
        for ((node, ns), exec) in self.nodes.iter_mut().zip(plan.nodes).zip(plan.execs) {
            node.op.restore_state(ns)?;
            node.exec = exec;
            node.base = exec;
            node.log.clear();
        }
        for (def, dt) in self.defs.iter_mut().zip(plan.defs) {
            def.timers.clear();
            for (id, p, tag) in dt.timers {
                if p as usize >= def.positions.len() {
                    return Err(SnoopError::SnapshotMismatch(format!(
                        "timer {id} targets position {p}, definition has {}",
                        def.positions.len()
                    )));
                }
                if id >= dt.next_timer {
                    return Err(SnoopError::SnapshotMismatch(format!(
                        "timer id {id} not below next_timer {}",
                        dt.next_timer
                    )));
                }
                def.timers.insert(TimerId(id), (p, tag));
            }
            def.next_timer = dt.next_timer;
        }
        // Re-establish the quiescence invariant: every cursor has consumed
        // every execution of its node.
        let nodes = &self.nodes;
        for def in &mut self.defs {
            for pos in &mut def.positions {
                pos.seen = nodes[pos.node].exec;
            }
        }
        crate::event::ensure_uid_floor(floor + 1);
        Ok(())
    }
}

/// Sparse id → node map moved to a pool worker: the subset of plan nodes
/// one sharing component's definitions can touch.
#[cfg(feature = "parallel")]
#[derive(Debug)]
pub(crate) struct SparseNodes<T: EventTime> {
    /// `(global node id, node)` in ascending id order.
    nodes: Vec<(usize, PlanNode<T>)>,
    /// Global node id → index into `nodes`.
    index: HashMap<usize, usize>,
}

#[cfg(feature = "parallel")]
impl<T: EventTime> NodeStore<T> for SparseNodes<T> {
    fn node_mut(&mut self, id: usize) -> &mut PlanNode<T> {
        let i = self.index[&id];
        &mut self.nodes[i].1
    }
}

/// One sharing component out on a pool worker: its definitions (ascending
/// by id) plus every plan node their positions reference. Moving the
/// component whole keeps the execute-once/replay protocol worker-local —
/// a shared node always travels with every definition bound to it (a
/// delivery to a shared node implies all its binder definitions subscribe
/// to the trigger, so they are all active in the same round).
#[cfg(feature = "parallel")]
#[derive(Debug)]
pub(crate) struct PlanCell<T: EventTime> {
    defs: Vec<(usize, DefView)>,
    store: SparseNodes<T>,
}

#[cfg(feature = "parallel")]
impl<T: EventTime> PlanCell<T> {
    /// Feed every trigger through this cell's definitions —
    /// trigger-outer, definitions ascending inner, exactly the serial
    /// visit order — and return per-definition results keyed by trigger
    /// index.
    pub(crate) fn run(&mut self, triggers: &[Occurrence<T>]) -> crate::pool::KeyedResults<T> {
        let PlanCell { defs, store } = self;
        let mut out: crate::pool::KeyedResults<T> =
            defs.iter().map(|(d, _)| (*d, Vec::new())).collect();
        let mut queue = VecDeque::new();
        for (k, occ) in triggers.iter().enumerate() {
            for (i, (_, def)) in defs.iter_mut().enumerate() {
                if def.subs.contains_key(&occ.ty) {
                    let r = feed_def_into(store, def, occ, &mut queue);
                    out[i].1.push((k, r));
                }
            }
        }
        out
    }
}

#[cfg(feature = "parallel")]
impl DefView {
    /// Inert stand-in left behind while the real view is out on a pool
    /// worker (no subscriptions, so it can never be fed by mistake).
    fn placeholder() -> Self {
        DefView {
            emits: EventId(u32::MAX),
            subscribed: BTreeSet::new(),
            positions: Vec::new(),
            subs: HashMap::new(),
            timers: HashMap::new(),
            next_timer: 0,
        }
    }
}

#[cfg(feature = "parallel")]
impl<T: EventTime> PlanNode<T> {
    /// Inert stand-in left behind while the real node is out on a worker.
    fn placeholder() -> Self {
        PlanNode {
            op: Box::new(nodes::or::OrNode::new()),
            bound: Vec::new(),
            children: Vec::new(),
            label: "placeholder",
            stateless: true,
            exec: 0,
            base: 0,
            log: Vec::new(),
        }
    }
}

#[cfg(feature = "parallel")]
impl<T: EventTime> PlanDetector<T> {
    /// Number of definitions subscribed to at least one of `wave`'s types.
    fn active_def_count(&self, wave: &[Occurrence<T>]) -> usize {
        self.defs
            .iter()
            .filter(|dv| wave.iter().any(|o| dv.subscribed.contains(&o.ty)))
            .count()
    }

    /// Dispatch one pool round over `triggers`: group the active
    /// definitions by sharing component, move each component (definitions
    /// plus their plan nodes) whole to a worker, collect results,
    /// reinstall, and return the keyed feed results sorted by definition id.
    fn pooled_round(
        &mut self,
        triggers: &std::sync::Arc<[Occurrence<T>]>,
    ) -> crate::pool::KeyedResults<T> {
        use std::collections::BTreeMap;
        let workers = self.pool.as_ref().expect("pool enabled").worker_count();
        let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for d in 0..self.defs.len() {
            let active = triggers
                .iter()
                .any(|o| self.defs[d].subscribed.contains(&o.ty));
            if active {
                groups.entry(self.find(d)).or_default().push(d);
            }
        }
        let mut per_worker: Vec<Vec<PlanCell<T>>> = (0..workers).map(|_| Vec::new()).collect();
        for (gi, (_, group)) in groups.into_iter().enumerate() {
            let mut node_ids: BTreeSet<usize> = BTreeSet::new();
            for &d in &group {
                for p in &self.defs[d].positions {
                    node_ids.insert(p.node);
                }
            }
            let mut defs = Vec::with_capacity(group.len());
            for d in group {
                defs.push((
                    d,
                    std::mem::replace(&mut self.defs[d], DefView::placeholder()),
                ));
            }
            let mut cell_nodes = Vec::with_capacity(node_ids.len());
            let mut index = HashMap::with_capacity(node_ids.len());
            for id in node_ids {
                index.insert(id, cell_nodes.len());
                cell_nodes.push((
                    id,
                    std::mem::replace(&mut self.nodes[id], PlanNode::placeholder()),
                ));
            }
            per_worker[gi % workers].push(PlanCell {
                defs,
                store: SparseNodes {
                    nodes: cell_nodes,
                    index,
                },
            });
        }
        let jobs: Vec<(usize, crate::pool::Job<T>)> = per_worker
            .into_iter()
            .enumerate()
            .filter(|(_, cells)| !cells.is_empty())
            .map(|(w, cells)| {
                (
                    w,
                    crate::pool::Job {
                        shards: Vec::new(),
                        cells,
                        triggers: std::sync::Arc::clone(triggers),
                    },
                )
            })
            .collect();
        let mut merged = Vec::new();
        for r in self.pool.as_mut().expect("pool enabled").run_round(jobs) {
            for cell in r.cells {
                for (d, dv) in cell.defs {
                    self.defs[d] = dv;
                }
                for (id, node) in cell.store.nodes {
                    self.nodes[id] = node;
                }
            }
            merged.extend(r.results);
        }
        merged.sort_by_key(|(sid, _)| *sid);
        merged
    }

    /// Independent definitions (no cross-definition routes): one pool
    /// round fans the whole batch out, then the per-trigger cursor merge
    /// — definitions ascending, canonical round sort — reproduces the
    /// serial visit order exactly.
    fn feed_batch_fanout(&mut self, occs: Vec<Occurrence<T>>) -> ShardFeedResult<T> {
        let triggers: std::sync::Arc<[Occurrence<T>]> = occs.into();
        let per_def = self.pooled_round(&triggers);
        let mut out = ShardFeedResult::default();
        let mut cursors = vec![0usize; per_def.len()];
        for k in 0..triggers.len() {
            let mut round = Vec::new();
            for (idx, (sid, results)) in per_def.iter().enumerate() {
                if let Some((key, r)) = results.get(cursors[idx]) {
                    if *key == k {
                        cursors[idx] += 1;
                        out.timers.extend(r.timers.iter().map(|t| (*sid, *t)));
                        round.extend(r.detected.iter().cloned());
                    }
                }
            }
            sort_canonical(&mut round);
            out.detected.extend(round);
        }
        out
    }

    /// Cross-definition cascades: per trigger, one pool round per cascade
    /// wave (at most [`Self::stage_count`] deep), each wave's canonically
    /// merged detections becoming the next wave's triggers.
    fn feed_batch_staged(&mut self, occs: Vec<Occurrence<T>>) -> ShardFeedResult<T> {
        let mut out = ShardFeedResult::default();
        for occ in occs {
            let mut wave = vec![occ];
            while !wave.is_empty() {
                let active = self.active_def_count(&wave);
                if active == 0 {
                    break;
                }
                if active == 1 {
                    // Nothing to parallelize: run the wave in place.
                    wave = self.serial_wave(wave, &mut out);
                    continue;
                }
                let triggers: std::sync::Arc<[Occurrence<T>]> = wave.into();
                let per_def = self.pooled_round(&triggers);
                let mut next_wave = Vec::new();
                let mut cursors = vec![0usize; per_def.len()];
                for k in 0..triggers.len() {
                    let mut round = Vec::new();
                    for (idx, (sid, results)) in per_def.iter().enumerate() {
                        if let Some((key, r)) = results.get(cursors[idx]) {
                            if *key == k {
                                cursors[idx] += 1;
                                out.timers.extend(r.timers.iter().map(|t| (*sid, *t)));
                                round.extend(r.detected.iter().cloned());
                            }
                        }
                    }
                    sort_canonical(&mut round);
                    for d in round {
                        if !self.severed {
                            next_wave.push(d.clone());
                        }
                        out.detected.push(d);
                    }
                }
                wave = next_wave;
            }
        }
        out
    }
}

/// Either detection backend behind one surface, so drivers (the central
/// detector, the distributed coordinator) can toggle plan sharing with a
/// config flag while keeping the unshared path as a differential oracle.
#[derive(Debug)]
pub enum AnyDetector<T: EventTime> {
    /// One independent graph per definition (no sharing).
    Sharded(ShardedDetector<T>),
    /// The shared, hash-consed plan.
    Plan(PlanDetector<T>),
}

impl<T: EventTime> From<ShardedDetector<T>> for AnyDetector<T> {
    fn from(d: ShardedDetector<T>) -> Self {
        AnyDetector::Sharded(d)
    }
}

impl<T: EventTime> From<PlanDetector<T>> for AnyDetector<T> {
    fn from(d: PlanDetector<T>) -> Self {
        AnyDetector::Plan(d)
    }
}

macro_rules! delegate {
    ($self:ident, $d:ident => $e:expr) => {
        match $self {
            AnyDetector::Sharded($d) => $e,
            AnyDetector::Plan($d) => $e,
        }
    };
}

impl<T: EventTime> AnyDetector<T> {
    /// Register a primitive event type.
    pub fn register(&mut self, name: &str) -> Result<EventId> {
        delegate!(self, d => d.register(name))
    }

    /// Define a named composite event.
    pub fn define(&mut self, name: &str, expr: &EventExpr, ctx: Context) -> Result<EventId> {
        delegate!(self, d => d.define(name, expr, ctx))
    }

    /// The catalog (name ↔ id mapping).
    pub fn catalog(&self) -> &Catalog {
        delegate!(self, d => d.catalog())
    }

    /// Number of definition shards.
    pub fn shard_count(&self) -> usize {
        delegate!(self, d => d.shard_count())
    }

    /// Number of topological stages in the definition dependency DAG.
    pub fn stage_count(&self) -> usize {
        delegate!(self, d => d.stage_count())
    }

    /// Topological level of definition `d` in the dependency DAG.
    pub fn shard_level(&self, d: ShardId) -> usize {
        delegate!(self, det => det.shard_level(d))
    }

    /// Event types definition `d` subscribes to, ascending.
    pub fn shard_subscriptions(&self, d: ShardId) -> Vec<EventId> {
        delegate!(self, det => det.shard_subscriptions(d).collect())
    }

    /// Enable or sever the detection cascade (see the backends'
    /// `set_cascade`). Default is enabled.
    pub fn set_cascade(&mut self, enabled: bool) {
        delegate!(self, d => d.set_cascade(enabled))
    }

    /// Smallest timer delay any definition can request.
    pub fn min_timer_delay(&self) -> Option<u64> {
        delegate!(self, d => d.min_timer_delay())
    }

    /// Total outstanding timers.
    pub fn pending_timer_count(&self) -> usize {
        delegate!(self, d => d.pending_timer_count())
    }

    /// Advance the low watermark (see the backends' docs; the plan runs
    /// GC once per shared node).
    pub fn advance_watermark(&mut self, low: u64) -> u64 {
        delegate!(self, d => d.advance_watermark(low))
    }

    /// Total buffered occurrences (per unique node under the plan).
    pub fn buffered_occupancy(&self) -> usize {
        delegate!(self, d => d.buffered_occupancy())
    }

    /// Whether some definition references another definition's name.
    pub fn has_cross_shard_routes(&self) -> bool {
        delegate!(self, d => d.has_cross_shard_routes())
    }

    /// Feed one occurrence.
    pub fn feed(&mut self, occ: Occurrence<T>) -> ShardFeedResult<T> {
        delegate!(self, d => d.feed(occ))
    }

    /// Feed a whole batch.
    pub fn feed_batch(&mut self, occs: Vec<Occurrence<T>>) -> ShardFeedResult<T> {
        delegate!(self, d => d.feed_batch(occs))
    }

    /// Feed a columnar batch (only routed rows are materialized).
    pub fn feed_batch_columnar(&mut self, batch: &EventBatch<T>) -> ShardFeedResult<T> {
        delegate!(self, d => d.feed_batch_columnar(batch))
    }

    /// Deliver a previously requested timer.
    pub fn fire_timer(
        &mut self,
        shard: ShardId,
        id: TimerId,
        time: T,
    ) -> Result<ShardFeedResult<T>> {
        delegate!(self, d => d.fire_timer(shard, id, time))
    }

    /// Attach a persistent worker pool (see the backends' `enable_pool`).
    #[cfg(feature = "parallel")]
    pub fn enable_pool(&mut self, workers: usize) {
        delegate!(self, d => d.enable_pool(workers))
    }

    /// Attach a pool without the hardware cap (see the backends'
    /// `enable_pool_exact`).
    #[cfg(feature = "parallel")]
    pub fn enable_pool_exact(&mut self, workers: usize) {
        delegate!(self, d => d.enable_pool_exact(workers))
    }

    /// Worker threads in the persistent pool (0 = serial).
    pub fn worker_count(&self) -> usize {
        delegate!(self, d => d.worker_count())
    }

    /// Parallel rounds dispatched to the pool so far.
    pub fn parallel_rounds(&self) -> u64 {
        delegate!(self, d => d.parallel_rounds())
    }

    /// Total busy time across pool workers, in nanoseconds.
    pub fn pool_busy_ns(&self) -> u64 {
        delegate!(self, d => d.pool_busy_ns())
    }

    /// Backoff steps spent waiting on full or empty pool rings so far.
    pub fn ring_full_spins(&self) -> u64 {
        delegate!(self, d => d.ring_full_spins())
    }

    /// Sharing counters. The sharded backend reports its total graph
    /// nodes with zero sharing.
    pub fn plan_stats(&self) -> PlanStats {
        match self {
            AnyDetector::Sharded(d) => {
                let n = d.node_count();
                PlanStats {
                    plan_nodes: n,
                    shared_nodes: 0,
                    position_count: n,
                    sharing_ratio: 0.0,
                }
            }
            AnyDetector::Plan(d) => d.plan_stats(),
        }
    }
}

impl<T: EventTime> crate::state::Snapshot<T> for AnyDetector<T> {
    fn save_state(&self) -> crate::state::DetectorState<T> {
        delegate!(self, d => crate::state::Snapshot::save_state(d))
    }

    fn restore_state(&mut self, state: crate::state::DetectorState<T>) -> Result<()> {
        // Each backend rejects the other's snapshot variant itself.
        delegate!(self, d => crate::state::Snapshot::restore_state(d, state))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::EventExpr as E;
    use crate::time::CentralTime;

    fn occ(cat: &Catalog, name: &str, t: u64) -> Occurrence<CentralTime> {
        Occurrence::bare(cat.lookup(name).unwrap(), CentralTime(t))
    }

    /// Build both backends over the same definitions and assert that
    /// feeding the trace produces bit-for-bit identical results
    /// (detections with types/times/params, timers with ids and tags).
    fn assert_equivalent(
        prims: &[&str],
        defs: &[(&str, EventExpr, Context)],
        trace: &[(&str, u64)],
    ) -> (ShardedDetector<CentralTime>, PlanDetector<CentralTime>) {
        let mut sharded = ShardedDetector::new();
        let mut plan = PlanDetector::new();
        for p in prims {
            sharded.register(p).unwrap();
            plan.register(p).unwrap();
        }
        for (name, expr, ctx) in defs {
            let a = sharded.define(name, expr, *ctx).unwrap();
            let b = plan.define(name, expr, *ctx).unwrap();
            assert_eq!(a, b, "catalog identity for {name}");
        }
        assert_eq!(
            sharded.catalog().len(),
            plan.catalog().len(),
            "intern sequence"
        );
        for (name, t) in trace {
            if sharded.catalog().lookup(name).is_err() {
                continue; // trace is a superset of some tests' primitives
            }
            let o = occ(sharded.catalog(), name, *t);
            let rs = sharded.feed(o.clone());
            let rp = plan.feed(o);
            assert_eq!(rs.detected, rp.detected, "detections at {name}@{t}");
            assert_eq!(rs.timers, rp.timers, "timers at {name}@{t}");
        }
        (sharded, plan)
    }

    fn base_trace() -> Vec<(&'static str, u64)> {
        vec![
            ("A", 1),
            ("B", 2),
            ("C", 3),
            ("B", 4),
            ("A", 5),
            ("C", 6),
            ("B", 7),
            ("A", 8),
            ("C", 9),
            ("B", 10),
        ]
    }

    #[test]
    fn overlapping_definitions_share_and_match_oracle() {
        // Seq(A, B) appears under three definitions; the plan compiles it
        // once.
        let defs = vec![
            ("X", E::seq(E::prim("A"), E::prim("B")), Context::Chronicle),
            (
                "Y",
                E::and(E::seq(E::prim("A"), E::prim("B")), E::prim("C")),
                Context::Chronicle,
            ),
            (
                "Z",
                E::seq(E::seq(E::prim("A"), E::prim("B")), E::prim("C")),
                Context::Chronicle,
            ),
        ];
        let (_, plan) = assert_equivalent(&["A", "B", "C"], &defs, &base_trace());
        let stats = plan.plan_stats();
        assert_eq!(stats.position_count, 5); // 1 + 2 + 2
        assert_eq!(stats.plan_nodes, 3); // shared seq + and + outer seq
        assert_eq!(stats.shared_nodes, 1);
        assert!(stats.sharing_ratio > 0.0);
        assert_eq!(plan.component_count(), 1);
    }

    #[test]
    fn disjoint_definitions_do_not_share() {
        let defs = vec![
            ("X", E::seq(E::prim("A"), E::prim("B")), Context::Chronicle),
            (
                "Y",
                E::and(E::prim("B"), E::prim("C")),
                Context::Unrestricted,
            ),
        ];
        let (_, plan) = assert_equivalent(&["A", "B", "C"], &defs, &base_trace());
        assert_eq!(plan.shared_node_count(), 0);
        assert_eq!(plan.component_count(), 2);
    }

    #[test]
    fn context_distinguishes_cons_keys() {
        // Same structure, different contexts: must NOT share.
        let defs = vec![
            ("X", E::seq(E::prim("A"), E::prim("B")), Context::Chronicle),
            ("Y", E::seq(E::prim("A"), E::prim("B")), Context::Continuous),
        ];
        let (_, plan) = assert_equivalent(&["A", "B"], &defs, &base_trace());
        assert_eq!(plan.shared_node_count(), 0);
        assert_eq!(plan.plan_node_count(), 2);
    }

    #[test]
    fn commutative_swap_does_not_share() {
        // And(a, b) vs And(b, a): structurally different, so no sharing —
        // sharing them would flip the param order of shared triggers.
        let defs = vec![
            (
                "X",
                E::and(E::prim("A"), E::prim("B")),
                Context::Unrestricted,
            ),
            (
                "Y",
                E::and(E::prim("B"), E::prim("A")),
                Context::Unrestricted,
            ),
        ];
        let (_, plan) = assert_equivalent(&["A", "B"], &defs, &base_trace());
        assert_eq!(plan.shared_node_count(), 0);
    }

    #[test]
    fn stateless_or_sharing_preserves_self_pairing_guard() {
        // Or(A, B) is shared between the two operands' definitions; the
        // forwarded occurrence must keep its uid in each definition so the
        // oracle's self-pairing behavior survives.
        let defs = vec![
            (
                "X",
                E::and(
                    E::or(E::prim("A"), E::prim("B")),
                    E::or(E::prim("A"), E::prim("C")),
                ),
                Context::Unrestricted,
            ),
            (
                "Y",
                E::seq(E::or(E::prim("A"), E::prim("B")), E::prim("C")),
                Context::Chronicle,
            ),
        ];
        let (_, plan) = assert_equivalent(&["A", "B", "C"], &defs, &base_trace());
        assert_eq!(plan.shared_node_count(), 1); // the Or(A, B)
    }

    #[test]
    fn alias_definitions_share_one_forwarder() {
        let defs = vec![
            ("Y1", E::prim("A"), Context::Unrestricted),
            ("Y2", E::prim("A"), Context::Chronicle),
            (
                "P",
                E::and(E::prim("Y1"), E::prim("Y2")),
                Context::Unrestricted,
            ),
        ];
        let (_, plan) = assert_equivalent(&["A", "B"], &defs, &base_trace());
        // Y1/Y2 alias nodes cons to one stateless forwarder.
        assert_eq!(plan.shared_node_count(), 1);
    }

    #[test]
    fn within_definition_sharing_matches_oracle() {
        // Both operands of And are the same subexpression: two positions,
        // one node, one definition.
        let defs = vec![(
            "X",
            E::and(
                E::seq(E::prim("A"), E::prim("B")),
                E::seq(E::prim("A"), E::prim("B")),
            ),
            Context::Unrestricted,
        )];
        let (_, plan) = assert_equivalent(&["A", "B"], &defs, &base_trace());
        let stats = plan.plan_stats();
        assert_eq!(stats.position_count, 3);
        assert_eq!(stats.plan_nodes, 2);
        assert_eq!(stats.shared_nodes, 1);
    }

    #[test]
    fn primitive_on_both_slots_still_blocks_self_pairing() {
        // E ∧ E over a primitive: the same occurrence arrives on both
        // slots and must not pair with itself — in both backends.
        let defs = vec![(
            "X",
            E::and(E::prim("A"), E::prim("A")),
            Context::Unrestricted,
        )];
        // The full trace must stay equivalent (a fresh A *does* pair with
        // earlier distinct A occurrences in both backends)…
        let (mut sharded, mut plan) = assert_equivalent(&["A"], &defs, &base_trace());
        // …and the very first A fed to fresh detectors pairs with nothing:
        // the same occurrence reaches both slots and is blocked by uid.
        let mut fresh_sharded = ShardedDetector::<CentralTime>::new();
        let mut fresh_plan = PlanDetector::<CentralTime>::new();
        fresh_sharded.register("A").unwrap();
        fresh_plan.register("A").unwrap();
        let (name, e, ctx) = &defs[0];
        fresh_sharded.define(name, e, *ctx).unwrap();
        fresh_plan.define(name, e, *ctx).unwrap();
        let o = occ(fresh_sharded.catalog(), "A", 99);
        assert!(fresh_sharded.feed(o.clone()).detected.is_empty());
        assert!(fresh_plan.feed(o.clone()).detected.is_empty());
        // Keep the post-trace detectors honest too: next A matches oracle.
        assert_eq!(
            sharded.feed(o.clone()).detected.len(),
            plan.feed(o).detected.len()
        );
    }

    #[test]
    fn cross_definition_cascade_through_shared_nodes() {
        let defs = vec![
            ("X", E::seq(E::prim("A"), E::prim("B")), Context::Chronicle),
            ("Z", E::seq(E::prim("X"), E::prim("C")), Context::Chronicle),
            (
                "W",
                E::and(E::seq(E::prim("X"), E::prim("C")), E::prim("B")),
                Context::Chronicle,
            ),
        ];
        let (sharded, plan) = assert_equivalent(&["A", "B", "C"], &defs, &base_trace());
        assert!(plan.has_cross_shard_routes());
        assert_eq!(plan.stage_count(), sharded.stage_count());
        assert_eq!(plan.shard_level(1), 1);
        // Seq(X, C) shared between Z (root) and W (inner).
        assert_eq!(plan.shared_node_count(), 1);
    }

    #[test]
    fn late_define_does_not_inherit_executed_state() {
        let mut sharded = ShardedDetector::<CentralTime>::new();
        let mut plan = PlanDetector::<CentralTime>::new();
        for p in ["A", "B"] {
            sharded.register(p).unwrap();
            plan.register(p).unwrap();
        }
        let e = E::seq(E::prim("A"), E::prim("B"));
        sharded.define("X", &e, Context::Chronicle).unwrap();
        plan.define("X", &e, Context::Chronicle).unwrap();
        // Execute: A is now buffered inside the Seq node.
        let o = occ(sharded.catalog(), "A", 1);
        sharded.feed(o.clone());
        plan.feed(o);
        // A structurally identical later define must NOT see that state.
        sharded.define("Y", &e, Context::Chronicle).unwrap();
        plan.define("Y", &e, Context::Chronicle).unwrap();
        assert_eq!(plan.shared_node_count(), 0, "executed node not reused");
        for (name, t) in [("B", 2), ("A", 3), ("B", 4)] {
            let o = occ(sharded.catalog(), name, t);
            let rs = sharded.feed(o.clone());
            let rp = plan.feed(o);
            assert_eq!(rs.detected, rp.detected, "{name}@{t}");
        }
    }

    #[test]
    fn all_operator_shapes_match_oracle() {
        let defs = vec![
            (
                "N",
                E::not(E::prim("B"), E::prim("A"), E::prim("C")),
                Context::Chronicle,
            ),
            (
                "AP",
                EventExpr::Aperiodic {
                    opener: Box::new(E::prim("A")),
                    mid: Box::new(E::prim("B")),
                    closer: Box::new(E::prim("C")),
                },
                Context::Unrestricted,
            ),
            (
                "AS",
                EventExpr::AperiodicStar {
                    opener: Box::new(E::prim("A")),
                    mid: Box::new(E::prim("B")),
                    closer: Box::new(E::prim("C")),
                },
                Context::Cumulative,
            ),
            (
                "ANY2",
                EventExpr::Any {
                    m: 2,
                    alternatives: vec![E::prim("A"), E::prim("B"), E::prim("C")],
                },
                Context::Continuous,
            ),
            (
                "MSK",
                EventExpr::Masked {
                    base: Box::new(E::prim("A")),
                    mask: Mask::AtLeast { index: 0, min: 0 },
                },
                Context::Unrestricted,
            ),
        ];
        assert_equivalent(&["A", "B", "C"], &defs, &base_trace());
    }

    #[test]
    fn shared_not_and_any_nodes_match_oracle() {
        // Stateful three-slot and n-ary operators shared across defs.
        let not = E::not(E::prim("B"), E::prim("A"), E::prim("C"));
        let any = EventExpr::Any {
            m: 2,
            alternatives: vec![E::prim("A"), E::prim("B"), E::prim("C")],
        };
        let defs = vec![
            ("N1", not.clone(), Context::Chronicle),
            ("N2", E::seq(not.clone(), E::prim("B")), Context::Chronicle),
            ("Q1", any.clone(), Context::Continuous),
            ("Q2", E::and(any.clone(), E::prim("C")), Context::Continuous),
        ];
        let (_, plan) = assert_equivalent(&["A", "B", "C"], &defs, &base_trace());
        assert_eq!(plan.shared_node_count(), 2);
    }

    #[test]
    fn timers_stay_private_and_match_oracle() {
        let mut sharded = ShardedDetector::<CentralTime>::new();
        let mut plan = PlanDetector::<CentralTime>::new();
        sharded.register("A").unwrap();
        plan.register("A").unwrap();
        // Two identical Plus defs: temporal nodes must NOT share (each def
        // owns its timer ids), but their base subexpression may.
        let e = E::plus(E::seq(E::prim("A"), E::prim("A")), 10);
        for name in ["D1", "D2"] {
            sharded.define(name, &e, Context::Chronicle).unwrap();
            plan.define(name, &e, Context::Chronicle).unwrap();
        }
        assert_eq!(plan.shared_node_count(), 1); // the Seq only
        assert_eq!(plan.min_timer_delay(), Some(10));
        let o1 = occ(sharded.catalog(), "A", 1);
        let o2 = occ(sharded.catalog(), "A", 2);
        sharded.feed(o1.clone());
        plan.feed(o1);
        let rs = sharded.feed(o2.clone());
        let rp = plan.feed(o2);
        assert_eq!(rs.timers, rp.timers);
        assert_eq!(rs.timers.len(), 2); // one per def
        assert_eq!(sharded.pending_timer_count(), plan.pending_timer_count());
        for ((sd, sreq), (pd, preq)) in rs.timers.iter().zip(rp.timers.iter()) {
            let fs = sharded.fire_timer(*sd, sreq.id, CentralTime(12)).unwrap();
            let fp = plan.fire_timer(*pd, preq.id, CentralTime(12)).unwrap();
            assert_eq!(fs.detected, fp.detected);
        }
        assert!(matches!(
            plan.fire_timer(0, TimerId(99), CentralTime(20)),
            Err(SnoopError::UnknownTimer(99))
        ));
    }

    /// Mid-trace save/restore into a freshly compiled detector resumes
    /// bit-identically — detections, timer requests, and pending timers —
    /// on both backends (the distributed recovery path relies on this).
    #[test]
    fn snapshot_roundtrip_resumes_equivalently() {
        use crate::state::Snapshot;

        let prims = ["A", "B", "C"];
        let defs = vec![
            ("X", E::seq(E::prim("A"), E::prim("B")), Context::Chronicle),
            (
                "Y",
                E::and(E::seq(E::prim("A"), E::prim("B")), E::prim("C")),
                Context::Chronicle,
            ),
            ("T", E::plus(E::prim("C"), 5), Context::Unrestricted),
        ];
        let trace = base_trace();
        let cut = 6;

        let build = |sharing: bool| -> AnyDetector<CentralTime> {
            let mut d: AnyDetector<CentralTime> = if sharing {
                PlanDetector::new().into()
            } else {
                ShardedDetector::new().into()
            };
            for p in prims {
                d.register(p).unwrap();
            }
            for (name, e, ctx) in &defs {
                d.define(name, e, *ctx).unwrap();
            }
            d
        };

        for sharing in [false, true] {
            // Reference: uninterrupted run over the whole trace.
            let mut reference = build(sharing);
            let mut ref_steps = Vec::new();
            for (name, t) in &trace {
                let o = occ(reference.catalog(), name, *t);
                let r = reference.feed(o);
                ref_steps.push((r.detected, r.timers));
            }

            // Interrupted run: feed the prefix, snapshot, "crash", restore
            // into a freshly compiled detector, feed the suffix.
            let mut first = build(sharing);
            for (name, t) in &trace[..cut] {
                let o = occ(first.catalog(), name, *t);
                first.feed(o);
            }
            let state = first.save_state();
            let mut recovered = build(sharing);
            // The other backend's snapshot is rejected, not misread.
            let mut other = build(!sharing);
            assert!(matches!(
                other.restore_state(state.clone()),
                Err(SnoopError::SnapshotMismatch(_))
            ));
            recovered.restore_state(state).unwrap();
            assert_eq!(
                recovered.pending_timer_count(),
                first.pending_timer_count(),
                "pending timers survive restore (sharing={sharing})"
            );
            for (i, (name, t)) in trace[cut..].iter().enumerate() {
                let o = occ(recovered.catalog(), name, *t);
                let r = recovered.feed(o);
                let (ref_det, ref_tim) = &ref_steps[cut + i];
                assert_eq!(&r.detected, ref_det, "{name}@{t} (sharing={sharing})");
                assert_eq!(&r.timers, ref_tim, "{name}@{t} (sharing={sharing})");
            }

            // Every timer requested over the whole run fires identically.
            assert_eq!(
                recovered.pending_timer_count(),
                reference.pending_timer_count()
            );
            let all_timers: Vec<_> = ref_steps
                .iter()
                .flat_map(|(_, tims)| tims.iter().copied())
                .collect();
            assert!(!all_timers.is_empty(), "trace must exercise timers");
            for (i, (sid, req)) in all_timers.into_iter().enumerate() {
                let at = CentralTime(100 + i as u64);
                let fr = reference.fire_timer(sid, req.id, at).unwrap();
                let fc = recovered.fire_timer(sid, req.id, at).unwrap();
                assert_eq!(fr.detected, fc.detected, "timer {i} (sharing={sharing})");
                assert_eq!(fr.timers, fc.timers, "timer {i} (sharing={sharing})");
            }
            assert_eq!(recovered.pending_timer_count(), 0);
        }
    }

    #[test]
    fn feed_batch_equals_sequential_feeds() {
        let defs = vec![
            ("X", E::seq(E::prim("A"), E::prim("B")), Context::Chronicle),
            (
                "Y",
                E::and(E::seq(E::prim("A"), E::prim("B")), E::prim("C")),
                Context::Chronicle,
            ),
            ("Z", E::seq(E::prim("X"), E::prim("C")), Context::Chronicle),
        ];
        let build = || {
            let mut p = PlanDetector::<CentralTime>::new();
            for n in ["A", "B", "C"] {
                p.register(n).unwrap();
            }
            for (name, expr, ctx) in &defs {
                p.define(name, expr, *ctx).unwrap();
            }
            p
        };
        let mut serial = build();
        let mut batch = build();
        let occs: Vec<_> = base_trace()
            .iter()
            .map(|(n, t)| occ(serial.catalog(), n, *t))
            .collect();
        let mut seq_out = Vec::new();
        for o in occs.clone() {
            seq_out.extend(serial.feed(o).detected);
        }
        let batch_out = batch.feed_batch(occs).detected;
        assert_eq!(seq_out, batch_out);
    }

    #[test]
    fn watermark_gc_runs_once_per_shared_node() {
        // NOT strands guard state which the watermark can evict; shared
        // plans evict it once. Detections stay identical with GC applied.
        let not = E::not(E::prim("B"), E::prim("A"), E::prim("C"));
        let defs = vec![
            ("N1", not.clone(), Context::Chronicle),
            ("N2", E::seq(not.clone(), E::prim("B")), Context::Chronicle),
        ];
        let (mut sharded, mut plan) = assert_equivalent(&["A", "B", "C"], &defs, &base_trace());
        assert!(plan.buffered_occupancy() <= sharded.buffered_occupancy());
        sharded.advance_watermark(11);
        plan.advance_watermark(11);
        for (name, t) in [("A", 12), ("B", 13), ("C", 14), ("B", 15)] {
            let o = occ(sharded.catalog(), name, t);
            let rs = sharded.feed(o.clone());
            let rp = plan.feed(o);
            assert_eq!(rs.detected, rp.detected, "{name}@{t} after GC");
        }
    }

    #[test]
    fn logs_drain_after_every_feed() {
        let defs = vec![
            ("X", E::seq(E::prim("A"), E::prim("B")), Context::Chronicle),
            (
                "Y",
                E::seq(E::seq(E::prim("A"), E::prim("B")), E::prim("C")),
                Context::Chronicle,
            ),
        ];
        let (_, plan) = assert_equivalent(&["A", "B", "C"], &defs, &base_trace());
        for node in &plan.nodes {
            assert!(node.log.is_empty(), "log not drained on `{}`", node.label);
        }
    }

    #[test]
    fn define_failures_leave_no_orphan_nodes() {
        let mut plan = PlanDetector::<CentralTime>::new();
        plan.register("A").unwrap();
        let before = plan.plan_node_count();
        let e = E::seq(E::seq(E::prim("A"), E::prim("A")), E::prim("NOPE"));
        assert!(matches!(
            plan.define("X", &e, Context::Chronicle),
            Err(SnoopError::UnknownEvent(_))
        ));
        assert_eq!(plan.plan_node_count(), before);
        assert_eq!(plan.shard_count(), 0);
        // The failed name stays registered (the oracle's compile registers
        // before building too), so it cannot be reused…
        assert!(matches!(
            plan.define("X", &E::prim("A"), Context::Chronicle),
            Err(SnoopError::DuplicateEvent(_))
        ));
        // …but the detector still works for new names.
        plan.register("B").unwrap();
        plan.define(
            "X2",
            &E::seq(E::prim("A"), E::prim("B")),
            Context::Chronicle,
        )
        .unwrap();
        let o = occ(plan.catalog(), "A", 1);
        plan.feed(o);
        let o = occ(plan.catalog(), "B", 2);
        assert_eq!(plan.feed(o).detected.len(), 1);
    }

    #[test]
    fn any_detector_delegates_to_both_backends() {
        let mk = |plan: bool| -> AnyDetector<CentralTime> {
            let mut d: AnyDetector<CentralTime> = if plan {
                PlanDetector::new().into()
            } else {
                ShardedDetector::new().into()
            };
            for n in ["A", "B"] {
                d.register(n).unwrap();
            }
            d.define("X", &E::seq(E::prim("A"), E::prim("B")), Context::Chronicle)
                .unwrap();
            d.define(
                "Y",
                &E::seq(E::prim("A"), E::prim("B")),
                Context::Continuous,
            )
            .unwrap();
            d
        };
        let mut s = mk(false);
        let mut p = mk(true);
        assert_eq!(s.shard_count(), 2);
        assert_eq!(p.shard_count(), 2);
        for (name, t) in [("A", 1), ("B", 2)] {
            let o = occ(s.catalog(), name, t);
            assert_eq!(s.feed(o.clone()).detected, p.feed(o).detected);
        }
        let ss = s.plan_stats();
        let ps = p.plan_stats();
        assert_eq!(ss.shared_nodes, 0);
        assert_eq!(ss.sharing_ratio, 0.0);
        assert_eq!(ss.plan_nodes, 2);
        assert_eq!(ps.plan_nodes, 2); // different contexts: no sharing
        assert_eq!(ps.position_count, 2);
    }

    #[test]
    fn dot_renders_shared_plan_once() {
        let mut plan = PlanDetector::<CentralTime>::new();
        for n in ["A", "B", "C"] {
            plan.register(n).unwrap();
        }
        plan.define("X", &E::seq(E::prim("A"), E::prim("B")), Context::Chronicle)
            .unwrap();
        plan.define(
            "Y",
            &E::and(E::seq(E::prim("A"), E::prim("B")), E::prim("C")),
            Context::Chronicle,
        )
        .unwrap();
        let dot = plan.to_dot();
        // The shared seq renders once, with the shared marker.
        assert_eq!(dot.matches("label=\"seq\"").count(), 1);
        assert!(dot.contains("peripheries=2 style=bold"));
        assert!(dot.contains("cluster_def0"));
        assert!(dot.contains("cluster_def1"));
        assert!(dot.contains("-> def0 [style=dashed]"));
        assert!(dot.contains("-> def1 [style=dashed]"));
        assert_eq!(dot, plan.to_dot(), "deterministic output");
    }
}

#[cfg(all(test, feature = "parallel"))]
mod parallel_tests {
    use super::*;
    use crate::expr::EventExpr as E;
    use crate::time::CentralTime;

    /// Eight definitions over four primitives with deliberate
    /// subexpression overlap (each `Seq` appears twice), plus — when
    /// `cascade` is set — two extra stages referencing them. The overlap
    /// forces multi-definition sharing components onto the pool.
    fn build(cascade: bool) -> PlanDetector<CentralTime> {
        let mut d = PlanDetector::new();
        for n in ["A", "B", "C", "D"] {
            d.register(n).unwrap();
        }
        let prims = ["A", "B", "C", "D"];
        for i in 0..8usize {
            let (p, q) = (prims[i % 4], prims[(i + 1) % 4]);
            let name = format!("S{i}");
            let seq = E::seq(E::prim(p), E::prim(q));
            // Even defs are the bare seq; odd defs wrap the same seq, so
            // S0/S1 share one node, S2/S3 another, and so on.
            let expr = if i % 2 == 0 {
                seq
            } else {
                let (p0, q0) = (prims[(i - 1) % 4], prims[i % 4]);
                E::and(
                    E::seq(E::prim(p0), E::prim(q0)),
                    E::prim(prims[(i + 2) % 4]),
                )
            };
            d.define(&name, &expr, Context::Chronicle).unwrap();
        }
        if cascade {
            d.define(
                "M",
                &E::and(E::prim("S0"), E::prim("S1")),
                Context::Unrestricted,
            )
            .unwrap();
            d.define("T", &E::seq(E::prim("M"), E::prim("C")), Context::Chronicle)
                .unwrap();
        }
        d
    }

    fn trace(d: &PlanDetector<CentralTime>) -> Vec<Occurrence<CentralTime>> {
        let prims = ["A", "B", "C", "D"];
        (0..64u64)
            .map(|t| {
                let ty = d.catalog().lookup(prims[(t % 4) as usize]).unwrap();
                Occurrence::bare(ty, CentralTime(t))
            })
            .collect()
    }

    fn serial_reference(cascade: bool) -> ShardFeedResult<CentralTime> {
        let mut d = build(cascade);
        let occs = trace(&d);
        let mut out = ShardFeedResult::default();
        for occ in occs {
            let r = d.feed(occ);
            out.detected.extend(r.detected);
            out.timers.extend(r.timers);
        }
        out
    }

    #[test]
    fn overlap_creates_multi_def_components() {
        let d = build(false);
        assert!(d.shared_node_count() >= 4);
        let components = d.component_count();
        assert!(components < 8, "sharing must merge components");
        assert!(components > 1, "disjoint prefixes stay separate");
    }

    #[test]
    fn pooled_fanout_is_bit_identical_to_serial() {
        let expect = serial_reference(false);
        assert!(!expect.detected.is_empty());
        for workers in [1, 2, 4, 8] {
            let mut d = build(false);
            assert!(!d.has_cross_shard_routes());
            d.enable_pool_exact(workers);
            let occs = trace(&d);
            let got = d.feed_batch(occs);
            assert_eq!(got.detected, expect.detected, "{workers} workers");
            assert_eq!(got.timers, expect.timers, "{workers} workers");
            assert!(d.parallel_rounds() > 0);
            for node in &d.nodes {
                assert!(node.log.is_empty(), "{workers} workers: log drained");
            }
        }
    }

    #[test]
    fn pooled_staged_cascade_is_bit_identical_to_serial() {
        let expect = serial_reference(true);
        assert!(
            expect.detected.iter().any(|o| o.ty.0 >= 12),
            "cascade must detect"
        );
        for workers in [1, 2, 4] {
            let mut d = build(true);
            assert!(d.has_cross_shard_routes());
            assert_eq!(d.stage_count(), 3);
            d.enable_pool_exact(workers);
            let occs = trace(&d);
            let got = d.feed_batch(occs);
            assert_eq!(got.detected, expect.detected, "{workers} workers");
            assert_eq!(got.timers, expect.timers, "{workers} workers");
            assert!(d.parallel_rounds() > 0, "{workers} workers");
        }
    }

    #[test]
    fn pooled_plan_matches_pooled_sharded_detector() {
        // Cross-backend: the pooled plan equals the pooled *sharded*
        // detector on the same workload (both equal their serial paths).
        let mut sharded = ShardedDetector::<CentralTime>::new();
        for n in ["A", "B", "C", "D"] {
            sharded.register(n).unwrap();
        }
        let prims = ["A", "B", "C", "D"];
        for i in 0..8usize {
            let (p, q) = (prims[i % 4], prims[(i + 1) % 4]);
            let name = format!("S{i}");
            let seq = E::seq(E::prim(p), E::prim(q));
            let expr = if i % 2 == 0 {
                seq
            } else {
                let (p0, q0) = (prims[(i - 1) % 4], prims[i % 4]);
                E::and(
                    E::seq(E::prim(p0), E::prim(q0)),
                    E::prim(prims[(i + 2) % 4]),
                )
            };
            sharded.define(&name, &expr, Context::Chronicle).unwrap();
        }
        sharded.enable_pool_exact(4);
        let mut plan = build(false);
        plan.enable_pool_exact(4);
        let occs = trace(&plan);
        let rs = sharded.feed_batch(occs.clone());
        let rp = plan.feed_batch(occs);
        assert_eq!(rs.detected, rp.detected);
        assert_eq!(rs.timers, rp.timers);
    }

    #[test]
    fn pool_stats_accumulate() {
        let mut d = build(false);
        d.enable_pool_exact(4);
        assert_eq!(d.worker_count(), 4);
        assert_eq!(d.parallel_rounds(), 0);
        let occs = trace(&d);
        d.feed_batch(occs);
        assert_eq!(d.parallel_rounds(), 1); // independent defs: one round
        assert!(d.pool_busy_ns() > 0);
    }

    #[test]
    fn enable_pool_clamps_to_def_count() {
        let mut d = build(false); // 8 defs
        d.enable_pool_exact(64);
        assert_eq!(d.worker_count(), 8);
    }

    #[test]
    fn enable_pool_caps_to_available_parallelism() {
        let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
        let mut d = build(false); // 8 defs
        d.enable_pool(64);
        assert_eq!(d.worker_count(), 64.min(hw).min(8).max(1));
    }

    #[test]
    fn columnar_feed_is_bit_identical_to_serial() {
        let expect = serial_reference(false);
        let mut d = build(false);
        let mut batch = EventBatch::new();
        let prims = ["A", "B", "C", "D"];
        for t in 0..64u64 {
            let ty = d.catalog().lookup(prims[(t % 4) as usize]).unwrap();
            batch.push_bare(ty, CentralTime(t));
        }
        let got = d.feed_batch_columnar(&batch);
        assert_eq!(got.detected, expect.detected);
        assert_eq!(got.timers, expect.timers);
    }
}
