//! Sentinel parameter contexts (event consumption modes).
//!
//! A composite event can be detected with many different constituent
//! combinations; the *parameter context* restricts which initiator
//! occurrences pair with which terminator occurrences, and what is consumed
//! when a detection happens. Sentinel defines four restrictive contexts over
//! the unrestricted semantics (Chakravarthy et al., "Composite Events for
//! Active Databases: Semantics, Contexts and Detection", VLDB 1994):
//!
//! * **Unrestricted** — every valid initiator/terminator combination
//!   detects; nothing is consumed.
//! * **Recent** — only the *most recent* initiator is kept; it is not
//!   consumed by detection (it keeps pairing with later terminators until
//!   replaced).
//! * **Chronicle** — initiators pair with terminators in FIFO order; both
//!   are consumed.
//! * **Continuous** — every initiator opens a window; a terminator detects
//!   once per open window and consumes them all.
//! * **Cumulative** — all initiators (and, for `A*`, all mid events) are
//!   accumulated into a single detection per terminator, then cleared.
//!
//! In the distributed time domain "most recent" is defined through the `Max`
//! operator / `<_p` (an arriving initiator replaces the buffered one unless
//! it happens-before it) — an extension decision documented in `DESIGN.md`,
//! since the paper formalizes the operators' occurrence semantics but not
//! the contexts' distributed behaviour.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The Sentinel parameter context under which an operator node pairs and
/// consumes constituent occurrences.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Context {
    /// All valid combinations; no consumption.
    #[default]
    Unrestricted,
    /// Most recent initiator only; initiator survives detection.
    Recent,
    /// FIFO initiator/terminator pairing; both consumed.
    Chronicle,
    /// Terminator detects with every open initiator and consumes them.
    Continuous,
    /// All buffered constituents merge into one detection, then clear.
    Cumulative,
}

impl Context {
    /// All contexts, in the conventional order.
    pub const ALL: [Context; 5] = [
        Context::Unrestricted,
        Context::Recent,
        Context::Chronicle,
        Context::Continuous,
        Context::Cumulative,
    ];
}

impl fmt::Display for Context {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Context::Unrestricted => "unrestricted",
            Context::Recent => "recent",
            Context::Chronicle => "chronicle",
            Context::Continuous => "continuous",
            Context::Cumulative => "cumulative",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_lists_every_variant_once() {
        let mut names: Vec<String> = Context::ALL.iter().map(|c| c.to_string()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 5);
    }

    #[test]
    fn default_is_unrestricted() {
        assert_eq!(Context::default(), Context::Unrestricted);
    }
}
