//! The time-domain abstraction the operator semantics is generic over.
//!
//! Definition 3.1 / Section 5.3 of the paper: an event is a boolean function
//! over the *time stamp domain*. What the operator state machines actually
//! need from that domain is:
//!
//! 1. the exhaustive temporal relation between two stamps
//!    (before/after/concurrent/incomparable);
//! 2. the `Max` operation that combines constituent stamps into the stamp
//!    of a composite occurrence (`t_occ = max(…)` centralized, the
//!    Definition 5.9 `Max` operator distributed).
//!
//! [`EventTime`] captures exactly that. [`CentralTime`] instantiates it with
//! totally ordered clock ticks (Section 3); `decs_core::CompositeTimestamp`
//! instantiates it with the Section 5 partial order, where both operations
//! run on the per-site version-vector kernels (`relation` via the merge
//! walks in `decs_core::ordering`, `max` via the survivor merge in
//! `decs_core::join`): O(|sites|) per call with no allocation beyond the
//! joined stamp itself, so wide composites are cheap in the hot operator
//! paths (banded SEQ compares, NOT guard checks, ANY joins).

use decs_core::{max_op, CompositeRelation, CompositeTimestamp};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt::Debug;

/// The operations the Snoop operator semantics needs from a time domain.
pub trait EventTime: Clone + Debug + PartialEq + Send + Sync + 'static {
    /// The exhaustive temporal relation between `self` and `other`.
    fn relation(&self, other: &Self) -> CompositeRelation;

    /// The `Max` of two stamps: the occurrence time of a composite event
    /// whose latest constituents carry `self` and `other`.
    fn max(&self, other: &Self) -> Self;

    /// An arbitrary-but-fixed *total* order over stamps, used only to merge
    /// detections from independent graph shards into one canonical,
    /// reproducible sequence. It must be consistent with equality, and for
    /// totally ordered domains it must agree with [`EventTime::relation`];
    /// for partially ordered domains (composite timestamps) incomparable
    /// stamps are ordered by representation. It carries no temporal
    /// meaning beyond that.
    fn canonical_cmp(&self, other: &Self) -> Ordering;

    /// Whether this stamp is *settled* relative to a low watermark: `true`
    /// guarantees `self.before(u)` for **every** stamp `u` the driver can
    /// still deliver, where the driver promises that every future stamp's
    /// global ticks (all members, for composite stamps) are `≥ low`.
    ///
    /// Operator nodes use this to garbage-collect buffered state whose
    /// relation to all future arrivals is already decided (the watermark
    /// analogue of the `2g_g` band-separation fast path). The conservative
    /// default — never settled — keeps GC a no-op for time domains that do
    /// not opt in; it is always sound because eviction only ever *relies*
    /// on `settled`, never on its negation.
    fn settled(&self, _low: u64) -> bool {
        false
    }

    /// Inclusive upper bound on this stamp's global ticks (all members, for
    /// composite stamps), for **band ordering** of buffered occurrences:
    /// `global_upper_bound() + 1 < low` implies [`EventTime::settled`]`(low)`,
    /// so a buffer sorted by this key has a binary-searchable prefix of
    /// stamps that certainly happen-before any stamp whose globals are all
    /// `≥ low`. The default (`u64::MAX`) claims no bound, which keeps the
    /// prefix empty and band ordering equal to arrival ordering — a sound
    /// no-op for time domains that do not opt in.
    fn global_upper_bound(&self) -> u64 {
        u64::MAX
    }

    /// Inclusive lower bound on this stamp's global ticks: every member's
    /// global tick is `≥` this, so any stamp settled at this bound (see
    /// [`EventTime::settled`]) certainly happens before `self`. The default
    /// (0) claims no bound, disabling the certainly-before shortcut.
    fn global_lower_bound(&self) -> u64 {
        0
    }

    /// Strict happen-before.
    fn before(&self, other: &Self) -> bool {
        self.relation(other) == CompositeRelation::Before
    }

    /// Weak less-than-or-equal (`⪯` / `⪯̃`): before or concurrent.
    fn wleq(&self, other: &Self) -> bool {
        matches!(
            self.relation(other),
            CompositeRelation::Before | CompositeRelation::Concurrent
        )
    }
}

/// Centralized time: non-negative physical clock ticks, totally ordered
/// (Section 3 of the paper). Equal ticks are reported as `Concurrent`
/// (simultaneity is the same-clock special case of concurrency).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct CentralTime(pub u64);

impl CentralTime {
    /// The tick count.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// The tick `delta` ticks later.
    pub const fn plus(self, delta: u64) -> Self {
        CentralTime(self.0 + delta)
    }
}

impl std::fmt::Display for CentralTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl EventTime for CentralTime {
    fn relation(&self, other: &Self) -> CompositeRelation {
        match self.0.cmp(&other.0) {
            std::cmp::Ordering::Less => CompositeRelation::Before,
            std::cmp::Ordering::Greater => CompositeRelation::After,
            std::cmp::Ordering::Equal => CompositeRelation::Concurrent,
        }
    }

    fn max(&self, other: &Self) -> Self {
        CentralTime(self.0.max(other.0))
    }

    fn canonical_cmp(&self, other: &Self) -> Ordering {
        self.0.cmp(&other.0)
    }

    /// Total order: every future tick `≥ low` is strictly after `self`
    /// exactly when `self < low`.
    fn settled(&self, low: u64) -> bool {
        self.0 < low
    }

    fn global_upper_bound(&self) -> u64 {
        self.0
    }

    fn global_lower_bound(&self) -> u64 {
        self.0
    }
}

impl EventTime for CompositeTimestamp {
    fn relation(&self, other: &Self) -> CompositeRelation {
        CompositeTimestamp::relation(self, other)
    }

    fn max(&self, other: &Self) -> Self {
        max_op(self, other)
    }

    fn canonical_cmp(&self, other: &Self) -> Ordering {
        // Normalized member lists are sorted, so lexicographic comparison
        // is a total order consistent with `PartialEq`.
        self.members().cmp(other.members())
    }

    /// `<_p` against any future stamp `u` (all of whose member globals are
    /// `≥ low`) requires, per Definition 5.3, a member of `self` before
    /// each member of `u`. When `max_global(self) + 1 < low`, every
    /// cross-site pair is ordered by the `2g_g` rule
    /// (`g₁ + 1 < low ≤ g₂`), and every same-site pair follows from
    /// Proposition 4.1's site-monotone clocks (larger global tick at one
    /// site implies larger local tick). The cached bound makes this O(1).
    fn settled(&self, low: u64) -> bool {
        self.max_global() + 1 < low
    }

    fn global_upper_bound(&self) -> u64 {
        self.max_global()
    }

    fn global_lower_bound(&self) -> u64 {
        self.min_global()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decs_core::cts;

    #[test]
    fn central_time_total_order() {
        let a = CentralTime(3);
        let b = CentralTime(7);
        assert_eq!(a.relation(&b), CompositeRelation::Before);
        assert_eq!(b.relation(&a), CompositeRelation::After);
        assert_eq!(a.relation(&a), CompositeRelation::Concurrent);
        assert!(a.before(&b));
        assert!(!b.before(&a));
        assert!(a.wleq(&b));
        assert!(a.wleq(&a));
        assert!(!b.wleq(&a));
    }

    #[test]
    fn central_time_max_and_plus() {
        assert_eq!(
            EventTime::max(&CentralTime(3), &CentralTime(7)),
            CentralTime(7)
        );
        assert_eq!(
            EventTime::max(&CentralTime(9), &CentralTime(7)),
            CentralTime(9)
        );
        assert_eq!(CentralTime(3).plus(4), CentralTime(7));
        assert_eq!(CentralTime(5).to_string(), "t5");
    }

    #[test]
    fn composite_timestamp_implements_event_time() {
        let a = cts(&[(1, 1, 10)]);
        let b = cts(&[(2, 5, 50)]);
        assert_eq!(EventTime::relation(&a, &b), CompositeRelation::Before);
        assert!(a.before(&b));
        // Max through the trait is the paper's Max operator.
        let c = cts(&[(1, 8, 80)]);
        let d = cts(&[(2, 8, 82)]);
        assert_eq!(EventTime::max(&c, &d), cts(&[(1, 8, 80), (2, 8, 82)]));
    }

    #[test]
    fn central_settled_iff_below_watermark() {
        assert!(CentralTime(4).settled(5));
        assert!(!CentralTime(5).settled(5));
        assert!(!CentralTime(9).settled(5));
    }

    #[test]
    fn composite_settled_implies_before_future_stamps() {
        let old = cts(&[(1, 3, 30), (2, 4, 41)]);
        assert!(old.settled(6)); // max_global 4, 4 + 1 < 6
        assert!(!old.settled(5)); // band gap of exactly 1: undecided
                                  // Any stamp whose globals are ≥ the watermark is provably after.
        for probe in [cts(&[(3, 6, 60)]), cts(&[(1, 7, 70), (2, 6, 62)])] {
            assert!(old.before(&probe));
        }
    }

    #[test]
    fn band_bounds_bracket_settled() {
        // The contract band ordering relies on: upper + 1 < low ⇒ settled(low),
        // and lower is a floor on every member global.
        let t = CentralTime(7);
        assert_eq!(t.global_upper_bound(), 7);
        assert_eq!(t.global_lower_bound(), 7);
        assert!(t.settled(9)); // 7 + 1 < 9
        let c = cts(&[(1, 3, 30), (2, 4, 42)]);
        assert_eq!(c.global_upper_bound(), 4);
        assert_eq!(c.global_lower_bound(), 3);
        assert!(c.settled(6)); // 4 + 1 < 6
        assert!(!c.settled(5));
    }

    #[test]
    fn central_never_incomparable() {
        for i in 0..10u64 {
            for j in 0..10u64 {
                let r = CentralTime(i).relation(&CentralTime(j));
                assert_ne!(r, CompositeRelation::Incomparable);
            }
        }
    }
}
