//! # decs-snoop — the Snoop/Sentinel composite event algebra
//!
//! This crate implements the event-specification language of Sentinel
//! (Snoop operators) as a detection library that is *generic over the time
//! domain*:
//!
//! * instantiated with [`CentralTime`] (a totally ordered tick counter) it
//!   is the **centralized** semantics of Section 3 of Yang & Chakravarthy
//!   (ICDE 1999);
//! * instantiated with [`decs_core::CompositeTimestamp`] it is the
//!   **distributed** semantics of Section 5.3 — the same operator state
//!   machines, with the timestamp ordering replaced by the partial order
//!   `<_p` and `t_occ = max(...)` replaced by the `Max` operator.
//!
//! That parametricity is the point of the paper: the composite-event
//! semantics "extends to the distributed environment" purely by swapping
//! the time algebra. The [`time::EventTime`] trait captures exactly what the
//! operators need: the exhaustive temporal relation and `Max`.
//!
//! Supported operators (with their Snoop names):
//! `E1 ∧ E2` (And), `E1 ∨ E2` (Or), `E1 ; E2` (Seq),
//! `¬(E2)[E1,E3]` (Not), `A(E1,E2,E3)` / `A*(E1,E2,E3)` (aperiodic),
//! `P(E1,[t],E3)` / `P*(E1,[t],E3)` (periodic), `E + t` (Plus),
//! `ANY(m; E1,…,En)`, each under the Sentinel parameter contexts
//! (Unrestricted, Recent, Chronicle, Continuous, Cumulative).

// `deny`, not `forbid`: the one sanctioned exception is the SPSC ring in
// `spsc` (a Lamport queue needs an `UnsafeCell` slot array), which opts in
// locally with documented invariants. Everything else stays safe.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod context;
pub mod detector;
pub mod error;
pub mod event;
pub mod expr;
pub mod graph;
pub mod nodes;
pub mod plan;
#[cfg(feature = "parallel")]
mod pool;
pub mod shard;
#[cfg(feature = "parallel")]
mod spsc;
pub mod state;
pub mod time;

pub use batch::{EventBatch, ParamArena, ParamHandle};
pub use context::Context;
pub use detector::{CentralDetector, Detector};
pub use error::{Result, SnoopError};
pub use event::{Catalog, EventId, Occurrence, ParamList, ParamTuple, Value};
pub use expr::EventExpr;
pub use graph::{EventGraph, FeedResult, NodeId, TimerId, TimerRequest};
pub use nodes::mask::Mask;
pub use plan::{AnyDetector, PlanDetector, PlanStats};
pub use shard::{ShardFeedResult, ShardId, ShardedDetector};
pub use state::{DefTimers, DetectorState, GraphState, NodeState, PlanState, Snapshot};
pub use time::{CentralTime, EventTime};
