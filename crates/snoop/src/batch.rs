//! Columnar (struct-of-arrays) event batches and the parameter arena.
//!
//! The per-event ingest path pays three heap allocations and a catalog
//! hash lookup per primitive occurrence (`Occurrence::bare` wraps an
//! empty tuple in two fresh `Arc`s; `feed_bare` resolves the name every
//! time), plus a watermark-GC sweep over every operator node per feed.
//! [`EventBatch`] amortizes all of that across a whole batch:
//!
//! * **SoA layout** — event types, stamps and parameter *handles* live in
//!   parallel vectors, so batch-level prefilters (route presence, timer
//!   boundaries) scan a dense `EventId`/tick column instead of chasing
//!   per-occurrence pointers.
//! * **Arena-backed parameters** — parameter lists are owned by a
//!   [`ParamArena`] and referenced by generation-indexed
//!   [`ParamHandle`]s. Bare (parameterless) events share one interned
//!   list per event type for the life of the arena — zero allocations
//!   per event after the first of each type. Parameterized events get a
//!   transient slot that dies when the batch is [`EventBatch::clear`]ed:
//!   the generation bumps and stale handles can never resurrect a
//!   recycled buffer (they resolve to `None`).
//! * **Reuse** — `clear` keeps every column's capacity, so a steady-state
//!   ingest loop allocates nothing.
//!
//! Occurrences are materialized lazily, one at a time, at the moment a
//! detector delivers the event ([`EventBatch::occurrence`]): an `Arc`
//! bump for the parameters, a stamp clone, and a fresh uid. Events whose
//! type routes to no definition are skipped without ever materializing.
//!
//! The stamp column stores stamps *with their summaries already built*:
//! `decs_core::CompositeTimestamp` computes its per-site version-vector
//! caches (site mask, global band, per-site run bounds) at construction,
//! so cloning a stamp into or out of the column copies the caches too.
//! Batch-level band prefilters ([`EventTime::global_upper_bound`] over the
//! dense column) and the downstream operator compares therefore never
//! re-derive anything from the member list, no matter how wide the stamp.
//!
//! The per-event path (`feed`/`feed_bare`) survives untouched as the
//! differential oracle — `tests/prop_ingest.rs` pins columnar ingestion
//! bit-identical to it across every context, GC mode and worker count.

use crate::event::{fresh_uid, EventId, Occurrence, ParamList, ParamTuple, Value};
use crate::time::EventTime;
use std::sync::Arc;

/// A generation-checked reference to a parameter list in a [`ParamArena`].
///
/// `Bare` handles point at the per-type interned empty list and stay
/// valid for the arena's lifetime. `Owned` handles point at a transient
/// slot and are invalidated by [`ParamArena::reset`] — resolving a stale
/// handle returns `None` instead of whatever now occupies the slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamHandle {
    /// The interned empty parameter list of one event type.
    Bare(EventId),
    /// A transient slot, valid only for the generation that allocated it.
    Owned {
        /// Slot index within the arena.
        index: u32,
        /// Arena generation the slot was allocated in.
        generation: u32,
    },
}

/// Slab of parameter lists backing one [`EventBatch`] (or any other
/// ingest staging area). See the module docs for the handle protocol.
#[derive(Debug, Default)]
pub struct ParamArena {
    /// Interned empty list per event type, immortal (indexed by
    /// `EventId`).
    bare: Vec<Option<ParamList>>,
    /// Transient slots of the current generation.
    slots: Vec<ParamList>,
    generation: u32,
    /// Estimated payload bytes held by the current generation's slots.
    payload_bytes: usize,
}

impl ParamArena {
    /// An empty arena at generation 0.
    pub fn new() -> Self {
        ParamArena::default()
    }

    /// The interned empty parameter list for `ty` (allocated once per
    /// type, shared by every bare event of that type thereafter).
    pub fn intern_bare(&mut self, ty: EventId) -> ParamHandle {
        let i = ty.0 as usize;
        if i >= self.bare.len() {
            self.bare.resize(i + 1, None);
        }
        if self.bare[i].is_none() {
            self.bare[i] = Some(Arc::new(vec![ParamTuple::new(ty, Vec::new())]));
        }
        ParamHandle::Bare(ty)
    }

    /// Allocate a transient slot holding a fresh single-tuple list.
    pub fn alloc(&mut self, ty: EventId, values: Vec<Value>) -> ParamHandle {
        self.payload_bytes += values.len() * std::mem::size_of::<Value>();
        self.alloc_list(Arc::new(vec![ParamTuple::new(ty, values)]))
    }

    /// Allocate a transient slot referencing an existing list (an `Arc`
    /// bump — used when re-batching occurrences that already carry
    /// parameters, e.g. the coordinator's release path).
    pub fn alloc_list(&mut self, params: ParamList) -> ParamHandle {
        let index = self.slots.len() as u32;
        self.slots.push(params);
        ParamHandle::Owned {
            index,
            generation: self.generation,
        }
    }

    /// Resolve a handle. Returns `None` for an `Owned` handle from a
    /// previous generation (the slot was recycled by [`Self::reset`]) —
    /// stale handles are never resurrected.
    pub fn get(&self, h: ParamHandle) -> Option<&ParamList> {
        match h {
            ParamHandle::Bare(ty) => self.bare.get(ty.0 as usize)?.as_ref(),
            ParamHandle::Owned { index, generation } => {
                if generation != self.generation {
                    return None;
                }
                self.slots.get(index as usize)
            }
        }
    }

    /// Recycle every transient slot: bump the generation (invalidating
    /// all outstanding `Owned` handles) and clear the slot vector, keeping
    /// its capacity. Interned bare lists survive.
    pub fn reset(&mut self) {
        self.generation = self.generation.wrapping_add(1);
        self.slots.clear();
        self.payload_bytes = 0;
    }

    /// Estimated bytes retained by the arena: slot/bare-table capacity
    /// plus the current generation's payloads.
    pub fn bytes(&self) -> usize {
        self.slots.capacity() * std::mem::size_of::<ParamList>()
            + self.bare.capacity() * std::mem::size_of::<Option<ParamList>>()
            + self
                .bare
                .iter()
                .flatten()
                .map(|_| std::mem::size_of::<ParamTuple>())
                .sum::<usize>()
            + self.payload_bytes
    }
}

/// A struct-of-arrays batch of primitive events awaiting ingestion.
///
/// Columns are parallel: `types[i]`, `times[i]` and `params[i]` describe
/// event `i`. Feed it through `CentralDetector::feed_columnar` (ticks) or
/// the backends' `feed_batch_columnar` (any time domain); then
/// [`Self::clear`] and refill — steady state allocates nothing.
#[derive(Debug, Default)]
pub struct EventBatch<T> {
    types: Vec<EventId>,
    times: Vec<T>,
    params: Vec<ParamHandle>,
    arena: ParamArena,
}

impl<T: EventTime> EventBatch<T> {
    /// An empty batch.
    pub fn new() -> Self {
        EventBatch {
            types: Vec::new(),
            times: Vec::new(),
            params: Vec::new(),
            arena: ParamArena::new(),
        }
    }

    /// An empty batch with pre-sized columns.
    pub fn with_capacity(n: usize) -> Self {
        EventBatch {
            types: Vec::with_capacity(n),
            times: Vec::with_capacity(n),
            params: Vec::with_capacity(n),
            arena: ParamArena::new(),
        }
    }

    /// Append a parameterless event (shares the per-type interned list).
    pub fn push_bare(&mut self, ty: EventId, time: T) {
        let h = self.arena.intern_bare(ty);
        self.types.push(ty);
        self.times.push(time);
        self.params.push(h);
    }

    /// Append an event with parameter values.
    pub fn push(&mut self, ty: EventId, time: T, values: Vec<Value>) {
        let h = if values.is_empty() {
            self.arena.intern_bare(ty)
        } else {
            self.arena.alloc(ty, values)
        };
        self.types.push(ty);
        self.times.push(time);
        self.params.push(h);
    }

    /// Append an event that already carries a parameter list (an `Arc`
    /// bump, no copy — the coordinator's re-batching path).
    pub fn push_list(&mut self, ty: EventId, time: T, params: ParamList) {
        let h = self.arena.alloc_list(params);
        self.types.push(ty);
        self.times.push(time);
        self.params.push(h);
    }

    /// Number of events in the batch.
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }

    /// The event-type column.
    pub fn types(&self) -> &[EventId] {
        &self.types
    }

    /// The timestamp column.
    pub fn times(&self) -> &[T] {
        &self.times
    }

    /// Event `i`'s type.
    pub fn ty(&self, i: usize) -> EventId {
        self.types[i]
    }

    /// Event `i`'s timestamp.
    pub fn time(&self, i: usize) -> &T {
        &self.times[i]
    }

    /// Materialize event `i` as an occurrence: parameter `Arc` bump,
    /// stamp clone, fresh uid. Called once per *routed* event at delivery
    /// time; unrouted events are never materialized.
    pub fn occurrence(&self, i: usize) -> Occurrence<T> {
        let params = self
            .arena
            .get(self.params[i])
            .expect("batch-local handles are always current")
            .clone();
        Occurrence {
            ty: self.types[i],
            time: self.times[i].clone(),
            params,
            uid: fresh_uid(),
        }
    }

    /// Recycle the batch: drop every event, invalidate every transient
    /// parameter handle (see [`ParamArena::reset`]), keep all capacity.
    pub fn clear(&mut self) {
        self.types.clear();
        self.times.clear();
        self.params.clear();
        self.arena.reset();
    }

    /// Estimated bytes retained by the batch's columns and arena.
    pub fn arena_bytes(&self) -> usize {
        self.types.capacity() * std::mem::size_of::<EventId>()
            + self.times.capacity() * std::mem::size_of::<T>()
            + self.params.capacity() * std::mem::size_of::<ParamHandle>()
            + self.arena.bytes()
    }

    /// Materialize every event whose type passes `routed` into plain
    /// occurrences, in order (the pooled fan-out paths consume `Vec`s).
    pub(crate) fn materialize_routed(
        &self,
        routed: impl Fn(EventId) -> bool,
    ) -> Vec<Occurrence<T>> {
        (0..self.len())
            .filter(|&i| routed(self.types[i]))
            .map(|i| self.occurrence(i))
            .collect()
    }

    /// Materialize rows `range` into plain occurrences, in order (the
    /// timer-boundary split path of `CentralDetector::feed_columnar`).
    pub(crate) fn materialize_range(&self, range: std::ops::Range<usize>) -> Vec<Occurrence<T>> {
        range.map(|i| self.occurrence(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::CentralTime;

    #[test]
    fn bare_events_share_one_interned_list() {
        let mut b = EventBatch::<CentralTime>::new();
        b.push_bare(EventId(3), CentralTime(1));
        b.push_bare(EventId(3), CentralTime(2));
        let o1 = b.occurrence(0);
        let o2 = b.occurrence(1);
        assert!(Arc::ptr_eq(&o1.params, &o2.params));
        assert_ne!(o1.uid, o2.uid);
        assert_eq!(o1.params[0].source, EventId(3));
        assert!(o1.params[0].values.is_empty());
    }

    #[test]
    fn owned_params_round_trip() {
        let mut b = EventBatch::<CentralTime>::new();
        b.push(EventId(1), CentralTime(5), vec![Value::Int(42)]);
        let o = b.occurrence(0);
        assert_eq!(o.params[0].values[0].as_int(), Some(42));
        assert_eq!(o.time, CentralTime(5));
    }

    #[test]
    fn evicted_handles_are_never_resurrected() {
        let mut arena = ParamArena::new();
        let stale = arena.alloc(EventId(0), vec![Value::Int(1)]);
        assert!(arena.get(stale).is_some());
        arena.reset();
        // The slot vector is recycled; a new allocation may reuse the very
        // same index, but the stale handle must not see it.
        let fresh = arena.alloc(EventId(0), vec![Value::Int(2)]);
        assert_eq!(arena.get(stale), None, "stale handle resurrected");
        assert_eq!(
            arena.get(fresh).unwrap()[0].values[0].as_int(),
            Some(2),
            "current-generation handle must resolve"
        );
        // Bare interned lists survive resets by design.
        let bare = arena.intern_bare(EventId(4));
        arena.reset();
        assert!(arena.get(bare).is_some());
    }

    #[test]
    fn clear_keeps_capacity_and_invalidates() {
        let mut b = EventBatch::<CentralTime>::with_capacity(8);
        b.push(EventId(0), CentralTime(1), vec![Value::Bool(true)]);
        let bytes_before = b.arena_bytes();
        b.clear();
        assert!(b.is_empty());
        assert!(b.arena_bytes() <= bytes_before);
        b.push_bare(EventId(0), CentralTime(2));
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn empty_values_push_falls_back_to_bare_interning() {
        let mut b = EventBatch::<CentralTime>::new();
        b.push(EventId(2), CentralTime(1), Vec::new());
        b.push_bare(EventId(2), CentralTime(2));
        assert!(Arc::ptr_eq(
            &b.occurrence(0).params,
            &b.occurrence(1).params
        ));
    }
}
