//! The event detection graph.
//!
//! Sentinel detects composite events bottom-up over a DAG: leaves are
//! primitive event types, internal nodes are operator instances, and each
//! node pushes the occurrences it derives to its subscribers. Compiling an
//! [`EventExpr`] produces such nodes; feeding a primitive occurrence
//! propagates through every subscribed operator and returns the composite
//! occurrences of *named* events that were detected.
//!
//! Temporal operators (`P`, `P*`, `+`) cannot produce occurrences from
//! event arrivals alone — they need a clock. The graph stays agnostic of
//! *whose* clock: a node registers a [`TimerRequest`] (a delay in ticks) and
//! the driver later calls [`EventGraph::fire_timer`] with an actual
//! timestamp. The centralized detector services these from its tick
//! counter; the distributed engine schedules them on a site's local clock,
//! so a timer occurrence carries a genuine `(site, global, local)` stamp.

use crate::context::Context;
use crate::error::{Result, SnoopError};
use crate::event::{Catalog, EventId, Occurrence};
use crate::expr::EventExpr;
use crate::nodes::{self, OperatorNode, Sink};
use crate::state::GraphState;
use crate::time::EventTime;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::fmt;

/// Identifier of a node within one graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of an outstanding timer request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TimerId(pub u64);

/// A request for the driver to call back after `delay_ticks`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimerRequest {
    /// Handle to pass back to [`EventGraph::fire_timer`].
    pub id: TimerId,
    /// Delay, in clock ticks (centralized) or global ticks (distributed).
    pub delay_ticks: u64,
}

/// Everything one feed/fire step produced.
#[derive(Debug, Clone, Default)]
pub struct FeedResult<T> {
    /// Occurrences of *named* composite events, in detection order.
    pub detected: Vec<Occurrence<T>>,
    /// New timer requests for the driver.
    pub timers: Vec<TimerRequest>,
}

impl<T> FeedResult<T> {
    fn new() -> Self {
        FeedResult {
            detected: Vec::new(),
            timers: Vec::new(),
        }
    }
}

struct NodeEntry<T: EventTime> {
    op: Box<dyn OperatorNode<T>>,
    /// The event type this node's emissions carry.
    emits: EventId,
    /// Whether `emits` is a user-visible named event.
    named: bool,
    /// Subscribing parents: `(parent, slot in parent)`.
    parents: Vec<(NodeId, usize)>,
}

impl<T: EventTime> fmt::Debug for NodeEntry<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NodeEntry")
            .field("op", &self.op)
            .field("emits", &self.emits)
            .field("named", &self.named)
            .field("parents", &self.parents)
            .finish()
    }
}

/// A compiled event detection graph over the time domain `T`.
#[derive(Debug)]
pub struct EventGraph<T: EventTime> {
    nodes: Vec<NodeEntry<T>>,
    /// Primitive/named event type → subscribers.
    subs: HashMap<EventId, Vec<(NodeId, usize)>>,
    /// Outstanding timers → (node, node-internal tag).
    timers: HashMap<TimerId, (NodeId, u64)>,
    next_timer: u64,
}

impl<T: EventTime> Default for EventGraph<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// Where a compiled subexpression delivers its occurrences from.
enum Source {
    /// A leaf event type (primitive or previously named composite).
    Event(EventId),
    /// An internal operator node.
    Node(NodeId),
}

impl<T: EventTime> EventGraph<T> {
    /// An empty graph.
    pub fn new() -> Self {
        EventGraph {
            nodes: Vec::new(),
            subs: HashMap::new(),
            timers: HashMap::new(),
            next_timer: 0,
        }
    }

    /// Number of operator nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The event types this graph has graph-level subscriptions for: the
    /// primitive (and referenced named-composite) types that can make it
    /// react. Feeding any other type is a no-op. Used by the sharded
    /// detector to build its per-shard routing index.
    pub fn subscribed_types(&self) -> impl Iterator<Item = EventId> + '_ {
        self.subs.keys().copied()
    }

    /// Render the graph in Graphviz `dot` syntax: event-type sources as
    /// ellipses, operator nodes as boxes (double border for named
    /// composite events), edges labelled with the operand slot.
    pub fn to_dot(&self, catalog: &Catalog) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph decs {\n  rankdir=BT;\n");
        // Event-type sources that feed subscribers.
        for (&ev, subs) in &self.subs {
            let _ = writeln!(
                out,
                "  ev{} [label={:?} shape=ellipse];",
                ev.0,
                catalog.name(ev)
            );
            for &(node, slot) in subs {
                let _ = writeln!(out, "  ev{} -> n{} [label=\"{}\"];", ev.0, node.0, slot);
            }
        }
        for (i, entry) in self.nodes.iter().enumerate() {
            let shape = if entry.named { "doubleoctagon" } else { "box" };
            let _ = writeln!(
                out,
                "  n{} [label={:?} shape={}];",
                i,
                catalog.name(entry.emits),
                shape
            );
            for &(parent, slot) in &entry.parents {
                let _ = writeln!(out, "  n{} -> n{} [label=\"{}\"];", i, parent.0, slot);
            }
        }
        out.push_str("}\n");
        out
    }

    /// Compile `expr` as the definition of the named composite event
    /// `name`, under parameter context `ctx`. Registers `name` in the
    /// catalog (it must not already exist) and returns its event id.
    /// Occurrences of `name` are reported in [`FeedResult::detected`] and
    /// also feed any later-compiled expression that references `name`.
    pub fn compile(
        &mut self,
        catalog: &mut Catalog,
        name: &str,
        expr: &EventExpr,
        ctx: Context,
    ) -> Result<EventId> {
        expr.validate()?;
        if expr.primitive_names().contains(&name) {
            return Err(SnoopError::CyclicDefinition(name.to_owned()));
        }
        let emits = catalog.register(name)?;
        let root = self.build(catalog, expr, ctx)?;
        match root {
            Source::Node(n) => {
                self.nodes[n.0 as usize].emits = emits;
                self.nodes[n.0 as usize].named = true;
            }
            Source::Event(src) => {
                // A pure alias: insert a forwarding OR node with one child.
                let n = self.push_node(Box::new(nodes::or::OrNode::new()), emits, true);
                self.subscribe(Source::Event(src), n, 0);
            }
        }
        Ok(emits)
    }

    fn push_node(&mut self, op: Box<dyn OperatorNode<T>>, emits: EventId, named: bool) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeEntry {
            op,
            emits,
            named,
            parents: Vec::new(),
        });
        id
    }

    fn subscribe(&mut self, src: Source, parent: NodeId, slot: usize) {
        match src {
            Source::Event(e) => self.subs.entry(e).or_default().push((parent, slot)),
            Source::Node(n) => self.nodes[n.0 as usize].parents.push((parent, slot)),
        }
    }

    fn synthetic(&self, catalog: &mut Catalog) -> EventId {
        catalog.intern(&format!("__node_{}", self.nodes.len()))
    }

    fn build(&mut self, catalog: &mut Catalog, expr: &EventExpr, ctx: Context) -> Result<Source> {
        Ok(match expr {
            EventExpr::Primitive(name) => Source::Event(catalog.lookup(name)?),
            EventExpr::And(a, b) => {
                let (sa, sb) = (self.build(catalog, a, ctx)?, self.build(catalog, b, ctx)?);
                let emits = self.synthetic(catalog);
                let n = self.push_node(Box::new(nodes::and::AndNode::new(ctx)), emits, false);
                self.subscribe(sa, n, 0);
                self.subscribe(sb, n, 1);
                Source::Node(n)
            }
            EventExpr::Or(a, b) => {
                let (sa, sb) = (self.build(catalog, a, ctx)?, self.build(catalog, b, ctx)?);
                let emits = self.synthetic(catalog);
                let n = self.push_node(Box::new(nodes::or::OrNode::new()), emits, false);
                self.subscribe(sa, n, 0);
                self.subscribe(sb, n, 1);
                Source::Node(n)
            }
            EventExpr::Seq(a, b) => {
                let (sa, sb) = (self.build(catalog, a, ctx)?, self.build(catalog, b, ctx)?);
                let emits = self.synthetic(catalog);
                let n = self.push_node(Box::new(nodes::seq::SeqNode::new(ctx)), emits, false);
                self.subscribe(sa, n, 0);
                self.subscribe(sb, n, 1);
                Source::Node(n)
            }
            EventExpr::Not {
                guard,
                opener,
                closer,
            } => {
                let so = self.build(catalog, opener, ctx)?;
                let sg = self.build(catalog, guard, ctx)?;
                let sc = self.build(catalog, closer, ctx)?;
                let emits = self.synthetic(catalog);
                let n = self.push_node(Box::new(nodes::not::NotNode::new(ctx)), emits, false);
                self.subscribe(so, n, nodes::not::SLOT_OPENER);
                self.subscribe(sg, n, nodes::not::SLOT_GUARD);
                self.subscribe(sc, n, nodes::not::SLOT_CLOSER);
                Source::Node(n)
            }
            EventExpr::Aperiodic {
                opener,
                mid,
                closer,
            } => {
                let so = self.build(catalog, opener, ctx)?;
                let sm = self.build(catalog, mid, ctx)?;
                let sc = self.build(catalog, closer, ctx)?;
                let emits = self.synthetic(catalog);
                let n = self.push_node(Box::new(nodes::aperiodic::ANode::new(ctx)), emits, false);
                self.subscribe(so, n, nodes::aperiodic::SLOT_OPENER);
                self.subscribe(sm, n, nodes::aperiodic::SLOT_MID);
                self.subscribe(sc, n, nodes::aperiodic::SLOT_CLOSER);
                Source::Node(n)
            }
            EventExpr::AperiodicStar {
                opener,
                mid,
                closer,
            } => {
                let so = self.build(catalog, opener, ctx)?;
                let sm = self.build(catalog, mid, ctx)?;
                let sc = self.build(catalog, closer, ctx)?;
                let emits = self.synthetic(catalog);
                let n = self.push_node(
                    Box::new(nodes::aperiodic::AStarNode::new(ctx)),
                    emits,
                    false,
                );
                self.subscribe(so, n, nodes::aperiodic::SLOT_OPENER);
                self.subscribe(sm, n, nodes::aperiodic::SLOT_MID);
                self.subscribe(sc, n, nodes::aperiodic::SLOT_CLOSER);
                Source::Node(n)
            }
            EventExpr::Periodic {
                opener,
                period,
                closer,
            } => {
                let so = self.build(catalog, opener, ctx)?;
                let sc = self.build(catalog, closer, ctx)?;
                let emits = self.synthetic(catalog);
                let n =
                    self.push_node(Box::new(nodes::periodic::PNode::new(*period)), emits, false);
                self.subscribe(so, n, nodes::periodic::SLOT_OPENER);
                self.subscribe(sc, n, nodes::periodic::SLOT_CLOSER);
                Source::Node(n)
            }
            EventExpr::PeriodicStar {
                opener,
                period,
                closer,
            } => {
                let so = self.build(catalog, opener, ctx)?;
                let sc = self.build(catalog, closer, ctx)?;
                let emits = self.synthetic(catalog);
                let n = self.push_node(
                    Box::new(nodes::periodic::PStarNode::new(*period)),
                    emits,
                    false,
                );
                self.subscribe(so, n, nodes::periodic::SLOT_OPENER);
                self.subscribe(sc, n, nodes::periodic::SLOT_CLOSER);
                Source::Node(n)
            }
            EventExpr::Plus { base, delta } => {
                let sb = self.build(catalog, base, ctx)?;
                let emits = self.synthetic(catalog);
                let n = self.push_node(Box::new(nodes::plus::PlusNode::new(*delta)), emits, false);
                self.subscribe(sb, n, 0);
                Source::Node(n)
            }
            EventExpr::Masked { base, mask } => {
                let sb = self.build(catalog, base, ctx)?;
                let emits = self.synthetic(catalog);
                let n = self.push_node(
                    Box::new(nodes::mask::MaskNode::new(mask.clone())),
                    emits,
                    false,
                );
                self.subscribe(sb, n, 0);
                Source::Node(n)
            }
            EventExpr::Any { m, alternatives } => {
                let sources: Vec<Source> = alternatives
                    .iter()
                    .map(|a| self.build(catalog, a, ctx))
                    .collect::<Result<_>>()?;
                let emits = self.synthetic(catalog);
                let n = self.push_node(
                    Box::new(nodes::any::AnyNode::new(ctx, *m, alternatives.len())),
                    emits,
                    false,
                );
                for (slot, s) in sources.into_iter().enumerate() {
                    self.subscribe(s, n, slot);
                }
                Source::Node(n)
            }
        })
    }

    /// Feed a primitive (or named-composite) occurrence into the graph.
    /// Taking the occurrence by value lets the last subscriber receive it
    /// by move, so single-subscriber delivery (the common case) is
    /// clone-free; see [`EventGraph::feed_ref`] for the borrowing variant.
    pub fn feed(&mut self, occ: Occurrence<T>) -> FeedResult<T> {
        let mut result = FeedResult::new();
        let mut queue: VecDeque<(NodeId, usize, Occurrence<T>)> = VecDeque::new();
        match self.subs.get(&occ.ty) {
            None => return result,
            Some(subs) => {
                let (&(last, last_slot), rest) = subs.split_last().expect("subs are non-empty");
                for &(node, slot) in rest {
                    queue.push_back((node, slot, occ.clone()));
                }
                queue.push_back((last, last_slot, occ));
            }
        }
        self.drain(queue, &mut result);
        result
    }

    /// Feed by reference: clones once per subscriber edge, never for the
    /// graph itself. Callers that fan one occurrence out to several graphs
    /// (the sharded detector's routing) use this to avoid a clone per
    /// graph.
    pub fn feed_ref(&mut self, occ: &Occurrence<T>) -> FeedResult<T> {
        let mut result = FeedResult::new();
        let mut queue: VecDeque<(NodeId, usize, Occurrence<T>)> = VecDeque::new();
        self.enqueue_subscribers(occ, &mut queue);
        self.drain(queue, &mut result);
        result
    }

    /// Deliver a previously requested timer with the timestamp the driver
    /// assigned to it.
    pub fn fire_timer(&mut self, id: TimerId, time: T) -> Result<FeedResult<T>> {
        let (node, tag) = self
            .timers
            .remove(&id)
            .ok_or(SnoopError::UnknownTimer(id.0))?;
        let mut result = FeedResult::new();
        let mut queue = VecDeque::new();
        let entry = &mut self.nodes[node.0 as usize];
        let mut emissions = Vec::new();
        let mut timer_reqs = Vec::new();
        {
            let mut sink = Sink::new(entry.emits, &mut emissions, &mut timer_reqs);
            entry.op.on_timer(tag, &time, &mut sink);
        }
        self.postprocess(node, emissions, timer_reqs, &mut queue, &mut result);
        self.drain(queue, &mut result);
        Ok(result)
    }

    /// Number of outstanding timers (for driver bookkeeping/tests).
    pub fn pending_timer_count(&self) -> usize {
        self.timers.len()
    }

    /// Smallest delay any node in this graph can request a timer with, or
    /// `None` when the graph contains no temporal operators. Batching
    /// drivers rely on the resulting bound: an occurrence fed at tick `t`
    /// cannot enqueue a timer due before `t + min` (see
    /// [`OperatorNode::min_timer_delay`]).
    pub fn min_timer_delay(&self) -> Option<u64> {
        self.nodes
            .iter()
            .filter_map(|entry| entry.op.min_timer_delay())
            .min()
    }

    /// The driver's low watermark advanced to `low`: let every operator
    /// node garbage-collect buffered state the watermark proves dead (see
    /// [`OperatorNode::on_watermark`]). Returns the total number of evicted
    /// entries. Behavior-preserving: the detection stream is unchanged.
    pub fn advance_watermark(&mut self, low: u64) -> u64 {
        self.nodes
            .iter_mut()
            .map(|entry| entry.op.on_watermark(low))
            .sum()
    }

    /// Total occurrences buffered across all operator nodes (occupancy
    /// metric; see [`OperatorNode::buffered_len`]).
    pub fn buffered_occupancy(&self) -> usize {
        self.nodes.iter().map(|entry| entry.op.buffered_len()).sum()
    }

    /// Serialize the buffered state of every operator node plus the
    /// pending-timer table (see [`crate::state`]).
    pub fn save_state(&self) -> GraphState<T> {
        let mut timers: Vec<(u64, u32, u64)> = self
            .timers
            .iter()
            .map(|(id, &(node, tag))| (id.0, node.0, tag))
            .collect();
        timers.sort_unstable();
        GraphState {
            nodes: self.nodes.iter().map(|e| e.op.save_state()).collect(),
            timers,
            next_timer: self.next_timer,
        }
    }

    /// Restore a state produced by [`EventGraph::save_state`] on a graph
    /// compiled from the same expression. Fails with
    /// [`SnoopError::SnapshotMismatch`] when the shapes disagree.
    pub fn restore_state(&mut self, state: GraphState<T>) -> Result<()> {
        if state.nodes.len() != self.nodes.len() {
            return Err(SnoopError::SnapshotMismatch(format!(
                "graph has {} nodes, snapshot has {}",
                self.nodes.len(),
                state.nodes.len()
            )));
        }
        for (entry, ns) in self.nodes.iter_mut().zip(state.nodes) {
            entry.op.restore_state(ns)?;
        }
        self.timers.clear();
        for (id, node, tag) in state.timers {
            if node as usize >= self.nodes.len() {
                return Err(SnoopError::SnapshotMismatch(format!(
                    "timer {id} targets node {node}, graph has {} nodes",
                    self.nodes.len()
                )));
            }
            if id >= state.next_timer {
                return Err(SnoopError::SnapshotMismatch(format!(
                    "timer id {id} not below next_timer {}",
                    state.next_timer
                )));
            }
            self.timers.insert(TimerId(id), (NodeId(node), tag));
        }
        self.next_timer = state.next_timer;
        Ok(())
    }

    fn enqueue_subscribers(
        &self,
        occ: &Occurrence<T>,
        queue: &mut VecDeque<(NodeId, usize, Occurrence<T>)>,
    ) {
        if let Some(subs) = self.subs.get(&occ.ty) {
            for &(node, slot) in subs {
                queue.push_back((node, slot, occ.clone()));
            }
        }
    }

    fn drain(
        &mut self,
        mut queue: VecDeque<(NodeId, usize, Occurrence<T>)>,
        result: &mut FeedResult<T>,
    ) {
        while let Some((node, slot, occ)) = queue.pop_front() {
            let entry = &mut self.nodes[node.0 as usize];
            let mut emissions = Vec::new();
            let mut timer_reqs = Vec::new();
            {
                let mut sink = Sink::new(entry.emits, &mut emissions, &mut timer_reqs);
                entry.op.on_child(slot, &occ, &mut sink);
            }
            self.postprocess(node, emissions, timer_reqs, &mut queue, result);
        }
    }

    fn postprocess(
        &mut self,
        node: NodeId,
        emissions: Vec<Occurrence<T>>,
        timer_reqs: Vec<(u64, u64)>,
        queue: &mut VecDeque<(NodeId, usize, Occurrence<T>)>,
        result: &mut FeedResult<T>,
    ) {
        for (tag, delay) in timer_reqs {
            let id = TimerId(self.next_timer);
            self.next_timer += 1;
            self.timers.insert(id, (node, tag));
            result.timers.push(TimerRequest {
                id,
                delay_ticks: delay,
            });
        }
        let entry = &self.nodes[node.0 as usize];
        let named = entry.named;
        for occ in emissions {
            match entry.parents.split_last() {
                Some((&(last, lslot), rest)) => {
                    for &(parent, slot) in rest {
                        queue.push_back((parent, slot, occ.clone()));
                    }
                    if named {
                        queue.push_back((last, lslot, occ.clone()));
                        // Named events also feed graph-level subscribers
                        // (composite events used inside other definitions).
                        self.enqueue_subscribers(&occ, queue);
                        result.detected.push(occ);
                    } else {
                        // Last parent takes the emission by move.
                        queue.push_back((last, lslot, occ));
                    }
                }
                None => {
                    if named {
                        self.enqueue_subscribers(&occ, queue);
                        result.detected.push(occ);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::CentralTime;

    fn setup() -> (Catalog, EventGraph<CentralTime>) {
        let mut cat = Catalog::new();
        for n in ["A", "B", "C"] {
            cat.register(n).unwrap();
        }
        (cat, EventGraph::new())
    }

    fn occ(cat: &Catalog, name: &str, t: u64) -> Occurrence<CentralTime> {
        Occurrence::bare(cat.lookup(name).unwrap(), CentralTime(t))
    }

    #[test]
    fn compile_registers_name() {
        let (mut cat, mut g) = setup();
        let id = g
            .compile(
                &mut cat,
                "AB",
                &EventExpr::and(EventExpr::prim("A"), EventExpr::prim("B")),
                Context::Unrestricted,
            )
            .unwrap();
        assert_eq!(cat.lookup("AB").unwrap(), id);
        assert_eq!(g.node_count(), 1);
    }

    #[test]
    fn duplicate_name_rejected() {
        let (mut cat, mut g) = setup();
        let e = EventExpr::and(EventExpr::prim("A"), EventExpr::prim("B"));
        g.compile(&mut cat, "AB", &e, Context::Unrestricted)
            .unwrap();
        assert!(matches!(
            g.compile(&mut cat, "AB", &e, Context::Unrestricted),
            Err(SnoopError::DuplicateEvent(_))
        ));
    }

    #[test]
    fn unknown_leaf_rejected() {
        let (mut cat, mut g) = setup();
        let e = EventExpr::and(EventExpr::prim("A"), EventExpr::prim("ZZZ"));
        assert!(matches!(
            g.compile(&mut cat, "X", &e, Context::Unrestricted),
            Err(SnoopError::UnknownEvent(_))
        ));
    }

    #[test]
    fn cyclic_definition_rejected() {
        let (mut cat, mut g) = setup();
        // "X" referencing "X" — pre-register so the leaf exists, then the
        // cycle check must trip before the duplicate check.
        let e = EventExpr::seq(EventExpr::prim("A"), EventExpr::prim("X"));
        cat.register("X").unwrap();
        assert!(matches!(
            g.compile(&mut cat, "X", &e, Context::Unrestricted),
            Err(SnoopError::CyclicDefinition(_))
        ));
    }

    #[test]
    fn alias_of_primitive_forwards() {
        let (mut cat, mut g) = setup();
        g.compile(
            &mut cat,
            "JustA",
            &EventExpr::prim("A"),
            Context::Unrestricted,
        )
        .unwrap();
        let r = g.feed(occ(&cat, "A", 5));
        assert_eq!(r.detected.len(), 1);
        assert_eq!(cat.name(r.detected[0].ty), "JustA");
        assert_eq!(r.detected[0].time, CentralTime(5));
    }

    #[test]
    fn named_composite_feeds_other_expressions() {
        let (mut cat, mut g) = setup();
        g.compile(
            &mut cat,
            "AB",
            &EventExpr::seq(EventExpr::prim("A"), EventExpr::prim("B")),
            Context::Unrestricted,
        )
        .unwrap();
        g.compile(
            &mut cat,
            "ABC",
            &EventExpr::seq(EventExpr::prim("AB"), EventExpr::prim("C")),
            Context::Unrestricted,
        )
        .unwrap();
        g.feed(occ(&cat, "A", 1));
        g.feed(occ(&cat, "B", 2));
        let r = g.feed(occ(&cat, "C", 3));
        let names: Vec<&str> = r.detected.iter().map(|o| cat.name(o.ty)).collect();
        assert_eq!(names, vec!["ABC"]);
    }

    #[test]
    fn feed_of_unsubscribed_event_is_noop() {
        let (mut cat, mut g) = setup();
        g.compile(
            &mut cat,
            "AB",
            &EventExpr::and(EventExpr::prim("A"), EventExpr::prim("B")),
            Context::Unrestricted,
        )
        .unwrap();
        let r = g.feed(occ(&cat, "C", 1));
        assert!(r.detected.is_empty());
        assert!(r.timers.is_empty());
    }

    #[test]
    fn unknown_timer_errors() {
        let (_, mut g) = setup();
        assert!(matches!(
            g.fire_timer(TimerId(42), CentralTime(1)),
            Err(SnoopError::UnknownTimer(42))
        ));
    }
}
