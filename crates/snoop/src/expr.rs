//! The composite event expression AST.
//!
//! Expressions are built from primitive event names and the Snoop
//! operators; [`crate::graph::EventGraph::compile`] turns an expression
//! into detection-graph nodes. The builder methods make nesting readable:
//!
//! ```
//! use decs_snoop::EventExpr;
//! // ¬(Cancel)[Order ; Payment, Ship + 10]
//! let e = EventExpr::not(
//!     EventExpr::prim("Cancel"),
//!     EventExpr::seq(EventExpr::prim("Order"), EventExpr::prim("Payment")),
//!     EventExpr::plus(EventExpr::prim("Ship"), 10),
//! );
//! assert_eq!(e.primitive_names(), vec!["Cancel", "Order", "Payment", "Ship"]);
//! ```

use crate::error::{Result, SnoopError};
use crate::nodes::mask::Mask;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A composite event expression over named primitive events.
///
/// Equality is structural (`Eq` — operand order matters everywhere, since
/// parameter tuples are accumulated in constituent order). The [`Hash`]
/// implementation is *canonical*: commutative operands of `And`/`Or` are
/// hashed in a normalized order, so `And(a, b)` and `And(b, a)` land in the
/// same hash bucket (they are equivalent as *detectors* even though their
/// parameter order differs), while the order-sensitive `Seq` does not. See
/// [`EventExpr::canonicalize`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum EventExpr {
    /// A primitive (or separately defined composite) event, by name.
    Primitive(String),
    /// Conjunction `E1 ∧ E2`: both occur, in any order.
    And(Box<EventExpr>, Box<EventExpr>),
    /// Disjunction `E1 ∨ E2`: either occurs.
    Or(Box<EventExpr>, Box<EventExpr>),
    /// Sequence `E1 ; E2`: `E1` strictly before `E2`.
    Seq(Box<EventExpr>, Box<EventExpr>),
    /// Negation `¬(guard)[opener, closer]`: `opener` then `closer` with no
    /// `guard` occurrence strictly inside the open interval.
    Not {
        /// The event that must *not* occur inside the interval.
        guard: Box<EventExpr>,
        /// The interval-opening event (`E1`).
        opener: Box<EventExpr>,
        /// The interval-closing event (`E3`).
        closer: Box<EventExpr>,
    },
    /// Aperiodic `A(E1, E2, E3)`: signalled for *each* `E2` inside the
    /// half-open window started by `E1` and ended by `E3`.
    Aperiodic {
        /// Window opener.
        opener: Box<EventExpr>,
        /// The monitored event.
        mid: Box<EventExpr>,
        /// Window closer.
        closer: Box<EventExpr>,
    },
    /// Cumulative aperiodic `A*(E1, E2, E3)`: signalled once at `E3` with
    /// all `E2` occurrences of the window accumulated.
    AperiodicStar {
        /// Window opener.
        opener: Box<EventExpr>,
        /// The accumulated event.
        mid: Box<EventExpr>,
        /// Window closer / detection point.
        closer: Box<EventExpr>,
    },
    /// Periodic `P(E1, [t], E3)`: after `E1`, signalled every `period`
    /// ticks until `E3`.
    Periodic {
        /// Window opener.
        opener: Box<EventExpr>,
        /// Period in clock ticks (centralized) / global ticks (distributed).
        period: u64,
        /// Window closer.
        closer: Box<EventExpr>,
    },
    /// Cumulative periodic `P*(E1, [t], E3)`: the periodic stamps are
    /// accumulated and signalled once at `E3`.
    PeriodicStar {
        /// Window opener.
        opener: Box<EventExpr>,
        /// Period in ticks.
        period: u64,
        /// Window closer / detection point.
        closer: Box<EventExpr>,
    },
    /// `E + t`: signalled `delta` ticks after each occurrence of `E`.
    Plus {
        /// The anchoring event.
        base: Box<EventExpr>,
        /// Offset in ticks.
        delta: u64,
    },
    /// `ANY(m; E1, …, En)`: `m` occurrences of *distinct* alternatives.
    Any {
        /// How many distinct alternatives must occur.
        m: usize,
        /// The alternatives.
        alternatives: Vec<EventExpr>,
    },
    /// `E{mask}`: only occurrences of `E` whose parameters satisfy the
    /// mask participate.
    Masked {
        /// The filtered expression.
        base: Box<EventExpr>,
        /// The parameter predicate.
        mask: Mask,
    },
}

impl std::hash::Hash for EventExpr {
    /// Canonical structural hash: every variant hashes a discriminant tag
    /// plus its fields, except that the commutative `And`/`Or` hash their
    /// two operands in [`Ord`]-normalized order. Consistent with the
    /// (structural) `Eq`: equal expressions hash equal; additionally
    /// commutative reorderings hash equal, which the plan compiler uses to
    /// bucket equivalent subexpressions cheaply.
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        use EventExpr::*;
        match self {
            Primitive(name) => {
                state.write_u8(0);
                name.hash(state);
            }
            And(a, b) | Or(a, b) => {
                state.write_u8(if matches!(self, And(..)) { 1 } else { 2 });
                let (x, y) = if a <= b { (a, b) } else { (b, a) };
                x.hash(state);
                y.hash(state);
            }
            Seq(a, b) => {
                state.write_u8(3);
                a.hash(state);
                b.hash(state);
            }
            Not {
                guard,
                opener,
                closer,
            } => {
                state.write_u8(4);
                guard.hash(state);
                opener.hash(state);
                closer.hash(state);
            }
            Aperiodic {
                opener,
                mid,
                closer,
            } => {
                state.write_u8(5);
                opener.hash(state);
                mid.hash(state);
                closer.hash(state);
            }
            AperiodicStar {
                opener,
                mid,
                closer,
            } => {
                state.write_u8(6);
                opener.hash(state);
                mid.hash(state);
                closer.hash(state);
            }
            Periodic {
                opener,
                period,
                closer,
            } => {
                state.write_u8(7);
                opener.hash(state);
                period.hash(state);
                closer.hash(state);
            }
            PeriodicStar {
                opener,
                period,
                closer,
            } => {
                state.write_u8(8);
                opener.hash(state);
                period.hash(state);
                closer.hash(state);
            }
            Plus { base, delta } => {
                state.write_u8(9);
                base.hash(state);
                delta.hash(state);
            }
            Any { m, alternatives } => {
                state.write_u8(10);
                m.hash(state);
                alternatives.hash(state);
            }
            Masked { base, mask } => {
                state.write_u8(11);
                base.hash(state);
                mask.hash(state);
            }
        }
    }
}

impl EventExpr {
    /// The canonical form of this expression: commutative `And`/`Or`
    /// operand pairs are recursively sorted into [`Ord`] order. Two
    /// expressions with the same canonical form detect the same occurrences
    /// (they are the same boolean/temporal pattern); they are **not**
    /// interchangeable bit-for-bit, because the order of operands fixes the
    /// order in which parameter tuples are concatenated. The plan compiler
    /// therefore uses the canonical form (via [`Hash`]) only to bucket
    /// candidate subexpressions and shares an operator node only on exact
    /// structural equality.
    pub fn canonicalize(&self) -> EventExpr {
        use EventExpr::*;
        match self {
            Primitive(_) => self.clone(),
            And(a, b) | Or(a, b) => {
                let (ca, cb) = (a.canonicalize(), b.canonicalize());
                let (x, y) = if ca <= cb { (ca, cb) } else { (cb, ca) };
                if matches!(self, And(..)) {
                    And(Box::new(x), Box::new(y))
                } else {
                    Or(Box::new(x), Box::new(y))
                }
            }
            Seq(a, b) => Seq(Box::new(a.canonicalize()), Box::new(b.canonicalize())),
            Not {
                guard,
                opener,
                closer,
            } => Not {
                guard: Box::new(guard.canonicalize()),
                opener: Box::new(opener.canonicalize()),
                closer: Box::new(closer.canonicalize()),
            },
            Aperiodic {
                opener,
                mid,
                closer,
            } => Aperiodic {
                opener: Box::new(opener.canonicalize()),
                mid: Box::new(mid.canonicalize()),
                closer: Box::new(closer.canonicalize()),
            },
            AperiodicStar {
                opener,
                mid,
                closer,
            } => AperiodicStar {
                opener: Box::new(opener.canonicalize()),
                mid: Box::new(mid.canonicalize()),
                closer: Box::new(closer.canonicalize()),
            },
            Periodic {
                opener,
                period,
                closer,
            } => Periodic {
                opener: Box::new(opener.canonicalize()),
                period: *period,
                closer: Box::new(closer.canonicalize()),
            },
            PeriodicStar {
                opener,
                period,
                closer,
            } => PeriodicStar {
                opener: Box::new(opener.canonicalize()),
                period: *period,
                closer: Box::new(closer.canonicalize()),
            },
            Plus { base, delta } => Plus {
                base: Box::new(base.canonicalize()),
                delta: *delta,
            },
            Any { m, alternatives } => Any {
                m: *m,
                alternatives: alternatives.iter().map(|a| a.canonicalize()).collect(),
            },
            Masked { base, mask } => Masked {
                base: Box::new(base.canonicalize()),
                mask: mask.clone(),
            },
        }
    }

    /// A primitive event reference.
    pub fn prim(name: &str) -> Self {
        EventExpr::Primitive(name.to_owned())
    }

    /// `self ∧ other`.
    pub fn and(a: EventExpr, b: EventExpr) -> Self {
        EventExpr::And(Box::new(a), Box::new(b))
    }

    /// `self ∨ other`.
    pub fn or(a: EventExpr, b: EventExpr) -> Self {
        EventExpr::Or(Box::new(a), Box::new(b))
    }

    /// `a ; b`.
    pub fn seq(a: EventExpr, b: EventExpr) -> Self {
        EventExpr::Seq(Box::new(a), Box::new(b))
    }

    /// `¬(guard)[opener, closer]`.
    pub fn not(guard: EventExpr, opener: EventExpr, closer: EventExpr) -> Self {
        EventExpr::Not {
            guard: Box::new(guard),
            opener: Box::new(opener),
            closer: Box::new(closer),
        }
    }

    /// `A(opener, mid, closer)`.
    pub fn aperiodic(opener: EventExpr, mid: EventExpr, closer: EventExpr) -> Self {
        EventExpr::Aperiodic {
            opener: Box::new(opener),
            mid: Box::new(mid),
            closer: Box::new(closer),
        }
    }

    /// `A*(opener, mid, closer)`.
    pub fn aperiodic_star(opener: EventExpr, mid: EventExpr, closer: EventExpr) -> Self {
        EventExpr::AperiodicStar {
            opener: Box::new(opener),
            mid: Box::new(mid),
            closer: Box::new(closer),
        }
    }

    /// `P(opener, [period], closer)`.
    pub fn periodic(opener: EventExpr, period: u64, closer: EventExpr) -> Self {
        EventExpr::Periodic {
            opener: Box::new(opener),
            period,
            closer: Box::new(closer),
        }
    }

    /// `P*(opener, [period], closer)`.
    pub fn periodic_star(opener: EventExpr, period: u64, closer: EventExpr) -> Self {
        EventExpr::PeriodicStar {
            opener: Box::new(opener),
            period,
            closer: Box::new(closer),
        }
    }

    /// `base + delta`.
    pub fn plus(base: EventExpr, delta: u64) -> Self {
        EventExpr::Plus {
            base: Box::new(base),
            delta,
        }
    }

    /// `ANY(m; alternatives…)`.
    pub fn any(m: usize, alternatives: Vec<EventExpr>) -> Self {
        EventExpr::Any { m, alternatives }
    }

    /// `base{mask}` — parameter-filtered event.
    pub fn masked(base: EventExpr, mask: Mask) -> Self {
        EventExpr::Masked {
            base: Box::new(base),
            mask,
        }
    }

    /// Validate structural constraints: `ANY` bounds and positive periods.
    pub fn validate(&self) -> Result<()> {
        match self {
            EventExpr::Primitive(_) => Ok(()),
            EventExpr::And(a, b) | EventExpr::Or(a, b) | EventExpr::Seq(a, b) => {
                a.validate()?;
                b.validate()
            }
            EventExpr::Not {
                guard,
                opener,
                closer,
            } => {
                guard.validate()?;
                opener.validate()?;
                closer.validate()
            }
            EventExpr::Aperiodic {
                opener,
                mid,
                closer,
            }
            | EventExpr::AperiodicStar {
                opener,
                mid,
                closer,
            } => {
                opener.validate()?;
                mid.validate()?;
                closer.validate()
            }
            EventExpr::Periodic {
                opener,
                period,
                closer,
            }
            | EventExpr::PeriodicStar {
                opener,
                period,
                closer,
            } => {
                if *period == 0 {
                    return Err(SnoopError::ZeroPeriod);
                }
                opener.validate()?;
                closer.validate()
            }
            EventExpr::Plus { base, delta } => {
                if *delta == 0 {
                    return Err(SnoopError::ZeroPeriod);
                }
                base.validate()
            }
            EventExpr::Any { m, alternatives } => {
                if *m == 0 || *m > alternatives.len() {
                    return Err(SnoopError::InvalidAny {
                        m: *m,
                        n: alternatives.len(),
                    });
                }
                alternatives.iter().try_for_each(EventExpr::validate)
            }
            EventExpr::Masked { base, .. } => base.validate(),
        }
    }

    /// All primitive names referenced, sorted and deduplicated.
    pub fn primitive_names(&self) -> Vec<&str> {
        let mut names = Vec::new();
        self.collect_names(&mut names);
        names.sort_unstable();
        names.dedup();
        names
    }

    fn collect_names<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            EventExpr::Primitive(n) => out.push(n),
            EventExpr::And(a, b) | EventExpr::Or(a, b) | EventExpr::Seq(a, b) => {
                a.collect_names(out);
                b.collect_names(out);
            }
            EventExpr::Not {
                guard,
                opener,
                closer,
            } => {
                guard.collect_names(out);
                opener.collect_names(out);
                closer.collect_names(out);
            }
            EventExpr::Aperiodic {
                opener,
                mid,
                closer,
            }
            | EventExpr::AperiodicStar {
                opener,
                mid,
                closer,
            } => {
                opener.collect_names(out);
                mid.collect_names(out);
                closer.collect_names(out);
            }
            EventExpr::Periodic { opener, closer, .. }
            | EventExpr::PeriodicStar { opener, closer, .. } => {
                opener.collect_names(out);
                closer.collect_names(out);
            }
            EventExpr::Plus { base, .. } => base.collect_names(out),
            EventExpr::Any { alternatives, .. } => {
                for a in alternatives {
                    a.collect_names(out);
                }
            }
            EventExpr::Masked { base, .. } => base.collect_names(out),
        }
    }

    /// Number of operator nodes (tree size; primitives count as zero).
    pub fn operator_count(&self) -> usize {
        match self {
            EventExpr::Primitive(_) => 0,
            EventExpr::And(a, b) | EventExpr::Or(a, b) | EventExpr::Seq(a, b) => {
                1 + a.operator_count() + b.operator_count()
            }
            EventExpr::Not {
                guard,
                opener,
                closer,
            } => 1 + guard.operator_count() + opener.operator_count() + closer.operator_count(),
            EventExpr::Aperiodic {
                opener,
                mid,
                closer,
            }
            | EventExpr::AperiodicStar {
                opener,
                mid,
                closer,
            } => 1 + opener.operator_count() + mid.operator_count() + closer.operator_count(),
            EventExpr::Periodic { opener, closer, .. }
            | EventExpr::PeriodicStar { opener, closer, .. } => {
                1 + opener.operator_count() + closer.operator_count()
            }
            EventExpr::Plus { base, .. } => 1 + base.operator_count(),
            EventExpr::Any { alternatives, .. } => {
                1 + alternatives
                    .iter()
                    .map(EventExpr::operator_count)
                    .sum::<usize>()
            }
            EventExpr::Masked { base, .. } => 1 + base.operator_count(),
        }
    }
}

impl fmt::Display for EventExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventExpr::Primitive(n) => f.write_str(n),
            EventExpr::And(a, b) => write!(f, "({a} ∧ {b})"),
            EventExpr::Or(a, b) => write!(f, "({a} ∨ {b})"),
            EventExpr::Seq(a, b) => write!(f, "({a} ; {b})"),
            EventExpr::Not {
                guard,
                opener,
                closer,
            } => write!(f, "¬({guard})[{opener}, {closer}]"),
            EventExpr::Aperiodic {
                opener,
                mid,
                closer,
            } => {
                write!(f, "A({opener}, {mid}, {closer})")
            }
            EventExpr::AperiodicStar {
                opener,
                mid,
                closer,
            } => {
                write!(f, "A*({opener}, {mid}, {closer})")
            }
            EventExpr::Periodic {
                opener,
                period,
                closer,
            } => write!(f, "P({opener}, [{period}], {closer})"),
            EventExpr::PeriodicStar {
                opener,
                period,
                closer,
            } => write!(f, "P*({opener}, [{period}], {closer})"),
            EventExpr::Plus { base, delta } => write!(f, "({base} + {delta})"),
            EventExpr::Any { m, alternatives } => {
                write!(f, "ANY({m}; ")?;
                for (i, a) in alternatives.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str(")")
            }
            EventExpr::Masked { base, mask } => write!(f, "{base}{{{mask}}}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_and_display() {
        let e = EventExpr::seq(
            EventExpr::and(EventExpr::prim("A"), EventExpr::prim("B")),
            EventExpr::prim("C"),
        );
        assert_eq!(e.to_string(), "((A ∧ B) ; C)");
        let n = EventExpr::not(
            EventExpr::prim("X"),
            EventExpr::prim("A"),
            EventExpr::prim("B"),
        );
        assert_eq!(n.to_string(), "¬(X)[A, B]");
        assert_eq!(
            EventExpr::periodic(EventExpr::prim("A"), 5, EventExpr::prim("B")).to_string(),
            "P(A, [5], B)"
        );
        assert_eq!(
            EventExpr::any(2, vec![EventExpr::prim("A"), EventExpr::prim("B")]).to_string(),
            "ANY(2; A, B)"
        );
        assert_eq!(
            EventExpr::plus(EventExpr::prim("A"), 3).to_string(),
            "(A + 3)"
        );
    }

    #[test]
    fn validate_catches_bad_any() {
        let bad = EventExpr::any(3, vec![EventExpr::prim("A"), EventExpr::prim("B")]);
        assert_eq!(
            bad.validate().unwrap_err(),
            SnoopError::InvalidAny { m: 3, n: 2 }
        );
        let bad0 = EventExpr::any(0, vec![EventExpr::prim("A")]);
        assert!(bad0.validate().is_err());
        let ok = EventExpr::any(1, vec![EventExpr::prim("A")]);
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn validate_catches_zero_periods() {
        assert_eq!(
            EventExpr::periodic(EventExpr::prim("A"), 0, EventExpr::prim("B"))
                .validate()
                .unwrap_err(),
            SnoopError::ZeroPeriod
        );
        assert!(EventExpr::plus(EventExpr::prim("A"), 0).validate().is_err());
        assert!(EventExpr::plus(EventExpr::prim("A"), 1).validate().is_ok());
    }

    #[test]
    fn validate_recurses() {
        let nested = EventExpr::and(
            EventExpr::prim("A"),
            EventExpr::any(5, vec![EventExpr::prim("B")]),
        );
        assert!(nested.validate().is_err());
    }

    #[test]
    fn primitive_names_dedup_sorted() {
        let e = EventExpr::seq(
            EventExpr::and(EventExpr::prim("B"), EventExpr::prim("A")),
            EventExpr::prim("B"),
        );
        assert_eq!(e.primitive_names(), vec!["A", "B"]);
    }

    #[test]
    fn operator_count() {
        let e = EventExpr::seq(
            EventExpr::and(EventExpr::prim("A"), EventExpr::prim("B")),
            EventExpr::aperiodic_star(
                EventExpr::prim("C"),
                EventExpr::prim("D"),
                EventExpr::prim("E"),
            ),
        );
        assert_eq!(e.operator_count(), 3);
    }

    fn hash_of(e: &EventExpr) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        e.hash(&mut h);
        h.finish()
    }

    #[test]
    fn commutative_reordering_hashes_equal() {
        let ab = EventExpr::and(EventExpr::prim("A"), EventExpr::prim("B"));
        let ba = EventExpr::and(EventExpr::prim("B"), EventExpr::prim("A"));
        assert_ne!(ab, ba, "And is structurally ordered");
        assert_eq!(hash_of(&ab), hash_of(&ba));
        let or1 = EventExpr::or(
            EventExpr::seq(EventExpr::prim("A"), EventExpr::prim("B")),
            EventExpr::prim("C"),
        );
        let or2 = EventExpr::or(
            EventExpr::prim("C"),
            EventExpr::seq(EventExpr::prim("A"), EventExpr::prim("B")),
        );
        assert_eq!(hash_of(&or1), hash_of(&or2));
        // Nested commutative swaps normalize too.
        let deep1 = EventExpr::seq(ab.clone(), or1);
        let deep2 = EventExpr::seq(ba.clone(), or2);
        assert_eq!(hash_of(&deep1), hash_of(&deep2));
    }

    #[test]
    fn seq_reordering_hashes_differently() {
        let ab = EventExpr::seq(EventExpr::prim("A"), EventExpr::prim("B"));
        let ba = EventExpr::seq(EventExpr::prim("B"), EventExpr::prim("A"));
        assert_ne!(ab, ba);
        assert_ne!(hash_of(&ab), hash_of(&ba));
    }

    #[test]
    fn and_does_not_hash_like_or() {
        let and = EventExpr::and(EventExpr::prim("A"), EventExpr::prim("B"));
        let or = EventExpr::or(EventExpr::prim("A"), EventExpr::prim("B"));
        assert_ne!(hash_of(&and), hash_of(&or));
    }

    #[test]
    fn equal_exprs_hash_equal() {
        let e = EventExpr::not(
            EventExpr::prim("C"),
            EventExpr::and(EventExpr::prim("B"), EventExpr::prim("A")),
            EventExpr::plus(EventExpr::prim("D"), 5),
        );
        assert_eq!(e, e.clone());
        assert_eq!(hash_of(&e), hash_of(&e.clone()));
    }

    #[test]
    fn canonicalize_sorts_commutative_operands_only() {
        let e = EventExpr::seq(
            EventExpr::and(EventExpr::prim("B"), EventExpr::prim("A")),
            EventExpr::or(EventExpr::prim("Z"), EventExpr::prim("Y")),
        );
        let canon = e.canonicalize();
        assert_eq!(
            canon,
            EventExpr::seq(
                EventExpr::and(EventExpr::prim("A"), EventExpr::prim("B")),
                EventExpr::or(EventExpr::prim("Y"), EventExpr::prim("Z")),
            )
        );
        // Canonicalization is idempotent and hash-preserving.
        assert_eq!(canon, canon.canonicalize());
        assert_eq!(hash_of(&e), hash_of(&canon));
        // Seq operands keep their order.
        let s = EventExpr::seq(EventExpr::prim("B"), EventExpr::prim("A"));
        assert_eq!(s.canonicalize(), s);
    }
}
