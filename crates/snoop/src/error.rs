//! Error type for event-expression compilation and detection.

use std::fmt;

/// Errors produced while building or running event detection graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnoopError {
    /// An event name was used but never registered in the catalog.
    UnknownEvent(String),
    /// An event name was registered twice.
    DuplicateEvent(String),
    /// `ANY(m; …)` requires `1 ≤ m ≤ n`.
    InvalidAny {
        /// The requested m.
        m: usize,
        /// The number of alternatives supplied.
        n: usize,
    },
    /// Periodic/Plus operators need a strictly positive period.
    ZeroPeriod,
    /// A timer id did not correspond to a pending request.
    UnknownTimer(u64),
    /// The expression references itself (composite event cycles are not
    /// allowed; the detection graph must be a DAG).
    CyclicDefinition(String),
    /// A saved operator/detector state does not match the shape of the
    /// detector it is being restored into (different definitions, backend,
    /// or a corrupted snapshot).
    SnapshotMismatch(String),
}

impl fmt::Display for SnoopError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnoopError::UnknownEvent(n) => write!(f, "unknown event type: {n}"),
            SnoopError::DuplicateEvent(n) => write!(f, "event type registered twice: {n}"),
            SnoopError::InvalidAny { m, n } => {
                write!(f, "ANY({m}; …) over {n} alternatives requires 1 ≤ m ≤ n")
            }
            SnoopError::ZeroPeriod => write!(f, "temporal operators require a positive period"),
            SnoopError::UnknownTimer(id) => write!(f, "no pending timer with id {id}"),
            SnoopError::CyclicDefinition(n) => {
                write!(f, "composite event {n} is defined in terms of itself")
            }
            SnoopError::SnapshotMismatch(what) => {
                write!(f, "snapshot does not match this detector: {what}")
            }
        }
    }
}

impl std::error::Error for SnoopError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, SnoopError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(SnoopError::UnknownEvent("X".into())
            .to_string()
            .contains('X'));
        assert!(SnoopError::InvalidAny { m: 3, n: 2 }
            .to_string()
            .contains("ANY(3"));
    }
}
