//! `ANY(m; E1, …, En)`: signalled when `m` *distinct* alternatives have
//! occurred. The arriving occurrence that completes the m-th distinct
//! alternative acts as the terminator; its detection combines the most
//! recent buffered occurrence of each participating alternative (slot
//! order, ending with the terminator), with `Max` time and concatenated
//! parameters.
//!
//! Consumption follows the context: Unrestricted/Recent keep buffers
//! (later arrivals re-detect), Chronicle/Continuous/Cumulative consume the
//! participating occurrences.

use crate::context::Context;
use crate::event::Occurrence;
use crate::nodes::{buffer_initiator, OperatorNode, Sink};
use crate::time::EventTime;

/// State machine for `ANY(m; …)`.
#[derive(Debug)]
pub struct AnyNode<T: EventTime> {
    ctx: Context,
    m: usize,
    bufs: Vec<Vec<Occurrence<T>>>,
    /// Reusable staging for the participating slot indices of one
    /// detection — the m-of-n join site runs allocation-free apart from
    /// the emitted occurrence itself (`crates/snoop/tests/alloc_count.rs`).
    slot_scratch: Vec<usize>,
}

impl<T: EventTime> AnyNode<T> {
    /// New `ANY` node with threshold `m` over `n` alternatives.
    pub fn new(ctx: Context, m: usize, n: usize) -> Self {
        AnyNode {
            ctx,
            m,
            bufs: (0..n).map(|_| Vec::new()).collect(),
            slot_scratch: Vec::new(),
        }
    }

    fn distinct_present(&self) -> usize {
        self.bufs.iter().filter(|b| !b.is_empty()).count()
    }
}

impl<T: EventTime> OperatorNode<T> for AnyNode<T> {
    fn on_child(&mut self, slot: usize, occ: &Occurrence<T>, sink: &mut Sink<'_, T>) {
        debug_assert!(slot < self.bufs.len(), "ANY slot out of range");
        buffer_initiator(self.ctx, &mut self.bufs[slot], occ);
        if self.distinct_present() < self.m {
            return;
        }
        // Select the m participating slots: the arriving slot plus the
        // first (by slot index) other non-empty ones.
        let mut slots = std::mem::take(&mut self.slot_scratch);
        slots.clear();
        slots.push(slot);
        for (i, b) in self.bufs.iter().enumerate() {
            if slots.len() == self.m {
                break;
            }
            if i != slot && !b.is_empty() {
                slots.push(i);
            }
        }
        slots.sort_unstable();
        // Most recent occurrence of each participating slot, borrowed in
        // place (no per-detection clones — `emit_all` copies what the
        // emitted occurrence needs); the terminator (the arriving
        // occurrence) goes last.
        {
            let refs: Vec<&Occurrence<T>> = slots
                .iter()
                .filter(|&&s| s != slot)
                .map(|&s| self.bufs[s].last().expect("non-empty"))
                .chain(std::iter::once(occ))
                .collect();
            sink.emit_all(&refs);
        }
        // Consumption.
        match self.ctx {
            Context::Unrestricted | Context::Recent => {}
            Context::Chronicle | Context::Continuous | Context::Cumulative => {
                // Remove the used (most recent) occurrence of each
                // participating slot, including the terminator itself.
                for &s in &slots {
                    self.bufs[s].pop();
                }
            }
        }
        self.slot_scratch = slots;
    }

    /// `ANY` imposes no temporal constraint, so the watermark itself proves
    /// nothing — but under `Unrestricted` the buffers contain entries that
    /// are *structurally* unreachable: pairing only ever reads each slot's
    /// most recent occurrence and this context never pops, so everything
    /// below the top is dead and each buffer truncates to one element.
    /// `Recent` is already bounded at one by `buffer_initiator`; the
    /// consuming contexts pop from the top, which re-exposes older entries,
    /// so there every entry is live.
    fn on_watermark(&mut self, _low: u64) -> u64 {
        if self.ctx != Context::Unrestricted {
            return 0;
        }
        let mut evicted = 0;
        for buf in &mut self.bufs {
            if buf.len() > 1 {
                evicted += (buf.len() - 1) as u64;
                let top = buf.pop().expect("non-empty");
                buf.clear();
                buf.push(top);
            }
        }
        evicted
    }

    fn buffered_len(&self) -> usize {
        self.bufs.iter().map(Vec::len).sum()
    }

    /// Encoding: `occs` = one group per alternative slot, in slot order.
    fn save_state(&self) -> crate::state::NodeState<T> {
        crate::state::NodeState {
            occs: self.bufs.clone(),
            ..crate::state::NodeState::empty()
        }
    }

    fn restore_state(&mut self, state: crate::state::NodeState<T>) -> crate::error::Result<()> {
        let crate::state::NodeState { nums, occs, times } = state;
        if !nums.is_empty() || !times.is_empty() || occs.len() != self.bufs.len() {
            return Err(crate::state::shape_err("ANY"));
        }
        self.bufs = occs;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventId;
    use crate::time::CentralTime;

    fn occ(slot: usize, t: u64) -> Occurrence<CentralTime> {
        Occurrence::primitive(
            EventId(slot as u32),
            CentralTime(t),
            vec![(t as i64).into()],
        )
    }

    fn run(
        ctx: Context,
        m: usize,
        n: usize,
        feeds: &[(usize, u64)],
    ) -> Vec<Occurrence<CentralTime>> {
        let mut node = AnyNode::new(ctx, m, n);
        let mut all = Vec::new();
        for &(slot, t) in feeds {
            let mut em = Vec::new();
            let mut tr = Vec::new();
            {
                let mut sink = Sink::new(EventId(9), &mut em, &mut tr);
                node.on_child(slot, &occ(slot, t), &mut sink);
            }
            all.extend(em);
        }
        all
    }

    #[test]
    fn fires_on_mth_distinct() {
        let d = run(Context::Chronicle, 2, 3, &[(0, 1), (1, 2)]);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].time, CentralTime(2));
        assert_eq!(d[0].params.len(), 2);
    }

    #[test]
    fn repeats_of_same_alternative_do_not_fire() {
        let d = run(Context::Chronicle, 2, 3, &[(0, 1), (0, 2), (0, 3)]);
        assert!(d.is_empty());
    }

    #[test]
    fn m_equals_n() {
        let d = run(Context::Chronicle, 3, 3, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].params.len(), 3);
        assert_eq!(d[0].time, CentralTime(3));
    }

    #[test]
    fn consumption_in_chronicle() {
        // After a detection, the used occurrences are gone: the next
        // arrival of a single alternative does not re-fire.
        let d = run(Context::Chronicle, 2, 2, &[(0, 1), (1, 2), (1, 3)]);
        assert_eq!(d.len(), 1);
        // But replenishing slot 0 re-fires (slot 1 still has t=3 buffered).
        let d2 = run(Context::Chronicle, 2, 2, &[(0, 1), (1, 2), (1, 3), (0, 4)]);
        assert_eq!(d2.len(), 2);
    }

    #[test]
    fn unrestricted_refires() {
        let d = run(Context::Unrestricted, 2, 2, &[(0, 1), (1, 2), (1, 3)]);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn unrestricted_gc_truncates_to_top_without_changing_detections() {
        let feeds = [(0usize, 1u64), (0, 2), (0, 3), (1, 4), (1, 5)];
        let mut plain = AnyNode::new(Context::Unrestricted, 2, 2);
        let mut gc = AnyNode::new(Context::Unrestricted, 2, 2);
        let mut plain_em = Vec::new();
        let mut gc_em = Vec::new();
        let mut tr = Vec::new();
        for &(slot, t) in &feeds {
            {
                let mut sink = Sink::new(EventId(9), &mut plain_em, &mut tr);
                plain.on_child(slot, &occ(slot, t), &mut sink);
            }
            {
                let mut sink = Sink::new(EventId(9), &mut gc_em, &mut tr);
                gc.on_child(slot, &occ(slot, t), &mut sink);
            }
            gc.on_watermark(t);
        }
        assert_eq!(plain_em.len(), gc_em.len());
        for (a, b) in plain_em.iter().zip(&gc_em) {
            assert_eq!(a.time, b.time);
            assert_eq!(a.params, b.params);
        }
        assert_eq!(plain.buffered_len(), 5);
        assert_eq!(gc.buffered_len(), 2); // one top entry per slot
    }

    #[test]
    fn consuming_contexts_keep_reachable_entries() {
        let mut node = AnyNode::new(Context::Chronicle, 2, 2);
        let mut em = Vec::new();
        let mut tr = Vec::new();
        {
            let mut sink = Sink::new(EventId(9), &mut em, &mut tr);
            node.on_child(0, &occ(0, 1), &mut sink);
            node.on_child(0, &occ(0, 2), &mut sink);
        }
        // Chronicle pops re-expose older entries: nothing may be evicted.
        assert_eq!(node.on_watermark(100), 0);
        assert_eq!(node.buffered_len(), 2);
    }

    #[test]
    fn terminator_params_last() {
        let d = run(Context::Chronicle, 2, 2, &[(1, 1), (0, 2)]);
        assert_eq!(d.len(), 1);
        // Slot-1 occurrence buffered first; terminator (slot 0) last.
        assert_eq!(d[0].params[0].source, EventId(1));
        assert_eq!(d[0].params[1].source, EventId(0));
    }
}
