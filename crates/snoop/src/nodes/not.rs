//! Negation `¬(E2)[E1, E3]`: `E1` followed by `E3` with **no** `E2`
//! occurrence strictly inside the open interval `(t1, t3)`
//! (Section 5.3: `¬(E2)[E1,E3](ts) = ∃t1 ∀t2 (t1 < t3 ∧ E1(t1) ∧ E3(t3) ∧
//! ¬(E2(t2) ∧ t1 < t2 < t3))`).
//!
//! In the distributed domain "inside the open interval" uses the strict
//! partial order: a guard occurrence merely *concurrent* with an endpoint
//! does **not** cancel the window — exactly the open-interval semantics of
//! Definition 5.5 (a `1·g_g` guard band at each end). Each guard check is
//! two `before` calls, which `decs_core` answers with the per-site
//! version-vector kernel (`happens_before_vv`): O(|sites|) per retained
//! guard even for wide composite stamps, instead of the old
//! O(|members|²) member scan.

use crate::context::Context;
use crate::event::Occurrence;
use crate::nodes::{buffer_initiator, pair_terminator, OperatorNode, Sink};
use crate::time::EventTime;

/// Operand slot of the interval opener (`E1`).
pub const SLOT_OPENER: usize = 0;
/// Operand slot of the guard (`E2`).
pub const SLOT_GUARD: usize = 1;
/// Operand slot of the interval closer (`E3`).
pub const SLOT_CLOSER: usize = 2;

/// State machine for `¬(E2)[E1, E3]`.
#[derive(Debug)]
pub struct NotNode<T: EventTime> {
    ctx: Context,
    openers: Vec<Occurrence<T>>,
    /// Times of guard occurrences seen so far.
    guards: Vec<T>,
}

impl<T: EventTime> NotNode<T> {
    /// New negation node under `ctx`.
    pub fn new(ctx: Context) -> Self {
        NotNode {
            ctx,
            openers: Vec::new(),
            guards: Vec::new(),
        }
    }

    /// Number of retained guard times (tests/metrics).
    pub fn guard_count(&self) -> usize {
        self.guards.len()
    }
}

impl<T: EventTime> OperatorNode<T> for NotNode<T> {
    fn on_child(&mut self, slot: usize, occ: &Occurrence<T>, sink: &mut Sink<'_, T>) {
        match slot {
            SLOT_OPENER => buffer_initiator(self.ctx, &mut self.openers, occ),
            SLOT_GUARD => self.guards.push(occ.time.clone()),
            SLOT_CLOSER => {
                let t3 = occ.time.clone();
                let guards = std::mem::take(&mut self.guards);
                pair_terminator(self.ctx, &mut self.openers, occ, sink, |opener| {
                    opener.time.before(&t3)
                        && !guards
                            .iter()
                            .any(|tg| opener.time.before(tg) && tg.before(&t3))
                });
                // Guards can still cancel windows against later closers
                // (for surviving openers); retain only those not yet
                // provably useless — a guard before every retained opener
                // could still fall inside a future window, so keep all.
                // (Provably-dead guards are pruned by `on_watermark`.)
                self.guards = guards;
            }
            _ => debug_assert!(false, "NOT has three operands"),
        }
    }

    /// `¬` is the operator that genuinely strands state: guards are
    /// retained across closers and openers cancelled by them are never
    /// consumed, so without GC both grow without bound (and every closer
    /// re-scans them). Two watermark rules fix that, both exact:
    ///
    /// 1. **Cancelled openers** — if a *settled* guard `tg` has
    ///    `opener < tg`, then for every future closer `t3` the guard lies
    ///    strictly inside `(opener, t3)` (`tg < t3` by settledness), so no
    ///    window of this opener can ever fire again. There is no closer
    ///    buffer, so the opener is dead. Skipped under `Recent`, whose
    ///    one-slot buffer participates in the replacement rule
    ///    (`buffer_initiator` compares arrivals against the buffered
    ///    occurrence, so evicting it could change which opener is kept).
    /// 2. **Dead guards** — a settled guard can never cancel a *future*
    ///    opener's window: future openers have all global ticks `≥ low`,
    ///    and no such stamp precedes a settled one. So a settled guard with
    ///    no remaining buffered opener before it is dead. Under `Recent`
    ///    one settled guard inside the single opener's window already
    ///    cancels every future closer, so a single witness is kept.
    fn on_watermark(&mut self, low: u64) -> u64 {
        let before = self.openers.len() + self.guards.len();
        if self.ctx != Context::Recent {
            let guards = &self.guards;
            self.openers.retain(|op| {
                !guards
                    .iter()
                    .any(|tg| tg.settled(low) && op.time.before(tg))
            });
        }
        let openers = &self.openers;
        let keep_redundant_witnesses = self.ctx != Context::Recent;
        let mut witness_kept = false;
        self.guards.retain(|tg| {
            if !tg.settled(low) {
                return true;
            }
            if !openers.iter().any(|op| op.time.before(tg)) {
                return false;
            }
            if keep_redundant_witnesses || !witness_kept {
                witness_kept = true;
                return true;
            }
            false
        });
        (before - self.openers.len() - self.guards.len()) as u64
    }

    fn buffered_len(&self) -> usize {
        self.openers.len() + self.guards.len()
    }

    /// Encoding: `occs[0]` = buffered openers, `times[0]` = guard times.
    fn save_state(&self) -> crate::state::NodeState<T> {
        crate::state::NodeState {
            occs: vec![self.openers.clone()],
            times: vec![self.guards.clone()],
            ..crate::state::NodeState::empty()
        }
    }

    fn restore_state(&mut self, state: crate::state::NodeState<T>) -> crate::error::Result<()> {
        let crate::state::NodeState {
            nums,
            mut occs,
            mut times,
        } = state;
        if !nums.is_empty() || occs.len() != 1 || times.len() != 1 {
            return Err(crate::state::shape_err("NOT"));
        }
        self.openers = occs.remove(0);
        self.guards = times.remove(0);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventId;
    use crate::time::CentralTime;
    use decs_core::cts;

    fn occ(t: u64) -> Occurrence<CentralTime> {
        Occurrence::bare(EventId(0), CentralTime(t))
    }

    fn run(ctx: Context, feeds: &[(usize, u64)]) -> Vec<Occurrence<CentralTime>> {
        let mut node = NotNode::new(ctx);
        let mut all = Vec::new();
        for &(slot, t) in feeds {
            let mut em = Vec::new();
            let mut tr = Vec::new();
            {
                let mut sink = Sink::new(EventId(9), &mut em, &mut tr);
                node.on_child(slot, &occ(t), &mut sink);
            }
            all.extend(em);
        }
        all
    }

    #[test]
    fn detects_without_guard() {
        let d = run(Context::Chronicle, &[(SLOT_OPENER, 1), (SLOT_CLOSER, 5)]);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].time, CentralTime(5));
    }

    #[test]
    fn guard_inside_cancels() {
        let d = run(
            Context::Chronicle,
            &[(SLOT_OPENER, 1), (SLOT_GUARD, 3), (SLOT_CLOSER, 5)],
        );
        assert!(d.is_empty());
    }

    #[test]
    fn guard_outside_does_not_cancel() {
        // Guard before the opener and guard after the closer are harmless.
        let d = run(
            Context::Chronicle,
            &[
                (SLOT_GUARD, 0),
                (SLOT_OPENER, 1),
                (SLOT_CLOSER, 5),
                (SLOT_GUARD, 9),
            ],
        );
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn guard_at_endpoints_does_not_cancel() {
        // Open interval: a guard exactly at t1 or t3 is outside.
        let d = run(
            Context::Chronicle,
            &[
                (SLOT_OPENER, 1),
                (SLOT_GUARD, 1),
                (SLOT_GUARD, 5),
                (SLOT_CLOSER, 5),
            ],
        );
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn per_window_cancellation() {
        // Two windows; guard falls only inside the first.
        let d = run(
            Context::Continuous,
            &[
                (SLOT_OPENER, 1),
                (SLOT_GUARD, 2),
                (SLOT_OPENER, 3),
                (SLOT_CLOSER, 5),
            ],
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].params[0].source, EventId(0));
    }

    #[test]
    fn distributed_concurrent_guard_does_not_cancel() {
        // Window (s1,1,10) → (s1,9,90); guard {(s2,9,92)} is concurrent
        // with the closer, hence *outside* the open interval.
        let mut node = NotNode::new(Context::Chronicle);
        let mut em = Vec::new();
        let mut tr = Vec::new();
        {
            let mut sink = Sink::new(EventId(9), &mut em, &mut tr);
            node.on_child(
                SLOT_OPENER,
                &Occurrence::bare(EventId(0), cts(&[(1, 1, 10)])),
                &mut sink,
            );
            node.on_child(
                SLOT_GUARD,
                &Occurrence::bare(EventId(1), cts(&[(2, 9, 92)])),
                &mut sink,
            );
            node.on_child(
                SLOT_CLOSER,
                &Occurrence::bare(EventId(2), cts(&[(1, 9, 90)])),
                &mut sink,
            );
        }
        assert_eq!(em.len(), 1);
        // A guard strictly inside does cancel.
        let mut node2 = NotNode::new(Context::Chronicle);
        em.clear();
        {
            let mut sink = Sink::new(EventId(9), &mut em, &mut tr);
            node2.on_child(
                SLOT_OPENER,
                &Occurrence::bare(EventId(0), cts(&[(1, 1, 10)])),
                &mut sink,
            );
            node2.on_child(
                SLOT_GUARD,
                &Occurrence::bare(EventId(1), cts(&[(2, 5, 52)])),
                &mut sink,
            );
            node2.on_child(
                SLOT_CLOSER,
                &Occurrence::bare(EventId(2), cts(&[(1, 9, 90)])),
                &mut sink,
            );
        }
        assert!(em.is_empty());
    }

    #[test]
    fn watermark_evicts_cancelled_openers_and_dead_guards() {
        let mut node: NotNode<CentralTime> = NotNode::new(Context::Chronicle);
        let mut em = Vec::new();
        let mut tr = Vec::new();
        {
            let mut sink = Sink::new(EventId(9), &mut em, &mut tr);
            node.on_child(SLOT_OPENER, &occ(1), &mut sink); // cancelled by guard@3
            node.on_child(SLOT_GUARD, &occ(3), &mut sink);
            node.on_child(SLOT_OPENER, &occ(5), &mut sink); // still live
        }
        assert_eq!(node.buffered_len(), 3);
        // Watermark below the guard: nothing is settled, nothing moves.
        assert_eq!(node.on_watermark(3), 0);
        // Guard@3 settles at low=4: opener@1 is dead; the guard stays as
        // long as opener@1 precedes it — both go in the same pass because
        // openers are pruned first.
        assert_eq!(node.on_watermark(4), 2);
        assert_eq!(node.buffered_len(), 1);
        assert_eq!(node.guard_count(), 0);
        // The surviving opener still detects against a later closer.
        {
            let mut sink = Sink::new(EventId(9), &mut em, &mut tr);
            node.on_child(SLOT_CLOSER, &occ(9), &mut sink);
        }
        assert_eq!(em.len(), 1);
        assert_eq!(em[0].params[0].values.len(), 0);
    }

    #[test]
    fn watermark_gc_preserves_detections() {
        // Same feed sequence, interleaved with aggressive watermarks on one
        // copy: the emission streams must be identical.
        let feeds = [
            (SLOT_OPENER, 1),
            (SLOT_GUARD, 2),
            (SLOT_OPENER, 4),
            (SLOT_CLOSER, 6),
            (SLOT_OPENER, 7),
            (SLOT_GUARD, 8),
            (SLOT_CLOSER, 10),
        ];
        for ctx in [
            Context::Unrestricted,
            Context::Recent,
            Context::Chronicle,
            Context::Continuous,
            Context::Cumulative,
        ] {
            let mut plain = NotNode::new(ctx);
            let mut gc = NotNode::new(ctx);
            let mut plain_em = Vec::new();
            let mut gc_em = Vec::new();
            let mut tr = Vec::new();
            for &(slot, t) in &feeds {
                {
                    let mut sink = Sink::new(EventId(9), &mut plain_em, &mut tr);
                    plain.on_child(slot, &occ(t), &mut sink);
                }
                {
                    let mut sink = Sink::new(EventId(9), &mut gc_em, &mut tr);
                    gc.on_child(slot, &occ(t), &mut sink);
                }
                gc.on_watermark(t); // feeds are monotone, so `t` is a valid low
            }
            assert_eq!(plain_em, gc_em, "{ctx}");
            assert!(gc.buffered_len() <= plain.buffered_len(), "{ctx}");
        }
    }

    #[test]
    fn recent_keeps_one_settled_guard_witness() {
        let mut node: NotNode<CentralTime> = NotNode::new(Context::Recent);
        let mut em = Vec::new();
        let mut tr = Vec::new();
        {
            let mut sink = Sink::new(EventId(9), &mut em, &mut tr);
            node.on_child(SLOT_OPENER, &occ(1), &mut sink);
            for t in [3, 4, 5] {
                node.on_child(SLOT_GUARD, &occ(t), &mut sink);
            }
        }
        assert_eq!(node.on_watermark(6), 2);
        assert_eq!(node.guard_count(), 1);
        // The witness still cancels the opener's window.
        {
            let mut sink = Sink::new(EventId(9), &mut em, &mut tr);
            node.on_child(SLOT_CLOSER, &occ(9), &mut sink);
        }
        assert!(em.is_empty());
    }

    #[test]
    fn guards_retained_across_closers() {
        let mut node: NotNode<CentralTime> = NotNode::new(Context::Unrestricted);
        let mut em = Vec::new();
        let mut tr = Vec::new();
        {
            let mut sink = Sink::new(EventId(9), &mut em, &mut tr);
            node.on_child(SLOT_GUARD, &occ(3), &mut sink);
            node.on_child(SLOT_CLOSER, &occ(5), &mut sink);
        }
        assert_eq!(node.guard_count(), 1);
    }
}
