//! Periodic operators `P(E1, [t], E3)`, `P*(E1, [t], E3)` and the offset
//! operator's machinery they share.
//!
//! After an `E1` occurrence, `P` signals every `period` ticks until an `E3`
//! occurrence closes the window. The node itself has no clock: it registers
//! timer requests and the *driver* supplies each fire's timestamp — the
//! centralized detector computes `t1 + k·period`; the distributed engine
//! reads the scheduled site's local clock, so periodic occurrences carry
//! genuine `(site, global, local)` stamps.
//!
//! `P*` accumulates the fire times and signals once at `E3`.
//!
//! Parameter contexts: periodic windows follow the opener-buffer rules —
//! `Recent` keeps only the newest window, other contexts keep all;
//! detection consumes nothing until the closer removes windows.

use crate::event::{Occurrence, Value};
use crate::nodes::{OperatorNode, Sink};
use crate::time::EventTime;

/// Operand slot of the window opener (`E1`).
pub const SLOT_OPENER: usize = 0;
/// Operand slot of the window closer (`E3`).
pub const SLOT_CLOSER: usize = 1;

#[derive(Debug)]
struct PWindow<T: EventTime> {
    tag: u64,
    opener: Occurrence<T>,
    /// Accumulated fire times (used by `P*`; `P` leaves it empty).
    fires: Vec<T>,
    closed: bool,
}

/// Shared window bookkeeping for `P` and `P*`.
#[derive(Debug)]
struct PeriodicCore<T: EventTime> {
    period: u64,
    windows: Vec<PWindow<T>>,
    next_tag: u64,
}

impl<T: EventTime> PeriodicCore<T> {
    fn new(period: u64) -> Self {
        PeriodicCore {
            period,
            windows: Vec::new(),
            next_tag: 0,
        }
    }

    fn open(&mut self, occ: &Occurrence<T>, sink: &mut Sink<'_, T>) {
        let tag = self.next_tag;
        self.next_tag += 1;
        self.windows.push(PWindow {
            tag,
            opener: occ.clone(),
            fires: Vec::new(),
            closed: false,
        });
        sink.request_timer(tag, self.period);
    }

    fn close(&mut self, t3: &T) -> Vec<PWindow<T>> {
        let (closed, open): (Vec<_>, Vec<_>) = self
            .windows
            .drain(..)
            .partition(|w| w.opener.time.before(t3));
        self.windows = open;
        closed
    }

    fn window_mut(&mut self, tag: u64) -> Option<&mut PWindow<T>> {
        self.windows.iter_mut().find(|w| w.tag == tag)
    }

    fn open_count(&self) -> usize {
        self.windows.iter().filter(|w| !w.closed).count()
    }

    /// Encoding shared by `P`/`P*`: `nums` = `[next_tag, tag_0, closed_0,
    /// tag_1, closed_1, …]`; `occs[i]` = `[opener_i]`; `times[i]` =
    /// accumulated fire times of window `i`.
    fn save_state(&self) -> crate::state::NodeState<T> {
        let mut nums = vec![self.next_tag];
        for w in &self.windows {
            nums.push(w.tag);
            nums.push(u64::from(w.closed));
        }
        crate::state::NodeState {
            nums,
            occs: self
                .windows
                .iter()
                .map(|w| vec![w.opener.clone()])
                .collect(),
            times: self.windows.iter().map(|w| w.fires.clone()).collect(),
        }
    }

    fn restore_state(
        &mut self,
        state: crate::state::NodeState<T>,
        node: &str,
    ) -> crate::error::Result<()> {
        let crate::state::NodeState { nums, occs, times } = state;
        let n = occs.len();
        if nums.len() != 1 + 2 * n || times.len() != n || occs.iter().any(|g| g.len() != 1) {
            return Err(crate::state::shape_err(node));
        }
        self.next_tag = nums[0];
        self.windows = occs
            .into_iter()
            .zip(times)
            .enumerate()
            .map(|(i, (mut group, fires))| PWindow {
                tag: nums[1 + 2 * i],
                opener: group.remove(0),
                fires,
                closed: nums[2 + 2 * i] != 0,
            })
            .collect();
        Ok(())
    }
}

/// State machine for `P(E1, [t], E3)`.
#[derive(Debug)]
pub struct PNode<T: EventTime> {
    core: PeriodicCore<T>,
}

impl<T: EventTime> PNode<T> {
    /// New periodic node with the given period (in ticks).
    pub fn new(period: u64) -> Self {
        PNode {
            core: PeriodicCore::new(period),
        }
    }

    /// Number of open windows (tests/metrics).
    pub fn open_windows(&self) -> usize {
        self.core.open_count()
    }
}

impl<T: EventTime> OperatorNode<T> for PNode<T> {
    fn on_child(&mut self, slot: usize, occ: &Occurrence<T>, sink: &mut Sink<'_, T>) {
        match slot {
            SLOT_OPENER => self.core.open(occ, sink),
            SLOT_CLOSER => {
                let _ = self.core.close(&occ.time);
            }
            _ => debug_assert!(false, "P has two event operands"),
        }
    }

    fn on_timer(&mut self, tag: u64, time: &T, sink: &mut Sink<'_, T>) {
        let period = self.core.period;
        if let Some(w) = self.core.window_mut(tag) {
            // Emit with the opener's parameters at the fire time, then
            // re-arm for the next period.
            sink.emit(Occurrence::with_params(
                w.opener.ty,
                time.clone(),
                w.opener.params.clone(),
            ));
            sink.request_timer(tag, period);
        }
        // A fire for a removed window is a no-op (window closed between
        // scheduling and delivery).
    }

    // No `on_watermark` override: an open periodic window keeps firing
    // until its closer arrives, and the closer arm consumes it eagerly —
    // every buffered window is live by construction.

    fn buffered_len(&self) -> usize {
        self.core.windows.len()
    }

    fn min_timer_delay(&self) -> Option<u64> {
        Some(self.core.period)
    }

    /// See [`PeriodicCore::save_state`] for the encoding.
    fn save_state(&self) -> crate::state::NodeState<T> {
        self.core.save_state()
    }

    fn restore_state(&mut self, state: crate::state::NodeState<T>) -> crate::error::Result<()> {
        self.core.restore_state(state, "P")
    }
}

/// State machine for `P*(E1, [t], E3)`.
#[derive(Debug)]
pub struct PStarNode<T: EventTime> {
    core: PeriodicCore<T>,
}

impl<T: EventTime> PStarNode<T> {
    /// New cumulative periodic node with the given period (in ticks).
    pub fn new(period: u64) -> Self {
        PStarNode {
            core: PeriodicCore::new(period),
        }
    }

    /// Number of open windows (tests/metrics).
    pub fn open_windows(&self) -> usize {
        self.core.open_count()
    }
}

impl<T: EventTime> OperatorNode<T> for PStarNode<T> {
    fn on_child(&mut self, slot: usize, occ: &Occurrence<T>, sink: &mut Sink<'_, T>) {
        match slot {
            SLOT_OPENER => self.core.open(occ, sink),
            SLOT_CLOSER => {
                for w in self.core.close(&occ.time) {
                    // One detection per closed window: the opener's
                    // parameters, the number of accumulated fires, and the
                    // Max over fire times and the closer.
                    let mut time = occ.time.clone();
                    for f in &w.fires {
                        time = time.max(f);
                    }
                    let mut params = (*w.opener.params).clone();
                    params.push(crate::event::ParamTuple::new(
                        occ.ty,
                        vec![Value::Int(w.fires.len() as i64)],
                    ));
                    sink.emit(Occurrence::with_params(occ.ty, time, params.into()));
                }
            }
            _ => debug_assert!(false, "P* has two event operands"),
        }
    }

    fn on_timer(&mut self, tag: u64, time: &T, sink: &mut Sink<'_, T>) {
        let period = self.core.period;
        if let Some(w) = self.core.window_mut(tag) {
            w.fires.push(time.clone());
            sink.request_timer(tag, period);
        }
    }

    // No `on_watermark` override: accumulated fires are all reported at the
    // closer, so every window and every fire is live until then.

    fn buffered_len(&self) -> usize {
        self.core.windows.iter().map(|w| 1 + w.fires.len()).sum()
    }

    fn min_timer_delay(&self) -> Option<u64> {
        Some(self.core.period)
    }

    /// See [`PeriodicCore::save_state`] for the encoding.
    fn save_state(&self) -> crate::state::NodeState<T> {
        self.core.save_state()
    }

    fn restore_state(&mut self, state: crate::state::NodeState<T>) -> crate::error::Result<()> {
        self.core.restore_state(state, "P*")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventId;
    use crate::time::CentralTime;

    fn occ(t: u64) -> Occurrence<CentralTime> {
        Occurrence::bare(EventId(0), CentralTime(t))
    }

    #[test]
    fn p_requests_timer_on_open() {
        let mut node: PNode<CentralTime> = PNode::new(10);
        let mut em = Vec::new();
        let mut tr = Vec::new();
        {
            let mut sink = Sink::new(EventId(9), &mut em, &mut tr);
            node.on_child(SLOT_OPENER, &occ(100), &mut sink);
        }
        assert_eq!(tr, vec![(0, 10)]);
        assert_eq!(node.open_windows(), 1);
    }

    #[test]
    fn p_fires_and_rearms() {
        let mut node: PNode<CentralTime> = PNode::new(10);
        let mut em = Vec::new();
        let mut tr = Vec::new();
        {
            let mut sink = Sink::new(EventId(9), &mut em, &mut tr);
            node.on_child(SLOT_OPENER, &occ(100), &mut sink);
            node.on_timer(0, &CentralTime(110), &mut sink);
        }
        assert_eq!(em.len(), 1);
        assert_eq!(em[0].time, CentralTime(110));
        assert_eq!(em[0].ty, EventId(9));
        // Re-armed with the same tag.
        assert_eq!(tr, vec![(0, 10), (0, 10)]);
    }

    #[test]
    fn p_stops_after_closer() {
        let mut node: PNode<CentralTime> = PNode::new(10);
        let mut em = Vec::new();
        let mut tr = Vec::new();
        {
            let mut sink = Sink::new(EventId(9), &mut em, &mut tr);
            node.on_child(SLOT_OPENER, &occ(100), &mut sink);
            node.on_child(SLOT_CLOSER, &occ(105), &mut sink);
            node.on_timer(0, &CentralTime(110), &mut sink);
        }
        assert!(em.is_empty());
        assert_eq!(node.open_windows(), 0);
    }

    #[test]
    fn p_closer_before_opener_does_not_close() {
        let mut node: PNode<CentralTime> = PNode::new(10);
        let mut em = Vec::new();
        let mut tr = Vec::new();
        {
            let mut sink = Sink::new(EventId(9), &mut em, &mut tr);
            node.on_child(SLOT_OPENER, &occ(100), &mut sink);
            node.on_child(SLOT_CLOSER, &occ(50), &mut sink); // earlier: no-op
            node.on_timer(0, &CentralTime(110), &mut sink);
        }
        assert_eq!(em.len(), 1);
    }

    #[test]
    fn pstar_accumulates_and_fires_once() {
        let mut node: PStarNode<CentralTime> = PStarNode::new(10);
        let mut em = Vec::new();
        let mut tr = Vec::new();
        {
            let mut sink = Sink::new(EventId(9), &mut em, &mut tr);
            node.on_child(SLOT_OPENER, &occ(100), &mut sink);
            node.on_timer(0, &CentralTime(110), &mut sink);
            node.on_timer(0, &CentralTime(120), &mut sink);
        }
        assert!(em.is_empty()); // nothing until the closer
        {
            let mut sink = Sink::new(EventId(9), &mut em, &mut tr);
            node.on_child(SLOT_CLOSER, &occ(125), &mut sink);
        }
        assert_eq!(em.len(), 1);
        // Two accumulated fires reported as a count parameter.
        let count = em[0].params.last().unwrap().values[0].as_int();
        assert_eq!(count, Some(2));
        // Time is the Max of closer and fires.
        assert_eq!(em[0].time, CentralTime(125));
    }

    #[test]
    fn pstar_empty_window_reports_zero_fires() {
        let mut node: PStarNode<CentralTime> = PStarNode::new(10);
        let mut em = Vec::new();
        let mut tr = Vec::new();
        {
            let mut sink = Sink::new(EventId(9), &mut em, &mut tr);
            node.on_child(SLOT_OPENER, &occ(100), &mut sink);
            node.on_child(SLOT_CLOSER, &occ(105), &mut sink);
        }
        assert_eq!(em.len(), 1);
        assert_eq!(em[0].params.last().unwrap().values[0].as_int(), Some(0));
    }

    #[test]
    fn stale_timer_is_noop() {
        let mut node: PStarNode<CentralTime> = PStarNode::new(10);
        let mut em = Vec::new();
        let mut tr = Vec::new();
        {
            let mut sink = Sink::new(EventId(9), &mut em, &mut tr);
            node.on_timer(77, &CentralTime(1), &mut sink);
        }
        assert!(em.is_empty());
        assert!(tr.is_empty());
    }
}
