//! Operator node state machines.
//!
//! Every Snoop operator is implemented once, generically over the time
//! domain [`EventTime`] — the same code detects centralized (total-order)
//! and distributed (partial-order, `Max`-propagated) composite events. Each
//! node receives child occurrences through [`OperatorNode::on_child`]
//! (`slot` identifies which operand), emits derived occurrences and timer
//! requests through its [`Sink`], and receives timer callbacks through
//! [`OperatorNode::on_timer`].

pub mod and;
pub mod any;
pub mod aperiodic;
pub mod mask;
pub mod not;
pub mod or;
pub mod periodic;
pub mod plus;
pub mod seq;

use crate::context::Context;
use crate::event::{EventId, Occurrence};
use crate::time::EventTime;
use std::fmt::Debug;

/// A compiled operator instance inside the detection graph.
pub trait OperatorNode<T: EventTime>: Debug + Send {
    /// A child (operand `slot`) produced `occ`.
    fn on_child(&mut self, slot: usize, occ: &Occurrence<T>, sink: &mut Sink<'_, T>);

    /// A previously requested timer fired with driver-assigned time.
    /// Only temporal operators override this.
    fn on_timer(&mut self, _tag: u64, _time: &T, _sink: &mut Sink<'_, T>) {}

    /// The driver's low watermark advanced to `low`: every occurrence this
    /// node will receive from now on carries a stamp whose global ticks are
    /// all `≥ low` (so [`EventTime::settled`] stamps happen-before all of
    /// them). A node may evict buffered state that can provably never
    /// contribute to a future detection, returning how many entries it
    /// dropped. Eviction must be **behavior-preserving**: the detected
    /// occurrence stream with and without GC is identical (enforced by
    /// `tests/prop_fastpath.rs`).
    ///
    /// The default keeps everything — which is not laziness but the correct
    /// rule for most operators: a buffered `∧`/`;`/`A` initiator matches
    /// *every* future terminator (growing older only makes `t1 < t2` more
    /// true, never less), so no watermark can prove it dead. The operators
    /// whose semantics do strand state (`¬` guards and cancelled openers,
    /// `ANY`'s unreachable Unrestricted entries) override this.
    fn on_watermark(&mut self, _low: u64) -> u64 {
        0
    }

    /// Number of occurrences (or guard stamps / armed offsets) currently
    /// buffered in this node's state, for occupancy metrics.
    fn buffered_len(&self) -> usize {
        0
    }
}

/// Collects a node's emissions and timer requests during one step.
pub struct Sink<'a, T: EventTime> {
    emit_ty: EventId,
    emissions: &'a mut Vec<Occurrence<T>>,
    /// `(node-internal tag, delay ticks)`.
    timer_reqs: &'a mut Vec<(u64, u64)>,
}

impl<'a, T: EventTime> Sink<'a, T> {
    /// Create a sink emitting under `emit_ty`.
    pub fn new(
        emit_ty: EventId,
        emissions: &'a mut Vec<Occurrence<T>>,
        timer_reqs: &'a mut Vec<(u64, u64)>,
    ) -> Self {
        Sink {
            emit_ty,
            emissions,
            timer_reqs,
        }
    }

    /// The event type emissions will carry.
    pub fn emit_ty(&self) -> EventId {
        self.emit_ty
    }

    /// Emit a derived occurrence (retyped to the node's event type).
    pub fn emit(&mut self, occ: Occurrence<T>) {
        self.emissions.push(occ.retyped(self.emit_ty));
    }

    /// Emit the combination of two constituents (`Max` time, concatenated
    /// parameters).
    pub fn emit_pair(&mut self, a: &Occurrence<T>, b: &Occurrence<T>) {
        self.emissions.push(Occurrence::combine(self.emit_ty, a, b));
    }

    /// Emit the combination of many constituents.
    pub fn emit_all(&mut self, parts: &[&Occurrence<T>]) {
        self.emissions
            .push(Occurrence::combine_all(self.emit_ty, parts));
    }

    /// Ask the driver to call back after `delay_ticks`, passing `tag` back
    /// to this node.
    pub fn request_timer(&mut self, tag: u64, delay_ticks: u64) {
        self.timer_reqs.push((tag, delay_ticks));
    }
}

/// Buffer an initiator occurrence according to the parameter context:
/// Recent keeps a single latest occurrence (an arrival replaces the buffer
/// unless it happens strictly before the buffered one); all other contexts
/// append in arrival order.
pub(crate) fn buffer_initiator<T: EventTime>(
    ctx: Context,
    buf: &mut Vec<Occurrence<T>>,
    occ: &Occurrence<T>,
) {
    match ctx {
        Context::Recent => {
            if let Some(existing) = buf.first() {
                if occ.time.before(&existing.time) {
                    return; // older than the buffered one: ignore
                }
                buf.clear();
            }
            buf.push(occ.clone());
        }
        _ => buf.push(occ.clone()),
    }
}

/// Pair a terminator with matching initiators per the context and emit one
/// detection per pairing (or one merged detection in Cumulative).
///
/// `matches(init)` decides eligibility (e.g. `init.time < t2` for `;`).
/// Consumption: Unrestricted/Recent keep initiators; Chronicle consumes the
/// oldest match; Continuous consumes every match; Cumulative merges every
/// match into a single emission and consumes them.
pub(crate) fn pair_terminator<T, F>(
    ctx: Context,
    inits: &mut Vec<Occurrence<T>>,
    term: &Occurrence<T>,
    sink: &mut Sink<'_, T>,
    mut matches: F,
) where
    T: EventTime,
    F: FnMut(&Occurrence<T>) -> bool,
{
    // An occurrence never pairs with itself: when one operand expression
    // feeds both slots of an operator (`E ∧ E`), the same occurrence
    // arrives on both sides and must be skipped by identity.
    let mut matches = |i: &Occurrence<T>| i.uid != term.uid && matches(i);
    match ctx {
        Context::Unrestricted => {
            for init in inits.iter().filter(|i| matches(i)) {
                sink.emit_pair(init, term);
            }
        }
        Context::Recent => {
            // Buffer holds at most one occurrence.
            if let Some(init) = inits.first() {
                if matches(init) {
                    sink.emit_pair(init, term);
                }
            }
        }
        Context::Chronicle => {
            if let Some(pos) = inits.iter().position(&mut matches) {
                let init = inits.remove(pos);
                sink.emit_pair(&init, term);
            }
        }
        Context::Continuous => {
            let mut kept = Vec::with_capacity(inits.len());
            for init in inits.drain(..) {
                if matches(&init) {
                    sink.emit_pair(&init, term);
                } else {
                    kept.push(init);
                }
            }
            *inits = kept;
        }
        Context::Cumulative => {
            let mut kept = Vec::with_capacity(inits.len());
            let mut used = Vec::new();
            for init in inits.drain(..) {
                if matches(&init) {
                    used.push(init);
                } else {
                    kept.push(init);
                }
            }
            *inits = kept;
            if !used.is_empty() {
                let mut parts: Vec<&Occurrence<T>> = used.iter().collect();
                parts.push(term);
                sink.emit_all(&parts);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::CentralTime;

    fn bare(t: u64) -> Occurrence<CentralTime> {
        Occurrence::bare(EventId(0), CentralTime(t))
    }

    #[test]
    fn recent_buffer_keeps_latest() {
        let mut buf = Vec::new();
        buffer_initiator(Context::Recent, &mut buf, &bare(5));
        buffer_initiator(Context::Recent, &mut buf, &bare(9));
        assert_eq!(buf.len(), 1);
        assert_eq!(buf[0].time, CentralTime(9));
        // An older arrival does not displace the newer one.
        buffer_initiator(Context::Recent, &mut buf, &bare(3));
        assert_eq!(buf[0].time, CentralTime(9));
    }

    #[test]
    fn other_contexts_append() {
        for ctx in [
            Context::Unrestricted,
            Context::Chronicle,
            Context::Continuous,
            Context::Cumulative,
        ] {
            let mut buf = Vec::new();
            buffer_initiator(ctx, &mut buf, &bare(5));
            buffer_initiator(ctx, &mut buf, &bare(3));
            assert_eq!(buf.len(), 2, "{ctx}");
        }
    }

    #[test]
    fn pairing_consumption_rules() {
        let term = bare(10);
        let run = |ctx: Context| {
            let mut inits = vec![bare(1), bare(2), bare(3)];
            let mut em = Vec::new();
            let mut tr = Vec::new();
            {
                let mut sink = Sink::new(EventId(9), &mut em, &mut tr);
                pair_terminator(ctx, &mut inits, &term, &mut sink, |_| true);
            }
            (em.len(), inits.len())
        };
        assert_eq!(run(Context::Unrestricted), (3, 3));
        assert_eq!(run(Context::Chronicle), (1, 2));
        assert_eq!(run(Context::Continuous), (3, 0));
        assert_eq!(run(Context::Cumulative), (1, 0));
    }

    #[test]
    fn cumulative_merges_params() {
        let term = bare(10);
        let mut inits = vec![bare(1), bare(2)];
        let mut em = Vec::new();
        let mut tr = Vec::new();
        {
            let mut sink = Sink::new(EventId(9), &mut em, &mut tr);
            pair_terminator(Context::Cumulative, &mut inits, &term, &mut sink, |_| true);
        }
        assert_eq!(em.len(), 1);
        assert_eq!(em[0].params.len(), 3); // two initiators + terminator
        assert_eq!(em[0].time, CentralTime(10));
    }

    #[test]
    fn nonmatching_initiators_survive() {
        let term = bare(10);
        let mut inits = vec![bare(1), bare(20)]; // 20 is "after" the terminator
        let mut em = Vec::new();
        let mut tr = Vec::new();
        {
            let mut sink = Sink::new(EventId(9), &mut em, &mut tr);
            pair_terminator(Context::Continuous, &mut inits, &term, &mut sink, |i| {
                i.time.before(&term.time)
            });
        }
        assert_eq!(em.len(), 1);
        assert_eq!(inits.len(), 1);
        assert_eq!(inits[0].time, CentralTime(20));
    }
}
