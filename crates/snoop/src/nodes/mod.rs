//! Operator node state machines.
//!
//! Every Snoop operator is implemented once, generically over the time
//! domain [`EventTime`] — the same code detects centralized (total-order)
//! and distributed (partial-order, `Max`-propagated) composite events. Each
//! node receives child occurrences through [`OperatorNode::on_child`]
//! (`slot` identifies which operand), emits derived occurrences and timer
//! requests through its [`Sink`], and receives timer callbacks through
//! [`OperatorNode::on_timer`].

pub mod and;
pub mod any;
pub mod aperiodic;
pub mod mask;
pub mod not;
pub mod or;
pub mod periodic;
pub mod plus;
pub mod seq;

use crate::context::Context;
use crate::error::Result;
use crate::event::{EventId, Occurrence};
use crate::state::{shape_err, NodeState};
use crate::time::EventTime;
use std::fmt::Debug;

/// A compiled operator instance inside the detection graph.
pub trait OperatorNode<T: EventTime>: Debug + Send {
    /// A child (operand `slot`) produced `occ`.
    fn on_child(&mut self, slot: usize, occ: &Occurrence<T>, sink: &mut Sink<'_, T>);

    /// A previously requested timer fired with driver-assigned time.
    /// Only temporal operators override this.
    fn on_timer(&mut self, _tag: u64, _time: &T, _sink: &mut Sink<'_, T>) {}

    /// The driver's low watermark advanced to `low`: every occurrence this
    /// node will receive from now on carries a stamp whose global ticks are
    /// all `≥ low` (so [`EventTime::settled`] stamps happen-before all of
    /// them). A node may evict buffered state that can provably never
    /// contribute to a future detection, returning how many entries it
    /// dropped. Eviction must be **behavior-preserving**: the detected
    /// occurrence stream with and without GC is identical (enforced by
    /// `tests/prop_fastpath.rs`).
    ///
    /// The default keeps everything — which is not laziness but the correct
    /// rule for most operators: a buffered `∧`/`;`/`A` initiator matches
    /// *every* future terminator (growing older only makes `t1 < t2` more
    /// true, never less), so no watermark can prove it dead. The operators
    /// whose semantics do strand state (`¬` guards and cancelled openers,
    /// `ANY`'s unreachable Unrestricted entries) override this.
    fn on_watermark(&mut self, _low: u64) -> u64 {
        0
    }

    /// Number of occurrences (or guard stamps / armed offsets) currently
    /// buffered in this node's state, for occupancy metrics.
    fn buffered_len(&self) -> usize {
        0
    }

    /// Smallest delay this node can ever pass to [`Sink::request_timer`],
    /// or `None` if it never requests timers. Delays are compile-time
    /// constants of the temporal operators, so batching drivers can rely
    /// on the graph-wide minimum: an occurrence fed at tick `t` cannot
    /// enqueue a timer due before `t + min`.
    fn min_timer_delay(&self) -> Option<u64> {
        None
    }

    /// Serialize this node's buffered state into the shape-agnostic
    /// [`NodeState`] encoding (see [`crate::state`]). Stateless nodes save
    /// an empty state; every stateful operator overrides this together
    /// with [`OperatorNode::restore_state`] and documents its encoding
    /// there.
    fn save_state(&self) -> NodeState<T> {
        NodeState::empty()
    }

    /// Restore a state produced by [`OperatorNode::save_state`] on a node
    /// of the same operator compiled from the same expression. Fails with
    /// [`crate::SnoopError::SnapshotMismatch`] when the shape does not fit
    /// — restoring must never guess.
    fn restore_state(&mut self, state: NodeState<T>) -> Result<()> {
        if state.is_empty() {
            Ok(())
        } else {
            Err(shape_err("stateless node"))
        }
    }
}

/// Collects a node's emissions and timer requests during one step.
pub struct Sink<'a, T: EventTime> {
    emit_ty: EventId,
    emissions: &'a mut Vec<Occurrence<T>>,
    /// `(node-internal tag, delay ticks)`.
    timer_reqs: &'a mut Vec<(u64, u64)>,
}

impl<'a, T: EventTime> Sink<'a, T> {
    /// Create a sink emitting under `emit_ty`.
    pub fn new(
        emit_ty: EventId,
        emissions: &'a mut Vec<Occurrence<T>>,
        timer_reqs: &'a mut Vec<(u64, u64)>,
    ) -> Self {
        Sink {
            emit_ty,
            emissions,
            timer_reqs,
        }
    }

    /// The event type emissions will carry.
    pub fn emit_ty(&self) -> EventId {
        self.emit_ty
    }

    /// Emit a derived occurrence (retyped to the node's event type).
    pub fn emit(&mut self, occ: Occurrence<T>) {
        self.emissions.push(occ.retyped(self.emit_ty));
    }

    /// Emit the combination of two constituents (`Max` time, concatenated
    /// parameters).
    pub fn emit_pair(&mut self, a: &Occurrence<T>, b: &Occurrence<T>) {
        self.emissions.push(Occurrence::combine(self.emit_ty, a, b));
    }

    /// Emit the combination of many constituents.
    pub fn emit_all(&mut self, parts: &[&Occurrence<T>]) {
        self.emissions
            .push(Occurrence::combine_all(self.emit_ty, parts));
    }

    /// Ask the driver to call back after `delay_ticks`, passing `tag` back
    /// to this node.
    pub fn request_timer(&mut self, tag: u64, delay_ticks: u64) {
        self.timer_reqs.push((tag, delay_ticks));
    }
}

/// Buffer an initiator occurrence according to the parameter context:
/// Recent keeps a single latest occurrence (an arrival replaces the buffer
/// unless it happens strictly before the buffered one); all other contexts
/// append in arrival order.
pub(crate) fn buffer_initiator<T: EventTime>(
    ctx: Context,
    buf: &mut Vec<Occurrence<T>>,
    occ: &Occurrence<T>,
) {
    match ctx {
        Context::Recent => {
            if let Some(existing) = buf.first() {
                if occ.time.before(&existing.time) {
                    return; // older than the buffered one: ignore
                }
                buf.clear();
            }
            buf.push(occ.clone());
        }
        _ => buf.push(occ.clone()),
    }
}

/// Pair a terminator with matching initiators per the context and emit one
/// detection per pairing (or one merged detection in Cumulative).
///
/// `matches(init)` decides eligibility (e.g. `init.time < t2` for `;`).
/// Consumption: Unrestricted/Recent keep initiators; Chronicle consumes the
/// oldest match; Continuous consumes every match; Cumulative merges every
/// match into a single emission and consumes them.
pub(crate) fn pair_terminator<T, F>(
    ctx: Context,
    inits: &mut Vec<Occurrence<T>>,
    term: &Occurrence<T>,
    sink: &mut Sink<'_, T>,
    mut matches: F,
) where
    T: EventTime,
    F: FnMut(&Occurrence<T>) -> bool,
{
    // An occurrence never pairs with itself: when one operand expression
    // feeds both slots of an operator (`E ∧ E`), the same occurrence
    // arrives on both sides and must be skipped by identity.
    let mut matches = |i: &Occurrence<T>| i.uid != term.uid && matches(i);
    match ctx {
        Context::Unrestricted => {
            for init in inits.iter().filter(|i| matches(i)) {
                sink.emit_pair(init, term);
            }
        }
        Context::Recent => {
            // Buffer holds at most one occurrence.
            if let Some(init) = inits.first() {
                if matches(init) {
                    sink.emit_pair(init, term);
                }
            }
        }
        Context::Chronicle => {
            if let Some(pos) = inits.iter().position(&mut matches) {
                let init = inits.remove(pos);
                sink.emit_pair(&init, term);
            }
        }
        Context::Continuous => {
            let mut kept = Vec::with_capacity(inits.len());
            for init in inits.drain(..) {
                if matches(&init) {
                    sink.emit_pair(&init, term);
                } else {
                    kept.push(init);
                }
            }
            *inits = kept;
        }
        Context::Cumulative => {
            let mut kept = Vec::with_capacity(inits.len());
            let mut used = Vec::new();
            for init in inits.drain(..) {
                if matches(&init) {
                    used.push(init);
                } else {
                    kept.push(init);
                }
            }
            *inits = kept;
            if !used.is_empty() {
                let mut parts: Vec<&Occurrence<T>> = used.iter().collect();
                parts.push(term);
                sink.emit_all(&parts);
            }
        }
    }
}

/// One buffered initiator inside a [`BandedBuffer`].
#[derive(Debug)]
struct BandEntry<T: EventTime> {
    /// Cached [`EventTime::global_upper_bound`] of `occ`'s stamp (the sort
    /// key).
    band: u64,
    /// Arrival sequence number — the semantic order of the buffer. Context
    /// consumption rules (Chronicle FIFO, emission order) are defined over
    /// *arrival* order, which band order need not agree with.
    seq: u64,
    occ: Occurrence<T>,
}

/// An initiator buffer kept sorted by `(global_upper_bound, arrival)` so a
/// terminator can binary-search the **band-separated prefix**: every entry
/// with `band + 1 < terminator.global_lower_bound()` is settled at the
/// terminator's band floor and therefore certainly happens-before it (the
/// buffered analogue of the `2g_g` band-separation fast path, under the
/// same site-monotone-clock assumption as [`EventTime::settled`]). Full
/// `<_p` relation checks run only on the entries inside the uncertainty
/// band. `tests/prop_fastpath.rs` pins this against the linear-scan oracle.
#[derive(Debug)]
pub(crate) struct BandedBuffer<T: EventTime> {
    /// Sorted by `(band, seq)`; `seq` values are unique.
    entries: Vec<BandEntry<T>>,
    next_seq: u64,
    /// Reusable index staging for [`BandedBuffer::terminate_before`]: the
    /// matched entry positions of one termination, re-sorted into arrival
    /// order. Keeping it on the buffer makes the steady-state join path
    /// allocation-free (`crates/snoop/tests/alloc_count.rs` pins this).
    scratch: Vec<usize>,
}

impl<T: EventTime> Default for BandedBuffer<T> {
    fn default() -> Self {
        BandedBuffer {
            entries: Vec::new(),
            next_seq: 0,
            scratch: Vec::new(),
        }
    }
}

impl<T: EventTime> BandedBuffer<T> {
    /// Number of buffered initiators.
    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    /// Buffer an initiator (the banded analogue of [`buffer_initiator`]):
    /// Recent keeps a single latest occurrence; other contexts insert in
    /// band order, remembering arrival order in `seq`.
    pub(crate) fn insert(&mut self, ctx: Context, occ: &Occurrence<T>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        if ctx == Context::Recent {
            if let Some(existing) = self.entries.first() {
                if occ.time.before(&existing.occ.time) {
                    return; // older than the buffered one: ignore
                }
                self.entries.clear();
            }
        }
        let band = occ.time.global_upper_bound();
        // In-order arrivals (the common case) have the largest `(band, seq)`
        // key so far, so this is an O(log n) search + push at the end.
        let pos = self.entries.partition_point(|e| e.band <= band);
        self.entries.insert(
            pos,
            BandEntry {
                band,
                seq,
                occ: occ.clone(),
            },
        );
    }

    /// The buffered initiators in arrival order (the snapshot encoding:
    /// band keys and sequence numbers are derived state, so only the
    /// occurrences travel).
    pub(crate) fn save_occs(&self) -> Vec<Occurrence<T>> {
        let mut entries: Vec<&BandEntry<T>> = self.entries.iter().collect();
        entries.sort_by_key(|e| e.seq);
        entries.iter().map(|e| e.occ.clone()).collect()
    }

    /// Rebuild the buffer from occurrences saved by
    /// [`BandedBuffer::save_occs`]: re-inserting in arrival order
    /// recomputes the bands and assigns fresh (relative-order-preserving)
    /// sequence numbers, which is all the pairing rules depend on.
    pub(crate) fn restore_occs(&mut self, ctx: Context, occs: Vec<Occurrence<T>>) {
        self.entries.clear();
        self.next_seq = 0;
        for occ in &occs {
            self.insert(ctx, occ);
        }
    }

    /// Pair `term` with every buffered initiator that strictly
    /// happens-before it, applying the context's consumption rule exactly
    /// like [`pair_terminator`] with the `init.time.before(term.time)`
    /// predicate: emissions happen in arrival order, Chronicle consumes the
    /// oldest arrival, Continuous/Cumulative consume every match.
    ///
    /// Entries below the band-separated prefix match by construction (the
    /// prefix bound implies `before`, and `term` itself can never land in
    /// the prefix since its own band overlaps its floor); only in-band
    /// entries run the full relation check and the self-pairing uid guard.
    pub(crate) fn terminate_before(
        &mut self,
        ctx: Context,
        term: &Occurrence<T>,
        sink: &mut Sink<'_, T>,
    ) {
        let floor = term.time.global_lower_bound();
        let prefix = self
            .entries
            .partition_point(|e| e.band.saturating_add(1) < floor);
        let in_band = |e: &BandEntry<T>| e.occ.uid != term.uid && e.occ.time.before(&term.time);
        match ctx {
            Context::Unrestricted => {
                let mut scratch = std::mem::take(&mut self.scratch);
                scratch.clear();
                scratch.extend(0..prefix);
                scratch.extend((prefix..self.entries.len()).filter(|&i| in_band(&self.entries[i])));
                scratch.sort_by_key(|&i| self.entries[i].seq);
                for &i in &scratch {
                    sink.emit_pair(&self.entries[i].occ, term);
                }
                self.scratch = scratch;
            }
            Context::Recent => {
                // Buffer holds at most one occurrence.
                if let Some(e) = self.entries.first() {
                    if prefix > 0 || in_band(e) {
                        sink.emit_pair(&e.occ, term);
                    }
                }
            }
            Context::Chronicle => {
                let mut oldest: Option<usize> = None;
                for (i, e) in self.entries.iter().enumerate() {
                    if (i < prefix || in_band(e))
                        && oldest.is_none_or(|o| e.seq < self.entries[o].seq)
                    {
                        oldest = Some(i);
                    }
                }
                if let Some(i) = oldest {
                    let e = self.entries.remove(i);
                    sink.emit_pair(&e.occ, term);
                }
            }
            Context::Continuous | Context::Cumulative => {
                let mut scratch = std::mem::take(&mut self.scratch);
                scratch.clear();
                scratch.extend(
                    (0..self.entries.len()).filter(|&i| i < prefix || in_band(&self.entries[i])),
                );
                scratch.sort_by_key(|&i| self.entries[i].seq);
                if ctx == Context::Continuous {
                    for &i in &scratch {
                        sink.emit_pair(&self.entries[i].occ, term);
                    }
                } else if !scratch.is_empty() {
                    let mut parts: Vec<&Occurrence<T>> =
                        scratch.iter().map(|&i| &self.entries[i].occ).collect();
                    parts.push(term);
                    sink.emit_all(&parts);
                }
                // Consume the matched entries in place (recomputing the
                // match predicate positionally); the survivors are a
                // subsequence, so band order is preserved.
                let mut idx = 0;
                self.entries.retain(|e| {
                    let matched = idx < prefix || in_band(e);
                    idx += 1;
                    !matched
                });
                self.scratch = scratch;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::CentralTime;

    fn bare(t: u64) -> Occurrence<CentralTime> {
        Occurrence::bare(EventId(0), CentralTime(t))
    }

    #[test]
    fn recent_buffer_keeps_latest() {
        let mut buf = Vec::new();
        buffer_initiator(Context::Recent, &mut buf, &bare(5));
        buffer_initiator(Context::Recent, &mut buf, &bare(9));
        assert_eq!(buf.len(), 1);
        assert_eq!(buf[0].time, CentralTime(9));
        // An older arrival does not displace the newer one.
        buffer_initiator(Context::Recent, &mut buf, &bare(3));
        assert_eq!(buf[0].time, CentralTime(9));
    }

    #[test]
    fn other_contexts_append() {
        for ctx in [
            Context::Unrestricted,
            Context::Chronicle,
            Context::Continuous,
            Context::Cumulative,
        ] {
            let mut buf = Vec::new();
            buffer_initiator(ctx, &mut buf, &bare(5));
            buffer_initiator(ctx, &mut buf, &bare(3));
            assert_eq!(buf.len(), 2, "{ctx}");
        }
    }

    #[test]
    fn pairing_consumption_rules() {
        let term = bare(10);
        let run = |ctx: Context| {
            let mut inits = vec![bare(1), bare(2), bare(3)];
            let mut em = Vec::new();
            let mut tr = Vec::new();
            {
                let mut sink = Sink::new(EventId(9), &mut em, &mut tr);
                pair_terminator(ctx, &mut inits, &term, &mut sink, |_| true);
            }
            (em.len(), inits.len())
        };
        assert_eq!(run(Context::Unrestricted), (3, 3));
        assert_eq!(run(Context::Chronicle), (1, 2));
        assert_eq!(run(Context::Continuous), (3, 0));
        assert_eq!(run(Context::Cumulative), (1, 0));
    }

    #[test]
    fn cumulative_merges_params() {
        let term = bare(10);
        let mut inits = vec![bare(1), bare(2)];
        let mut em = Vec::new();
        let mut tr = Vec::new();
        {
            let mut sink = Sink::new(EventId(9), &mut em, &mut tr);
            pair_terminator(Context::Cumulative, &mut inits, &term, &mut sink, |_| true);
        }
        assert_eq!(em.len(), 1);
        assert_eq!(em[0].params.len(), 3); // two initiators + terminator
        assert_eq!(em[0].time, CentralTime(10));
    }

    /// The banded buffer replicates the linear helpers exactly — same
    /// emissions in the same order, same surviving buffer — even when
    /// arrival order disagrees with band order. (The full randomized
    /// oracle suite is in `tests/prop_fastpath.rs`.)
    #[test]
    fn banded_buffer_matches_linear_helpers() {
        let arrivals = [7u64, 2, 9, 2, 5, 14, 1];
        for ctx in [
            Context::Unrestricted,
            Context::Recent,
            Context::Chronicle,
            Context::Continuous,
            Context::Cumulative,
        ] {
            let mut linear = Vec::new();
            let mut banded = BandedBuffer::default();
            let occs: Vec<_> = arrivals.iter().map(|&t| bare(t)).collect();
            for occ in &occs {
                buffer_initiator(ctx, &mut linear, occ);
                banded.insert(ctx, occ);
            }
            for term_t in [6u64, 10, 3] {
                let term = bare(term_t);
                let (mut em_l, mut em_b) = (Vec::new(), Vec::new());
                let (mut tr_l, mut tr_b) = (Vec::new(), Vec::new());
                {
                    let mut sink = Sink::new(EventId(9), &mut em_l, &mut tr_l);
                    let t2 = term.time;
                    pair_terminator(ctx, &mut linear, &term, &mut sink, |i| i.time.before(&t2));
                }
                {
                    let mut sink = Sink::new(EventId(9), &mut em_b, &mut tr_b);
                    banded.terminate_before(ctx, &term, &mut sink);
                }
                assert_eq!(em_l, em_b, "{ctx} term@{term_t}");
                assert_eq!(linear.len(), banded.len(), "{ctx} term@{term_t}");
            }
        }
    }

    #[test]
    fn nonmatching_initiators_survive() {
        let term = bare(10);
        let mut inits = vec![bare(1), bare(20)]; // 20 is "after" the terminator
        let mut em = Vec::new();
        let mut tr = Vec::new();
        {
            let mut sink = Sink::new(EventId(9), &mut em, &mut tr);
            pair_terminator(Context::Continuous, &mut inits, &term, &mut sink, |i| {
                i.time.before(&term.time)
            });
        }
        assert_eq!(em.len(), 1);
        assert_eq!(inits.len(), 1);
        assert_eq!(inits[0].time, CentralTime(20));
    }
}
