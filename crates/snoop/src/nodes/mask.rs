//! Event masks: parameter-filtered event expressions.
//!
//! Sentinel lets an event expression restrict which occurrences of a
//! constituent participate, by predicate over the event parameters
//! ("masks"). `Masked { base, mask }` forwards only the occurrences of
//! `base` whose parameters satisfy the mask — filtering happens *inside*
//! the graph, so a masked constituent never reaches its parent operator.

use crate::event::{Occurrence, ParamTuple, Value};
use crate::nodes::{OperatorNode, Sink};
use crate::time::EventTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A predicate over an occurrence's parameter tuples. The mask passes when
/// **any** tuple satisfies it (composite occurrences carry one tuple per
/// constituent).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Mask {
    /// Integer (or float, widened) at `index` is `>= min`.
    AtLeast {
        /// Value index within a tuple.
        index: usize,
        /// Inclusive lower bound.
        min: i64,
    },
    /// Integer (or float, widened) at `index` is `<= max`.
    AtMost {
        /// Value index within a tuple.
        index: usize,
        /// Inclusive upper bound.
        max: i64,
    },
    /// String at `index` equals `value`.
    StrEq {
        /// Value index within a tuple.
        index: usize,
        /// Expected string.
        value: String,
    },
    /// Both masks must pass.
    And(Box<Mask>, Box<Mask>),
    /// Either mask must pass.
    Or(Box<Mask>, Box<Mask>),
}

impl Mask {
    /// Whether any parameter tuple satisfies the mask.
    pub fn matches(&self, params: &[ParamTuple]) -> bool {
        params.iter().any(|t| self.matches_tuple(t))
    }

    fn matches_tuple(&self, t: &ParamTuple) -> bool {
        match self {
            Mask::AtLeast { index, min } => t
                .values
                .get(*index)
                .and_then(Value::as_float)
                .is_some_and(|v| v >= *min as f64),
            Mask::AtMost { index, max } => t
                .values
                .get(*index)
                .and_then(Value::as_float)
                .is_some_and(|v| v <= *max as f64),
            Mask::StrEq { index, value } => t
                .values
                .get(*index)
                .and_then(Value::as_str)
                .is_some_and(|s| s == value),
            Mask::And(a, b) => a.matches_tuple(t) && b.matches_tuple(t),
            Mask::Or(a, b) => a.matches_tuple(t) || b.matches_tuple(t),
        }
    }
}

impl fmt::Display for Mask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mask::AtLeast { index, min } => write!(f, "{index} >= {min}"),
            Mask::AtMost { index, max } => write!(f, "{index} <= {max}"),
            Mask::StrEq { index, value } => write!(f, "{index} == {value:?}"),
            Mask::And(a, b) => write!(f, "({a} and {b})"),
            Mask::Or(a, b) => write!(f, "({a} or {b})"),
        }
    }
}

/// Filtering node: forwards occurrences whose parameters pass the mask.
#[derive(Debug)]
pub struct MaskNode {
    mask: Mask,
}

impl MaskNode {
    /// New filter node.
    pub fn new(mask: Mask) -> Self {
        MaskNode { mask }
    }
}

impl<T: EventTime> OperatorNode<T> for MaskNode {
    fn on_child(&mut self, _slot: usize, occ: &Occurrence<T>, sink: &mut Sink<'_, T>) {
        if self.mask.matches(&occ.params) {
            sink.emit(occ.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventId;
    use crate::time::CentralTime;

    fn occ(values: Vec<Value>) -> Occurrence<CentralTime> {
        Occurrence::primitive(EventId(0), CentralTime(1), values)
    }

    fn passes(mask: &Mask, values: Vec<Value>) -> bool {
        let mut node = MaskNode::new(mask.clone());
        let mut em = Vec::new();
        let mut tr = Vec::new();
        {
            let mut sink = Sink::new(EventId(9), &mut em, &mut tr);
            node.on_child(0, &occ(values), &mut sink);
        }
        !em.is_empty()
    }

    #[test]
    fn numeric_bounds() {
        let m = Mask::AtLeast { index: 1, min: 100 };
        assert!(passes(&m, vec!["IBM".into(), 150i64.into()]));
        assert!(passes(&m, vec!["IBM".into(), 100i64.into()]));
        assert!(!passes(&m, vec!["IBM".into(), 99i64.into()]));
        assert!(passes(&m, vec!["IBM".into(), 101.5f64.into()]));
        let m = Mask::AtMost { index: 0, max: 5 };
        assert!(passes(&m, vec![3i64.into()]));
        assert!(!passes(&m, vec![9i64.into()]));
    }

    #[test]
    fn string_equality() {
        let m = Mask::StrEq {
            index: 0,
            value: "root".into(),
        };
        assert!(passes(&m, vec!["root".into()]));
        assert!(!passes(&m, vec!["guest".into()]));
        assert!(!passes(&m, vec![5i64.into()])); // type mismatch
    }

    #[test]
    fn missing_index_fails_closed() {
        let m = Mask::AtLeast { index: 7, min: 0 };
        assert!(!passes(&m, vec![1i64.into()]));
    }

    #[test]
    fn boolean_combinators() {
        let m = Mask::And(
            Box::new(Mask::StrEq {
                index: 0,
                value: "IBM".into(),
            }),
            Box::new(Mask::AtLeast { index: 1, min: 100 }),
        );
        assert!(passes(&m, vec!["IBM".into(), 100i64.into()]));
        assert!(!passes(&m, vec!["IBM".into(), 50i64.into()]));
        assert!(!passes(&m, vec!["T".into(), 150i64.into()]));
        let o = Mask::Or(
            Box::new(Mask::AtMost { index: 0, max: 0 }),
            Box::new(Mask::AtLeast { index: 0, min: 10 }),
        );
        assert!(passes(&o, vec![0i64.into()]));
        assert!(passes(&o, vec![15i64.into()]));
        assert!(!passes(&o, vec![5i64.into()]));
    }

    #[test]
    fn display() {
        let m = Mask::And(
            Box::new(Mask::AtLeast { index: 1, min: 5 }),
            Box::new(Mask::StrEq {
                index: 0,
                value: "x".into(),
            }),
        );
        assert_eq!(m.to_string(), "(1 >= 5 and 0 == \"x\")");
    }
}
