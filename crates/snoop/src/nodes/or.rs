//! Disjunction `E1 ∨ E2`: occurs whenever either constituent occurs, with
//! that constituent's timestamp and parameters. Stateless; parameter
//! contexts do not affect it. Also reused as the forwarding node for
//! pure-alias definitions.

use crate::event::Occurrence;
use crate::nodes::{OperatorNode, Sink};
use crate::time::EventTime;

/// State machine for `E1 ∨ E2` (stateless pass-through).
#[derive(Debug, Default)]
pub struct OrNode;

impl OrNode {
    /// New disjunction node.
    pub fn new() -> Self {
        OrNode
    }
}

impl<T: EventTime> OperatorNode<T> for OrNode {
    fn on_child(&mut self, _slot: usize, occ: &Occurrence<T>, sink: &mut Sink<'_, T>) {
        sink.emit(occ.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventId;
    use crate::time::CentralTime;

    #[test]
    fn forwards_both_slots() {
        let mut node = OrNode::new();
        for slot in [0usize, 1] {
            let mut em = Vec::new();
            let mut tr = Vec::new();
            let occ = Occurrence::bare(EventId(slot as u32), CentralTime(slot as u64));
            {
                let mut sink = Sink::new(EventId(9), &mut em, &mut tr);
                node.on_child(slot, &occ, &mut sink);
            }
            assert_eq!(em.len(), 1);
            assert_eq!(em[0].ty, EventId(9)); // retyped
            assert_eq!(em[0].time, CentralTime(slot as u64));
            assert!(tr.is_empty());
        }
    }

    #[test]
    fn preserves_params() {
        let mut node = OrNode::new();
        let occ = Occurrence::primitive(EventId(1), CentralTime(3), vec![7i64.into()]);
        let mut em = Vec::new();
        let mut tr = Vec::new();
        {
            let mut sink = Sink::new(EventId(9), &mut em, &mut tr);
            node.on_child(0, &occ, &mut sink);
        }
        assert_eq!(em[0].params[0].values[0].as_int(), Some(7));
        // The parameter tuple still records the original source type.
        assert_eq!(em[0].params[0].source, EventId(1));
    }
}
