//! Conjunction `E1 ∧ E2`: both constituents occur, in any order
//! (Section 5.3: `(E1 ∧ E2)(ts) = ∃t1,t2 (E1(t1) ∧ E2(t2))`,
//! `ts = Max(t1, t2)`).
//!
//! Either operand may arrive first, so either side can play the initiator
//! role; the arriving occurrence acts as the terminator against the other
//! side's buffer under the node's parameter context.

use crate::context::Context;
use crate::event::Occurrence;
use crate::nodes::{buffer_initiator, pair_terminator, OperatorNode, Sink};
use crate::time::EventTime;

/// State machine for `E1 ∧ E2`.
#[derive(Debug)]
pub struct AndNode<T: EventTime> {
    ctx: Context,
    left: Vec<Occurrence<T>>,
    right: Vec<Occurrence<T>>,
}

impl<T: EventTime> AndNode<T> {
    /// New conjunction node under `ctx`.
    pub fn new(ctx: Context) -> Self {
        AndNode {
            ctx,
            left: Vec::new(),
            right: Vec::new(),
        }
    }

    #[cfg(test)]
    fn buffered(&self) -> (usize, usize) {
        (self.left.len(), self.right.len())
    }
}

impl<T: EventTime> OperatorNode<T> for AndNode<T> {
    fn on_child(&mut self, slot: usize, occ: &Occurrence<T>, sink: &mut Sink<'_, T>) {
        debug_assert!(slot < 2, "AND has two operands");
        let (own, other) = if slot == 0 {
            (&mut self.left, &mut self.right)
        } else {
            (&mut self.right, &mut self.left)
        };
        let other_had = !other.is_empty();
        // The arriving occurrence terminates against the other side's
        // buffer; conjunction imposes no temporal constraint.
        pair_terminator(self.ctx, other, occ, sink, |_| true);
        // Whether the arrival is also buffered as a future initiator
        // depends on the context's consumption discipline.
        match self.ctx {
            // Everything stays available for later pairings.
            Context::Unrestricted | Context::Recent => buffer_initiator(self.ctx, own, occ),
            // Consuming contexts: the arrival is consumed if it detected
            // something; otherwise it waits as an initiator.
            Context::Chronicle | Context::Continuous | Context::Cumulative => {
                if !other_had {
                    buffer_initiator(self.ctx, own, occ);
                }
            }
        }
    }

    // No `on_watermark` override: conjunction imposes no temporal
    // constraint, so every buffered occurrence pairs with every future
    // arrival on the other side — the watermark can never prove one dead.
    // (`Recent` is bounded at one per side; the consuming contexts drain
    // one side whenever the other arrives.)

    fn buffered_len(&self) -> usize {
        self.left.len() + self.right.len()
    }

    /// Encoding: `occs[0]` = left buffer, `occs[1]` = right buffer.
    fn save_state(&self) -> crate::state::NodeState<T> {
        crate::state::NodeState {
            occs: vec![self.left.clone(), self.right.clone()],
            ..crate::state::NodeState::empty()
        }
    }

    fn restore_state(&mut self, state: crate::state::NodeState<T>) -> crate::error::Result<()> {
        let crate::state::NodeState {
            nums,
            mut occs,
            times,
        } = state;
        if !nums.is_empty() || !times.is_empty() || occs.len() != 2 {
            return Err(crate::state::shape_err("AND"));
        }
        self.right = occs.remove(1);
        self.left = occs.remove(0);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventId;
    use crate::time::CentralTime;

    fn occ(ty: u32, t: u64) -> Occurrence<CentralTime> {
        // Carry the tick as a parameter so tests can identify which
        // constituent was paired.
        Occurrence::primitive(EventId(ty), CentralTime(t), vec![(t as i64).into()])
    }

    fn run(
        ctx: Context,
        feeds: &[(usize, u64)],
    ) -> (Vec<Occurrence<CentralTime>>, AndNode<CentralTime>) {
        let mut node = AndNode::new(ctx);
        let mut all = Vec::new();
        for &(slot, t) in feeds {
            let mut em = Vec::new();
            let mut tr = Vec::new();
            {
                let mut sink = Sink::new(EventId(99), &mut em, &mut tr);
                node.on_child(slot, &occ(slot as u32, t), &mut sink);
            }
            all.extend(em);
        }
        (all, node)
    }

    #[test]
    fn detects_in_either_order() {
        let (d1, _) = run(Context::Chronicle, &[(0, 1), (1, 2)]);
        assert_eq!(d1.len(), 1);
        assert_eq!(d1[0].time, CentralTime(2));
        let (d2, _) = run(Context::Chronicle, &[(1, 1), (0, 2)]);
        assert_eq!(d2.len(), 1);
        assert_eq!(d2[0].time, CentralTime(2));
    }

    #[test]
    fn unrestricted_all_combinations() {
        // A@1, A@2, B@3 → two detections; B@4 → two more.
        let (d, _) = run(Context::Unrestricted, &[(0, 1), (0, 2), (1, 3), (1, 4)]);
        assert_eq!(d.len(), 4);
    }

    #[test]
    fn recent_pairs_latest_only() {
        let (d, _) = run(Context::Recent, &[(0, 1), (0, 2), (1, 3)]);
        assert_eq!(d.len(), 1);
        // Pairs with A@2 (the most recent left initiator).
        assert_eq!(d[0].params[0].source, EventId(0));
        assert_eq!(d[0].time, CentralTime(3));
        // Recent initiators are not consumed: another B pairs again.
        let (d2, _) = run(Context::Recent, &[(0, 1), (0, 2), (1, 3), (1, 4)]);
        assert_eq!(d2.len(), 2);
    }

    #[test]
    fn chronicle_fifo_consumption() {
        let (d, _) = run(Context::Chronicle, &[(0, 1), (0, 2), (1, 3), (1, 4)]);
        assert_eq!(d.len(), 2);
        // First B pairs with A@1, second with A@2 (FIFO).
        assert_eq!(d[0].params[0].values[0].as_int(), Some(1));
        assert_eq!(d[1].params[0].values[0].as_int(), Some(2));
    }

    #[test]
    fn continuous_consumes_all_initiators() {
        let (d, node) = run(Context::Continuous, &[(0, 1), (0, 2), (1, 3)]);
        assert_eq!(d.len(), 2);
        assert_eq!(node.buffered(), (0, 0));
        // A later B finds nothing.
        let (d2, _) = run(Context::Continuous, &[(0, 1), (0, 2), (1, 3), (1, 4)]);
        assert_eq!(d2.len(), 2);
    }

    #[test]
    fn cumulative_merges_everything() {
        let (d, node) = run(Context::Cumulative, &[(0, 1), (0, 2), (1, 3)]);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].params.len(), 3);
        assert_eq!(node.buffered(), (0, 0));
    }

    #[test]
    fn terminator_waits_when_other_side_empty() {
        let (d, node) = run(Context::Chronicle, &[(1, 5)]);
        assert!(d.is_empty());
        assert_eq!(node.buffered(), (0, 1));
    }
}
