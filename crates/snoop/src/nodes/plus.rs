//! The offset operator `E + t`: signalled `delta` ticks after each
//! occurrence of `E`, carrying `E`'s parameters. Like the periodic
//! operators, the node registers a timer and the driver supplies the fire
//! timestamp.

use crate::event::Occurrence;
use crate::nodes::{OperatorNode, Sink};
use crate::time::EventTime;
use std::collections::HashMap;

/// State machine for `E + t`.
#[derive(Debug)]
pub struct PlusNode<T: EventTime> {
    delta: u64,
    pending: HashMap<u64, Occurrence<T>>,
    next_tag: u64,
}

impl<T: EventTime> PlusNode<T> {
    /// New offset node with delay `delta` ticks.
    pub fn new(delta: u64) -> Self {
        PlusNode {
            delta,
            pending: HashMap::new(),
            next_tag: 0,
        }
    }

    /// Number of armed offsets (tests/metrics).
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }
}

impl<T: EventTime> OperatorNode<T> for PlusNode<T> {
    fn on_child(&mut self, _slot: usize, occ: &Occurrence<T>, sink: &mut Sink<'_, T>) {
        let tag = self.next_tag;
        self.next_tag += 1;
        self.pending.insert(tag, occ.clone());
        sink.request_timer(tag, self.delta);
    }

    fn on_timer(&mut self, tag: u64, time: &T, sink: &mut Sink<'_, T>) {
        if let Some(base) = self.pending.remove(&tag) {
            sink.emit(Occurrence::with_params(base.ty, time.clone(), base.params));
        }
    }

    // No `on_watermark` override: each armed offset is consumed by exactly
    // one timer fire that is already scheduled — nothing is ever stranded.

    fn buffered_len(&self) -> usize {
        self.pending.len()
    }

    fn min_timer_delay(&self) -> Option<u64> {
        Some(self.delta)
    }

    /// Encoding: `nums` = `[next_tag, tag_0, tag_1, …]` (tags sorted);
    /// `occs[i]` = `[pending[tag_i]]`.
    fn save_state(&self) -> crate::state::NodeState<T> {
        let mut tags: Vec<u64> = self.pending.keys().copied().collect();
        tags.sort_unstable();
        crate::state::NodeState {
            occs: tags.iter().map(|t| vec![self.pending[t].clone()]).collect(),
            nums: std::iter::once(self.next_tag).chain(tags).collect(),
            times: Vec::new(),
        }
    }

    fn restore_state(&mut self, state: crate::state::NodeState<T>) -> crate::error::Result<()> {
        let crate::state::NodeState { nums, occs, times } = state;
        if !times.is_empty() || nums.len() != 1 + occs.len() || occs.iter().any(|g| g.len() != 1) {
            return Err(crate::state::shape_err("PLUS"));
        }
        self.next_tag = nums[0];
        self.pending = nums[1..]
            .iter()
            .copied()
            .zip(occs.into_iter().map(|mut g| g.remove(0)))
            .collect();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventId;
    use crate::time::CentralTime;

    #[test]
    fn arms_and_fires_once() {
        let mut node: PlusNode<CentralTime> = PlusNode::new(5);
        let mut em = Vec::new();
        let mut tr = Vec::new();
        let base = Occurrence::primitive(EventId(0), CentralTime(10), vec![42i64.into()]);
        {
            let mut sink = Sink::new(EventId(9), &mut em, &mut tr);
            node.on_child(0, &base, &mut sink);
        }
        assert_eq!(tr, vec![(0, 5)]);
        assert_eq!(node.pending_count(), 1);
        {
            let mut sink = Sink::new(EventId(9), &mut em, &mut tr);
            node.on_timer(0, &CentralTime(15), &mut sink);
        }
        assert_eq!(em.len(), 1);
        assert_eq!(em[0].time, CentralTime(15));
        assert_eq!(em[0].params[0].values[0].as_int(), Some(42));
        assert_eq!(node.pending_count(), 0);
        // Duplicate fire: no-op.
        {
            let mut sink = Sink::new(EventId(9), &mut em, &mut tr);
            node.on_timer(0, &CentralTime(20), &mut sink);
        }
        assert_eq!(em.len(), 1);
    }

    #[test]
    fn each_occurrence_gets_its_own_timer() {
        let mut node: PlusNode<CentralTime> = PlusNode::new(5);
        let mut em = Vec::new();
        let mut tr = Vec::new();
        {
            let mut sink = Sink::new(EventId(9), &mut em, &mut tr);
            node.on_child(0, &Occurrence::bare(EventId(0), CentralTime(1)), &mut sink);
            node.on_child(0, &Occurrence::bare(EventId(0), CentralTime(2)), &mut sink);
        }
        assert_eq!(tr.len(), 2);
        assert_ne!(tr[0].0, tr[1].0);
    }
}
