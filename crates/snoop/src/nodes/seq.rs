//! Sequence `E1 ; E2`: `E1` strictly happens-before `E2`
//! (Section 5.3: `(E1;E2)(ts) = ∃t1,t2 (E1(t1) ∧ E2(t2) ∧ t1 < t2)`,
//! `ts = Max(t1, t2)`).
//!
//! In the distributed time domain the `t1 < t2` test is the partial order
//! `<_p` — a left occurrence merely *concurrent* with the right one does
//! **not** satisfy the sequence, which is precisely the semantic refinement
//! the paper's ordering provides.

use crate::context::Context;
use crate::event::Occurrence;
use crate::nodes::{BandedBuffer, OperatorNode, Sink};
use crate::time::EventTime;

/// State machine for `E1 ; E2`.
///
/// Initiators live in a [`BandedBuffer`] sorted by the cached max-global
/// bound: a terminator binary-searches the band-separated
/// "certainly-before" prefix and only runs full `<_p` relation checks on
/// the initiators inside the `2g_g` uncertainty band. Behaviorally
/// identical to the linear scan (the oracle in `tests/prop_fastpath.rs`).
#[derive(Debug)]
pub struct SeqNode<T: EventTime> {
    ctx: Context,
    inits: BandedBuffer<T>,
}

impl<T: EventTime> SeqNode<T> {
    /// New sequence node under `ctx`.
    pub fn new(ctx: Context) -> Self {
        SeqNode {
            ctx,
            inits: BandedBuffer::default(),
        }
    }

    /// Number of buffered initiators (tests/metrics).
    pub fn buffered(&self) -> usize {
        self.inits.len()
    }
}

impl<T: EventTime> OperatorNode<T> for SeqNode<T> {
    fn on_child(&mut self, slot: usize, occ: &Occurrence<T>, sink: &mut Sink<'_, T>) {
        match slot {
            0 => self.inits.insert(self.ctx, occ),
            1 => self.inits.terminate_before(self.ctx, occ, sink),
            _ => debug_assert!(false, "SEQ has two operands"),
        }
    }

    // No `on_watermark` override: a buffered initiator matches every
    // *later* terminator, and aging only moves future terminators further
    // past it — `t1 < t2` can only become true over time, never false. The
    // watermark therefore cannot prove an initiator dead.

    fn buffered_len(&self) -> usize {
        self.inits.len()
    }

    /// Encoding: `occs[0]` = buffered initiators in arrival order.
    fn save_state(&self) -> crate::state::NodeState<T> {
        crate::state::NodeState {
            occs: vec![self.inits.save_occs()],
            ..crate::state::NodeState::empty()
        }
    }

    fn restore_state(&mut self, state: crate::state::NodeState<T>) -> crate::error::Result<()> {
        let crate::state::NodeState {
            nums,
            mut occs,
            times,
        } = state;
        if !nums.is_empty() || !times.is_empty() || occs.len() != 1 {
            return Err(crate::state::shape_err("SEQ"));
        }
        self.inits.restore_occs(self.ctx, occs.remove(0));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventId;
    use crate::time::CentralTime;
    use decs_core::{cts, CompositeTimestamp};

    fn occ(t: u64) -> Occurrence<CentralTime> {
        Occurrence::primitive(EventId(0), CentralTime(t), vec![(t as i64).into()])
    }

    fn run(ctx: Context, feeds: &[(usize, u64)]) -> Vec<Occurrence<CentralTime>> {
        let mut node = SeqNode::new(ctx);
        let mut all = Vec::new();
        for &(slot, t) in feeds {
            let mut em = Vec::new();
            let mut tr = Vec::new();
            {
                let mut sink = Sink::new(EventId(9), &mut em, &mut tr);
                node.on_child(slot, &occ(t), &mut sink);
            }
            all.extend(em);
        }
        all
    }

    #[test]
    fn requires_strict_order() {
        // Terminator at the same tick as the initiator does not match.
        assert!(run(Context::Unrestricted, &[(0, 5), (1, 5)]).is_empty());
        let d = run(Context::Unrestricted, &[(0, 5), (1, 6)]);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].time, CentralTime(6));
    }

    #[test]
    fn terminator_before_initiator_never_matches() {
        assert!(run(Context::Unrestricted, &[(1, 6), (0, 5)]).is_empty());
        // …and the late initiator stays buffered for a future terminator.
        let d = run(Context::Unrestricted, &[(1, 6), (0, 5), (1, 7)]);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn contexts() {
        let feeds = [(0usize, 1u64), (0, 2), (1, 3), (1, 4)];
        assert_eq!(run(Context::Unrestricted, &feeds).len(), 4);
        assert_eq!(run(Context::Recent, &feeds).len(), 2); // A@2 with each B
        assert_eq!(run(Context::Chronicle, &feeds).len(), 2); // 1-3, 2-4
        assert_eq!(run(Context::Continuous, &feeds).len(), 2); // both at B@3
        let cum = run(Context::Cumulative, &feeds);
        assert_eq!(cum.len(), 1);
        assert_eq!(cum[0].params.len(), 3);
    }

    #[test]
    fn chronicle_is_fifo() {
        let d = run(Context::Chronicle, &[(0, 1), (0, 2), (1, 3), (1, 4)]);
        assert_eq!(d[0].params[0].values[0].as_int(), Some(1));
        assert_eq!(d[1].params[0].values[0].as_int(), Some(2));
    }

    #[test]
    fn distributed_concurrent_pair_is_not_a_sequence() {
        // {(s1,8,80)} and {(s2,8,82)} are concurrent: no SEQ detection —
        // the heart of the paper's distributed refinement.
        let mut node: SeqNode<CompositeTimestamp> = SeqNode::new(Context::Unrestricted);
        let a = Occurrence::bare(EventId(0), cts(&[(1, 8, 80)]));
        let b = Occurrence::bare(EventId(1), cts(&[(2, 8, 82)]));
        let mut em = Vec::new();
        let mut tr = Vec::new();
        {
            let mut sink = Sink::new(EventId(9), &mut em, &mut tr);
            node.on_child(0, &a, &mut sink);
            node.on_child(1, &b, &mut sink);
        }
        assert!(em.is_empty());
        // A clearly-later terminator does match, and its time is the Max.
        let c = Occurrence::bare(EventId(1), cts(&[(2, 10, 100)]));
        {
            let mut sink = Sink::new(EventId(9), &mut em, &mut tr);
            node.on_child(1, &c, &mut sink);
        }
        assert_eq!(em.len(), 1);
        assert_eq!(em[0].time, cts(&[(2, 10, 100)]));
    }

    #[test]
    fn buffered_count() {
        let mut node: SeqNode<CentralTime> = SeqNode::new(Context::Chronicle);
        let mut em = Vec::new();
        let mut tr = Vec::new();
        {
            let mut sink = Sink::new(EventId(9), &mut em, &mut tr);
            node.on_child(0, &occ(1), &mut sink);
            node.on_child(0, &occ(2), &mut sink);
        }
        assert_eq!(node.buffered(), 2);
    }
}
