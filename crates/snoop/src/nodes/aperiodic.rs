//! Aperiodic operators `A(E1, E2, E3)` and `A*(E1, E2, E3)`.
//!
//! * `A` (non-cumulative) is signalled **for each** occurrence of `E2`
//!   inside a window opened by `E1` and not yet closed by `E3`
//!   (Section 5.3), with timestamp `Max(t1, t2)`.
//! * `A*` (cumulative) accumulates the `E2` occurrences of the window and
//!   is signalled **once** when `E3` closes it, with every accumulated
//!   parameter tuple and timestamp `Max` over all constituents. Windows
//!   with no `E2` occurrence still signal at `E3` (with the opener's and
//!   closer's parameters only); rules that require at least one `E2` can
//!   test the parameter count.

use crate::context::Context;
use crate::event::Occurrence;
use crate::nodes::{buffer_initiator, OperatorNode, Sink};
use crate::time::EventTime;

/// Operand slot of the window opener (`E1`).
pub const SLOT_OPENER: usize = 0;
/// Operand slot of the monitored event (`E2`).
pub const SLOT_MID: usize = 1;
/// Operand slot of the window closer (`E3`).
pub const SLOT_CLOSER: usize = 2;

/// State machine for the non-cumulative `A(E1, E2, E3)`.
#[derive(Debug)]
pub struct ANode<T: EventTime> {
    ctx: Context,
    openers: Vec<Occurrence<T>>,
}

impl<T: EventTime> ANode<T> {
    /// New aperiodic node under `ctx`.
    pub fn new(ctx: Context) -> Self {
        ANode {
            ctx,
            openers: Vec::new(),
        }
    }
}

impl<T: EventTime> OperatorNode<T> for ANode<T> {
    fn on_child(&mut self, slot: usize, occ: &Occurrence<T>, sink: &mut Sink<'_, T>) {
        match slot {
            SLOT_OPENER => buffer_initiator(self.ctx, &mut self.openers, occ),
            SLOT_MID => {
                let t2 = &occ.time;
                match self.ctx {
                    Context::Recent => {
                        if let Some(op) = self.openers.first() {
                            if op.time.before(t2) {
                                sink.emit_pair(op, occ);
                            }
                        }
                    }
                    Context::Chronicle => {
                        if let Some(op) = self.openers.iter().find(|op| op.time.before(t2)) {
                            sink.emit_pair(op, occ);
                        }
                    }
                    // Unrestricted / Continuous / Cumulative: every open
                    // window signals (A's per-E2 semantics; consumption
                    // happens at the closer).
                    _ => {
                        for op in self.openers.iter().filter(|op| op.time.before(t2)) {
                            sink.emit_pair(op, occ);
                        }
                    }
                }
            }
            SLOT_CLOSER => {
                // E3 closes (consumes) every window it terminates; no
                // detection is signalled by A at the closer itself.
                let t3 = occ.time.clone();
                self.openers.retain(|op| !op.time.before(&t3));
            }
            _ => debug_assert!(false, "A has three operands"),
        }
    }

    // No `on_watermark` override: an open window matches every future mid
    // occurrence (strictly-after only becomes easier with age), and the
    // closer arm already consumes terminated windows eagerly — so every
    // buffered opener is live.

    fn buffered_len(&self) -> usize {
        self.openers.len()
    }

    /// Encoding: `occs[0]` = open-window openers.
    fn save_state(&self) -> crate::state::NodeState<T> {
        crate::state::NodeState {
            occs: vec![self.openers.clone()],
            ..crate::state::NodeState::empty()
        }
    }

    fn restore_state(&mut self, state: crate::state::NodeState<T>) -> crate::error::Result<()> {
        let crate::state::NodeState {
            nums,
            mut occs,
            times,
        } = state;
        if !nums.is_empty() || !times.is_empty() || occs.len() != 1 {
            return Err(crate::state::shape_err("A"));
        }
        self.openers = occs.remove(0);
        Ok(())
    }
}

/// One open window of `A*`.
#[derive(Debug)]
struct StarWindow<T: EventTime> {
    opener: Occurrence<T>,
    mids: Vec<Occurrence<T>>,
}

/// State machine for the cumulative `A*(E1, E2, E3)`.
#[derive(Debug)]
pub struct AStarNode<T: EventTime> {
    ctx: Context,
    windows: Vec<StarWindow<T>>,
}

impl<T: EventTime> AStarNode<T> {
    /// New cumulative aperiodic node under `ctx`.
    pub fn new(ctx: Context) -> Self {
        AStarNode {
            ctx,
            windows: Vec::new(),
        }
    }

    /// Number of open windows (tests/metrics).
    pub fn open_windows(&self) -> usize {
        self.windows.len()
    }
}

impl<T: EventTime> OperatorNode<T> for AStarNode<T> {
    fn on_child(&mut self, slot: usize, occ: &Occurrence<T>, sink: &mut Sink<'_, T>) {
        match slot {
            SLOT_OPENER => match self.ctx {
                Context::Recent => {
                    // Keep only the latest window.
                    if self
                        .windows
                        .first()
                        .is_none_or(|w| !occ.time.before(&w.opener.time))
                    {
                        self.windows.clear();
                        self.windows.push(StarWindow {
                            opener: occ.clone(),
                            mids: Vec::new(),
                        });
                    }
                }
                _ => self.windows.push(StarWindow {
                    opener: occ.clone(),
                    mids: Vec::new(),
                }),
            },
            SLOT_MID => {
                for w in self
                    .windows
                    .iter_mut()
                    .filter(|w| w.opener.time.before(&occ.time))
                {
                    w.mids.push(occ.clone());
                }
            }
            SLOT_CLOSER => {
                let t3 = occ.time.clone();
                let (closed, open): (Vec<_>, Vec<_>) = self
                    .windows
                    .drain(..)
                    .partition(|w| w.opener.time.before(&t3));
                self.windows = open;
                match self.ctx {
                    Context::Cumulative => {
                        // One merged detection across all closed windows.
                        if !closed.is_empty() {
                            let mut parts: Vec<&Occurrence<T>> = Vec::new();
                            for w in &closed {
                                parts.push(&w.opener);
                                parts.extend(w.mids.iter());
                            }
                            parts.push(occ);
                            sink.emit_all(&parts);
                        }
                    }
                    Context::Chronicle => {
                        if let Some(w) = closed.first() {
                            let mut parts: Vec<&Occurrence<T>> = vec![&w.opener];
                            parts.extend(w.mids.iter());
                            parts.push(occ);
                            sink.emit_all(&parts);
                        }
                        // Later windows are discarded with the closer in
                        // chronicle (consumed unpaired).
                    }
                    _ => {
                        // Unrestricted / Recent / Continuous: one detection
                        // per closed window.
                        for w in &closed {
                            let mut parts: Vec<&Occurrence<T>> = vec![&w.opener];
                            parts.extend(w.mids.iter());
                            parts.push(occ);
                            sink.emit_all(&parts);
                        }
                    }
                }
            }
            _ => debug_assert!(false, "A* has three operands"),
        }
    }

    // No `on_watermark` override: open windows accumulate until a closer
    // consumes them (the closer arm drains every terminated window), and
    // accumulated mids are needed at close time — nothing buffered here is
    // ever provably dead before the closer arrives.

    fn buffered_len(&self) -> usize {
        self.windows.iter().map(|w| 1 + w.mids.len()).sum()
    }

    /// Encoding: one `occs` group per open window, `[opener, mids...]`
    /// (every group is non-empty by construction).
    fn save_state(&self) -> crate::state::NodeState<T> {
        crate::state::NodeState {
            occs: self
                .windows
                .iter()
                .map(|w| {
                    std::iter::once(w.opener.clone())
                        .chain(w.mids.iter().cloned())
                        .collect()
                })
                .collect(),
            ..crate::state::NodeState::empty()
        }
    }

    fn restore_state(&mut self, state: crate::state::NodeState<T>) -> crate::error::Result<()> {
        let crate::state::NodeState { nums, occs, times } = state;
        if !nums.is_empty() || !times.is_empty() || occs.iter().any(Vec::is_empty) {
            return Err(crate::state::shape_err("A*"));
        }
        self.windows = occs
            .into_iter()
            .map(|mut group| {
                let mids = group.split_off(1);
                StarWindow {
                    opener: group.remove(0),
                    mids,
                }
            })
            .collect();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventId;
    use crate::time::CentralTime;

    fn occ(slot: usize, t: u64) -> Occurrence<CentralTime> {
        Occurrence::primitive(
            EventId(slot as u32),
            CentralTime(t),
            vec![(t as i64).into()],
        )
    }

    fn run_a(ctx: Context, feeds: &[(usize, u64)]) -> Vec<Occurrence<CentralTime>> {
        let mut node = ANode::new(ctx);
        let mut all = Vec::new();
        for &(slot, t) in feeds {
            let mut em = Vec::new();
            let mut tr = Vec::new();
            {
                let mut sink = Sink::new(EventId(9), &mut em, &mut tr);
                node.on_child(slot, &occ(slot, t), &mut sink);
            }
            all.extend(em);
        }
        all
    }

    fn run_star(ctx: Context, feeds: &[(usize, u64)]) -> Vec<Occurrence<CentralTime>> {
        let mut node = AStarNode::new(ctx);
        let mut all = Vec::new();
        for &(slot, t) in feeds {
            let mut em = Vec::new();
            let mut tr = Vec::new();
            {
                let mut sink = Sink::new(EventId(9), &mut em, &mut tr);
                node.on_child(slot, &occ(slot, t), &mut sink);
            }
            all.extend(em);
        }
        all
    }

    #[test]
    fn a_signals_per_mid_event() {
        let d = run_a(
            Context::Unrestricted,
            &[
                (SLOT_OPENER, 1),
                (SLOT_MID, 2),
                (SLOT_MID, 3),
                (SLOT_CLOSER, 4),
                (SLOT_MID, 5), // window closed: no signal
            ],
        );
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].time, CentralTime(2));
        assert_eq!(d[1].time, CentralTime(3));
    }

    #[test]
    fn a_requires_open_window() {
        assert!(run_a(Context::Unrestricted, &[(SLOT_MID, 2)]).is_empty());
        // Mid at the same tick as the opener is not strictly after it.
        assert!(run_a(Context::Unrestricted, &[(SLOT_OPENER, 2), (SLOT_MID, 2)]).is_empty());
    }

    #[test]
    fn a_multiple_windows_unrestricted() {
        let d = run_a(
            Context::Unrestricted,
            &[(SLOT_OPENER, 1), (SLOT_OPENER, 2), (SLOT_MID, 3)],
        );
        assert_eq!(d.len(), 2); // one per open window
    }

    #[test]
    fn a_recent_latest_window_only() {
        let d = run_a(
            Context::Recent,
            &[(SLOT_OPENER, 1), (SLOT_OPENER, 2), (SLOT_MID, 3)],
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].params[0].values[0].as_int(), Some(2));
    }

    #[test]
    fn a_chronicle_oldest_window() {
        let d = run_a(
            Context::Chronicle,
            &[(SLOT_OPENER, 1), (SLOT_OPENER, 2), (SLOT_MID, 3)],
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].params[0].values[0].as_int(), Some(1));
    }

    #[test]
    fn star_accumulates_and_fires_at_closer() {
        let d = run_star(
            Context::Continuous,
            &[
                (SLOT_OPENER, 1),
                (SLOT_MID, 2),
                (SLOT_MID, 3),
                (SLOT_CLOSER, 4),
            ],
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].time, CentralTime(4));
        // opener + two mids + closer
        assert_eq!(d[0].params.len(), 4);
    }

    #[test]
    fn star_empty_window_still_fires() {
        let d = run_star(Context::Continuous, &[(SLOT_OPENER, 1), (SLOT_CLOSER, 4)]);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].params.len(), 2); // opener + closer only
    }

    #[test]
    fn star_cumulative_merges_windows() {
        let d = run_star(
            Context::Cumulative,
            &[
                (SLOT_OPENER, 1),
                (SLOT_MID, 2),
                (SLOT_OPENER, 3),
                (SLOT_MID, 4),
                (SLOT_CLOSER, 5),
            ],
        );
        assert_eq!(d.len(), 1);
        // w1: opener@1 + mids@2,@4; w2: opener@3 + mid@4; closer once.
        // parts: opener1, mid2, mid4, opener3, mid4, closer = 6
        assert_eq!(d[0].params.len(), 6);
    }

    #[test]
    fn star_windows_consumed() {
        let mut node: AStarNode<CentralTime> = AStarNode::new(Context::Continuous);
        let mut em = Vec::new();
        let mut tr = Vec::new();
        {
            let mut sink = Sink::new(EventId(9), &mut em, &mut tr);
            node.on_child(SLOT_OPENER, &occ(SLOT_OPENER, 1), &mut sink);
            node.on_child(SLOT_CLOSER, &occ(SLOT_CLOSER, 2), &mut sink);
        }
        assert_eq!(node.open_windows(), 0);
        // A second closer produces nothing.
        {
            let mut sink = Sink::new(EventId(9), &mut em, &mut tr);
            node.on_child(SLOT_CLOSER, &occ(SLOT_CLOSER, 3), &mut sink);
        }
        assert_eq!(em.len(), 1);
    }
}
