//! Definition-sharded detection.
//!
//! [`ShardedDetector`] splits the event graph **by composite definition**:
//! every `define` call compiles into its own independent [`EventGraph`]
//! (a *shard*) that subscribes only to the event types its expression
//! actually references. Feeding an occurrence routes it to exactly the
//! shards subscribed to its type; the detections of one routing round are
//! merged back in the canonical `(composite-timestamp, definition-id)`
//! order before they re-enter the cascade (a named composite used inside a
//! later definition feeds that definition's shard).
//!
//! The canonical merge makes runs bit-for-bit deterministic regardless of
//! how shards are executed, which is what allows the optional parallel
//! batch path (`parallel` feature): when no definition references another
//! named composite, [`ShardedDetector::feed_batch`] fans a whole batch out
//! to all shards on scoped threads and merges per-trigger, producing
//! exactly the sequence the serial path produces.

use crate::context::Context;
use crate::error::Result;
use crate::event::{Catalog, EventId, Occurrence};
use crate::expr::EventExpr;
use crate::graph::{EventGraph, TimerId, TimerRequest};
use crate::time::EventTime;
use std::collections::{BTreeSet, HashMap, VecDeque};

/// Index of a shard (one per composite definition, in `define` order).
pub type ShardId = usize;

/// Everything one sharded feed/fire step produced.
#[derive(Debug, Clone)]
pub struct ShardFeedResult<T> {
    /// Occurrences of named composite events, in canonical merge order.
    pub detected: Vec<Occurrence<T>>,
    /// New timer requests, tagged with the shard that owns the timer id
    /// (timer ids are only unique within a shard).
    pub timers: Vec<(ShardId, TimerRequest)>,
}

impl<T> Default for ShardFeedResult<T> {
    fn default() -> Self {
        ShardFeedResult {
            detected: Vec::new(),
            timers: Vec::new(),
        }
    }
}

#[derive(Debug)]
struct Shard<T: EventTime> {
    graph: EventGraph<T>,
    /// The named composite event this shard defines.
    emits: EventId,
    /// Event types that can make this shard react.
    subscribed: BTreeSet<EventId>,
}

/// A catalog plus one [`EventGraph`] per composite definition, with a
/// subscription index routing occurrences to the shards that care.
///
/// Drop-in replacement for [`crate::Detector`] where the caller services
/// timers itself; the only API difference is that timer handles are
/// `(ShardId, TimerId)` pairs and feed results carry the shard tag.
#[derive(Debug, Default)]
pub struct ShardedDetector<T: EventTime> {
    catalog: Catalog,
    shards: Vec<Shard<T>>,
    /// Event type → shards subscribed to it, ascending.
    routes: HashMap<EventId, Vec<ShardId>>,
}

impl<T: EventTime> ShardedDetector<T> {
    /// An empty detector.
    pub fn new() -> Self {
        ShardedDetector {
            catalog: Catalog::new(),
            shards: Vec::new(),
            routes: HashMap::new(),
        }
    }

    /// Register a primitive event type.
    pub fn register(&mut self, name: &str) -> Result<EventId> {
        self.catalog.register(name)
    }

    /// Define a named composite event in a fresh shard of its own.
    pub fn define(&mut self, name: &str, expr: &EventExpr, ctx: Context) -> Result<EventId> {
        let mut graph = EventGraph::new();
        let emits = graph.compile(&mut self.catalog, name, expr, ctx)?;
        let subscribed: BTreeSet<EventId> = graph.subscribed_types().collect();
        let shard = self.shards.len();
        for &ty in &subscribed {
            self.routes.entry(ty).or_default().push(shard);
        }
        self.shards.push(Shard {
            graph,
            emits,
            subscribed,
        });
        Ok(emits)
    }

    /// The catalog (name ↔ id mapping).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Number of definition shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Event types shard `shard` subscribes to, ascending (diagnostics).
    pub fn shard_subscriptions(&self, shard: ShardId) -> impl Iterator<Item = EventId> + '_ {
        self.shards[shard].subscribed.iter().copied()
    }

    /// Total outstanding timers across all shards.
    pub fn pending_timer_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.graph.pending_timer_count())
            .sum()
    }

    /// Advance the low watermark across every shard (see
    /// [`EventGraph::advance_watermark`]): the caller promises every future
    /// stamp's global ticks are `≥ low`. Returns the evicted count.
    pub fn advance_watermark(&mut self, low: u64) -> u64 {
        self.shards
            .iter_mut()
            .map(|s| s.graph.advance_watermark(low))
            .sum()
    }

    /// Total occurrences buffered across all shards' operator nodes.
    pub fn buffered_occupancy(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.graph.buffered_occupancy())
            .sum()
    }

    /// Whether some definition references another definition's named event
    /// (forcing batch feeds onto the serial cascade path).
    pub fn has_cross_shard_routes(&self) -> bool {
        self.shards
            .iter()
            .any(|s| self.routes.contains_key(&s.emits))
    }

    /// Feed one occurrence through every subscribed shard, cascading named
    /// detections (in canonical order) into the shards that reference them.
    pub fn feed(&mut self, occ: Occurrence<T>) -> ShardFeedResult<T> {
        let mut out = ShardFeedResult::default();
        self.pump(VecDeque::from([occ]), &mut out);
        out
    }

    /// Deliver a previously requested timer on the shard that owns it.
    pub fn fire_timer(
        &mut self,
        shard: ShardId,
        id: TimerId,
        time: T,
    ) -> Result<ShardFeedResult<T>> {
        let r = self.shards[shard].graph.fire_timer(id, time)?;
        let mut out = ShardFeedResult::default();
        let mut queue = VecDeque::new();
        out.timers.extend(r.timers.into_iter().map(|t| (shard, t)));
        let mut round = r.detected;
        sort_canonical(&mut round);
        for d in round {
            queue.push_back(d.clone());
            out.detected.push(d);
        }
        self.pump(queue, &mut out);
        Ok(out)
    }

    /// Feed a whole batch. Semantically identical to feeding each
    /// occurrence in order; with the `parallel` feature (and no cross-shard
    /// references) the shards run on scoped threads and the per-trigger
    /// merge reproduces the serial output exactly.
    pub fn feed_batch(&mut self, occs: Vec<Occurrence<T>>) -> ShardFeedResult<T> {
        #[cfg(feature = "parallel")]
        if !self.has_cross_shard_routes() && self.shards.len() > 1 {
            return self.feed_batch_parallel(occs);
        }
        let mut out = ShardFeedResult::default();
        for occ in occs {
            self.pump(VecDeque::from([occ]), &mut out);
        }
        out
    }

    /// BFS cascade: route each queued occurrence to its subscribed shards
    /// (ascending), canonically merge the round's detections, and requeue
    /// them so cross-definition references see named composites.
    fn pump(&mut self, mut queue: VecDeque<Occurrence<T>>, out: &mut ShardFeedResult<T>) {
        while let Some(occ) = queue.pop_front() {
            let Some(shards) = self.routes.get(&occ.ty) else {
                continue;
            };
            let mut round = Vec::new();
            for s in shards.clone() {
                let r = self.shards[s].graph.feed(occ.clone());
                out.timers.extend(r.timers.into_iter().map(|t| (s, t)));
                round.extend(r.detected);
            }
            sort_canonical(&mut round);
            for d in round {
                queue.push_back(d.clone());
                out.detected.push(d);
            }
        }
    }

    #[cfg(feature = "parallel")]
    fn feed_batch_parallel(&mut self, occs: Vec<Occurrence<T>>) -> ShardFeedResult<T> {
        let occs = &occs;
        // One scoped thread per shard, each feeding the subsequence of the
        // batch its shard subscribes to, keyed by trigger index.
        let per_shard: Vec<Vec<(usize, crate::graph::FeedResult<T>)>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .shards
                    .iter_mut()
                    .map(|shard| {
                        scope.spawn(move || {
                            occs.iter()
                                .enumerate()
                                .filter(|(_, o)| shard.subscribed.contains(&o.ty))
                                .map(|(k, o)| (k, shard.graph.feed(o.clone())))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard thread panicked"))
                    .collect()
            });
        // Merge per trigger index, shards ascending — the exact order the
        // serial path visits, then the same canonical round sort.
        let mut out = ShardFeedResult::default();
        let mut next = vec![0usize; per_shard.len()];
        for k in 0..occs.len() {
            let mut round = Vec::new();
            for (s, results) in per_shard.iter().enumerate() {
                if let Some((key, r)) = results.get(next[s]) {
                    if *key == k {
                        next[s] += 1;
                        out.timers.extend(r.timers.iter().map(|t| (s, *t)));
                        round.extend(r.detected.iter().cloned());
                    }
                }
            }
            sort_canonical(&mut round);
            out.detected.extend(round);
        }
        out
    }
}

/// Canonical `(composite-timestamp, definition-id)` order for merging one
/// round of detections. Stable, so equal keys keep shard order.
fn sort_canonical<T: EventTime>(round: &mut [Occurrence<T>]) {
    round.sort_by(|a, b| a.time.canonical_cmp(&b.time).then(a.ty.0.cmp(&b.ty.0)));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::Detector;
    use crate::expr::EventExpr as E;
    use crate::time::CentralTime;

    /// Primitives A/B/C; three defs exercising disjoint and overlapping
    /// subscriptions plus one cross-definition reference.
    fn defs() -> Vec<(&'static str, EventExpr, Context)> {
        vec![
            ("X", E::seq(E::prim("A"), E::prim("B")), Context::Chronicle),
            (
                "Y",
                E::and(E::prim("B"), E::prim("C")),
                Context::Unrestricted,
            ),
            ("Z", E::seq(E::prim("X"), E::prim("C")), Context::Chronicle),
        ]
    }

    fn build_pair() -> (Detector<CentralTime>, ShardedDetector<CentralTime>) {
        let mut mono = Detector::new();
        let mut sharded = ShardedDetector::new();
        for n in ["A", "B", "C"] {
            mono.register(n).unwrap();
            sharded.register(n).unwrap();
        }
        for (name, expr, ctx) in defs() {
            mono.define(name, &expr, ctx).unwrap();
            sharded.define(name, &expr, ctx).unwrap();
        }
        (mono, sharded)
    }

    fn trace() -> Vec<(&'static str, u64)> {
        vec![
            ("A", 1),
            ("B", 2),
            ("C", 3),
            ("B", 4),
            ("A", 5),
            ("C", 6),
            ("B", 7),
            ("C", 8),
        ]
    }

    fn key(cat: &Catalog, o: &Occurrence<CentralTime>) -> (String, u64) {
        (cat.name(o.ty).to_owned(), o.time.get())
    }

    #[test]
    fn shards_are_per_definition_with_minimal_subscriptions() {
        let (_, sharded) = build_pair();
        assert_eq!(sharded.shard_count(), 3);
        assert!(sharded.has_cross_shard_routes()); // Z references X
        let a = sharded.catalog().lookup("A").unwrap();
        let c = sharded.catalog().lookup("C").unwrap();
        // A feeds only X's shard; C feeds Y's and Z's.
        assert_eq!(sharded.routes[&a], vec![0]);
        assert_eq!(sharded.routes[&c], vec![1, 2]);
        // And conversely each shard subscribes only to what it references.
        let b = sharded.catalog().lookup("B").unwrap();
        let x = sharded.catalog().lookup("X").unwrap();
        let subs0: Vec<EventId> = sharded.shard_subscriptions(0).collect();
        let subs2: Vec<EventId> = sharded.shard_subscriptions(2).collect();
        assert_eq!(subs0, vec![a, b]);
        assert_eq!(subs2, vec![c, x]);
    }

    #[test]
    fn matches_monolithic_detector_as_a_multiset() {
        let (mut mono, mut sharded) = build_pair();
        let mut got_mono = Vec::new();
        let mut got_sharded = Vec::new();
        for (name, t) in trace() {
            let ty = mono.catalog().lookup(name).unwrap();
            let occ = Occurrence::bare(ty, CentralTime(t));
            let rm = mono.feed(occ.clone());
            got_mono.extend(rm.detected.iter().map(|o| key(mono.catalog(), o)));
            let rs = sharded.feed(occ);
            got_sharded.extend(rs.detected.iter().map(|o| key(sharded.catalog(), o)));
        }
        got_mono.sort();
        got_sharded.sort();
        assert!(!got_mono.is_empty());
        assert_eq!(got_mono, got_sharded);
    }

    #[test]
    fn cross_definition_reference_cascades_between_shards() {
        let (_, mut sharded) = build_pair();
        let cat = sharded.catalog();
        let (a, b, c) = (
            cat.lookup("A").unwrap(),
            cat.lookup("B").unwrap(),
            cat.lookup("C").unwrap(),
        );
        sharded.feed(Occurrence::bare(a, CentralTime(1)));
        sharded.feed(Occurrence::bare(b, CentralTime(2)));
        let r = sharded.feed(Occurrence::bare(c, CentralTime(3)));
        let names: Vec<&str> = r
            .detected
            .iter()
            .map(|o| sharded.catalog().name(o.ty))
            .collect();
        // C completes Y (and Z via the cascaded X from tick 2's feed? no —
        // X was detected at tick 2 and already cascaded into Z's shard as
        // its initiator), so C yields Y and Z in canonical order.
        assert_eq!(names, vec!["Y", "Z"]);
    }

    #[test]
    fn canonical_merge_orders_same_trigger_detections() {
        // Two defs detect on the same trigger with identical timestamps:
        // order must be by definition id, not define/shard iteration quirks.
        let mut sharded = ShardedDetector::new();
        for n in ["A", "B"] {
            sharded.register(n).unwrap();
        }
        sharded
            .define("Q", &E::seq(E::prim("A"), E::prim("B")), Context::Chronicle)
            .unwrap();
        sharded
            .define(
                "P",
                &E::and(E::prim("A"), E::prim("B")),
                Context::Unrestricted,
            )
            .unwrap();
        let cat = sharded.catalog();
        let (a, b) = (cat.lookup("A").unwrap(), cat.lookup("B").unwrap());
        sharded.feed(Occurrence::bare(a, CentralTime(1)));
        let r = sharded.feed(Occurrence::bare(b, CentralTime(2)));
        let names: Vec<&str> = r
            .detected
            .iter()
            .map(|o| sharded.catalog().name(o.ty))
            .collect();
        // Q was defined first → smaller EventId → first on timestamp tie.
        assert_eq!(names, vec!["Q", "P"]);
    }

    #[test]
    fn feed_batch_equals_sequential_feeds() {
        let (_, mut sharded) = build_pair();
        let (_, mut sharded2) = build_pair();
        let occs: Vec<Occurrence<CentralTime>> = trace()
            .into_iter()
            .map(|(n, t)| Occurrence::bare(sharded.catalog().lookup(n).unwrap(), CentralTime(t)))
            .collect();
        let mut seq_out = Vec::new();
        for occ in occs.clone() {
            seq_out.extend(sharded.feed(occ).detected);
        }
        let batch_out = sharded2.feed_batch(occs).detected;
        assert_eq!(seq_out, batch_out);
    }

    #[test]
    fn timers_are_tagged_with_their_shard() {
        let mut sharded = ShardedDetector::new();
        sharded.register("A").unwrap();
        sharded
            .define("L", &E::seq(E::prim("A"), E::prim("A")), Context::Chronicle)
            .unwrap();
        sharded
            .define("D", &E::plus(E::prim("A"), 10), Context::Chronicle)
            .unwrap();
        let a = sharded.catalog().lookup("A").unwrap();
        let r = sharded.feed(Occurrence::bare(a, CentralTime(5)));
        assert_eq!(r.timers.len(), 1);
        let (shard, req) = r.timers[0];
        assert_eq!(shard, 1); // the `+` lives in D's shard
        assert_eq!(req.delay_ticks, 10);
        let fired = sharded.fire_timer(shard, req.id, CentralTime(15)).unwrap();
        assert_eq!(fired.detected.len(), 1);
        assert_eq!(sharded.catalog().name(fired.detected[0].ty), "D");
    }
}
