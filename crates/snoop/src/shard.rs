//! Definition-sharded detection.
//!
//! [`ShardedDetector`] splits the event graph **by composite definition**:
//! every `define` call compiles into its own independent [`EventGraph`]
//! (a *shard*) that subscribes only to the event types its expression
//! actually references. Feeding an occurrence routes it to exactly the
//! shards subscribed to its type; the detections of one routing round are
//! merged back in the canonical `(composite-timestamp, definition-id)`
//! order before they re-enter the cascade (a named composite used inside a
//! later definition feeds that definition's shard).
//!
//! The canonical merge makes runs bit-for-bit deterministic regardless of
//! how shards are executed, which is what allows the parallel batch path
//! (`parallel` feature): [`ShardedDetector::enable_pool`] attaches a
//! persistent [`crate::pool::WorkerPool`] with shards pinned round-robin
//! in `define` order. Independent definitions fan a whole batch out in one
//! round; definitions that reference other named composites (a **staged**
//! schedule over the acyclic definition dependency DAG — `compile` rejects
//! cycles) run one parallel round per cascade wave, each wave's
//! canonically-merged detections becoming the next wave's triggers. Both
//! paths reproduce the serial output exactly.

use crate::context::Context;
use crate::error::{Result, SnoopError};
use crate::event::{Catalog, EventId, Occurrence};
use crate::expr::EventExpr;
use crate::graph::{EventGraph, TimerId, TimerRequest};
use crate::state::{DetectorState, Snapshot};
use crate::time::EventTime;
use std::collections::{BTreeSet, HashMap};

/// Index of a shard (one per composite definition, in `define` order).
pub type ShardId = usize;

/// Everything one sharded feed/fire step produced.
#[derive(Debug, Clone)]
pub struct ShardFeedResult<T> {
    /// Occurrences of named composite events, in canonical merge order.
    pub detected: Vec<Occurrence<T>>,
    /// New timer requests, tagged with the shard that owns the timer id
    /// (timer ids are only unique within a shard).
    pub timers: Vec<(ShardId, TimerRequest)>,
}

impl<T> Default for ShardFeedResult<T> {
    fn default() -> Self {
        ShardFeedResult {
            detected: Vec::new(),
            timers: Vec::new(),
        }
    }
}

#[derive(Debug)]
pub(crate) struct Shard<T: EventTime> {
    pub(crate) graph: EventGraph<T>,
    /// The named composite event this shard defines.
    pub(crate) emits: EventId,
    /// Event types that can make this shard react.
    pub(crate) subscribed: BTreeSet<EventId>,
}

impl<T: EventTime> Shard<T> {
    /// Inert stand-in left behind while the real shard is out on a pool
    /// worker (subscribed is empty, so it can never be fed by mistake).
    #[cfg(feature = "parallel")]
    fn placeholder() -> Self {
        Shard {
            graph: EventGraph::new(),
            emits: EventId(u32::MAX),
            subscribed: BTreeSet::new(),
        }
    }
}

/// A catalog plus one [`EventGraph`] per composite definition, with a
/// subscription index routing occurrences to the shards that care.
///
/// Drop-in replacement for [`crate::Detector`] where the caller services
/// timers itself; the only API difference is that timer handles are
/// `(ShardId, TimerId)` pairs and feed results carry the shard tag.
#[derive(Debug, Default)]
pub struct ShardedDetector<T: EventTime> {
    catalog: Catalog,
    shards: Vec<Shard<T>>,
    /// Event type → shards subscribed to it, ascending.
    routes: HashMap<EventId, Vec<ShardId>>,
    /// Topological level of each shard in the definition dependency DAG
    /// (0 = references no other definition).
    levels: Vec<usize>,
    /// Cascade severing (see [`Self::set_cascade`]): when true, named
    /// detections are reported but never re-enter the wave as triggers.
    severed: bool,
    #[cfg(feature = "parallel")]
    pool: Option<crate::pool::WorkerPool<T>>,
}

impl<T: EventTime> ShardedDetector<T> {
    /// An empty detector.
    pub fn new() -> Self {
        ShardedDetector {
            catalog: Catalog::new(),
            shards: Vec::new(),
            routes: HashMap::new(),
            levels: Vec::new(),
            severed: false,
            #[cfg(feature = "parallel")]
            pool: None,
        }
    }

    /// Enable or sever the detection cascade. With the cascade severed
    /// (`enabled == false`), a named composite detection is still reported
    /// in the feed result but is **not** re-fed to the shards that
    /// subscribe to it — the caller owns cross-definition routing (a
    /// partitioned deployment where the subscribing definition may live on
    /// another detector replica). Default is enabled.
    pub fn set_cascade(&mut self, enabled: bool) {
        self.severed = !enabled;
    }

    /// Register a primitive event type.
    pub fn register(&mut self, name: &str) -> Result<EventId> {
        self.catalog.register(name)
    }

    /// Define a named composite event in a fresh shard of its own.
    pub fn define(&mut self, name: &str, expr: &EventExpr, ctx: Context) -> Result<EventId> {
        let mut graph = EventGraph::new();
        let emits = graph.compile(&mut self.catalog, name, expr, ctx)?;
        let subscribed: BTreeSet<EventId> = graph.subscribed_types().collect();
        let shard = self.shards.len();
        // Stage = 1 + the deepest referenced definition. Definitions can
        // only reference earlier names (cycles are rejected at compile), so
        // levels are computable incrementally.
        let level = subscribed
            .iter()
            .filter_map(|ty| {
                self.shards
                    .iter()
                    .position(|s| s.emits == *ty)
                    .map(|j| self.levels[j] + 1)
            })
            .max()
            .unwrap_or(0);
        for &ty in &subscribed {
            self.routes.entry(ty).or_default().push(shard);
        }
        self.levels.push(level);
        self.shards.push(Shard {
            graph,
            emits,
            subscribed,
        });
        Ok(emits)
    }

    /// The catalog (name ↔ id mapping).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Number of definition shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total operator nodes across all shards (every definition compiles
    /// its full expression tree — nothing is shared; cf.
    /// [`crate::PlanDetector::plan_node_count`]).
    pub fn node_count(&self) -> usize {
        self.shards.iter().map(|s| s.graph.node_count()).sum()
    }

    /// Topological level of `shard` in the definition dependency DAG:
    /// 0 for definitions over primitives only, `1 + max(level of referenced
    /// definitions)` otherwise.
    pub fn shard_level(&self, shard: ShardId) -> usize {
        self.levels[shard]
    }

    /// Number of topological stages in the definition dependency DAG
    /// (1 when all definitions are independent, 0 with no definitions).
    /// A batch cascade runs at most this many waves per trigger.
    pub fn stage_count(&self) -> usize {
        self.levels.iter().max().map_or(0, |m| m + 1)
    }

    /// Event types shard `shard` subscribes to, ascending (diagnostics).
    pub fn shard_subscriptions(&self, shard: ShardId) -> impl Iterator<Item = EventId> + '_ {
        self.shards[shard].subscribed.iter().copied()
    }

    /// Smallest timer delay any shard can request, or `None` when no
    /// definition uses a temporal operator (see
    /// [`EventGraph::min_timer_delay`]).
    pub fn min_timer_delay(&self) -> Option<u64> {
        self.shards
            .iter()
            .filter_map(|s| s.graph.min_timer_delay())
            .min()
    }

    /// Total outstanding timers across all shards.
    pub fn pending_timer_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.graph.pending_timer_count())
            .sum()
    }

    /// Advance the low watermark across every shard (see
    /// [`EventGraph::advance_watermark`]): the caller promises every future
    /// stamp's global ticks are `≥ low`. Returns the evicted count.
    pub fn advance_watermark(&mut self, low: u64) -> u64 {
        self.shards
            .iter_mut()
            .map(|s| s.graph.advance_watermark(low))
            .sum()
    }

    /// Total occurrences buffered across all shards' operator nodes.
    pub fn buffered_occupancy(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.graph.buffered_occupancy())
            .sum()
    }

    /// Whether some definition references another definition's named event
    /// (batch feeds then cascade in staged waves instead of one fan-out).
    pub fn has_cross_shard_routes(&self) -> bool {
        self.shards
            .iter()
            .any(|s| self.routes.contains_key(&s.emits))
    }

    /// Attach a persistent worker pool of `workers` threads (clamped to
    /// `1..=shard_count` and to the machine's available parallelism —
    /// oversubscribing cores only adds hand-off latency) and route every
    /// subsequent [`Self::feed_batch`] through it. Shards are pinned to
    /// workers round-robin in `define` order. Output stays bit-for-bit
    /// identical to the serial path.
    #[cfg(feature = "parallel")]
    pub fn enable_pool(&mut self, workers: usize) {
        let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
        self.enable_pool_exact(workers.min(hw));
    }

    /// Like [`Self::enable_pool`] but without the hardware cap (still
    /// clamped to `1..=shard_count`). Tests and determinism oracles use
    /// this to exercise multi-worker hand-off on machines with fewer
    /// cores than workers.
    #[cfg(feature = "parallel")]
    pub fn enable_pool_exact(&mut self, workers: usize) {
        let workers = workers.clamp(1, self.shards.len().max(1));
        self.pool = Some(crate::pool::WorkerPool::new(workers));
    }

    /// Worker threads in the persistent pool (0 = serial).
    pub fn worker_count(&self) -> usize {
        #[cfg(feature = "parallel")]
        if let Some(p) = &self.pool {
            return p.worker_count();
        }
        0
    }

    /// Parallel rounds dispatched to the pool so far.
    pub fn parallel_rounds(&self) -> u64 {
        #[cfg(feature = "parallel")]
        if let Some(p) = &self.pool {
            return p.rounds();
        }
        0
    }

    /// Total busy time across pool workers, in nanoseconds.
    pub fn pool_busy_ns(&self) -> u64 {
        #[cfg(feature = "parallel")]
        if let Some(p) = &self.pool {
            return p.busy_ns();
        }
        0
    }

    /// Backoff steps spent waiting on full or empty pool rings so far
    /// (0 = serial or never contended).
    pub fn ring_full_spins(&self) -> u64 {
        #[cfg(feature = "parallel")]
        if let Some(p) = &self.pool {
            return p.ring_full_spins();
        }
        0
    }

    /// Feed one occurrence through every subscribed shard, cascading named
    /// detections (in canonical order) into the shards that reference them.
    pub fn feed(&mut self, occ: Occurrence<T>) -> ShardFeedResult<T> {
        let mut out = ShardFeedResult::default();
        self.pump(vec![occ], &mut out);
        out
    }

    /// Deliver a previously requested timer on the shard that owns it.
    pub fn fire_timer(
        &mut self,
        shard: ShardId,
        id: TimerId,
        time: T,
    ) -> Result<ShardFeedResult<T>> {
        let r = self.shards[shard].graph.fire_timer(id, time)?;
        let mut out = ShardFeedResult::default();
        out.timers.extend(r.timers.into_iter().map(|t| (shard, t)));
        let mut round = r.detected;
        sort_canonical(&mut round);
        if self.severed {
            out.detected.extend(round);
        } else {
            let mut wave = Vec::with_capacity(round.len());
            for d in round {
                wave.push(d.clone());
                out.detected.push(d);
            }
            self.pump(wave, &mut out);
        }
        Ok(out)
    }

    /// Feed a whole batch. Semantically identical to feeding each
    /// occurrence in order; with the `parallel` feature and a pool enabled
    /// (see [`Self::enable_pool`]) the shards run on the persistent workers
    /// and the per-trigger canonical merge reproduces the serial output
    /// exactly — including across cross-definition cascades, which run as
    /// staged waves.
    pub fn feed_batch(&mut self, occs: Vec<Occurrence<T>>) -> ShardFeedResult<T> {
        #[cfg(feature = "parallel")]
        if self.pool.is_some() && self.shards.len() > 1 && !occs.is_empty() {
            return if self.has_cross_shard_routes() {
                self.feed_batch_staged(occs)
            } else {
                self.feed_batch_fanout(occs)
            };
        }
        let mut out = ShardFeedResult::default();
        for occ in occs {
            self.pump(vec![occ], &mut out);
        }
        out
    }

    /// Feed a columnar batch: only routed rows are ever materialized into
    /// occurrences (an unrouted primitive type cannot contribute to any
    /// detection), then the batch path takes over. Bit-identical to
    /// materializing every row and calling [`Self::feed_batch`].
    pub fn feed_batch_columnar(
        &mut self,
        batch: &crate::batch::EventBatch<T>,
    ) -> ShardFeedResult<T> {
        let occs = batch.materialize_routed(|ty| self.routes.contains_key(&ty));
        self.feed_batch(occs)
    }

    /// BFS cascade: run serial waves until no detections remain. Each wave
    /// routes its occurrences to the subscribed shards (ascending),
    /// canonically merges the per-trigger detections, and the merged
    /// detections form the next wave so cross-definition references see
    /// named composites.
    fn pump(&mut self, mut wave: Vec<Occurrence<T>>, out: &mut ShardFeedResult<T>) {
        while !wave.is_empty() {
            wave = self.serial_wave(wave, out);
        }
    }

    /// Run one cascade wave serially and return the next wave. The last
    /// subscribed shard receives each occurrence by move and the others by
    /// reference, so single-subscriber routing (the common case) never
    /// clones the trigger.
    fn serial_wave(
        &mut self,
        wave: Vec<Occurrence<T>>,
        out: &mut ShardFeedResult<T>,
    ) -> Vec<Occurrence<T>> {
        let mut next = Vec::new();
        for occ in wave {
            let Some(route) = self.routes.get(&occ.ty) else {
                continue;
            };
            let (&last, rest) = route.split_last().expect("routes are non-empty");
            let mut round = Vec::new();
            for &s in rest {
                let r = self.shards[s].graph.feed_ref(&occ);
                out.timers.extend(r.timers.into_iter().map(|t| (s, t)));
                round.extend(r.detected);
            }
            let r = self.shards[last].graph.feed(occ);
            out.timers.extend(r.timers.into_iter().map(|t| (last, t)));
            round.extend(r.detected);
            sort_canonical(&mut round);
            for d in round {
                if !self.severed {
                    next.push(d.clone());
                }
                out.detected.push(d);
            }
        }
        next
    }

    /// Number of shards subscribed to at least one of `wave`'s types.
    #[cfg(feature = "parallel")]
    fn active_shard_count(&self, wave: &[Occurrence<T>]) -> usize {
        self.shards
            .iter()
            .filter(|s| wave.iter().any(|o| s.subscribed.contains(&o.ty)))
            .count()
    }

    /// Dispatch one pool round over `triggers`: move the active shards out
    /// to their pinned workers, collect results, reinstall the shards, and
    /// return the keyed feed results sorted by shard id.
    #[cfg(feature = "parallel")]
    fn pooled_round(
        &mut self,
        triggers: &std::sync::Arc<[Occurrence<T>]>,
    ) -> crate::pool::KeyedResults<T> {
        let workers = self.pool.as_ref().expect("pool enabled").worker_count();
        let mut assignments: Vec<Vec<(ShardId, Shard<T>)>> =
            (0..workers).map(|_| Vec::new()).collect();
        for i in 0..self.shards.len() {
            let active = triggers
                .iter()
                .any(|o| self.shards[i].subscribed.contains(&o.ty));
            if active {
                let shard = std::mem::replace(&mut self.shards[i], Shard::placeholder());
                assignments[i % workers].push((i, shard));
            }
        }
        let jobs: Vec<(usize, crate::pool::Job<T>)> = assignments
            .into_iter()
            .enumerate()
            .filter(|(_, shards)| !shards.is_empty())
            .map(|(w, shards)| {
                (
                    w,
                    crate::pool::Job {
                        shards,
                        cells: Vec::new(),
                        triggers: std::sync::Arc::clone(triggers),
                    },
                )
            })
            .collect();
        let mut merged = Vec::new();
        for r in self.pool.as_mut().expect("pool enabled").run_round(jobs) {
            for (sid, shard) in r.shards {
                self.shards[sid] = shard;
            }
            merged.extend(r.results);
        }
        merged.sort_by_key(|(sid, _)| *sid);
        merged
    }

    /// Independent definitions (no cross-shard routes): one pool round fans
    /// the whole batch out, then the per-trigger merge — shards ascending,
    /// canonical round sort — reproduces the serial visit order exactly.
    /// Detections cannot cascade (nothing subscribes to them), so no
    /// further waves are needed.
    #[cfg(feature = "parallel")]
    fn feed_batch_fanout(&mut self, occs: Vec<Occurrence<T>>) -> ShardFeedResult<T> {
        let triggers: std::sync::Arc<[Occurrence<T>]> = occs.into();
        let per_shard = self.pooled_round(&triggers);
        let mut out = ShardFeedResult::default();
        let mut cursors = vec![0usize; per_shard.len()];
        for k in 0..triggers.len() {
            let mut round = Vec::new();
            for (idx, (sid, results)) in per_shard.iter().enumerate() {
                if let Some((key, r)) = results.get(cursors[idx]) {
                    if *key == k {
                        cursors[idx] += 1;
                        out.timers.extend(r.timers.iter().map(|t| (*sid, *t)));
                        round.extend(r.detected.iter().cloned());
                    }
                }
            }
            sort_canonical(&mut round);
            out.detected.extend(round);
        }
        out
    }

    /// Cross-definition cascades: per trigger, run one pool round per
    /// cascade wave (the staged schedule over the definition DAG — at most
    /// [`Self::stage_count`] waves deep). The serial cascade is a BFS whose
    /// queue never interleaves triggers, so waves of one trigger at a time
    /// reproduce it exactly; within a wave the per-element merge (shards
    /// ascending, canonical round sort) is the serial visit order.
    #[cfg(feature = "parallel")]
    fn feed_batch_staged(&mut self, occs: Vec<Occurrence<T>>) -> ShardFeedResult<T> {
        let mut out = ShardFeedResult::default();
        for occ in occs {
            let mut wave = vec![occ];
            while !wave.is_empty() {
                let active = self.active_shard_count(&wave);
                if active == 0 {
                    break;
                }
                if active == 1 {
                    // Nothing to parallelize: run the wave in place.
                    wave = self.serial_wave(wave, &mut out);
                    continue;
                }
                let triggers: std::sync::Arc<[Occurrence<T>]> = wave.into();
                let per_shard = self.pooled_round(&triggers);
                let mut next_wave = Vec::new();
                let mut cursors = vec![0usize; per_shard.len()];
                for k in 0..triggers.len() {
                    let mut round = Vec::new();
                    for (idx, (sid, results)) in per_shard.iter().enumerate() {
                        if let Some((key, r)) = results.get(cursors[idx]) {
                            if *key == k {
                                cursors[idx] += 1;
                                out.timers.extend(r.timers.iter().map(|t| (*sid, *t)));
                                round.extend(r.detected.iter().cloned());
                            }
                        }
                    }
                    sort_canonical(&mut round);
                    for d in round {
                        if !self.severed {
                            next_wave.push(d.clone());
                        }
                        out.detected.push(d);
                    }
                }
                wave = next_wave;
            }
        }
        out
    }
}

/// Canonical `(composite-timestamp, definition-id)` order for merging one
/// round of detections. Stable, so equal keys keep shard order.
pub(crate) fn sort_canonical<T: EventTime>(round: &mut [Occurrence<T>]) {
    round.sort_by(|a, b| a.time.canonical_cmp(&b.time).then(a.ty.0.cmp(&b.ty.0)));
}

impl<T: EventTime> Snapshot<T> for ShardedDetector<T> {
    fn save_state(&self) -> DetectorState<T> {
        DetectorState::Sharded(self.shards.iter().map(|s| s.graph.save_state()).collect())
    }

    fn restore_state(&mut self, state: DetectorState<T>) -> Result<()> {
        let DetectorState::Sharded(graphs) = state else {
            return Err(SnoopError::SnapshotMismatch(
                "plan snapshot offered to a sharded detector".into(),
            ));
        };
        if graphs.len() != self.shards.len() {
            return Err(SnoopError::SnapshotMismatch(format!(
                "detector has {} shards, snapshot has {}",
                self.shards.len(),
                graphs.len()
            )));
        }
        let floor = graphs
            .iter()
            .map(|g| crate::state::max_buffered_uid(&g.nodes))
            .max()
            .unwrap_or(0);
        for (shard, gs) in self.shards.iter_mut().zip(graphs) {
            shard.graph.restore_state(gs)?;
        }
        crate::event::ensure_uid_floor(floor + 1);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::Detector;
    use crate::expr::EventExpr as E;
    use crate::time::CentralTime;

    /// Primitives A/B/C; three defs exercising disjoint and overlapping
    /// subscriptions plus one cross-definition reference.
    fn defs() -> Vec<(&'static str, EventExpr, Context)> {
        vec![
            ("X", E::seq(E::prim("A"), E::prim("B")), Context::Chronicle),
            (
                "Y",
                E::and(E::prim("B"), E::prim("C")),
                Context::Unrestricted,
            ),
            ("Z", E::seq(E::prim("X"), E::prim("C")), Context::Chronicle),
        ]
    }

    fn build_pair() -> (Detector<CentralTime>, ShardedDetector<CentralTime>) {
        let mut mono = Detector::new();
        let mut sharded = ShardedDetector::new();
        for n in ["A", "B", "C"] {
            mono.register(n).unwrap();
            sharded.register(n).unwrap();
        }
        for (name, expr, ctx) in defs() {
            mono.define(name, &expr, ctx).unwrap();
            sharded.define(name, &expr, ctx).unwrap();
        }
        (mono, sharded)
    }

    fn trace() -> Vec<(&'static str, u64)> {
        vec![
            ("A", 1),
            ("B", 2),
            ("C", 3),
            ("B", 4),
            ("A", 5),
            ("C", 6),
            ("B", 7),
            ("C", 8),
        ]
    }

    fn key(cat: &Catalog, o: &Occurrence<CentralTime>) -> (String, u64) {
        (cat.name(o.ty).to_owned(), o.time.get())
    }

    #[test]
    fn shards_are_per_definition_with_minimal_subscriptions() {
        let (_, sharded) = build_pair();
        assert_eq!(sharded.shard_count(), 3);
        assert!(sharded.has_cross_shard_routes()); // Z references X
        let a = sharded.catalog().lookup("A").unwrap();
        let c = sharded.catalog().lookup("C").unwrap();
        // A feeds only X's shard; C feeds Y's and Z's.
        assert_eq!(sharded.routes[&a], vec![0]);
        assert_eq!(sharded.routes[&c], vec![1, 2]);
        // And conversely each shard subscribes only to what it references.
        let b = sharded.catalog().lookup("B").unwrap();
        let x = sharded.catalog().lookup("X").unwrap();
        let subs0: Vec<EventId> = sharded.shard_subscriptions(0).collect();
        let subs2: Vec<EventId> = sharded.shard_subscriptions(2).collect();
        assert_eq!(subs0, vec![a, b]);
        assert_eq!(subs2, vec![c, x]);
    }

    #[test]
    fn stages_follow_the_definition_dag() {
        let (_, sharded) = build_pair();
        // X and Y reference only primitives; Z references X.
        assert_eq!(sharded.shard_level(0), 0);
        assert_eq!(sharded.shard_level(1), 0);
        assert_eq!(sharded.shard_level(2), 1);
        assert_eq!(sharded.stage_count(), 2);
        // A deeper chain: W = seq(Z, B) sits one stage later again.
        let (_, mut deeper) = build_pair();
        deeper
            .define("W", &E::seq(E::prim("Z"), E::prim("B")), Context::Chronicle)
            .unwrap();
        assert_eq!(deeper.shard_level(3), 2);
        assert_eq!(deeper.stage_count(), 3);
    }

    #[test]
    fn matches_monolithic_detector_as_a_multiset() {
        let (mut mono, mut sharded) = build_pair();
        let mut got_mono = Vec::new();
        let mut got_sharded = Vec::new();
        for (name, t) in trace() {
            let ty = mono.catalog().lookup(name).unwrap();
            let occ = Occurrence::bare(ty, CentralTime(t));
            let rm = mono.feed(occ.clone());
            got_mono.extend(rm.detected.iter().map(|o| key(mono.catalog(), o)));
            let rs = sharded.feed(occ);
            got_sharded.extend(rs.detected.iter().map(|o| key(sharded.catalog(), o)));
        }
        got_mono.sort();
        got_sharded.sort();
        assert!(!got_mono.is_empty());
        assert_eq!(got_mono, got_sharded);
    }

    #[test]
    fn cross_definition_reference_cascades_between_shards() {
        let (_, mut sharded) = build_pair();
        let cat = sharded.catalog();
        let (a, b, c) = (
            cat.lookup("A").unwrap(),
            cat.lookup("B").unwrap(),
            cat.lookup("C").unwrap(),
        );
        sharded.feed(Occurrence::bare(a, CentralTime(1)));
        sharded.feed(Occurrence::bare(b, CentralTime(2)));
        let r = sharded.feed(Occurrence::bare(c, CentralTime(3)));
        let names: Vec<&str> = r
            .detected
            .iter()
            .map(|o| sharded.catalog().name(o.ty))
            .collect();
        // C completes Y (and Z via the cascaded X from tick 2's feed? no —
        // X was detected at tick 2 and already cascaded into Z's shard as
        // its initiator), so C yields Y and Z in canonical order.
        assert_eq!(names, vec!["Y", "Z"]);
    }

    #[test]
    fn canonical_merge_orders_same_trigger_detections() {
        // Two defs detect on the same trigger with identical timestamps:
        // order must be by definition id, not define/shard iteration quirks.
        let mut sharded = ShardedDetector::new();
        for n in ["A", "B"] {
            sharded.register(n).unwrap();
        }
        sharded
            .define("Q", &E::seq(E::prim("A"), E::prim("B")), Context::Chronicle)
            .unwrap();
        sharded
            .define(
                "P",
                &E::and(E::prim("A"), E::prim("B")),
                Context::Unrestricted,
            )
            .unwrap();
        let cat = sharded.catalog();
        let (a, b) = (cat.lookup("A").unwrap(), cat.lookup("B").unwrap());
        sharded.feed(Occurrence::bare(a, CentralTime(1)));
        let r = sharded.feed(Occurrence::bare(b, CentralTime(2)));
        let names: Vec<&str> = r
            .detected
            .iter()
            .map(|o| sharded.catalog().name(o.ty))
            .collect();
        // Q was defined first → smaller EventId → first on timestamp tie.
        assert_eq!(names, vec!["Q", "P"]);
    }

    #[test]
    fn feed_batch_equals_sequential_feeds() {
        let (_, mut sharded) = build_pair();
        let (_, mut sharded2) = build_pair();
        let occs: Vec<Occurrence<CentralTime>> = trace()
            .into_iter()
            .map(|(n, t)| Occurrence::bare(sharded.catalog().lookup(n).unwrap(), CentralTime(t)))
            .collect();
        let mut seq_out = Vec::new();
        for occ in occs.clone() {
            seq_out.extend(sharded.feed(occ).detected);
        }
        let batch_out = sharded2.feed_batch(occs).detected;
        assert_eq!(seq_out, batch_out);
    }

    #[test]
    fn timers_are_tagged_with_their_shard() {
        let mut sharded = ShardedDetector::new();
        sharded.register("A").unwrap();
        sharded
            .define("L", &E::seq(E::prim("A"), E::prim("A")), Context::Chronicle)
            .unwrap();
        sharded
            .define("D", &E::plus(E::prim("A"), 10), Context::Chronicle)
            .unwrap();
        let a = sharded.catalog().lookup("A").unwrap();
        let r = sharded.feed(Occurrence::bare(a, CentralTime(5)));
        assert_eq!(r.timers.len(), 1);
        let (shard, req) = r.timers[0];
        assert_eq!(shard, 1); // the `+` lives in D's shard
        assert_eq!(req.delay_ticks, 10);
        let fired = sharded.fire_timer(shard, req.id, CentralTime(15)).unwrap();
        assert_eq!(fired.detected.len(), 1);
        assert_eq!(sharded.catalog().name(fired.detected[0].ty), "D");
    }
}

#[cfg(all(test, feature = "parallel"))]
mod parallel_tests {
    use super::*;
    use crate::expr::EventExpr as E;
    use crate::time::CentralTime;

    /// Eight independent definitions (fan-out path) plus, when `cascade`
    /// is set, two extra stages referencing them (staged path).
    fn build(cascade: bool) -> ShardedDetector<CentralTime> {
        let mut d = ShardedDetector::new();
        for n in ["A", "B", "C", "D"] {
            d.register(n).unwrap();
        }
        let prims = ["A", "B", "C", "D"];
        for i in 0..8usize {
            let (p, q) = (prims[i % 4], prims[(i + 1) % 4]);
            let name = format!("S{i}");
            d.define(&name, &E::seq(E::prim(p), E::prim(q)), Context::Chronicle)
                .unwrap();
        }
        if cascade {
            d.define(
                "M",
                &E::and(E::prim("S0"), E::prim("S1")),
                Context::Unrestricted,
            )
            .unwrap();
            d.define("T", &E::seq(E::prim("M"), E::prim("C")), Context::Chronicle)
                .unwrap();
        }
        d
    }

    fn trace(d: &ShardedDetector<CentralTime>) -> Vec<Occurrence<CentralTime>> {
        let prims = ["A", "B", "C", "D"];
        (0..64u64)
            .map(|t| {
                let ty = d.catalog().lookup(prims[(t % 4) as usize]).unwrap();
                Occurrence::bare(ty, CentralTime(t))
            })
            .collect()
    }

    fn serial_reference(cascade: bool) -> ShardFeedResult<CentralTime> {
        let mut d = build(cascade);
        let occs = trace(&d);
        let mut out = ShardFeedResult::default();
        for occ in occs {
            let r = d.feed(occ);
            out.detected.extend(r.detected);
            out.timers.extend(r.timers);
        }
        out
    }

    #[test]
    fn pooled_fanout_is_bit_identical_to_serial() {
        let expect = serial_reference(false);
        assert!(!expect.detected.is_empty());
        for workers in [1, 2, 4, 8] {
            let mut d = build(false);
            assert!(!d.has_cross_shard_routes());
            d.enable_pool_exact(workers);
            let occs = trace(&d);
            let got = d.feed_batch(occs);
            assert_eq!(got.detected, expect.detected, "{workers} workers");
            assert_eq!(got.timers, expect.timers, "{workers} workers");
            assert!(d.parallel_rounds() > 0);
        }
    }

    #[test]
    fn pooled_staged_cascade_is_bit_identical_to_serial() {
        let expect = serial_reference(true);
        // The cascade actually fires (M and T detections exist).
        assert!(
            expect.detected.iter().any(|o| o.ty.0 >= 12),
            "cascade must detect"
        );
        for workers in [1, 2, 4] {
            let mut d = build(true);
            assert!(d.has_cross_shard_routes());
            assert_eq!(d.stage_count(), 3);
            d.enable_pool_exact(workers);
            let occs = trace(&d);
            let got = d.feed_batch(occs);
            assert_eq!(got.detected, expect.detected, "{workers} workers");
            assert_eq!(got.timers, expect.timers, "{workers} workers");
            assert!(d.parallel_rounds() > 0, "{workers} workers");
        }
    }

    #[test]
    fn pool_stats_accumulate() {
        let mut d = build(false);
        d.enable_pool_exact(4);
        assert_eq!(d.worker_count(), 4);
        assert_eq!(d.parallel_rounds(), 0);
        let occs = trace(&d);
        d.feed_batch(occs);
        assert_eq!(d.parallel_rounds(), 1); // independent defs: one round
        assert!(d.pool_busy_ns() > 0);
    }

    #[test]
    fn enable_pool_clamps_to_shard_count() {
        let mut d = build(false); // 8 shards
        d.enable_pool_exact(64);
        assert_eq!(d.worker_count(), 8);
    }

    #[test]
    fn enable_pool_caps_to_available_parallelism() {
        let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
        let mut d = build(false); // 8 shards
        d.enable_pool(64);
        assert_eq!(d.worker_count(), 64.min(hw).min(8).max(1));
    }
}
