//! Event types, parameters and occurrences.
//!
//! An *event type* is a name registered in a [`Catalog`] and referred to by
//! a compact [`EventId`]. An *occurrence* pairs an event type with a
//! timestamp from the time domain and a parameter list. Composite
//! occurrences carry the concatenated parameter tuples of their
//! constituents — this is how Sentinel propagates event parameters to rule
//! conditions (and what the cumulative contexts/`A*` accumulate).

use crate::error::{Result, SnoopError};
use crate::time::EventTime;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Process-wide occurrence id source (identity, not semantics).
static NEXT_UID: AtomicU64 = AtomicU64::new(1);

pub(crate) fn fresh_uid() -> u64 {
    NEXT_UID.fetch_add(1, Ordering::Relaxed)
}

/// Raise the process-wide occurrence-uid counter to at least `floor`.
/// Called by snapshot restore so uids minted after recovery cannot collide
/// with uids buried in restored operator buffers (uid equality backs the
/// self-pairing guard of `E ∧ E`). Never lowers the counter.
pub fn ensure_uid_floor(floor: u64) {
    NEXT_UID.fetch_max(floor, Ordering::Relaxed);
}

/// Compact identifier of an event type within one catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EventId(pub u32);

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// A parameter value attached to an event occurrence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// Integer parameter.
    Int(i64),
    /// Floating-point parameter.
    Float(f64),
    /// String parameter.
    Str(String),
    /// Boolean parameter.
    Bool(bool),
}

impl Value {
    /// The integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The float payload, accepting `Int` by widening.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// The parameters contributed by one constituent occurrence: the source
/// event type and its values. Shared via `Arc` so that fan-out through the
/// graph does not copy payloads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParamTuple {
    /// The event type that contributed these values.
    pub source: EventId,
    /// The values.
    pub values: Arc<Vec<Value>>,
}

impl ParamTuple {
    /// Build a tuple.
    pub fn new(source: EventId, values: Vec<Value>) -> Self {
        ParamTuple {
            source,
            values: Arc::new(values),
        }
    }
}

/// The accumulated parameter tuples of an occurrence (constituents in
/// detection order). Shared via `Arc`: cloning an occurrence during graph
/// fan-out (one clone per subscriber/parent edge) costs one reference-count
/// increment instead of a heap copy of the tuple list. Operators that build
/// a *new* list (combination, accumulation) allocate once and re-wrap.
pub type ParamList = Arc<Vec<ParamTuple>>;

/// An event occurrence: type, timestamp, parameters, and a process-unique
/// identity.
///
/// The `uid` distinguishes *occurrences* (not values): when one operand
/// expression feeds both slots of a binary operator (e.g. `E ∧ E`), the
/// graph delivers the same occurrence to both slots and the operator must
/// not pair it with itself. Identity is excluded from `PartialEq` — two
/// occurrences are equal when their observable content is.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Occurrence<T> {
    /// The event type this occurrence belongs to.
    pub ty: EventId,
    /// Occurrence time (centralized tick or distributed composite stamp).
    pub time: T,
    /// Parameter tuples of the constituents.
    pub params: ParamList,
    /// Process-unique occurrence identity (excluded from equality).
    pub uid: u64,
}

impl<T: PartialEq> PartialEq for Occurrence<T> {
    fn eq(&self, other: &Self) -> bool {
        self.ty == other.ty && self.time == other.time && self.params == other.params
    }
}

impl<T: EventTime> Occurrence<T> {
    /// A primitive occurrence with a single parameter tuple.
    pub fn primitive(ty: EventId, time: T, values: Vec<Value>) -> Self {
        Occurrence {
            ty,
            time,
            params: Arc::new(vec![ParamTuple::new(ty, values)]),
            uid: fresh_uid(),
        }
    }

    /// A primitive occurrence with no parameters.
    pub fn bare(ty: EventId, time: T) -> Self {
        Occurrence {
            ty,
            time,
            params: Arc::new(vec![ParamTuple::new(ty, Vec::new())]),
            uid: fresh_uid(),
        }
    }

    /// Combine two constituent occurrences into a composite one:
    /// `time = Max(t1, t2)`, parameters concatenated.
    pub fn combine(ty: EventId, a: &Occurrence<T>, b: &Occurrence<T>) -> Self {
        let mut params = Vec::with_capacity(a.params.len() + b.params.len());
        params.extend(a.params.iter().cloned());
        params.extend(b.params.iter().cloned());
        Occurrence {
            ty,
            time: a.time.max(&b.time),
            params: Arc::new(params),
            uid: fresh_uid(),
        }
    }

    /// Combine many constituents (cumulative contexts, `A*`, `ANY`):
    /// `time = Max` over all, parameters concatenated in the given order.
    ///
    /// # Panics
    /// Panics if `parts` is empty.
    pub fn combine_all(ty: EventId, parts: &[&Occurrence<T>]) -> Self {
        assert!(!parts.is_empty(), "combine_all needs at least one part");
        let mut time = parts[0].time.clone();
        let mut params = Vec::new();
        for p in parts {
            if !std::ptr::eq(*p, parts[0]) {
                time = time.max(&p.time);
            }
            params.extend(p.params.iter().cloned());
        }
        Occurrence {
            ty,
            time,
            params: Arc::new(params),
            uid: fresh_uid(),
        }
    }

    /// An occurrence with an explicit parameter list (used by temporal
    /// operator nodes that rebuild occurrences at timer fires).
    pub fn with_params(ty: EventId, time: T, params: ParamList) -> Self {
        Occurrence {
            ty,
            time,
            params,
            uid: fresh_uid(),
        }
    }

    /// Re-type this occurrence (used when a graph node emits under a named
    /// composite event type).
    pub fn retyped(mut self, ty: EventId) -> Self {
        self.ty = ty;
        self
    }
}

/// The registry of event-type names.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Catalog {
    names: Vec<String>,
    index: HashMap<String, EventId>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register a new event type. Errors if the name is already taken.
    pub fn register(&mut self, name: &str) -> Result<EventId> {
        if self.index.contains_key(name) {
            return Err(SnoopError::DuplicateEvent(name.to_owned()));
        }
        let id = EventId(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), id);
        Ok(id)
    }

    /// Register, or return the existing id for, `name`.
    pub fn intern(&mut self, name: &str) -> EventId {
        if let Some(&id) = self.index.get(name) {
            id
        } else {
            self.register(name).expect("checked for presence")
        }
    }

    /// Look up an id by name.
    pub fn lookup(&self, name: &str) -> Result<EventId> {
        self.index
            .get(name)
            .copied()
            .ok_or_else(|| SnoopError::UnknownEvent(name.to_owned()))
    }

    /// The name of an id (panics on a foreign id).
    pub fn name(&self, id: EventId) -> &str {
        &self.names[id.0 as usize]
    }

    /// Number of registered types.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::CentralTime;

    #[test]
    fn catalog_register_lookup() {
        let mut c = Catalog::new();
        let a = c.register("A").unwrap();
        let b = c.register("B").unwrap();
        assert_ne!(a, b);
        assert_eq!(c.lookup("A").unwrap(), a);
        assert_eq!(c.name(b), "B");
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
        assert_eq!(
            c.register("A").unwrap_err(),
            SnoopError::DuplicateEvent("A".into())
        );
        assert_eq!(
            c.lookup("Z").unwrap_err(),
            SnoopError::UnknownEvent("Z".into())
        );
    }

    #[test]
    fn intern_is_idempotent() {
        let mut c = Catalog::new();
        let a1 = c.intern("A");
        let a2 = c.intern("A");
        assert_eq!(a1, a2);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::from(3i64).as_int(), Some(3));
        assert_eq!(Value::from(3i64).as_float(), Some(3.0));
        assert_eq!(Value::from(2.5f64).as_float(), Some(2.5));
        assert_eq!(Value::from("x").as_str(), Some("x"));
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert_eq!(Value::from("x").as_int(), None);
    }

    #[test]
    fn combine_takes_max_time_and_concats_params() {
        let a = Occurrence::primitive(EventId(0), CentralTime(3), vec![1i64.into()]);
        let b = Occurrence::primitive(EventId(1), CentralTime(7), vec![2i64.into()]);
        let c = Occurrence::combine(EventId(9), &a, &b);
        assert_eq!(c.ty, EventId(9));
        assert_eq!(c.time, CentralTime(7));
        assert_eq!(c.params.len(), 2);
        assert_eq!(c.params[0].source, EventId(0));
        assert_eq!(c.params[1].source, EventId(1));
    }

    #[test]
    fn combine_all_over_three() {
        let a = Occurrence::bare(EventId(0), CentralTime(3));
        let b = Occurrence::bare(EventId(1), CentralTime(9));
        let c = Occurrence::bare(EventId(2), CentralTime(5));
        let m = Occurrence::combine_all(EventId(7), &[&a, &b, &c]);
        assert_eq!(m.time, CentralTime(9));
        assert_eq!(m.params.len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one part")]
    fn combine_all_empty_panics() {
        let _ = Occurrence::<CentralTime>::combine_all(EventId(0), &[]);
    }

    #[test]
    fn retyped() {
        let a = Occurrence::bare(EventId(0), CentralTime(3)).retyped(EventId(4));
        assert_eq!(a.ty, EventId(4));
    }
}
