//! Persistent worker pool for the sharded detector (`parallel` feature).
//!
//! PR 1's parallel path spawned one scoped thread per shard per batch,
//! paying thread-creation cost on every release round. This pool creates
//! its threads once and keeps them for the detector's lifetime; each round
//! the detector *moves* the shards a worker is pinned to into a [`Job`],
//! the worker feeds its shards and hands them back with keyed results,
//! and the detector reinstalls them and merges in the canonical order.
//! Because results are merged by `(trigger index, shard id)` — never by
//! completion order — the output is bit-for-bit identical to the serial
//! path no matter how many workers run or how they are scheduled.
//!
//! Hand-off runs on pre-sized lock-free SPSC rings ([`crate::spsc`]), one
//! job ring and one result ring per worker, instead of the former
//! `std::sync::mpsc` channels: a round dispatch is a slot write and a
//! release store per worker, with no allocation, no mutex and no futex
//! wake on the hot path. The pump collecting a round is the barrier.
//! Waits escalate spin → yield → nap ([`crate::spsc::Backoff`]), so an
//! idle pool costs ~nothing and an oversubscribed single-core machine
//! still makes progress; every backoff step taken on a full or empty
//! ring is counted in [`WorkerPool::ring_full_spins`].

use crate::event::Occurrence;
use crate::graph::FeedResult;
use crate::plan::PlanCell;
use crate::shard::{Shard, ShardId};
use crate::spsc::{ring, Backoff, Consumer, Producer};
use crate::time::EventTime;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Ring capacity per worker. The round protocol keeps at most one job and
/// one result outstanding per worker; the slack absorbs a round being
/// dispatched while the previous result is still being collected.
const RING_CAPACITY: usize = 4;

/// Per-shard feed results, keyed by trigger index (ascending — workers
/// scan the shared trigger slice in order).
pub(crate) type KeyedResults<T> = Vec<(ShardId, Vec<(usize, FeedResult<T>)>)>;

/// One worker's assignment for one round: the shards it owns this round
/// (moved in, moved back out in the result) and the round's shared
/// trigger sequence.
pub(crate) struct Job<T: EventTime> {
    pub(crate) shards: Vec<(ShardId, Shard<T>)>,
    /// Plan sharing components moved to this worker ([`PlanCell`]); empty
    /// for sharded-detector rounds.
    pub(crate) cells: Vec<PlanCell<T>>,
    pub(crate) triggers: Arc<[Occurrence<T>]>,
}

/// What a worker sends back after a round.
pub(crate) struct RoundResult<T: EventTime> {
    /// The shards moved back, in job order.
    pub(crate) shards: Vec<(ShardId, Shard<T>)>,
    /// The plan cells moved back, in job order.
    pub(crate) cells: Vec<PlanCell<T>>,
    /// The feed results for those shards and cells (a cell contributes one
    /// entry per definition it carries).
    pub(crate) results: KeyedResults<T>,
    /// Wall time this worker spent on the round, in nanoseconds.
    pub(crate) busy_ns: u64,
}

/// Long-lived worker threads executing shard rounds over SPSC rings.
/// Dropping the pool drops the job producers; each worker observes its
/// job ring closed and exits, and the pool joins every thread.
pub(crate) struct WorkerPool<T: EventTime> {
    job_txs: Vec<Producer<Job<T>>>,
    result_rxs: Vec<Consumer<RoundResult<T>>>,
    handles: Vec<JoinHandle<()>>,
    rounds: u64,
    busy_ns: u64,
    /// Backoff steps taken on full/empty rings, pump and workers combined.
    spins: Arc<AtomicU64>,
}

impl<T: EventTime> std::fmt::Debug for WorkerPool<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.job_txs.len())
            .field("rounds", &self.rounds)
            .field("busy_ns", &self.busy_ns)
            .finish()
    }
}

impl<T: EventTime> WorkerPool<T> {
    /// Spawn `workers` (≥ 1) persistent threads.
    pub(crate) fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let spins = Arc::new(AtomicU64::new(0));
        let mut job_txs = Vec::with_capacity(workers);
        let mut result_rxs = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (job_tx, job_rx) = ring::<Job<T>>(RING_CAPACITY);
            let (result_tx, result_rx) = ring::<RoundResult<T>>(RING_CAPACITY);
            job_txs.push(job_tx);
            result_rxs.push(result_rx);
            let worker_spins = Arc::clone(&spins);
            handles.push(std::thread::spawn(move || {
                worker_loop(job_rx, result_tx, worker_spins)
            }));
        }
        WorkerPool {
            job_txs,
            result_rxs,
            handles,
            rounds: 0,
            busy_ns: 0,
            spins,
        }
    }

    /// Number of worker threads.
    pub(crate) fn worker_count(&self) -> usize {
        self.job_txs.len()
    }

    /// Rounds dispatched so far.
    pub(crate) fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Total busy time across workers, in nanoseconds.
    pub(crate) fn busy_ns(&self) -> u64 {
        self.busy_ns
    }

    /// Backoff steps taken on full or empty rings so far (pump dispatch
    /// and collection plus worker result pushes).
    pub(crate) fn ring_full_spins(&self) -> u64 {
        self.spins.load(Ordering::Relaxed)
    }

    /// Dispatch one round (`(worker index, job)` pairs, one per engaged
    /// worker) and collect every result — the round barrier. Results are
    /// returned per engaged worker; callers must merge by shard/trigger
    /// key, never by position.
    pub(crate) fn run_round(&mut self, jobs: Vec<(usize, Job<T>)>) -> Vec<RoundResult<T>> {
        if jobs.is_empty() {
            return Vec::new();
        }
        self.rounds += 1;
        let mut engaged = Vec::with_capacity(jobs.len());
        for (w, job) in jobs {
            engaged.push(w);
            let mut pending = job;
            let mut backoff = Backoff::new();
            loop {
                match self.job_txs[w].push(pending) {
                    Ok(()) => break,
                    Err(back) => {
                        assert!(!self.job_txs[w].closed(), "pool worker exited");
                        pending = back;
                        self.spins.fetch_add(1, Ordering::Relaxed);
                        backoff.wait();
                    }
                }
            }
        }
        let mut out = Vec::with_capacity(engaged.len());
        for w in engaged {
            let mut backoff = Backoff::new();
            let r = loop {
                match self.result_rxs[w].pop() {
                    Some(r) => break r,
                    None => {
                        assert!(!self.result_rxs[w].closed(), "pool worker panicked");
                        self.spins.fetch_add(1, Ordering::Relaxed);
                        backoff.wait();
                    }
                }
            };
            self.busy_ns += r.busy_ns;
            out.push(r);
        }
        out
    }
}

/// One worker: pop jobs until the job ring closes, feed the moved shards
/// and plan cells against the shared triggers, push the keyed results.
fn worker_loop<T: EventTime>(
    job_rx: Consumer<Job<T>>,
    result_tx: Producer<RoundResult<T>>,
    spins: Arc<AtomicU64>,
) {
    let mut backoff = Backoff::new();
    loop {
        let Some(job) = job_rx.pop() else {
            if job_rx.closed() {
                return; // pool dropped
            }
            backoff.wait();
            continue;
        };
        backoff.reset();
        let started = Instant::now();
        let mut shards = Vec::with_capacity(job.shards.len());
        let mut results = Vec::with_capacity(job.shards.len());
        for (sid, mut shard) in job.shards {
            let mut keyed = Vec::new();
            for (k, occ) in job.triggers.iter().enumerate() {
                if shard.subscribed.contains(&occ.ty) {
                    keyed.push((k, shard.graph.feed_ref(occ)));
                }
            }
            results.push((sid, keyed));
            shards.push((sid, shard));
        }
        let mut cells = Vec::with_capacity(job.cells.len());
        for mut cell in job.cells {
            results.extend(cell.run(&job.triggers));
            cells.push(cell);
        }
        let busy_ns = started.elapsed().as_nanos() as u64;
        let mut pending = RoundResult {
            shards,
            cells,
            results,
            busy_ns,
        };
        let mut push_backoff = Backoff::new();
        loop {
            match result_tx.push(pending) {
                Ok(()) => break,
                Err(back) => {
                    if result_tx.closed() {
                        return; // pool dropped mid-round
                    }
                    pending = back;
                    spins.fetch_add(1, Ordering::Relaxed);
                    push_backoff.wait();
                }
            }
        }
    }
}

impl<T: EventTime> Drop for WorkerPool<T> {
    fn drop(&mut self) {
        self.job_txs.clear(); // closes the job rings
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}
