//! Persistent worker pool for the sharded detector (`parallel` feature).
//!
//! PR 1's parallel path spawned one scoped thread per shard per batch,
//! paying thread-creation cost on every release round. This pool creates
//! its threads once and keeps them for the detector's lifetime; each round
//! the detector *moves* the shards a worker is pinned to into a [`Job`]
//! sent over a channel, the worker feeds its shards and sends them back
//! with keyed results, and the detector reinstalls them and merges in the
//! canonical order. Because results are merged by `(trigger index, shard
//! id)` — never by completion order — the output is bit-for-bit identical
//! to the serial path no matter how many workers run or how they are
//! scheduled.

use crate::event::Occurrence;
use crate::graph::FeedResult;
use crate::plan::PlanCell;
use crate::shard::{Shard, ShardId};
use crate::time::EventTime;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Per-shard feed results, keyed by trigger index (ascending — workers
/// scan the shared trigger slice in order).
pub(crate) type KeyedResults<T> = Vec<(ShardId, Vec<(usize, FeedResult<T>)>)>;

/// One worker's assignment for one round: the shards it owns this round
/// (moved in, moved back out in the result) and the round's shared
/// trigger sequence.
pub(crate) struct Job<T: EventTime> {
    pub(crate) shards: Vec<(ShardId, Shard<T>)>,
    /// Plan sharing components moved to this worker ([`PlanCell`]); empty
    /// for sharded-detector rounds.
    pub(crate) cells: Vec<PlanCell<T>>,
    pub(crate) triggers: Arc<[Occurrence<T>]>,
}

/// What a worker sends back after a round.
pub(crate) struct RoundResult<T: EventTime> {
    /// The shards moved back, in job order.
    pub(crate) shards: Vec<(ShardId, Shard<T>)>,
    /// The plan cells moved back, in job order.
    pub(crate) cells: Vec<PlanCell<T>>,
    /// The feed results for those shards and cells (a cell contributes one
    /// entry per definition it carries).
    pub(crate) results: KeyedResults<T>,
    /// Wall time this worker spent on the round, in nanoseconds.
    pub(crate) busy_ns: u64,
}

/// Long-lived worker threads executing shard rounds. Workers block on
/// their job channel between rounds; dropping the pool closes the
/// channels, which terminates and joins every thread.
pub(crate) struct WorkerPool<T: EventTime> {
    senders: Vec<Sender<Job<T>>>,
    result_rx: Receiver<RoundResult<T>>,
    handles: Vec<JoinHandle<()>>,
    rounds: u64,
    busy_ns: u64,
}

impl<T: EventTime> std::fmt::Debug for WorkerPool<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.senders.len())
            .field("rounds", &self.rounds)
            .field("busy_ns", &self.busy_ns)
            .finish()
    }
}

impl<T: EventTime> WorkerPool<T> {
    /// Spawn `workers` (≥ 1) persistent threads.
    pub(crate) fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let (result_tx, result_rx) = channel::<RoundResult<T>>();
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = channel::<Job<T>>();
            senders.push(tx);
            let result_tx = result_tx.clone();
            handles.push(std::thread::spawn(move || {
                while let Ok(job) = rx.recv() {
                    let started = Instant::now();
                    let mut shards = Vec::with_capacity(job.shards.len());
                    let mut results = Vec::with_capacity(job.shards.len());
                    for (sid, mut shard) in job.shards {
                        let mut keyed = Vec::new();
                        for (k, occ) in job.triggers.iter().enumerate() {
                            if shard.subscribed.contains(&occ.ty) {
                                keyed.push((k, shard.graph.feed_ref(occ)));
                            }
                        }
                        results.push((sid, keyed));
                        shards.push((sid, shard));
                    }
                    let mut cells = Vec::with_capacity(job.cells.len());
                    for mut cell in job.cells {
                        results.extend(cell.run(&job.triggers));
                        cells.push(cell);
                    }
                    let busy_ns = started.elapsed().as_nanos() as u64;
                    if result_tx
                        .send(RoundResult {
                            shards,
                            cells,
                            results,
                            busy_ns,
                        })
                        .is_err()
                    {
                        break; // pool dropped mid-round
                    }
                }
            }));
        }
        WorkerPool {
            senders,
            result_rx,
            handles,
            rounds: 0,
            busy_ns: 0,
        }
    }

    /// Number of worker threads.
    pub(crate) fn worker_count(&self) -> usize {
        self.senders.len()
    }

    /// Rounds dispatched so far.
    pub(crate) fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Total busy time across workers, in nanoseconds.
    pub(crate) fn busy_ns(&self) -> u64 {
        self.busy_ns
    }

    /// Dispatch one round (`(worker index, job)` pairs, one per engaged
    /// worker) and collect every result. Results arrive in completion
    /// order; callers must merge by shard/trigger key, never by position.
    pub(crate) fn run_round(&mut self, jobs: Vec<(usize, Job<T>)>) -> Vec<RoundResult<T>> {
        let n = jobs.len();
        if n == 0 {
            return Vec::new();
        }
        self.rounds += 1;
        for (w, job) in jobs {
            self.senders[w].send(job).expect("pool worker exited");
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let r = self.result_rx.recv().expect("pool worker panicked");
            self.busy_ns += r.busy_ns;
            out.push(r);
        }
        out
    }
}

impl<T: EventTime> Drop for WorkerPool<T> {
    fn drop(&mut self) {
        self.senders.clear(); // closes the job channels
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}
