//! Site-local detection: composite events detected *at the sites*, their
//! set-valued timestamps propagated to the coordinator, and global
//! composites built on top of them — the paper's two-level architecture.

use decs_chronos::{Granularity, Nanos};
use decs_distrib::{Engine, EngineConfig};
use decs_simnet::{Scenario, ScenarioBuilder};
use decs_snoop::{Context, EventExpr as E};

fn scenario(sites: u32) -> Scenario {
    ScenarioBuilder::new(sites, 808)
        .global_granularity(Granularity::per_second(10).unwrap())
        .max_offset_ns(1_000_000)
        .build()
        .unwrap()
}

#[test]
fn local_composites_are_detected_at_sites() {
    let mut e = Engine::with_local(
        &scenario(2),
        EngineConfig::default(),
        &["req", "resp"],
        &[(
            "round_trip",
            E::seq(E::prim("req"), E::prim("resp")),
            Context::Chronicle,
        )],
        &[],
    )
    .unwrap();
    // One round trip on site 0, one on site 1 — each detected locally.
    e.inject(Nanos::from_secs(1), 0, "req", vec![]).unwrap();
    e.inject(Nanos::from_secs(2), 0, "resp", vec![]).unwrap();
    e.inject(Nanos::from_secs(3), 1, "req", vec![]).unwrap();
    e.inject(Nanos::from_secs(4), 1, "resp", vec![]).unwrap();
    e.run_for(Nanos::from_secs(6));
    assert_eq!(e.local_detections(0), 1);
    assert_eq!(e.local_detections(1), 1);
    // Locality: a req on site 0 and a resp on site 1 never pair —
    // each site's graph only sees its own events.
    let mut e2 = Engine::with_local(
        &scenario(2),
        EngineConfig::default(),
        &["req", "resp"],
        &[(
            "round_trip",
            E::seq(E::prim("req"), E::prim("resp")),
            Context::Chronicle,
        )],
        &[],
    )
    .unwrap();
    e2.inject(Nanos::from_secs(1), 0, "req", vec![]).unwrap();
    e2.inject(Nanos::from_secs(2), 1, "resp", vec![]).unwrap();
    e2.run_for(Nanos::from_secs(4));
    assert_eq!(e2.local_detections(0) + e2.local_detections(1), 0);
}

#[test]
fn global_composite_over_local_composites() {
    // Global: round_trip@site0 ; round_trip@site1 — a sequence of *local
    // composite* events, each carrying its own Max timestamp.
    let mut e = Engine::with_local(
        &scenario(2),
        EngineConfig::default(),
        &["req", "resp"],
        &[(
            "round_trip",
            E::seq(E::prim("req"), E::prim("resp")),
            Context::Chronicle,
        )],
        &[(
            "cascade",
            E::seq(E::prim("round_trip"), E::prim("round_trip")),
            Context::Chronicle,
        )],
    )
    .unwrap();
    e.inject(Nanos::from_secs(1), 0, "req", vec![]).unwrap();
    e.inject(Nanos::from_secs(2), 0, "resp", vec![]).unwrap();
    e.inject(Nanos::from_secs(3), 1, "req", vec![]).unwrap();
    e.inject(Nanos::from_secs(4), 1, "resp", vec![]).unwrap();
    let det = e.run_for(Nanos::from_secs(7));
    let cascades: Vec<_> = det.iter().filter(|d| d.name == "cascade").collect();
    assert_eq!(cascades.len(), 1, "detections: {det:?}");
    // The cascade's parameters accumulate all four constituents.
    assert_eq!(cascades[0].occ.params.len(), 4);
}

#[test]
fn concurrent_local_composites_do_not_form_a_global_sequence() {
    let mut e = Engine::with_local(
        &scenario(2),
        EngineConfig::default(),
        &["req", "resp"],
        &[(
            "round_trip",
            E::seq(E::prim("req"), E::prim("resp")),
            Context::Chronicle,
        )],
        &[(
            "cascade",
            E::seq(E::prim("round_trip"), E::prim("round_trip")),
            Context::Chronicle,
        )],
    )
    .unwrap();
    // Both round trips complete within the same global tick (100 ms):
    // their Max timestamps are concurrent → no cascade.
    e.inject(Nanos::from_millis(1000), 0, "req", vec![])
        .unwrap();
    e.inject(Nanos::from_millis(1030), 0, "resp", vec![])
        .unwrap();
    e.inject(Nanos::from_millis(1010), 1, "req", vec![])
        .unwrap();
    e.inject(Nanos::from_millis(1040), 1, "resp", vec![])
        .unwrap();
    let det = e.run_for(Nanos::from_secs(4));
    assert_eq!(e.local_detections(0), 1);
    assert_eq!(e.local_detections(1), 1);
    assert!(
        det.iter().all(|d| d.name != "cascade"),
        "concurrent local composites must not sequence: {det:?}"
    );
}

#[test]
fn global_and_over_locals_carries_multi_member_timestamp() {
    let mut e = Engine::with_local(
        &scenario(2),
        EngineConfig::default(),
        &["req", "resp"],
        &[(
            "round_trip",
            E::seq(E::prim("req"), E::prim("resp")),
            Context::Chronicle,
        )],
        &[(
            "both_sites_active",
            E::and(E::prim("round_trip"), E::prim("round_trip")),
            Context::Chronicle,
        )],
    )
    .unwrap();
    e.inject(Nanos::from_millis(1000), 0, "req", vec![])
        .unwrap();
    e.inject(Nanos::from_millis(1030), 0, "resp", vec![])
        .unwrap();
    e.inject(Nanos::from_millis(1010), 1, "req", vec![])
        .unwrap();
    e.inject(Nanos::from_millis(1040), 1, "resp", vec![])
        .unwrap();
    let det = e.run_for(Nanos::from_secs(4));
    let and_det: Vec<_> = det
        .iter()
        .filter(|d| d.name == "both_sites_active")
        .collect();
    assert_eq!(and_det.len(), 1);
    // The Max of two concurrent local timestamps keeps a member per site —
    // the paper's set-valued t_occ, produced by real sites over a network.
    assert_eq!(and_det[0].occ.time.len(), 2, "{}", and_det[0].occ.time);
}

#[test]
fn local_temporal_operator_uses_site_clock() {
    // Local `req + 5` (5 global ticks = 500 ms): fires at each site with
    // the site's own stamp.
    let mut e = Engine::with_local(
        &scenario(2),
        EngineConfig::default(),
        &["req"],
        &[(
            "request_timeout",
            E::plus(E::prim("req"), 5),
            Context::Chronicle,
        )],
        &[],
    )
    .unwrap();
    e.inject(Nanos::from_secs(1), 1, "req", vec![]).unwrap();
    let det = e.run_for(Nanos::from_secs(3));
    let timeouts: Vec<_> = det.iter().filter(|d| d.name == "request_timeout").collect();
    assert_eq!(timeouts.len(), 1);
    let member = timeouts[0].occ.time.members()[0];
    assert_eq!(member.site().get(), 1, "stamped by site 1's clock");
    // ≈ 1.5 s of site-1 clock time → global tick ≈ 15.
    assert!((14..=16).contains(&member.global().get()), "{member}");
}
