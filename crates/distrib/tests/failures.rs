//! Failure injection: crashed sites stall the stability rule (as they
//! must — a silent site could still hold earlier events) and eviction
//! restores progress.

use decs_chronos::{Granularity, Nanos};
use decs_distrib::{Engine, EngineConfig, ReleasePolicy};
use decs_simnet::{LinkConfig, Scenario, ScenarioBuilder};
use decs_snoop::{Context, EventExpr as E};

fn scenario(sites: u32) -> Scenario {
    ScenarioBuilder::new(sites, 31)
        .global_granularity(Granularity::per_second(10).unwrap())
        .max_offset_ns(1_000_000)
        .build()
        .unwrap()
}

fn seq_engine(sites: u32, policy: ReleasePolicy) -> Engine {
    Engine::new(
        &scenario(sites),
        EngineConfig {
            release_policy: policy,
            ..EngineConfig::default()
        },
        &["A", "B"],
        &[("X", E::seq(E::prim("A"), E::prim("B")), Context::Chronicle)],
    )
    .unwrap()
}

#[test]
fn crashed_site_stalls_stability() {
    let mut e = seq_engine(3, ReleasePolicy::Stable);
    // Site 2 dies immediately; sites 0 and 1 exchange a clean sequence.
    e.crash_site(Nanos::from_millis(1), 2);
    e.inject(Nanos::from_secs(1), 0, "A", vec![]).unwrap();
    e.inject(Nanos::from_secs(2), 1, "B", vec![]).unwrap();
    let det = e.run_for(Nanos::from_secs(5));
    // The events arrived but can never stabilize: site 2's watermark is
    // stuck at (or near) zero.
    assert!(det.is_empty(), "stability must stall on a silent site");
    assert_eq!(e.metrics().events_received, 2);
    assert_eq!(e.buffered(), 2);
}

#[test]
fn eviction_restores_progress() {
    let mut e = seq_engine(3, ReleasePolicy::Stable);
    e.crash_site(Nanos::from_millis(1), 2);
    e.inject(Nanos::from_secs(1), 0, "A", vec![]).unwrap();
    e.inject(Nanos::from_secs(2), 1, "B", vec![]).unwrap();
    e.run_for(Nanos::from_secs(4));
    // Operator notices the stall and evicts the dead site.
    e.evict_site(Nanos::from_secs(4), 2);
    let det = e.run_for(Nanos::from_secs(6));
    assert_eq!(det.len(), 1, "eviction must unblock the buffer");
    assert_eq!(e.buffered(), 0);
}

#[test]
fn crash_after_sending_preserves_its_events() {
    let mut e = seq_engine(2, ReleasePolicy::Stable);
    // Site 1 sends B then dies; site 0 stays alive.
    e.inject(Nanos::from_secs(1), 0, "A", vec![]).unwrap();
    e.inject(Nanos::from_secs(2), 1, "B", vec![]).unwrap();
    e.crash_site(Nanos::from_millis(2_100), 1);
    e.run_for(Nanos::from_secs(5));
    // Stuck: site 1's watermark froze around tick 21 < B's tick + 2.
    e.evict_site(Nanos::from_secs(5), 1);
    let det = e.run_for(Nanos::from_secs(6));
    assert_eq!(det.len(), 1, "the pre-crash event must still detect");
}

#[test]
fn immediate_policy_does_not_stall_but_is_timing_dependent() {
    let mut e = seq_engine(3, ReleasePolicy::Immediate);
    e.crash_site(Nanos::from_millis(1), 2);
    e.inject(Nanos::from_secs(1), 0, "A", vec![]).unwrap();
    e.inject(Nanos::from_secs(2), 1, "B", vec![]).unwrap();
    let det = e.run_for(Nanos::from_secs(5));
    // No stability wait: the detection happens despite the dead site…
    assert_eq!(det.len(), 1);
    // …and the buffer is never used.
    assert_eq!(e.buffered(), 0);
}

fn batched_seq_engine(sites: u32, batch_ms: u64) -> Engine {
    Engine::new(
        &scenario(sites),
        EngineConfig {
            batch_interval: Nanos::from_millis(batch_ms),
            ..EngineConfig::default()
        },
        &["A", "B"],
        &[("X", E::seq(E::prim("A"), E::prim("B")), Context::Chronicle)],
    )
    .unwrap()
}

#[test]
fn crash_mid_batch_loses_pending_events_without_wedging() {
    // 100 ms batch interval: flushes land at 0.0, 0.1, 0.2 … s. Site 1's B
    // is injected at 2.055 s (buffered for the 2.1 s flush) and the site
    // crashes at 2.07 s — before that flush — so B dies in the site's
    // pending buffer and never reaches the coordinator. Had it been
    // flushed, A (g=10) → B (g=20) would have detected X.
    let mut e = batched_seq_engine(2, 100);
    e.inject(Nanos::from_secs(1), 0, "A", vec![]).unwrap();
    e.inject(Nanos::from_millis(2_055), 1, "B", vec![]).unwrap();
    e.crash_site(Nanos::from_millis(2_070), 1);
    // A second A after the crash: its tick (25) can never stabilize
    // against the dead site's stuck watermark (≈ 20), so it wedges the
    // stability buffer until the operator evicts.
    e.inject(Nanos::from_millis(2_500), 0, "A", vec![]).unwrap();
    e.run_for(Nanos::from_secs(5));
    // Both As arrived, B did not; the late A is stalled.
    assert_eq!(e.metrics().events_received, 2);
    assert_eq!(e.buffered(), 1);
    // Eviction must drain the buffer cleanly — no detection (B was lost),
    // but no wedged notification either.
    e.evict_site(Nanos::from_secs(6), 1);
    let det = e.run_for(Nanos::from_secs(3));
    assert!(det.is_empty(), "a lost constituent must not detect");
    assert_eq!(e.buffered(), 0, "eviction must not wedge the buffer");
}

#[test]
fn evict_with_flushed_batches_buffered_preserves_them() {
    // Site 1's B is injected at 2.05 s and flushed in the 2.1 s batch;
    // the site crashes *after* that flush, at 2.15 s. Everything already
    // flushed is buffered at the coordinator awaiting the dead site's
    // watermark; evicting while those batch-delivered notifications sit
    // in the stability buffer must release them and detect X.
    let mut e = batched_seq_engine(2, 100);
    e.inject(Nanos::from_secs(1), 0, "A", vec![]).unwrap();
    e.inject(Nanos::from_millis(2_050), 1, "B", vec![]).unwrap();
    e.crash_site(Nanos::from_millis(2_150), 1);
    e.run_for(Nanos::from_secs(5));
    // A (g=10) stabilized long before the crash; B (g=20) is stuck behind
    // its own site's frozen watermark (≈ 21).
    assert_eq!(e.metrics().events_received, 2);
    assert_eq!(e.buffered(), 1, "stability must stall on the silent site");
    e.evict_site(Nanos::from_secs(6), 1);
    let det = e.run_for(Nanos::from_secs(3));
    assert_eq!(det.len(), 1, "flushed-before-crash events must detect");
    assert_eq!(det[0].name, "X");
    assert_eq!(e.buffered(), 0);
}

#[test]
fn evicting_a_live_site_refuses_new_events_but_keeps_buffered_ones() {
    let mut e = seq_engine(3, ReleasePolicy::Stable);
    // A clean pre-evict pair: A (site 0) then B (site 1).
    e.inject(Nanos::from_secs(1), 0, "A", vec![]).unwrap();
    e.inject(Nanos::from_secs(2), 1, "B", vec![]).unwrap();
    // Evict site 1 while it is alive and still heartbeating.
    e.evict_site(Nanos::from_millis(2_500), 1);
    // Everything site 1 sends from now on is refused at the coordinator…
    e.inject(Nanos::from_secs(3), 1, "B", vec![]).unwrap();
    e.inject(Nanos::from_secs(4), 0, "A", vec![]).unwrap();
    e.inject(Nanos::from_secs(5), 1, "B", vec![]).unwrap();
    let det = e.run_for(Nanos::from_secs(10));
    // …so only the pre-evict pair detects: the post-evict Bs would have
    // completed two more sequences.
    assert_eq!(det.len(), 1, "only the pre-evict pair may detect");
    let m = e.metrics();
    assert_eq!(m.evict_refused, 2, "both post-evict Bs are refused");
    // The evicted site's watermark is out of the stability minimum: the
    // late A (site 0) still releases and the buffer drains.
    assert_eq!(e.buffered(), 0, "evicted watermark must not gate stability");
    assert_eq!(m.events_received, 3);
}

#[test]
fn retransmitted_copy_of_delayed_event_is_deduplicated() {
    // Crash-mid-retransmission: the link is so slow (300 ms each way) that
    // the site's 200 ms retransmission timer fires while the original copy
    // is still *in flight* — delayed, not dropped. The site then crashes.
    // The coordinator receives both copies and must release exactly once.
    let mut e = seq_engine(2, ReleasePolicy::Stable);
    e.set_link_pair(
        1,
        LinkConfig {
            base_latency_ns: 300_000_000,
            jitter_ns: 0,
            fifo: true,
            ..LinkConfig::lan()
        },
    );
    e.inject(Nanos::from_secs(1), 0, "A", vec![]).unwrap();
    e.inject(Nanos::from_secs(2), 1, "B", vec![]).unwrap();
    // Die after at least one retransmission round has re-sent B
    // (B is unacked for ≥ 600 ms round-trip ≫ the 200 ms timeout).
    e.crash_site(Nanos::from_millis(2_450), 1);
    let det = e.run_for(Nanos::from_secs(10));
    assert_eq!(det.len(), 1, "the duplicate copy must not double-detect");
    let m = e.metrics();
    assert_eq!(m.events_received, 2, "duplicates never enter the buffer");
    assert!(
        m.retransmits >= 1,
        "the slow link must force retransmission"
    );
    assert!(
        m.duplicates_dropped >= 1,
        "the redundant copy is counted and ignored"
    );
}

#[test]
fn injections_to_crashed_site_are_dropped() {
    let mut e = seq_engine(2, ReleasePolicy::Stable);
    e.crash_site(Nanos::from_millis(1), 0);
    e.inject(Nanos::from_secs(1), 0, "A", vec![]).unwrap();
    e.run_for(Nanos::from_secs(2));
    assert_eq!(e.metrics().events_received, 0);
}
