//! Failure injection: crashed sites stall the stability rule (as they
//! must — a silent site could still hold earlier events) and eviction
//! restores progress.

use decs_chronos::{Granularity, Nanos};
use decs_distrib::{Engine, EngineConfig, ReleasePolicy};
use decs_simnet::{Scenario, ScenarioBuilder};
use decs_snoop::{Context, EventExpr as E};

fn scenario(sites: u32) -> Scenario {
    ScenarioBuilder::new(sites, 31)
        .global_granularity(Granularity::per_second(10).unwrap())
        .max_offset_ns(1_000_000)
        .build()
        .unwrap()
}

fn seq_engine(sites: u32, policy: ReleasePolicy) -> Engine {
    Engine::new(
        &scenario(sites),
        EngineConfig {
            release_policy: policy,
            ..EngineConfig::default()
        },
        &["A", "B"],
        &[(
            "X",
            E::seq(E::prim("A"), E::prim("B")),
            Context::Chronicle,
        )],
    )
    .unwrap()
}

#[test]
fn crashed_site_stalls_stability() {
    let mut e = seq_engine(3, ReleasePolicy::Stable);
    // Site 2 dies immediately; sites 0 and 1 exchange a clean sequence.
    e.crash_site(Nanos::from_millis(1), 2);
    e.inject(Nanos::from_secs(1), 0, "A", vec![]).unwrap();
    e.inject(Nanos::from_secs(2), 1, "B", vec![]).unwrap();
    let det = e.run_for(Nanos::from_secs(5));
    // The events arrived but can never stabilize: site 2's watermark is
    // stuck at (or near) zero.
    assert!(det.is_empty(), "stability must stall on a silent site");
    assert_eq!(e.metrics().events_received, 2);
    assert_eq!(e.buffered(), 2);
}

#[test]
fn eviction_restores_progress() {
    let mut e = seq_engine(3, ReleasePolicy::Stable);
    e.crash_site(Nanos::from_millis(1), 2);
    e.inject(Nanos::from_secs(1), 0, "A", vec![]).unwrap();
    e.inject(Nanos::from_secs(2), 1, "B", vec![]).unwrap();
    e.run_for(Nanos::from_secs(4));
    // Operator notices the stall and evicts the dead site.
    e.evict_site(Nanos::from_secs(4), 2);
    let det = e.run_for(Nanos::from_secs(6));
    assert_eq!(det.len(), 1, "eviction must unblock the buffer");
    assert_eq!(e.buffered(), 0);
}

#[test]
fn crash_after_sending_preserves_its_events() {
    let mut e = seq_engine(2, ReleasePolicy::Stable);
    // Site 1 sends B then dies; site 0 stays alive.
    e.inject(Nanos::from_secs(1), 0, "A", vec![]).unwrap();
    e.inject(Nanos::from_secs(2), 1, "B", vec![]).unwrap();
    e.crash_site(Nanos::from_millis(2_100), 1);
    e.run_for(Nanos::from_secs(5));
    // Stuck: site 1's watermark froze around tick 21 < B's tick + 2.
    e.evict_site(Nanos::from_secs(5), 1);
    let det = e.run_for(Nanos::from_secs(6));
    assert_eq!(det.len(), 1, "the pre-crash event must still detect");
}

#[test]
fn immediate_policy_does_not_stall_but_is_timing_dependent() {
    let mut e = seq_engine(3, ReleasePolicy::Immediate);
    e.crash_site(Nanos::from_millis(1), 2);
    e.inject(Nanos::from_secs(1), 0, "A", vec![]).unwrap();
    e.inject(Nanos::from_secs(2), 1, "B", vec![]).unwrap();
    let det = e.run_for(Nanos::from_secs(5));
    // No stability wait: the detection happens despite the dead site…
    assert_eq!(det.len(), 1);
    // …and the buffer is never used.
    assert_eq!(e.buffered(), 0);
}

#[test]
fn injections_to_crashed_site_are_dropped() {
    let mut e = seq_engine(2, ReleasePolicy::Stable);
    e.crash_site(Nanos::from_millis(1), 0);
    e.inject(Nanos::from_secs(1), 0, "A", vec![]).unwrap();
    e.run_for(Nanos::from_secs(2));
    assert_eq!(e.metrics().events_received, 0);
}
