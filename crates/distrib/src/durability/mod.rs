//! Coordinator durability: write-ahead log, operator-state snapshots, and
//! crash recovery.
//!
//! The distributed detector's correctness story (release order is a pure
//! function of the workload) extends to crashes: if the coordinator's
//! nondeterministic inputs are logged before their effects apply, a
//! restarted coordinator that replays the log arrives at bit-identical
//! state — and therefore emits bit-identical detections — to one that
//! never crashed. This module supplies the three pieces:
//!
//! * [`codec`] — a total, panic-free binary codec with CRC-32 framing;
//! * [`wal`] — the append-only log of coordinator inputs, with torn-tail
//!   detection and truncation on resume;
//! * [`snapshot`] — periodic watermark-aligned checkpoints so replay cost
//!   is bounded by the WAL suffix, not the run length;
//! * [`site_wal`] — the site-side log of sequence allocations, acks and
//!   staged batch events, so a crashed **site** recovers its unacked send
//!   window and resumes retransmission (see `Msg::Hello` for the rejoin
//!   handshake it feeds).
//!
//! Inputs the coordinator receives but has not yet *consumed in order*
//! (parked out-of-order messages) are outside the durability boundary on
//! purpose: the ack/retransmit protocol already guarantees their
//! redelivery, because the coordinator only acknowledges the in-order
//! prefix it has logged. See `tests/prop_recovery.rs` for the
//! kill-anywhere replay-equivalence suite built on these pieces.

pub mod codec;
pub mod site_wal;
pub mod snapshot;
pub mod wal;

pub use codec::{crc32, from_bytes, to_bytes, CodecError, Decode, Encode, Reader};
pub use site_wal::{
    compaction_records, fold_records, recover_site_state, SiteWalRecord, SiteWalState,
};
pub use snapshot::{
    ArmedTimer, BufferedNotification, CoordinatorSnapshot, PendingDetection, SnapshotStore,
};
pub use wal::{
    frame_record, read_wal, read_wal_as, scan_bytes, scan_bytes_as, WalRecord, WalScan, WalSink,
    WalTail, WalWriter, WAL_FILE,
};
