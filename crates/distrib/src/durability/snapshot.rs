//! Watermark-aligned snapshots of the coordinator's full recoverable
//! state.
//!
//! A snapshot is taken at the end of a release round — a quiescent point:
//! the detector has no half-processed batch, the stability buffer holds
//! exactly the not-yet-stable notifications, and the garbage collector has
//! just run. The snapshot records how many WAL records preceded it, so
//! recovery = `restore(snapshot)` + `replay(wal[snapshot.wal_records..])`.
//!
//! Parked (out-of-order) messages are deliberately **excluded**: the
//! cumulative-ack protocol only acknowledges the in-order prefix, so a
//! parked message is by construction unacked at its site and will be
//! retransmitted to the recovered coordinator. This keeps the invariant
//! *acked ⇒ in the WAL; unacked ⇒ retransmitted* — nothing is ever owed
//! to both or neither.
//!
//! Snapshot files are written atomically (temp file + rename) as
//! `snap-{wal_records:020}.bin` with a whole-payload CRC-32 header; the
//! store keeps the two newest and prunes the rest. Recovery picks the
//! newest *valid* snapshot whose `wal_records` does not exceed the valid
//! WAL prefix — a torn log can be shorter than the newest snapshot
//! believed, in which case the previous snapshot (or genesis) is used.

use super::codec::{crc32, from_bytes, to_bytes, CodecError, Decode, Encode, Reader};
use crate::metrics::Metrics;
use decs_core::CompositeTimestamp;
use decs_snoop::{DetectorState, Occurrence};
use std::io;
use std::path::{Path, PathBuf};

/// One entry of the coordinator's stability (reassembly → release) buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct BufferedNotification {
    /// `max_global` component of the canonical release key.
    pub max_global: u64,
    /// Site component of the canonical release key.
    pub site: u32,
    /// Arrival index component of the canonical release key.
    pub arrival: u64,
    /// The buffered occurrence.
    pub occ: Occurrence<CompositeTimestamp>,
    /// True time the notification arrived, for stability-latency metrics.
    pub arrived_ns: u64,
}

impl Encode for BufferedNotification {
    fn encode(&self, out: &mut Vec<u8>) {
        self.max_global.encode(out);
        self.site.encode(out);
        self.arrival.encode(out);
        self.occ.encode(out);
        self.arrived_ns.encode(out);
    }
}
impl Decode for BufferedNotification {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(BufferedNotification {
            max_global: u64::decode(r)?,
            site: u32::decode(r)?,
            arrival: u64::decode(r)?,
            occ: Occurrence::decode(r)?,
            arrived_ns: u64::decode(r)?,
        })
    }
}

/// A detector timer the coordinator had armed (and not yet seen fire) at
/// snapshot time. Recovery re-arms each one at `max(due_ns, now)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArmedTimer {
    /// Simulation timer tag.
    pub tag: u64,
    /// Owning detector shard (`ShardId` is `usize`; stored as `u64`).
    pub shard: u64,
    /// Detector-side timer id within the shard.
    pub timer: u64,
    /// Absolute true time the timer is due, nanoseconds.
    pub due_ns: u64,
}

impl Encode for ArmedTimer {
    fn encode(&self, out: &mut Vec<u8>) {
        self.tag.encode(out);
        self.shard.encode(out);
        self.timer.encode(out);
        self.due_ns.encode(out);
    }
}
impl Decode for ArmedTimer {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(ArmedTimer {
            tag: u64::decode(r)?,
            shard: u64::decode(r)?,
            timer: u64::decode(r)?,
            due_ns: u64::decode(r)?,
        })
    }
}

/// A detection the coordinator had produced but the engine had not yet
/// drained at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct PendingDetection {
    /// The composite occurrence.
    pub occ: Occurrence<CompositeTimestamp>,
    /// True time of detection, nanoseconds.
    pub detected_at_ns: u64,
}

impl Encode for PendingDetection {
    fn encode(&self, out: &mut Vec<u8>) {
        self.occ.encode(out);
        self.detected_at_ns.encode(out);
    }
}
impl Decode for PendingDetection {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(PendingDetection {
            occ: Occurrence::decode(r)?,
            detected_at_ns: u64::decode(r)?,
        })
    }
}

/// Everything needed to rebuild a coordinator, minus what the WAL suffix
/// and the sites' retransmissions re-supply.
#[derive(Debug, Clone, PartialEq)]
pub struct CoordinatorSnapshot {
    /// Number of WAL records already applied when this snapshot was taken.
    /// Recovery replays the log from this offset.
    pub wal_records: u64,
    /// Operator buffer state of the detection backend.
    pub detector: DetectorState<CompositeTimestamp>,
    /// Per-site stream reassembly state: `(next_seq, arrivals, evicted,
    /// epoch)`. Parked messages are intentionally absent (see module
    /// docs).
    pub streams: Vec<(u64, u64, bool, u64)>,
    /// Per-site watermarks of the stability tracker.
    pub watermarks: Vec<u64>,
    /// The stability buffer, in canonical release order.
    pub buffer: Vec<BufferedNotification>,
    /// Armed, un-fired detector timers.
    pub timers: Vec<ArmedTimer>,
    /// Next simulation timer tag to mint.
    pub next_tag: u64,
    /// Detections produced but not yet drained by the engine.
    pub detections: Vec<PendingDetection>,
    /// Total detections ever drained (so replayed `Drained` records and
    /// post-recovery drains stay aligned).
    pub drained: u64,
    /// Metrics as of the snapshot (recovery restores them and then adds
    /// replay effects, keeping counters consistent with a crash-free run
    /// up to redelivery noise).
    pub metrics: Metrics,
    /// Low-watermark of the last operator-buffer GC round.
    pub last_gc_low: u64,
    /// Per-site stall detector state: `(last_wm, stalled_checks, suspect)`.
    pub stall: Vec<(u64, u64, bool)>,
    /// High-water mark of the canonical release order (largest released
    /// max-global, advanced by GC too) — the stale-refusal horizon.
    pub release_horizon: u64,
}

impl Encode for CoordinatorSnapshot {
    fn encode(&self, out: &mut Vec<u8>) {
        self.wal_records.encode(out);
        self.detector.encode(out);
        self.streams.encode(out);
        self.watermarks.encode(out);
        self.buffer.encode(out);
        self.timers.encode(out);
        self.next_tag.encode(out);
        self.detections.encode(out);
        self.drained.encode(out);
        self.metrics.encode(out);
        self.last_gc_low.encode(out);
        self.stall.encode(out);
        self.release_horizon.encode(out);
    }
}
impl Decode for CoordinatorSnapshot {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(CoordinatorSnapshot {
            wal_records: u64::decode(r)?,
            detector: DetectorState::decode(r)?,
            streams: Vec::decode(r)?,
            watermarks: Vec::decode(r)?,
            buffer: Vec::decode(r)?,
            timers: Vec::decode(r)?,
            next_tag: u64::decode(r)?,
            detections: Vec::decode(r)?,
            drained: u64::decode(r)?,
            metrics: Metrics::decode(r)?,
            last_gc_low: u64::decode(r)?,
            stall: Vec::decode(r)?,
            release_horizon: u64::decode(r)?,
        })
    }
}

/// How many snapshot files to retain (newest first).
const KEEP: usize = 2;

/// Directory-backed snapshot store.
#[derive(Debug)]
pub struct SnapshotStore {
    dir: PathBuf,
}

impl SnapshotStore {
    /// Open (creating if necessary) the store in `dir`.
    pub fn open(dir: &Path) -> io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        Ok(SnapshotStore {
            dir: dir.to_path_buf(),
        })
    }

    /// Delete every snapshot file — the fresh-start (`create`) path.
    pub fn reset(&self) -> io::Result<()> {
        for (_, path) in self.list()? {
            std::fs::remove_file(path)?;
        }
        Ok(())
    }

    fn list(&self) -> io::Result<Vec<(u64, PathBuf)>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(rest) = name.strip_prefix("snap-") {
                if let Some(num) = rest.strip_suffix(".bin") {
                    if let Ok(n) = num.parse::<u64>() {
                        out.push((n, entry.path()));
                    }
                }
            }
        }
        out.sort();
        Ok(out)
    }

    /// Persist `snap` atomically and prune all but the [`KEEP`] newest.
    pub fn save(&self, snap: &CoordinatorSnapshot) -> io::Result<()> {
        let payload = to_bytes(snap);
        let mut bytes = Vec::with_capacity(payload.len() + 4);
        bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        let final_path = self.dir.join(format!("snap-{:020}.bin", snap.wal_records));
        let tmp_path = self.dir.join("snap.tmp");
        std::fs::write(&tmp_path, &bytes)?;
        std::fs::rename(&tmp_path, &final_path)?;
        let listed = self.list()?;
        if listed.len() > KEEP {
            for (_, path) in &listed[..listed.len() - KEEP] {
                std::fs::remove_file(path)?;
            }
        }
        Ok(())
    }

    /// Load the newest valid snapshot whose `wal_records` is ≤
    /// `max_wal_records` (the valid WAL prefix length). Corrupt or
    /// too-new snapshot files are skipped, not fatal: the WAL alone can
    /// always rebuild the coordinator from genesis.
    pub fn load_best(&self, max_wal_records: u64) -> io::Result<Option<CoordinatorSnapshot>> {
        for (n, path) in self.list()?.into_iter().rev() {
            if n > max_wal_records {
                continue;
            }
            let bytes = std::fs::read(&path)?;
            if bytes.len() < 4 {
                continue;
            }
            let crc = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
            let payload = &bytes[4..];
            if crc32(payload) != crc {
                continue;
            }
            match from_bytes::<CoordinatorSnapshot>(payload) {
                Ok(snap) if snap.wal_records == n => return Ok(Some(snap)),
                _ => continue,
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decs_snoop::PlanState;

    fn sample(wal_records: u64) -> CoordinatorSnapshot {
        CoordinatorSnapshot {
            wal_records,
            detector: DetectorState::Plan(PlanState {
                nodes: Vec::new(),
                execs: Vec::new(),
                defs: Vec::new(),
            }),
            streams: vec![(3, 5, false, 0), (0, 0, true, 2)],
            watermarks: vec![4, u64::MAX],
            buffer: Vec::new(),
            timers: vec![ArmedTimer {
                tag: 1,
                shard: 0,
                timer: 2,
                due_ns: 9_000,
            }],
            next_tag: 2,
            detections: Vec::new(),
            drained: 7,
            metrics: Metrics::default(),
            last_gc_low: 1,
            stall: vec![(4, 0, false), (0, 3, true)],
            release_horizon: 2,
        }
    }

    #[test]
    fn store_roundtrip_prune_and_fallback() {
        let dir = std::env::temp_dir().join(format!("decs-snap-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = SnapshotStore::open(&dir).unwrap();
        store.save(&sample(10)).unwrap();
        store.save(&sample(20)).unwrap();
        store.save(&sample(30)).unwrap();
        // Pruned to the two newest.
        assert_eq!(store.list().unwrap().len(), 2);
        // Newest within budget wins.
        assert_eq!(store.load_best(u64::MAX).unwrap().unwrap().wal_records, 30);
        // A WAL torn back below the newest snapshot falls back to the
        // previous one...
        assert_eq!(store.load_best(25).unwrap().unwrap().wal_records, 20);
        // ...and below every snapshot means genesis replay.
        assert!(store.load_best(5).unwrap().is_none());
        // A corrupted newest snapshot is skipped, not fatal.
        let newest = store.list().unwrap().last().unwrap().1.clone();
        let mut bytes = std::fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&newest, &bytes).unwrap();
        assert_eq!(store.load_best(u64::MAX).unwrap().unwrap().wal_records, 20);
        store.reset().unwrap();
        assert!(store.load_best(u64::MAX).unwrap().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
