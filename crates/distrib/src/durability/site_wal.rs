//! Per-site write-ahead log: crash-recoverable outbound state.
//!
//! A site's contribution to end-to-end correctness is its *unacked send
//! window*: every sequence number it allocated must eventually be
//! delivered, or the coordinator's in-order frontier stalls forever. With
//! site durability on, each site logs (and syncs) every allocation
//! **before** the message leaves, plus every cumulative ack and every
//! event staged for a future batch. Recovery folds the log back into
//! exactly the retransmit buffer, sequence counter and pending batch the
//! crashed incarnation held — so the restarted site resumes retransmission
//! with no holes in the sequence space.
//!
//! The log shares the coordinator WAL's frame format and torn-tail
//! discipline ([`super::wal`]); only the record type differs. Each site
//! logs into its own subdirectory (`<wal_dir>/site-<i>`), so coordinator
//! and site logs never interleave.
//!
//! Unlike the coordinator's batched fsync, sites sync **per append**: the
//! invariant "logged before sent" is only worth having if the log entry is
//! durable by the time the message is observable. The write amplification
//! is bounded by the site's send rate, which batching already throttles.

use super::codec::{CodecError, Decode, Encode, Reader};
use super::wal::{read_wal_as, WalScan};
use crate::protocol::Msg;
use decs_core::CompositeTimestamp;
use decs_snoop::Occurrence;
use std::collections::BTreeMap;
use std::io;
use std::path::Path;

/// One durable site-side input.
#[derive(Debug, Clone, PartialEq)]
pub enum SiteWalRecord {
    /// The site (re)started into incarnation `epoch`. Written once at the
    /// head of every incarnation's suffix; recovery takes the maximum.
    Epoch {
        /// The incarnation epoch.
        epoch: u64,
    },
    /// A sequence number was allocated to `msg` and the message is about
    /// to be sent. Logged *before* the send, so the recovered retransmit
    /// buffer is a superset of what the coordinator might have seen.
    Sent {
        /// The message, verbatim (its own `seq` field is the allocation).
        msg: Msg,
    },
    /// A cumulative acknowledgement for everything below `cum_seq` was
    /// accepted; the retransmit buffer was trimmed.
    Acked {
        /// The next sequence number the coordinator expects.
        cum_seq: u64,
    },
    /// An occurrence was staged into the pending batch (batching mode
    /// only). A later `Sent { msg: Msg::Batch { .. } }` consumes the whole
    /// staged set.
    Staged {
        /// The stamped occurrence awaiting the next flush.
        occ: Occurrence<CompositeTimestamp>,
    },
}

impl Encode for SiteWalRecord {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            SiteWalRecord::Epoch { epoch } => {
                out.push(0);
                epoch.encode(out);
            }
            SiteWalRecord::Sent { msg } => {
                out.push(1);
                msg.encode(out);
            }
            SiteWalRecord::Acked { cum_seq } => {
                out.push(2);
                cum_seq.encode(out);
            }
            SiteWalRecord::Staged { occ } => {
                out.push(3);
                occ.encode(out);
            }
        }
    }
}

impl Decode for SiteWalRecord {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match u8::decode(r)? {
            0 => Ok(SiteWalRecord::Epoch {
                epoch: u64::decode(r)?,
            }),
            1 => Ok(SiteWalRecord::Sent {
                msg: Msg::decode(r)?,
            }),
            2 => Ok(SiteWalRecord::Acked {
                cum_seq: u64::decode(r)?,
            }),
            3 => Ok(SiteWalRecord::Staged {
                occ: Occurrence::decode(r)?,
            }),
            _ => Err(CodecError::Invalid("SiteWalRecord tag")),
        }
    }
}

/// The outbound state a site log folds back into.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct SiteWalState {
    /// Highest incarnation epoch recorded (the crashed incarnation's).
    pub epoch: u64,
    /// Next sequence number to allocate: one past every allocation and at
    /// least every ack.
    pub next_seq: u64,
    /// Sent-but-unacked messages by sequence number — the retransmit
    /// buffer the crashed incarnation still owed the coordinator.
    pub retx: BTreeMap<u64, Msg>,
    /// Occurrences staged for a batch that never flushed.
    pub staged: Vec<Occurrence<CompositeTimestamp>>,
}

/// Fold a record sequence into recovered outbound state. Pure — exposed
/// separately from [`recover_site_state`] so tests can drive it with
/// hand-built logs.
pub fn fold_records(records: &[SiteWalRecord]) -> SiteWalState {
    let mut st = SiteWalState::default();
    for rec in records {
        match rec {
            SiteWalRecord::Epoch { epoch } => st.epoch = st.epoch.max(*epoch),
            SiteWalRecord::Sent { msg } => {
                let seq = match msg {
                    Msg::Event { seq, .. }
                    | Msg::Heartbeat { seq, .. }
                    | Msg::Batch { seq, .. }
                    | Msg::Hello { seq, .. } => *seq,
                    // Only sequence-numbered messages are ever logged.
                    _ => continue,
                };
                st.next_seq = st.next_seq.max(seq + 1);
                if matches!(msg, Msg::Batch { .. }) {
                    // The flush consumed everything staged so far.
                    st.staged.clear();
                }
                st.retx.insert(seq, msg.clone());
            }
            SiteWalRecord::Acked { cum_seq } => {
                // An ack also proves allocations below it happened, even
                // if their Sent frames sat in a torn tail.
                st.next_seq = st.next_seq.max(*cum_seq);
                st.retx = st.retx.split_off(cum_seq);
            }
            SiteWalRecord::Staged { occ } => st.staged.push(occ.clone()),
        }
    }
    st
}

/// Read, scan and fold the site log in `dir`. A missing log folds to the
/// default (fresh-start) state. The scan's torn/corrupt tail is discarded
/// exactly as for the coordinator; the caller resumes the writer at
/// `valid_len`.
pub fn recover_site_state(dir: &Path) -> io::Result<(SiteWalState, WalScan<SiteWalRecord>)> {
    let scan = read_wal_as::<SiteWalRecord>(dir)?;
    let state = fold_records(&scan.records);
    Ok((state, scan))
}

/// The compaction image of recovered state: one `Epoch`, one `Acked`
/// baseline, one `Sent` per retransmit entry, one `Staged` per pending
/// occurrence. A restarted site rewrites its log to this instead of
/// replaying history forever.
pub fn compaction_records(st: &SiteWalState) -> Vec<SiteWalRecord> {
    let mut out = Vec::with_capacity(2 + st.retx.len() + st.staged.len());
    out.push(SiteWalRecord::Epoch { epoch: st.epoch });
    let acked = st.retx.keys().next().copied().unwrap_or(st.next_seq);
    out.push(SiteWalRecord::Acked { cum_seq: acked });
    for msg in st.retx.values() {
        out.push(SiteWalRecord::Sent { msg: msg.clone() });
    }
    for occ in &st.staged {
        out.push(SiteWalRecord::Staged { occ: occ.clone() });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durability::wal::{frame_record, scan_bytes_as, WalTail};
    use decs_core::cts;
    use decs_snoop::EventId;

    fn ev(seq: u64, epoch: u64, g: u64) -> Msg {
        Msg::Event {
            seq,
            epoch,
            occ: Occurrence::bare(EventId(1), cts(&[(0, g, g * 10)])),
        }
    }

    #[test]
    fn record_roundtrip() {
        let recs = vec![
            SiteWalRecord::Epoch { epoch: 3 },
            SiteWalRecord::Sent { msg: ev(5, 3, 9) },
            SiteWalRecord::Acked { cum_seq: 6 },
            SiteWalRecord::Staged {
                occ: Occurrence::bare(EventId(2), cts(&[(1, 4, 40)])),
            },
        ];
        let mut image = Vec::new();
        for r in &recs {
            image.extend_from_slice(&frame_record(r));
        }
        let scan = scan_bytes_as::<SiteWalRecord>(&image);
        assert_eq!(scan.records, recs);
        assert_eq!(scan.tail, WalTail::Clean);
    }

    #[test]
    fn fold_rebuilds_unacked_window() {
        let st = fold_records(&[
            SiteWalRecord::Epoch { epoch: 0 },
            SiteWalRecord::Sent { msg: ev(0, 0, 1) },
            SiteWalRecord::Sent { msg: ev(1, 0, 2) },
            SiteWalRecord::Sent { msg: ev(2, 0, 3) },
            SiteWalRecord::Acked { cum_seq: 2 },
            SiteWalRecord::Sent { msg: ev(3, 0, 4) },
        ]);
        assert_eq!(st.next_seq, 4);
        assert_eq!(st.retx.keys().copied().collect::<Vec<_>>(), vec![2, 3]);
        assert!(st.staged.is_empty());
    }

    #[test]
    fn ack_beyond_sent_frames_advances_next_seq() {
        // Sent frames 0..3 were lost to a torn tail, but the ack proves
        // they existed and were delivered: recovery must not re-allocate.
        let st = fold_records(&[SiteWalRecord::Acked { cum_seq: 3 }]);
        assert_eq!(st.next_seq, 3);
        assert!(st.retx.is_empty());
    }

    #[test]
    fn batch_send_consumes_staged() {
        let occ1 = Occurrence::bare(EventId(1), cts(&[(0, 1, 10)]));
        let occ2 = Occurrence::bare(EventId(1), cts(&[(0, 2, 20)]));
        let st = fold_records(&[
            SiteWalRecord::Staged { occ: occ1.clone() },
            SiteWalRecord::Staged { occ: occ2 },
            SiteWalRecord::Sent {
                msg: Msg::Batch {
                    seq: 0,
                    epoch: 0,
                    watermark: 3,
                    events: std::sync::Arc::new(vec![]),
                },
            },
            SiteWalRecord::Staged { occ: occ1.clone() },
        ]);
        assert_eq!(st.staged, vec![occ1]);
        assert_eq!(st.next_seq, 1);
    }

    #[test]
    fn epoch_takes_maximum() {
        let st = fold_records(&[
            SiteWalRecord::Epoch { epoch: 2 },
            SiteWalRecord::Epoch { epoch: 1 },
        ]);
        assert_eq!(st.epoch, 2);
    }

    #[test]
    fn compaction_roundtrips_through_fold() {
        let st = fold_records(&[
            SiteWalRecord::Epoch { epoch: 1 },
            SiteWalRecord::Sent { msg: ev(0, 1, 1) },
            SiteWalRecord::Sent { msg: ev(1, 1, 2) },
            SiteWalRecord::Acked { cum_seq: 1 },
            SiteWalRecord::Staged {
                occ: Occurrence::bare(EventId(3), cts(&[(2, 7, 70)])),
            },
        ]);
        let st2 = fold_records(&compaction_records(&st));
        assert_eq!(st2, st);
    }

    #[test]
    fn missing_dir_recovers_fresh_state() {
        let (st, scan) = recover_site_state(Path::new("/nonexistent/decs-site-nowhere")).unwrap();
        assert_eq!(st, SiteWalState::default());
        assert!(scan.records.is_empty());
    }
}
