//! A compact, hand-rolled binary codec for the durability layer.
//!
//! The write-ahead log and operator-state snapshots are long-lived disk
//! artifacts, so their byte layout is owned by this module rather than
//! delegated to a serialization framework: fixed-width little-endian
//! integers, `u64` length prefixes, one-byte enum tags, no self-describing
//! overhead. Every decoder is **total** — arbitrary (corrupted, truncated,
//! bit-flipped) input produces a [`CodecError`], never a panic and never an
//! attacker-sized allocation (length prefixes are validated against the
//! bytes actually remaining before anything is reserved).
//!
//! The frame layer above this (`wal.rs` / `snapshot.rs`) adds a CRC-32 per
//! record, so decode errors here only arise on genuinely novel corruption
//! (a CRC collision) or a version drift; both are reported, not trusted.

use crate::metrics::Metrics;
use crate::protocol::{Msg, PathStep, PlanePos, RelayedEvent, RoutedEvent};
use decs_chronos::{GlobalTicks, LocalTicks, SiteId};
use decs_core::{CompositeTimestamp, PrimitiveTimestamp};
use decs_snoop::{
    DefTimers, DetectorState, EventId, GraphState, NodeState, Occurrence, ParamTuple, PlanState,
    Value,
};
use std::fmt;
use std::sync::Arc;

/// Why a byte sequence failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the value was complete.
    Eof,
    /// The bytes are not a valid encoding of the expected type (bad enum
    /// tag, invalid UTF-8, an impossible length, a non-canonical
    /// timestamp…). The payload names the offending construct.
    Invalid(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Eof => write!(f, "unexpected end of input"),
            CodecError::Invalid(what) => write!(f, "invalid encoding: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

impl From<CodecError> for std::io::Error {
    fn from(e: CodecError) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
    }
}

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) over `bytes`.
/// Bitwise (table-free) — the durability layer is nowhere near the hot
/// path, and a 1 KiB static table is not worth it.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// A bounds-checked cursor over an input buffer.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over the whole buffer.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Eof);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn u128(&mut self) -> Result<u128, CodecError> {
        let b = self.take(16)?;
        let mut a = [0u8; 16];
        a.copy_from_slice(b);
        Ok(u128::from_le_bytes(a))
    }

    /// A length prefix that must plausibly fit in the remaining input:
    /// every encoded element occupies at least one byte, so a claimed
    /// length beyond `remaining` is corruption, rejected *before* any
    /// allocation is sized from it.
    fn len(&mut self) -> Result<usize, CodecError> {
        let n = self.u64()?;
        if n > self.remaining() as u64 {
            return Err(CodecError::Invalid("length prefix exceeds input"));
        }
        Ok(n as usize)
    }
}

/// Serialize a value into the durability byte format.
pub trait Encode {
    /// Append this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);
}

/// Deserialize a value from the durability byte format. Total: corrupt
/// input yields `Err`, never a panic.
pub trait Decode: Sized {
    /// Read one value from the cursor.
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError>;
}

/// Encode `v` into a fresh buffer.
pub fn to_bytes<T: Encode>(v: &T) -> Vec<u8> {
    let mut out = Vec::new();
    v.encode(&mut out);
    out
}

/// Decode exactly one `T` from `buf`; trailing bytes are corruption.
pub fn from_bytes<T: Decode>(buf: &[u8]) -> Result<T, CodecError> {
    let mut r = Reader::new(buf);
    let v = T::decode(&mut r)?;
    if r.remaining() != 0 {
        return Err(CodecError::Invalid("trailing bytes after value"));
    }
    Ok(v)
}

// ---------------------------------------------------------------- scalars

impl Encode for u8 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }
}
impl Decode for u8 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.u8()
    }
}

impl Encode for u32 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
}
impl Decode for u32 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.u32()
    }
}

impl Encode for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
}
impl Decode for u64 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.u64()
    }
}

impl Encode for u128 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
}
impl Decode for u128 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.u128()
    }
}

impl Encode for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }
}
impl Decode for usize {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        usize::try_from(r.u64()?).map_err(|_| CodecError::Invalid("usize overflow"))
    }
}

impl Encode for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
}
impl Decode for bool {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Invalid("bool tag")),
        }
    }
}

impl Encode for i64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
}
impl Decode for i64 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(r.u64()? as i64)
    }
}

impl Encode for f64 {
    fn encode(&self, out: &mut Vec<u8>) {
        self.to_bits().encode(out);
    }
}
impl Decode for f64 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(f64::from_bits(r.u64()?))
    }
}

impl Encode for String {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        out.extend_from_slice(self.as_bytes());
    }
}
impl Decode for String {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let n = r.len()?;
        let bytes = r.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::Invalid("utf-8 string"))
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        for v in self {
            v.encode(out);
        }
    }
}
impl<T: Decode> Decode for Vec<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let n = r.len()?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(T::decode(r)?);
        }
        Ok(v)
    }
}

impl Encode for (u64, u32, u64) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
        self.2.encode(out);
    }
}
impl Decode for (u64, u32, u64) {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok((r.u64()?, r.u32()?, r.u64()?))
    }
}

impl Encode for (u64, u64, bool) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
        self.2.encode(out);
    }
}
impl Decode for (u64, u64, bool) {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok((r.u64()?, r.u64()?, bool::decode(r)?))
    }
}

impl Encode for (u64, u64, bool, u64) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
        self.2.encode(out);
        self.3.encode(out);
    }
}
impl Decode for (u64, u64, bool, u64) {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok((r.u64()?, r.u64()?, bool::decode(r)?, r.u64()?))
    }
}

// ----------------------------------------------------------- time domain

impl Encode for PrimitiveTimestamp {
    fn encode(&self, out: &mut Vec<u8>) {
        self.site().0.encode(out);
        self.global().get().encode(out);
        self.local().get().encode(out);
    }
}
impl Decode for PrimitiveTimestamp {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let site = SiteId(r.u32()?);
        let global = GlobalTicks(r.u64()?);
        let local = LocalTicks(r.u64()?);
        Ok(PrimitiveTimestamp::new(site, global, local))
    }
}

impl Encode for CompositeTimestamp {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.members().len() as u64).encode(out);
        for m in self.members() {
            m.encode(out);
        }
    }
}
impl Decode for CompositeTimestamp {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let members: Vec<PrimitiveTimestamp> = Vec::decode(r)?;
        // `try_from_primitives` re-normalizes through `max(ST)`; members
        // written by `encode` are already a max-set, so a clean roundtrip
        // is the identity, while corrupt member lists (including empty
        // ones) fail here instead of poisoning the detector.
        //
        // The version-vector summary (cached band bounds, site mask, and
        // the second-order "excluding site s" bounds the O(|sites|)
        // kernels read) is deliberately NOT on the wire: it is a pure
        // function of the member set, so decoding **rebuilds** it here
        // rather than trusting — and having to cross-validate — a
        // serialized copy. The wire format is unchanged from before the
        // summary existed; `composite_roundtrip_rebuilds_summary` below
        // and `tests/prop_wal_codec.rs` pin that rebuilt stamps are
        // kernel-for-kernel identical to the originals.
        CompositeTimestamp::try_from_primitives(members)
            .map_err(|_| CodecError::Invalid("composite timestamp members"))
    }
}

// ------------------------------------------------------------ event layer

impl Encode for EventId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
}
impl Decode for EventId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(EventId(r.u32()?))
    }
}

impl Encode for Value {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Value::Int(i) => {
                out.push(0);
                i.encode(out);
            }
            Value::Float(x) => {
                out.push(1);
                x.encode(out);
            }
            Value::Str(s) => {
                out.push(2);
                s.encode(out);
            }
            Value::Bool(b) => {
                out.push(3);
                b.encode(out);
            }
        }
    }
}
impl Decode for Value {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.u8()? {
            0 => Ok(Value::Int(i64::decode(r)?)),
            1 => Ok(Value::Float(f64::decode(r)?)),
            2 => Ok(Value::Str(String::decode(r)?)),
            3 => Ok(Value::Bool(bool::decode(r)?)),
            _ => Err(CodecError::Invalid("Value tag")),
        }
    }
}

impl Encode for ParamTuple {
    fn encode(&self, out: &mut Vec<u8>) {
        self.source.encode(out);
        self.values.as_ref().encode(out);
    }
}
impl Decode for ParamTuple {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let source = EventId::decode(r)?;
        let values: Vec<Value> = Vec::decode(r)?;
        Ok(ParamTuple {
            source,
            values: Arc::new(values),
        })
    }
}

impl Encode for Occurrence<CompositeTimestamp> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.ty.encode(out);
        self.time.encode(out);
        self.uid.encode(out);
        self.params.as_ref().encode(out);
    }
}
impl Decode for Occurrence<CompositeTimestamp> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let ty = EventId::decode(r)?;
        let time = CompositeTimestamp::decode(r)?;
        let uid = r.u64()?;
        let params: Vec<ParamTuple> = Vec::decode(r)?;
        Ok(Occurrence {
            ty,
            time,
            params: Arc::new(params),
            uid,
        })
    }
}

impl Encode for RoutedEvent {
    fn encode(&self, out: &mut Vec<u8>) {
        self.ordinal.encode(out);
        self.occ.encode(out);
    }
}
impl Decode for RoutedEvent {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(RoutedEvent {
            ordinal: r.u64()?,
            occ: Occurrence::decode(r)?,
        })
    }
}

impl Encode for PathStep {
    fn encode(&self, out: &mut Vec<u8>) {
        self.time.encode(out);
        self.ty.encode(out);
        self.dup.encode(out);
    }
}
impl Decode for PathStep {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(PathStep {
            time: CompositeTimestamp::decode(r)?,
            ty: r.u32()?,
            dup: r.u32()?,
        })
    }
}

impl Encode for PlanePos {
    fn encode(&self, out: &mut Vec<u8>) {
        self.g.encode(out);
        self.site.encode(out);
        self.ordinal.encode(out);
        self.depth.encode(out);
    }
}
impl Decode for PlanePos {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(PlanePos {
            g: r.u64()?,
            site: r.u32()?,
            ordinal: r.u64()?,
            depth: r.u32()?,
        })
    }
}

impl Encode for RelayedEvent {
    fn encode(&self, out: &mut Vec<u8>) {
        self.root.encode(out);
        self.depth.encode(out);
        self.path.encode(out);
        self.immediate.encode(out);
        self.occ.encode(out);
    }
}
impl Decode for RelayedEvent {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(RelayedEvent {
            root: <(u64, u32, u64)>::decode(r)?,
            depth: r.u32()?,
            path: Vec::decode(r)?,
            immediate: bool::decode(r)?,
            occ: Occurrence::decode(r)?,
        })
    }
}

impl Encode for Msg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Msg::Start => out.push(0),
            Msg::Inject { ty, values } => {
                out.push(1);
                ty.encode(out);
                values.encode(out);
            }
            Msg::Event { seq, epoch, occ } => {
                out.push(2);
                seq.encode(out);
                epoch.encode(out);
                occ.encode(out);
            }
            Msg::Heartbeat {
                seq,
                epoch,
                watermark,
            } => {
                out.push(3);
                seq.encode(out);
                epoch.encode(out);
                watermark.encode(out);
            }
            Msg::Batch {
                seq,
                epoch,
                watermark,
                events,
            } => {
                out.push(4);
                seq.encode(out);
                epoch.encode(out);
                watermark.encode(out);
                events.as_ref().encode(out);
            }
            Msg::Ack { cum_seq, epoch } => {
                out.push(5);
                cum_seq.encode(out);
                epoch.encode(out);
            }
            Msg::Crash => out.push(6),
            Msg::Evict { site } => {
                out.push(7);
                site.encode(out);
            }
            Msg::Hello {
                seq,
                epoch,
                watermark,
            } => {
                out.push(8);
                seq.encode(out);
                epoch.encode(out);
                watermark.encode(out);
            }
            Msg::Restart => out.push(9),
            Msg::Routed {
                seq,
                epoch,
                watermark,
                events,
            } => {
                out.push(10);
                seq.encode(out);
                epoch.encode(out);
                watermark.encode(out);
                events.as_ref().encode(out);
            }
            Msg::Relay {
                seq,
                promise,
                events,
            } => {
                out.push(11);
                seq.encode(out);
                promise.encode(out);
                events.as_ref().encode(out);
            }
        }
    }
}
impl Decode for Msg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.u8()? {
            0 => Ok(Msg::Start),
            1 => Ok(Msg::Inject {
                ty: EventId::decode(r)?,
                values: Vec::decode(r)?,
            }),
            2 => Ok(Msg::Event {
                seq: r.u64()?,
                epoch: r.u64()?,
                occ: Occurrence::decode(r)?,
            }),
            3 => Ok(Msg::Heartbeat {
                seq: r.u64()?,
                epoch: r.u64()?,
                watermark: r.u64()?,
            }),
            4 => Ok(Msg::Batch {
                seq: r.u64()?,
                epoch: r.u64()?,
                watermark: r.u64()?,
                events: Arc::new(Vec::decode(r)?),
            }),
            5 => Ok(Msg::Ack {
                cum_seq: r.u64()?,
                epoch: r.u64()?,
            }),
            6 => Ok(Msg::Crash),
            7 => Ok(Msg::Evict { site: r.u32()? }),
            8 => Ok(Msg::Hello {
                seq: r.u64()?,
                epoch: r.u64()?,
                watermark: r.u64()?,
            }),
            9 => Ok(Msg::Restart),
            10 => Ok(Msg::Routed {
                seq: r.u64()?,
                epoch: r.u64()?,
                watermark: r.u64()?,
                events: Arc::new(Vec::decode(r)?),
            }),
            11 => Ok(Msg::Relay {
                seq: r.u64()?,
                promise: Vec::decode(r)?,
                events: Arc::new(Vec::decode(r)?),
            }),
            _ => Err(CodecError::Invalid("Msg tag")),
        }
    }
}

// -------------------------------------------------------- detector states

impl Encode for NodeState<CompositeTimestamp> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.nums.encode(out);
        self.occs.encode(out);
        self.times.encode(out);
    }
}
impl Decode for NodeState<CompositeTimestamp> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(NodeState {
            nums: Vec::decode(r)?,
            occs: Vec::decode(r)?,
            times: Vec::decode(r)?,
        })
    }
}

impl Encode for GraphState<CompositeTimestamp> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.nodes.encode(out);
        self.timers.encode(out);
        self.next_timer.encode(out);
    }
}
impl Decode for GraphState<CompositeTimestamp> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(GraphState {
            nodes: Vec::decode(r)?,
            timers: Vec::decode(r)?,
            next_timer: r.u64()?,
        })
    }
}

impl Encode for DefTimers {
    fn encode(&self, out: &mut Vec<u8>) {
        self.timers.encode(out);
        self.next_timer.encode(out);
    }
}
impl Decode for DefTimers {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(DefTimers {
            timers: Vec::decode(r)?,
            next_timer: r.u64()?,
        })
    }
}

impl Encode for PlanState<CompositeTimestamp> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.nodes.encode(out);
        self.execs.encode(out);
        self.defs.encode(out);
    }
}
impl Decode for PlanState<CompositeTimestamp> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(PlanState {
            nodes: Vec::decode(r)?,
            execs: Vec::decode(r)?,
            defs: Vec::decode(r)?,
        })
    }
}

impl Encode for DetectorState<CompositeTimestamp> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            DetectorState::Sharded(graphs) => {
                out.push(0);
                graphs.encode(out);
            }
            DetectorState::Plan(plan) => {
                out.push(1);
                plan.encode(out);
            }
        }
    }
}
impl Decode for DetectorState<CompositeTimestamp> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.u8()? {
            0 => Ok(DetectorState::Sharded(Vec::decode(r)?)),
            1 => Ok(DetectorState::Plan(PlanState::decode(r)?)),
            _ => Err(CodecError::Invalid("DetectorState tag")),
        }
    }
}

// ---------------------------------------------------------------- metrics

impl Encode for Metrics {
    fn encode(&self, out: &mut Vec<u8>) {
        self.events_received.encode(out);
        self.heartbeats_received.encode(out);
        self.events_released.encode(out);
        self.detections.encode(out);
        self.reassembly_parks.encode(out);
        self.max_buffered.encode(out);
        self.stability_latency_sum_ns.encode(out);
        self.timer_fires.encode(out);
        self.messages_processed.encode(out);
        self.batches_received.encode(out);
        self.batch_size_max.encode(out);
        self.release_batches.encode(out);
        self.shard_count.encode(out);
        self.plan_nodes.encode(out);
        self.shared_nodes.encode(out);
        self.sharing_ratio.encode(out);
        self.gc_evicted.encode(out);
        self.node_buffered.encode(out);
        self.node_buffer_peak.encode(out);
        self.worker_count.encode(out);
        self.parallel_rounds.encode(out);
        self.stage_count.encode(out);
        self.pool_busy_ns.encode(out);
        self.retransmits.encode(out);
        self.acks_sent.encode(out);
        self.duplicates_dropped.encode(out);
        self.parked_peak.encode(out);
        self.parked_dropped.encode(out);
        self.suspect_sites.encode(out);
        self.stall_ns.encode(out);
        self.evict_refused.encode(out);
        self.auto_evictions.encode(out);
        self.wal_appends.encode(out);
        self.wal_bytes.encode(out);
        self.snapshots_taken.encode(out);
        self.recovery_replayed.encode(out);
        self.recovery_ns.encode(out);
        self.batch_ingest_events.encode(out);
        self.arena_bytes.encode(out);
        self.ring_full_spins.encode(out);
        self.site_restarts.encode(out);
        self.rejoins.encode(out);
        self.epoch_max.encode(out);
        self.rejoin_latency_ns.encode(out);
        self.stale_refused.encode(out);
        self.epoch_filtered.encode(out);
        self.wal_errors.encode(out);
        self.replica_count.encode(out);
        self.relays_sent.encode(out);
        self.relay_events.encode(out);
        self.relay_retransmits.encode(out);
        self.relays_received.encode(out);
        self.routed_received.encode(out);
    }
}
impl Decode for Metrics {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Metrics {
            events_received: r.u64()?,
            heartbeats_received: r.u64()?,
            events_released: r.u64()?,
            detections: r.u64()?,
            reassembly_parks: r.u64()?,
            max_buffered: usize::decode(r)?,
            stability_latency_sum_ns: r.u128()?,
            timer_fires: r.u64()?,
            messages_processed: r.u64()?,
            batches_received: r.u64()?,
            batch_size_max: usize::decode(r)?,
            release_batches: r.u64()?,
            shard_count: usize::decode(r)?,
            plan_nodes: usize::decode(r)?,
            shared_nodes: usize::decode(r)?,
            sharing_ratio: f64::decode(r)?,
            gc_evicted: r.u64()?,
            node_buffered: usize::decode(r)?,
            node_buffer_peak: usize::decode(r)?,
            worker_count: usize::decode(r)?,
            parallel_rounds: r.u64()?,
            stage_count: usize::decode(r)?,
            pool_busy_ns: r.u64()?,
            retransmits: r.u64()?,
            acks_sent: r.u64()?,
            duplicates_dropped: r.u64()?,
            parked_peak: usize::decode(r)?,
            parked_dropped: r.u64()?,
            suspect_sites: usize::decode(r)?,
            stall_ns: r.u128()?,
            evict_refused: r.u64()?,
            auto_evictions: r.u64()?,
            wal_appends: r.u64()?,
            wal_bytes: r.u64()?,
            snapshots_taken: r.u64()?,
            recovery_replayed: r.u64()?,
            recovery_ns: r.u64()?,
            batch_ingest_events: r.u64()?,
            arena_bytes: r.u64()?,
            ring_full_spins: r.u64()?,
            site_restarts: r.u64()?,
            rejoins: r.u64()?,
            epoch_max: r.u64()?,
            rejoin_latency_ns: r.u64()?,
            stale_refused: r.u64()?,
            epoch_filtered: r.u64()?,
            wal_errors: r.u64()?,
            replica_count: usize::decode(r)?,
            relays_sent: r.u64()?,
            relay_events: r.u64()?,
            relay_retransmits: r.u64()?,
            relays_received: r.u64()?,
            routed_received: r.u64()?,
            // Deliberately not persisted: engine-side wall-clock timing of
            // the *current* process, meaningless to a recovered successor.
            busy_ns: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decs_core::cts;

    #[test]
    fn crc32_known_vectors() {
        // IEEE CRC-32 test vector: "123456789" → 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(from_bytes::<u64>(&to_bytes(&7u64)).unwrap(), 7);
        assert_eq!(from_bytes::<bool>(&to_bytes(&true)).unwrap(), true);
        assert_eq!(
            from_bytes::<String>(&to_bytes(&"héllo".to_string())).unwrap(),
            "héllo"
        );
        let v: Vec<u64> = vec![1, 2, 3];
        assert_eq!(from_bytes::<Vec<u64>>(&to_bytes(&v)).unwrap(), v);
    }

    #[test]
    fn occurrence_roundtrip() {
        let occ = Occurrence::primitive(
            EventId(3),
            cts(&[(0, 5, 50), (1, 5, 51)]),
            vec![Value::Int(-4), Value::Str("x".into()), Value::Bool(false)],
        );
        let back: Occurrence<CompositeTimestamp> = from_bytes(&to_bytes(&occ)).unwrap();
        assert_eq!(back, occ);
        assert_eq!(back.uid, occ.uid);
    }

    #[test]
    fn composite_roundtrip_rebuilds_summary() {
        // Wide stamps across 40 sites (heap members, multi-site runs):
        // the wire carries members only; decode must rebuild the cached
        // version-vector summary so the O(|sites|) kernels see the exact
        // same world after recovery. `PartialEq` compares the cached
        // bounds/mask first, and the kernel spot-checks compare decoded
        // stamps against the untouched originals through both fast and
        // oracle paths.
        let wide = CompositeTimestamp::from_primitives(
            (0..40u32).map(|i| decs_core::pts(i, 10 + u64::from(i % 2), 100 + u64::from(i))),
        );
        let shifted = CompositeTimestamp::from_primitives(
            (20..60u32).map(|i| decs_core::pts(i, 11 + u64::from(i % 2), 200 + u64::from(i))),
        );
        for t in [&wide, &shifted] {
            let back: CompositeTimestamp = from_bytes(&to_bytes(t)).unwrap();
            assert_eq!(&back, t);
            assert_eq!(back.min_global(), t.min_global());
            assert_eq!(back.max_global(), t.max_global());
            assert_eq!(back.site_mask(), t.site_mask());
        }
        let back_wide: CompositeTimestamp = from_bytes(&to_bytes(&wide)).unwrap();
        let back_shifted: CompositeTimestamp = from_bytes(&to_bytes(&shifted)).unwrap();
        assert_eq!(
            back_wide.relation(&back_shifted),
            wide.relation_naive(&shifted)
        );
        assert_eq!(
            decs_core::max_op(&back_wide, &back_shifted),
            decs_core::max_op_naive(&wide, &shifted)
        );
    }

    #[test]
    fn msg_roundtrips() {
        let msgs = vec![
            Msg::Start,
            Msg::Inject {
                ty: EventId(1),
                values: vec![Value::Float(2.5)],
            },
            Msg::Event {
                seq: 9,
                epoch: 1,
                occ: Occurrence::bare(EventId(0), cts(&[(2, 7, 70)])),
            },
            Msg::Heartbeat {
                seq: 10,
                epoch: 0,
                watermark: 8,
            },
            Msg::Batch {
                seq: 11,
                epoch: 2,
                watermark: 9,
                events: Arc::new(vec![Occurrence::bare(EventId(1), cts(&[(0, 9, 90)]))]),
            },
            Msg::Ack {
                cum_seq: 12,
                epoch: 3,
            },
            Msg::Crash,
            Msg::Evict { site: 2 },
            Msg::Hello {
                seq: 13,
                epoch: 4,
                watermark: 10,
            },
            Msg::Restart,
            Msg::Routed {
                seq: 14,
                epoch: 5,
                watermark: 11,
                events: Arc::new(vec![RoutedEvent {
                    ordinal: 42,
                    occ: Occurrence::bare(EventId(2), cts(&[(1, 3, 30)])),
                }]),
            },
            Msg::Relay {
                seq: 15,
                promise: vec![
                    PlanePos {
                        g: 7,
                        site: 1,
                        ordinal: 3,
                        depth: 2,
                    },
                    PlanePos {
                        g: 7,
                        site: 0,
                        ordinal: 1,
                        depth: 1,
                    },
                ],
                events: Arc::new(vec![RelayedEvent {
                    root: (6, 0, 4),
                    depth: 1,
                    path: vec![PathStep {
                        time: cts(&[(0, 6, 60)]),
                        ty: 5,
                        dup: 0,
                    }],
                    immediate: false,
                    occ: Occurrence::bare(EventId(5), cts(&[(0, 6, 60)])),
                }]),
            },
        ];
        for m in msgs {
            let back: Msg = from_bytes(&to_bytes(&m)).unwrap();
            assert_eq!(back, m);
        }
    }

    #[test]
    fn bad_tags_and_lengths_fail_cleanly() {
        assert_eq!(
            from_bytes::<bool>(&[9]),
            Err(CodecError::Invalid("bool tag"))
        );
        assert_eq!(
            from_bytes::<Msg>(&[99]),
            Err(CodecError::Invalid("Msg tag"))
        );
        // A length prefix claiming more elements than bytes remain.
        let mut buf = Vec::new();
        u64::MAX.encode(&mut buf);
        assert!(matches!(
            from_bytes::<Vec<u64>>(&buf),
            Err(CodecError::Invalid(_))
        ));
        // Truncation anywhere is an Eof, not a panic.
        let full = to_bytes(&Msg::Heartbeat {
            seq: 1,
            epoch: 0,
            watermark: 2,
        });
        for cut in 0..full.len() {
            assert!(from_bytes::<Msg>(&full[..cut]).is_err());
        }
        // Trailing bytes are rejected.
        let mut extra = to_bytes(&5u64);
        extra.push(0);
        assert_eq!(
            from_bytes::<u64>(&extra),
            Err(CodecError::Invalid("trailing bytes after value"))
        );
    }

    #[test]
    fn empty_composite_timestamp_rejected() {
        let empty: Vec<PrimitiveTimestamp> = Vec::new();
        let buf = to_bytes(&empty);
        assert_eq!(
            from_bytes::<CompositeTimestamp>(&buf),
            Err(CodecError::Invalid("composite timestamp members"))
        );
    }
}
