//! The coordinator's write-ahead log.
//!
//! Every nondeterministic input the coordinator consumes — an in-order
//! message delivery, a detector timer fire, an operator eviction, a drain
//! of the detection outbox — is appended as one framed record *before* its
//! effects are applied. Recovery then is deterministic replay: restore the
//! newest snapshot and re-feed the WAL suffix through the exact code paths
//! that consumed the inputs live.
//!
//! ## Frame format
//!
//! ```text
//! [len: u32 LE] [crc32(payload): u32 LE] [payload: len bytes]
//! ```
//!
//! Scanning stops at the first frame that does not check out, classifying
//! the tail as *torn* (the file ends mid-frame — the normal shape after a
//! crash between `write` and `fsync`) or *corrupt* (a full-length frame
//! whose CRC or decode fails — bit rot). Everything before the bad frame
//! is trusted; everything after is discarded, and the writer truncates the
//! file back to the valid prefix before appending again so a future replay
//! never stops early at a stale hole.

use super::codec::{crc32, from_bytes, to_bytes, Decode, Encode, Reader};
use crate::protocol::Msg;
use std::fs::{File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use super::codec::CodecError;

/// File name of the log inside the durability directory.
pub const WAL_FILE: &str = "wal.log";

/// Largest payload a frame may claim (1 GiB). A length beyond this is
/// corruption, not a record — it bounds the scanner's trust in a damaged
/// header.
pub const MAX_FRAME: u32 = 1 << 30;

/// Appends are `sync_data`ed every this many records (and explicitly at
/// snapshot points), batching fsync cost at the price of a bounded
/// unsynced suffix — which the torn-tail scan discards and the sites'
/// retransmission protocol re-supplies.
const SYNC_EVERY: u64 = 64;

/// One durable coordinator input.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// An in-order protocol message was delivered from `site` (its stream
    /// index) at true time `at` (nanoseconds) and fed to
    /// `handle_in_order`. Parked (out-of-order) messages are *not* logged:
    /// they are logged when they drain in order, and if the coordinator
    /// dies first, the site retransmits them (unacked by construction).
    Delivered {
        /// Stream index of the sending site.
        site: u32,
        /// Simulation true time of the delivery, nanoseconds.
        at: u64,
        /// The message, verbatim.
        msg: Msg,
    },
    /// A detector timer fired. The stamp the coordinator minted for the
    /// fire is logged part-by-part so replay rebuilds the identical
    /// timestamp without consulting a clock.
    TimerFired {
        /// The coordinator timer tag that fired.
        tag: u64,
        /// True time of the fire, nanoseconds.
        at: u64,
        /// Site component of the minted stamp.
        site: u32,
        /// Global-tick component of the minted stamp.
        global: u64,
        /// Local-tick component of the minted stamp.
        local: u64,
    },
    /// The operator evicted `site` at true time `at`.
    Evicted {
        /// Stream index of the evicted site.
        site: u32,
        /// True time of the eviction, nanoseconds.
        at: u64,
    },
    /// The engine drained `count` finished detections out of the
    /// coordinator. Replay re-drops the same prefix so a recovered
    /// coordinator does not re-report detections already handed out.
    Drained {
        /// How many detections were taken.
        count: u64,
    },
    /// First sight of a higher-epoch `Msg::Hello` from `site`: the epoch
    /// transition (parked-state clear, frontier lowering, un-eviction) is
    /// applied out-of-band, *before* sequence handling, so it is logged as
    /// its own record — the `Delivered` record for the Hello follows only
    /// when the Hello is consumed in order.
    HelloSeen {
        /// Stream index of the rejoining site.
        site: u32,
        /// True time of the first sight, nanoseconds.
        at: u64,
        /// The new incarnation epoch.
        epoch: u64,
        /// The Hello's sequence number (base of the new send window).
        base_seq: u64,
        /// The site's first post-rejoin watermark promise.
        watermark: u64,
    },
}

impl Encode for WalRecord {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            WalRecord::Delivered { site, at, msg } => {
                out.push(0);
                site.encode(out);
                at.encode(out);
                msg.encode(out);
            }
            WalRecord::TimerFired {
                tag,
                at,
                site,
                global,
                local,
            } => {
                out.push(1);
                tag.encode(out);
                at.encode(out);
                site.encode(out);
                global.encode(out);
                local.encode(out);
            }
            WalRecord::Evicted { site, at } => {
                out.push(2);
                site.encode(out);
                at.encode(out);
            }
            WalRecord::Drained { count } => {
                out.push(3);
                count.encode(out);
            }
            WalRecord::HelloSeen {
                site,
                at,
                epoch,
                base_seq,
                watermark,
            } => {
                out.push(4);
                site.encode(out);
                at.encode(out);
                epoch.encode(out);
                base_seq.encode(out);
                watermark.encode(out);
            }
        }
    }
}

impl Decode for WalRecord {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match u8::decode(r)? {
            0 => Ok(WalRecord::Delivered {
                site: u32::decode(r)?,
                at: u64::decode(r)?,
                msg: Msg::decode(r)?,
            }),
            1 => Ok(WalRecord::TimerFired {
                tag: u64::decode(r)?,
                at: u64::decode(r)?,
                site: u32::decode(r)?,
                global: u64::decode(r)?,
                local: u64::decode(r)?,
            }),
            2 => Ok(WalRecord::Evicted {
                site: u32::decode(r)?,
                at: u64::decode(r)?,
            }),
            3 => Ok(WalRecord::Drained {
                count: u64::decode(r)?,
            }),
            4 => Ok(WalRecord::HelloSeen {
                site: u32::decode(r)?,
                at: u64::decode(r)?,
                epoch: u64::decode(r)?,
                base_seq: u64::decode(r)?,
                watermark: u64::decode(r)?,
            }),
            _ => Err(CodecError::Invalid("WalRecord tag")),
        }
    }
}

/// How a scanned log ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalTail {
    /// The file ends exactly on a frame boundary.
    Clean,
    /// The file ends inside a frame (crash between write and sync);
    /// `discarded` bytes of partial frame were dropped.
    Torn {
        /// Bytes of incomplete trailing frame discarded.
        discarded: usize,
    },
    /// A complete frame failed its CRC or decode; it and everything after
    /// it (`discarded` bytes) were dropped.
    Corrupt {
        /// Bytes from the first bad frame onward discarded.
        discarded: usize,
    },
}

/// The result of scanning a log: the valid record prefix plus how (and
/// where) validity ended. Generic over the record type — the coordinator
/// logs [`WalRecord`]s, sites log `SiteWalRecord`s — with the same frame
/// format and tail discipline.
#[derive(Debug)]
pub struct WalScan<R = WalRecord> {
    /// Every record up to the first invalid frame, in append order.
    pub records: Vec<R>,
    /// Byte length of the valid prefix — the offset the writer truncates
    /// to before resuming appends.
    pub valid_len: u64,
    /// How the log ended.
    pub tail: WalTail,
}

/// Scan a WAL image of coordinator records already in memory. See
/// [`scan_bytes_as`].
pub fn scan_bytes(bytes: &[u8]) -> WalScan {
    scan_bytes_as::<WalRecord>(bytes)
}

/// Scan a WAL image already in memory. Total: any byte sequence yields a
/// (possibly empty) valid prefix and a tail classification — never a
/// panic. Exposed for corruption-injection tests; [`read_wal_as`] is the
/// filesystem entry point.
pub fn scan_bytes_as<R: Decode>(bytes: &[u8]) -> WalScan<R> {
    let mut records = Vec::new();
    let mut pos = 0usize;
    loop {
        let remaining = bytes.len() - pos;
        if remaining == 0 {
            return WalScan {
                records,
                valid_len: pos as u64,
                tail: WalTail::Clean,
            };
        }
        if remaining < 8 {
            return WalScan {
                records,
                valid_len: pos as u64,
                tail: WalTail::Torn {
                    discarded: remaining,
                },
            };
        }
        let len = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]]);
        let crc = u32::from_le_bytes([
            bytes[pos + 4],
            bytes[pos + 5],
            bytes[pos + 6],
            bytes[pos + 7],
        ]);
        if len > MAX_FRAME {
            // An impossible length is corruption of the header itself, not
            // a half-written frame.
            return WalScan {
                records,
                valid_len: pos as u64,
                tail: WalTail::Corrupt {
                    discarded: remaining,
                },
            };
        }
        if (remaining - 8) < len as usize {
            return WalScan {
                records,
                valid_len: pos as u64,
                tail: WalTail::Torn {
                    discarded: remaining,
                },
            };
        }
        let payload = &bytes[pos + 8..pos + 8 + len as usize];
        if crc32(payload) != crc {
            return WalScan {
                records,
                valid_len: pos as u64,
                tail: WalTail::Corrupt {
                    discarded: remaining,
                },
            };
        }
        match from_bytes::<R>(payload) {
            Ok(rec) => records.push(rec),
            Err(_) => {
                // CRC passed but the payload is not a record — version
                // drift or a CRC collision. Treat like corruption.
                return WalScan {
                    records,
                    valid_len: pos as u64,
                    tail: WalTail::Corrupt {
                        discarded: remaining,
                    },
                };
            }
        }
        pos += 8 + len as usize;
    }
}

/// Read and scan the coordinator log in `dir`. See [`read_wal_as`].
pub fn read_wal(dir: &Path) -> io::Result<WalScan> {
    read_wal_as::<WalRecord>(dir)
}

/// Read and scan the log in `dir`. A missing file (or missing directory)
/// is an empty, clean log — the fresh-start case.
pub fn read_wal_as<R: Decode>(dir: &Path) -> io::Result<WalScan<R>> {
    let path = dir.join(WAL_FILE);
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    Ok(scan_bytes_as(&bytes))
}

/// Where a [`WalWriter`] puts its frames. Production code always writes a
/// [`File`]; tests inject sinks that fail partway through a write or on
/// sync to prove I/O errors surface cleanly and the torn prefix still
/// scans.
pub trait WalSink: Write + Send {
    /// Flush written frames to stable storage (`fsync`-equivalent).
    fn sync_data(&mut self) -> io::Result<()>;
}

impl WalSink for File {
    fn sync_data(&mut self) -> io::Result<()> {
        File::sync_data(self)
    }
}

/// Appender half of the log.
pub struct WalWriter {
    sink: Box<dyn WalSink>,
    path: PathBuf,
    appends: u64,
    bytes: u64,
    since_sync: u64,
}

impl std::fmt::Debug for WalWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WalWriter")
            .field("path", &self.path)
            .field("appends", &self.appends)
            .field("bytes", &self.bytes)
            .field("since_sync", &self.since_sync)
            .finish()
    }
}

impl WalWriter {
    /// Create (truncating any previous log) a fresh WAL in `dir`.
    pub fn create(dir: &Path) -> io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(WAL_FILE);
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        Ok(WalWriter {
            sink: Box::new(file),
            path,
            appends: 0,
            bytes: 0,
            since_sync: 0,
        })
    }

    /// Reopen the WAL in `dir` after a scan: truncate to the scanned
    /// `valid_len` (discarding any torn or corrupt tail so it can never be
    /// resurrected by a later scan) and seed the counters with the
    /// `records` already in the valid prefix.
    pub fn resume(dir: &Path, valid_len: u64, records: u64) -> io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(WAL_FILE);
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        file.set_len(valid_len)?;
        file.seek(SeekFrom::End(0))?;
        file.sync_data()?;
        Ok(WalWriter {
            sink: Box::new(file),
            path,
            appends: records,
            bytes: valid_len,
            since_sync: 0,
        })
    }

    /// Build a writer over an arbitrary sink — the fault-injection entry
    /// point. `path` is only reported by [`WalWriter::path`]; nothing is
    /// opened.
    pub fn with_sink(sink: Box<dyn WalSink>, path: PathBuf) -> Self {
        WalWriter {
            sink,
            path,
            appends: 0,
            bytes: 0,
            since_sync: 0,
        }
    }

    /// Append one record; syncs every [`SYNC_EVERY`] appends.
    pub fn append<R: Encode>(&mut self, rec: &R) -> io::Result<()> {
        let payload = to_bytes(rec);
        debug_assert!(payload.len() as u64 <= MAX_FRAME as u64);
        let mut frame = Vec::with_capacity(payload.len() + 8);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.sink.write_all(&frame)?;
        self.appends += 1;
        self.bytes += frame.len() as u64;
        self.since_sync += 1;
        if self.since_sync >= SYNC_EVERY {
            self.sync()?;
        }
        Ok(())
    }

    /// Flush buffered appends to stable storage.
    pub fn sync(&mut self) -> io::Result<()> {
        if self.since_sync > 0 {
            self.sink.sync_data()?;
            self.since_sync = 0;
        }
        Ok(())
    }

    /// Lifetime record count of the log file (scanned prefix + appends).
    pub fn appends(&self) -> u64 {
        self.appends
    }

    /// Lifetime byte length of the log file, frame headers included.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Path of the log file (for tests that mutilate it).
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Frame a record exactly as [`WalWriter::append`] would — for tests that
/// build log images in memory.
pub fn frame_record<R: Encode>(rec: &R) -> Vec<u8> {
    let payload = to_bytes(rec);
    let mut frame = Vec::with_capacity(payload.len() + 8);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Delivered {
                site: 0,
                at: 1_000,
                msg: Msg::Heartbeat {
                    seq: 0,
                    epoch: 0,
                    watermark: 1,
                },
            },
            WalRecord::TimerFired {
                tag: 7,
                at: 2_000,
                site: 0,
                global: 3,
                local: 30,
            },
            WalRecord::Evicted { site: 1, at: 3_000 },
            WalRecord::Drained { count: 2 },
            WalRecord::HelloSeen {
                site: 2,
                at: 4_000,
                epoch: 1,
                base_seq: 17,
                watermark: 5,
            },
        ]
    }

    #[test]
    fn scan_roundtrips_frames() {
        let recs = sample_records();
        let mut image = Vec::new();
        for r in &recs {
            image.extend_from_slice(&frame_record(r));
        }
        let scan = scan_bytes(&image);
        assert_eq!(scan.records, recs);
        assert_eq!(scan.valid_len, image.len() as u64);
        assert_eq!(scan.tail, WalTail::Clean);
    }

    #[test]
    fn torn_tail_discards_partial_frame() {
        let recs = sample_records();
        let mut image = Vec::new();
        let mut boundaries = vec![0usize];
        for r in &recs {
            image.extend_from_slice(&frame_record(r));
            boundaries.push(image.len());
        }
        // Truncate mid-way through the last frame.
        let cut = boundaries[3] + 3;
        let scan = scan_bytes(&image[..cut]);
        assert_eq!(scan.records, recs[..3]);
        assert_eq!(scan.valid_len, boundaries[3] as u64);
        assert_eq!(
            scan.tail,
            WalTail::Torn {
                discarded: cut - boundaries[3]
            }
        );
    }

    #[test]
    fn crc_mismatch_is_corrupt() {
        let recs = sample_records();
        let mut image = Vec::new();
        for r in &recs {
            image.extend_from_slice(&frame_record(r));
        }
        // Flip one payload byte in the second frame.
        let first_len = frame_record(&recs[0]).len();
        image[first_len + 9] ^= 0xFF;
        let scan = scan_bytes(&image);
        assert_eq!(scan.records, recs[..1]);
        assert!(matches!(scan.tail, WalTail::Corrupt { .. }));
    }

    #[test]
    fn writer_roundtrip_and_resume() {
        let dir = std::env::temp_dir().join(format!("decs-wal-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let recs = sample_records();
        {
            let mut w = WalWriter::create(&dir).unwrap();
            for r in &recs {
                w.append(r).unwrap();
            }
            w.sync().unwrap();
            assert_eq!(w.appends(), recs.len() as u64);
        }
        // Tear the tail by appending garbage, then resume: the scan must
        // drop the garbage and the writer must truncate it away.
        {
            let mut f = OpenOptions::new()
                .append(true)
                .open(dir.join(WAL_FILE))
                .unwrap();
            f.write_all(&[0xAB, 0xCD, 0xEF]).unwrap();
        }
        let scan = read_wal(&dir).unwrap();
        assert_eq!(scan.records, recs);
        assert!(matches!(scan.tail, WalTail::Torn { discarded: 3 }));
        let mut w = WalWriter::resume(&dir, scan.valid_len, scan.records.len() as u64).unwrap();
        w.append(&WalRecord::Drained { count: 1 }).unwrap();
        w.sync().unwrap();
        let scan2 = read_wal(&dir).unwrap();
        assert_eq!(scan2.records.len(), recs.len() + 1);
        assert_eq!(scan2.tail, WalTail::Clean);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_dir_is_empty_clean_log() {
        let scan = read_wal(Path::new("/nonexistent/decs-nowhere")).unwrap();
        assert!(scan.records.is_empty());
        assert_eq!(scan.tail, WalTail::Clean);
    }

    use std::sync::{Arc, Mutex};

    /// A sink with a byte budget: writes land in a shared buffer until the
    /// budget runs out, then fail with `WriteZero` — possibly mid-frame,
    /// exactly like a full disk. `sync_data` can be made to fail too.
    struct FailingSink {
        buf: Arc<Mutex<Vec<u8>>>,
        write_budget: usize,
        fail_sync: bool,
    }

    impl Write for FailingSink {
        fn write(&mut self, data: &[u8]) -> io::Result<usize> {
            let mut buf = self.buf.lock().unwrap();
            let n = data.len().min(self.write_budget);
            buf.extend_from_slice(&data[..n]);
            self.write_budget -= n;
            if n == 0 {
                Err(io::Error::new(io::ErrorKind::WriteZero, "disk full"))
            } else {
                Ok(n)
            }
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    impl WalSink for FailingSink {
        fn sync_data(&mut self) -> io::Result<()> {
            if self.fail_sync {
                Err(io::Error::other("sync failed"))
            } else {
                Ok(())
            }
        }
    }

    #[test]
    fn write_error_mid_frame_surfaces_and_prefix_scans() {
        let recs = sample_records();
        let whole: usize = recs.iter().map(|r| frame_record(r).len()).sum();
        let first_two: usize = recs[..2].iter().map(|r| frame_record(r).len()).sum();
        // Budget covers two frames plus part of the third.
        let buf = Arc::new(Mutex::new(Vec::new()));
        let sink = FailingSink {
            buf: Arc::clone(&buf),
            write_budget: first_two + 5,
            fail_sync: false,
        };
        let mut w = WalWriter::with_sink(Box::new(sink), PathBuf::from("<mem>"));
        w.append(&recs[0]).unwrap();
        w.append(&recs[1]).unwrap();
        let err = w.append(&recs[2]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
        assert!(whole > first_two + 5, "third frame must not fit");
        // The torn bytes on "disk" are a valid prefix plus a partial frame:
        // the scanner recovers the two durable records and classifies the
        // tail as torn — never misreads the fragment as a record.
        let image = buf.lock().unwrap().clone();
        let scan = scan_bytes(&image);
        assert_eq!(scan.records, recs[..2]);
        assert_eq!(scan.valid_len, first_two as u64);
        assert_eq!(scan.tail, WalTail::Torn { discarded: 5 });
    }

    #[test]
    fn sync_error_surfaces_cleanly() {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let sink = FailingSink {
            buf: Arc::clone(&buf),
            write_budget: usize::MAX,
            fail_sync: true,
        };
        let mut w = WalWriter::with_sink(Box::new(sink), PathBuf::from("<mem>"));
        w.append(&WalRecord::Drained { count: 1 }).unwrap();
        let err = w.sync().unwrap_err();
        assert_eq!(err.to_string(), "sync failed");
        // The frame itself was written intact; only durability failed.
        let image = buf.lock().unwrap().clone();
        let scan = scan_bytes(&image);
        assert_eq!(scan.records, vec![WalRecord::Drained { count: 1 }]);
        assert_eq!(scan.tail, WalTail::Clean);
    }

    #[test]
    fn sync_every_boundary_propagates_write_error() {
        // The SYNC_EVERY'th append triggers an implicit sync; a failing
        // sync surfaces through append, not silently.
        let buf = Arc::new(Mutex::new(Vec::new()));
        let sink = FailingSink {
            buf,
            write_budget: usize::MAX,
            fail_sync: true,
        };
        let mut w = WalWriter::with_sink(Box::new(sink), PathBuf::from("<mem>"));
        let mut failed = false;
        for i in 0..SYNC_EVERY {
            if w.append(&WalRecord::Drained { count: i }).is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed, "implicit sync at the batch boundary must surface");
    }
}
