//! The stability buffer and release path: buffering notifications under
//! the watermark rule, draining the stable prefix in canonical order,
//! operator-buffer GC, and servicing detector timer fires.

use super::{CoordCtx, CoordinatorNode, RawDetection, ReleaseKey, ACK_TIMER_TAG, RELAY_RETX_TAG};
use crate::config::ReleasePolicy;
use crate::durability::WalRecord;
use crate::protocol::Msg;
use decs_chronos::Nanos;
use decs_core::{CompositeTimestamp, PrimitiveTimestamp};
use decs_simnet::Ctx;
use decs_snoop::{Occurrence, ShardFeedResult};

impl CoordinatorNode {
    pub(super) fn absorb(
        &mut self,
        r: ShardFeedResult<CompositeTimestamp>,
        ctx: &mut impl CoordCtx,
    ) {
        for (shard, t) in r.timers {
            let tag = self.next_tag;
            self.next_tag += 1;
            let delay = Nanos(t.delay_ticks * self.gg_nanos);
            self.timer_map.insert(tag, (shard, t.id));
            // Recorded even during replay: the due time is derived from the
            // logged consumption time, so a recovered coordinator re-arms
            // timers at exactly the instants the crashed one had pending.
            self.timer_due
                .insert(tag, ctx.true_now().get().saturating_add(delay.get()));
            ctx.set_timer(delay, tag);
        }
        for occ in r.detected {
            self.metrics.detections += 1;
            self.detections.push(RawDetection {
                occ,
                detected_at: ctx.true_now(),
            });
        }
    }

    /// Drain the stable prefix of the buffer in one watermark-bounded
    /// batch: collect every released notification first (the buffer walk
    /// is cheap and canonical), then feed them as a single **columnar**
    /// batch — types, stamps and parameter handles staged
    /// struct-of-arrays in the reusable [`decs_snoop::EventBatch`],
    /// materialized only for routed types at delivery. The parameter
    /// lists ride as `Arc` bumps; re-minted occurrence uids are fresh
    /// either way.
    pub(super) fn release_stable(&mut self, ctx: &mut impl CoordCtx) {
        let columnar = self.reportable.is_empty();
        debug_assert!(self.ingest.is_empty(), "staging batch left dirty");
        let mut batch = Vec::new();
        while let Some((&key, _)) = self.buffer.iter().next() {
            if !self.tracker.is_stable(key.0) {
                break;
            }
            let (occ, arrived) = self.buffer.remove(&key).expect("present");
            self.release_horizon = self.release_horizon.max(key.0 + 1);
            self.metrics.events_released += 1;
            self.metrics.stability_latency_sum_ns +=
                u128::from(ctx.true_now().get().saturating_sub(arrived.get()));
            if columnar {
                self.ingest.push_list(occ.ty, occ.time, occ.params);
            } else {
                batch.push(occ);
            }
        }
        if !self.ingest.is_empty() {
            self.metrics.release_batches += 1;
            self.metrics.batch_ingest_events += self.ingest.len() as u64;
            self.metrics.arena_bytes = self
                .metrics
                .arena_bytes
                .max(self.ingest.arena_bytes() as u64);
            let r = self.detector.feed_batch_columnar(&self.ingest);
            self.ingest.clear();
            self.absorb(r, ctx);
        } else if !batch.is_empty() {
            self.metrics.release_batches += 1;
            // Site-local composite arrivals are reported interleaved
            // with the global graph's own detections, so keep the
            // per-event feed order observable.
            for occ in batch {
                self.feed_released(occ, ctx);
            }
        }
        self.gc_operator_buffers();
        // End of a release round is the quiescent point: the detector has
        // no half-processed batch, and GC has just refreshed occupancy.
        self.maybe_snapshot();
    }

    /// Let the detector's operator nodes reclaim buffered state the
    /// watermark proves dead, and refresh the occupancy metrics.
    ///
    /// The low bound is `min_watermark − 2`: everything the coordinator can
    /// still feed has all member globals `≥` that. Stability releases
    /// stamps with `max_global ≤ min − 2`, so buffer residue and future
    /// releases have `max_global ≥ min − 1`; by Theorem 5.1 the members of
    /// a `Max`-combined stamp are pairwise concurrent, so their globals
    /// span at most one tick — all `≥ min − 2`. Coordinator-clock timer
    /// stamps sit at the current global tick, ahead of every received
    /// watermark under the `2g_g` clock-sync assumption (Prop 4.1).
    pub(super) fn gc_operator_buffers(&mut self) {
        if self.buffer_gc {
            let low = self.tracker.min_watermark().saturating_sub(2);
            if low > self.last_gc_low {
                self.last_gc_low = low;
                // Operator buffers below `low` are gone: a late notification
                // at or below it could no longer combine correctly, so the
                // stale horizon advances with the GC bound too.
                self.release_horizon = self.release_horizon.max(low + 1);
                self.metrics.gc_evicted += self.detector.advance_watermark(low);
            }
        }
        self.metrics.node_buffered = self.detector.buffered_occupancy();
        self.metrics.node_buffer_peak = self
            .metrics
            .node_buffer_peak
            .max(self.metrics.node_buffered);
        self.metrics.worker_count = self.detector.worker_count();
        self.metrics.parallel_rounds = self.detector.parallel_rounds();
        self.metrics.pool_busy_ns = self.detector.pool_busy_ns();
        self.metrics.ring_full_spins = self.detector.ring_full_spins();
    }

    /// Feed a released notification: report it if it is itself a
    /// site-local composite detection, then run the global graph.
    pub(super) fn feed_released(
        &mut self,
        occ: Occurrence<CompositeTimestamp>,
        ctx: &mut impl CoordCtx,
    ) {
        if self.reportable.contains(&occ.ty) {
            self.metrics.detections += 1;
            self.detections.push(RawDetection {
                occ: occ.clone(),
                detected_at: ctx.true_now(),
            });
        }
        let r = self.detector.feed(occ);
        self.absorb(r, ctx);
    }

    /// Buffer (or, under `Immediate`, directly feed) one reassembled
    /// notification. The release key's third component is the per-site
    /// arrival counter — identical for the `Event` and `Batch` transports.
    pub(super) fn accept_notification(
        &mut self,
        site: usize,
        occ: Occurrence<CompositeTimestamp>,
        ctx: &mut impl CoordCtx,
    ) {
        match self.policy {
            ReleasePolicy::Stable => {
                if occ.time.max_global() < self.release_horizon {
                    // Its slot in the canonical release order has already
                    // been passed — the pre-crash backlog of an evicted,
                    // now rejoining site (a healthy site's watermark
                    // promise makes this provably unreachable). Refuse it
                    // *without* consuming an arrival counter, so surviving
                    // notifications keep the same release keys as a run in
                    // which the stale backlog never arrived.
                    self.metrics.stale_refused += 1;
                    return;
                }
                self.metrics.events_received += 1;
                let arrival = self.streams[site].arrivals;
                self.streams[site].arrivals += 1;
                let key: ReleaseKey = (occ.time.max_global(), site as u32, arrival);
                self.buffer.insert(key, (occ, ctx.true_now()));
                self.metrics.max_buffered = self.metrics.max_buffered.max(self.buffer.len());
            }
            ReleasePolicy::Immediate => {
                self.metrics.events_received += 1;
                self.metrics.events_released += 1;
                self.feed_released(occ, ctx);
            }
        }
    }

    /// The body of [`decs_simnet::Actor::on_timer`]: the periodic
    /// ack/stall round, or a detector timer fire stamped with the
    /// coordinator's own clock.
    pub(super) fn timer_fire(&mut self, tag: u64, ctx: &mut Ctx<'_, Msg>) {
        if self.wal_failed.is_some() {
            // Fail-stop: a timer fire is a consumed input too, and it can
            // no longer be logged.
            return;
        }
        if tag == ACK_TIMER_TAG {
            self.ack_round(ctx);
            return;
        }
        if tag == RELAY_RETX_TAG {
            self.relay_retx_round(ctx);
            return;
        }
        let Some((shard, timer_id)) = self.timer_map.remove(&tag) else {
            // Not an error: after crash recovery a timer can be queued
            // twice — the crashed node's arming survives in the simulation
            // queue *and* the recovery harness re-arms it for the
            // replacement node. `timer_map.remove` makes the fire
            // idempotent; the loser lands here and is ignored.
            return;
        };
        self.timer_due.remove(&tag);
        // Stamp the fire with the coordinator's own clock — periodic
        // occurrences carry genuine (site, global, local) triples.
        let Ok(parts) = ctx.stamp() else {
            return;
        };
        if self.wal.is_some() && !self.replaying {
            // The minted stamp is logged part-by-part: replay must rebuild
            // the identical timestamp without consulting any clock.
            self.wal_append(WalRecord::TimerFired {
                tag,
                at: Ctx::true_now(ctx).get(),
                site: parts.site.0,
                global: parts.global.get(),
                local: parts.local.get(),
            });
            if self.wal_failed.is_some() {
                return;
            }
        }
        let ts = CompositeTimestamp::singleton(PrimitiveTimestamp::new(
            parts.site,
            parts.global,
            parts.local,
        ));
        self.fire_detector_timer(shard, timer_id, ts, ctx);
    }
}
