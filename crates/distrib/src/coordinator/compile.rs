//! Compiling the coordinator's detector from definition lists.
//!
//! Shared by engine construction and crash recovery, so a recovered
//! coordinator runs a bit-identical plan. Lives with the coordinator (not
//! the engine) because every coordinator replica must be able to build its
//! own plan from the same inputs.

use crate::config::EngineConfig;
use decs_core::CompositeTimestamp;
use decs_snoop::{AnyDetector, Context, EventExpr, EventId, PlanDetector, Result, ShardedDetector};
use std::collections::HashMap;

/// A freshly compiled coordinator detector plus the name→id table and
/// the full coordinator-visible event-name list it was compiled with.
pub(crate) type CompiledDetector = (
    AnyDetector<CompositeTimestamp>,
    HashMap<String, EventId>,
    Vec<String>,
);

/// Compile the coordinator's detector from the (owned) definition lists.
pub(crate) fn build_detector(
    config: &EngineConfig,
    primitives: &[String],
    local_definitions: &[(String, EventExpr, Context)],
    global_definitions: &[(String, EventExpr, Context)],
) -> Result<CompiledDetector> {
    // The shared-plan backend is the default; `plan_sharing: false`
    // keeps the independent-compilation path as a differential oracle.
    let mut detector: AnyDetector<CompositeTimestamp> = if config.plan_sharing {
        PlanDetector::new().into()
    } else {
        ShardedDetector::new().into()
    };
    let mut name_ids = HashMap::new();
    for p in primitives {
        let id = detector.register(p)?;
        name_ids.insert(p.clone(), id);
    }
    // Local composite events are plain event types at the coordinator
    // (detected at the sites, not re-detected here).
    for (name, _, _) in local_definitions {
        let id = detector.register(name)?;
        name_ids.insert(name.clone(), id);
    }
    for (name, expr, ctx) in global_definitions {
        let id = detector.define(name, expr, *ctx)?;
        name_ids.insert(name.clone(), id);
    }
    apply_worker_config(&mut detector, config);
    // Snapshot id → name for reporting.
    let names = catalog_names(&detector);
    Ok((detector, name_ids, names))
}

/// Apply the `worker_count` policy to a compiled detector.
///
/// `worker_count` semantics: 0 = auto (pool iff ≥ 2 workers fit under the
/// min(available_parallelism, shards) clamp), 1 = forced serial (the
/// determinism-suite baseline), n ≥ 2 = pool of exactly min(n, shards)
/// threads. An explicit count bypasses the hardware cap: the determinism
/// suites depend on real multi-worker hand-off even on single-core CI.
/// See [`EngineConfig::worker_count`].
pub(crate) fn apply_worker_config(
    detector: &mut AnyDetector<CompositeTimestamp>,
    config: &EngineConfig,
) {
    #[cfg(feature = "parallel")]
    if detector.shard_count() > 1 {
        match config.worker_count {
            0 => {
                let workers = std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
                    .min(detector.shard_count());
                if workers > 1 {
                    detector.enable_pool(workers);
                }
            }
            1 => {}
            n => detector.enable_pool_exact(n.min(detector.shard_count())),
        }
    }
    #[cfg(not(feature = "parallel"))]
    {
        let _ = (detector, config);
    }
}

/// The detector's full catalog as an id-indexed name list.
pub(crate) fn catalog_names(detector: &AnyDetector<CompositeTimestamp>) -> Vec<String> {
    let cat = detector.catalog();
    (0..cat.len())
        .map(|i| cat.name(EventId(i as u32)).to_string())
        .collect()
}
