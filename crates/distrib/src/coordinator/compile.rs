//! Compiling the coordinator's detector from definition lists.
//!
//! Shared by engine construction and crash recovery, so a recovered
//! coordinator runs a bit-identical plan. Lives with the coordinator (not
//! the engine) because every coordinator replica must be able to build its
//! own plan from the same inputs.

use crate::config::EngineConfig;
use decs_core::CompositeTimestamp;
use decs_snoop::{AnyDetector, Context, EventExpr, EventId, PlanDetector, Result, ShardedDetector};
use std::collections::HashMap;

/// A freshly compiled coordinator detector plus the name→id table and
/// the full coordinator-visible event-name list it was compiled with.
pub(crate) type CompiledDetector = (
    AnyDetector<CompositeTimestamp>,
    HashMap<String, EventId>,
    Vec<String>,
);

/// Compile the coordinator's detector from the (owned) definition lists.
pub(crate) fn build_detector(
    config: &EngineConfig,
    primitives: &[String],
    local_definitions: &[(String, EventExpr, Context)],
    global_definitions: &[(String, EventExpr, Context)],
) -> Result<CompiledDetector> {
    // The shared-plan backend is the default; `plan_sharing: false`
    // keeps the independent-compilation path as a differential oracle.
    let mut detector: AnyDetector<CompositeTimestamp> = if config.plan_sharing {
        PlanDetector::new().into()
    } else {
        ShardedDetector::new().into()
    };
    let mut name_ids = HashMap::new();
    for p in primitives {
        let id = detector.register(p)?;
        name_ids.insert(p.clone(), id);
    }
    // Local composite events are plain event types at the coordinator
    // (detected at the sites, not re-detected here).
    for (name, _, _) in local_definitions {
        let id = detector.register(name)?;
        name_ids.insert(name.clone(), id);
    }
    for (name, expr, ctx) in global_definitions {
        let id = detector.define(name, expr, *ctx)?;
        name_ids.insert(name.clone(), id);
    }
    apply_worker_config(&mut detector, config);
    // Snapshot id → name for reporting.
    let names = catalog_names(&detector);
    Ok((detector, name_ids, names))
}

/// Apply the `worker_count` policy to a compiled detector.
///
/// `worker_count` semantics: 0 = auto (pool iff ≥ 2 workers fit under the
/// min(available_parallelism, shards) clamp), 1 = forced serial (the
/// determinism-suite baseline), n ≥ 2 = pool of exactly min(n, shards)
/// threads. An explicit count bypasses the hardware cap: the determinism
/// suites depend on real multi-worker hand-off even on single-core CI.
/// See [`EngineConfig::worker_count`].
pub(crate) fn apply_worker_config(
    detector: &mut AnyDetector<CompositeTimestamp>,
    config: &EngineConfig,
) {
    #[cfg(feature = "parallel")]
    if detector.shard_count() > 1 {
        match config.worker_count {
            0 => {
                let workers = std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
                    .min(detector.shard_count());
                if workers > 1 {
                    detector.enable_pool(workers);
                }
            }
            1 => {}
            n => detector.enable_pool_exact(n.min(detector.shard_count())),
        }
    }
    #[cfg(not(feature = "parallel"))]
    {
        let _ = (detector, config);
    }
}

/// The detector's full catalog as an id-indexed name list.
pub(crate) fn catalog_names(detector: &AnyDetector<CompositeTimestamp>) -> Vec<String> {
    let cat = detector.catalog();
    (0..cat.len())
        .map(|i| cat.name(EventId(i as u32)).to_string())
        .collect()
}

/// One replica's compiled detector plus its catalog translation tables.
pub(crate) struct ReplicaPlan {
    /// The replica's detector, with the cross-definition cascade severed
    /// (the partition plane re-creates it explicitly).
    pub(crate) detector: AnyDetector<CompositeTimestamp>,
    /// Replica-local event id → full-catalog id.
    pub(crate) to_global: Vec<u32>,
    /// Full-catalog id → replica-local id.
    pub(crate) to_local: HashMap<u32, u32>,
}

/// Compile one replica's detector: register the replica's input types
/// (ascending full-catalog id — composites its definitions reference but
/// does not own arrive as first-class primitives), then define its owned
/// global definitions in global definition order. The replica plan is
/// deterministic: a recovered replica rebuilds the identical plan.
pub(crate) fn build_replica_detector(
    config: &EngineConfig,
    full_names: &[String],
    inputs: &std::collections::BTreeSet<u32>,
    owned_defs: &[(String, EventExpr, Context)],
) -> Result<ReplicaPlan> {
    let mut detector: AnyDetector<CompositeTimestamp> = if config.plan_sharing {
        PlanDetector::new().into()
    } else {
        ShardedDetector::new().into()
    };
    let mut to_global = Vec::new();
    let mut to_local = HashMap::new();
    // The plan backend interns synthetic hash-cons nodes into the catalog
    // during `define`, so returned ids are not contiguous. `to_global` is
    // therefore gap-tolerant: synthetic slots hold a sentinel that is never
    // read (detections and routed inputs only ever carry named ids).
    let set = |to_global: &mut Vec<u32>, local: EventId, full: u32| {
        if to_global.len() <= local.0 as usize {
            to_global.resize(local.0 as usize + 1, u32::MAX);
        }
        to_global[local.0 as usize] = full;
    };
    for &full in inputs {
        let local = detector.register(&full_names[full as usize])?;
        to_local.insert(full, local.0);
        set(&mut to_global, local, full);
    }
    for (name, expr, ctx) in owned_defs {
        let local = detector.define(name, expr, *ctx)?;
        // A defined composite also needs a full-catalog id: its name is in
        // the full catalog by construction.
        let full = full_names
            .iter()
            .position(|n| n == name)
            .expect("owned definition in full catalog") as u32;
        to_local.insert(full, local.0);
        set(&mut to_global, local, full);
    }
    detector.set_cascade(false);
    apply_worker_config(&mut detector, config);
    Ok(ReplicaPlan {
        detector,
        to_global,
        to_local,
    })
}
