//! Per-site stream delivery: FIFO reassembly over sequence numbers,
//! incarnation-epoch filtering and the `Hello` rejoin transition,
//! cumulative acks, stall detection and eviction.

use super::{CoordCtx, CoordinatorNode, ACK_TIMER_TAG, RELAY_RETX_TAG};
use crate::durability::WalRecord;
use crate::protocol::Msg;
use decs_simnet::NodeIdx;

impl CoordinatorNode {
    /// Consume one in-order message from `site`'s reassembled stream:
    /// log it to the WAL first (recovery replays exactly this stream),
    /// then apply it.
    pub(super) fn handle_in_order(&mut self, site: usize, msg: Msg, ctx: &mut impl CoordCtx) {
        if self.wal_failed.is_some() {
            // Fail-stopped: `wal == None` no longer means durability-off.
            return;
        }
        // Log before applying: recovery replays exactly the in-order
        // consumption stream. Parked messages are logged here — when they
        // are consumed — not on arrival; until then the ack protocol keeps
        // them the sender's responsibility.
        if self.wal.is_some() && !self.replaying {
            self.wal_append(WalRecord::Delivered {
                site: site as u32,
                at: ctx.true_now().get(),
                msg: msg.clone(),
            });
            if self.wal_failed.is_some() {
                // The message could not be logged: fail-stop *before*
                // applying it, so disk state still matches applied state.
                return;
            }
        }
        self.metrics.messages_processed += 1;
        // Evicted sites: stream bookkeeping continues (their retransmits
        // must be acked into silence) but new notifications are refused and
        // their watermark promises stay pinned at +∞.
        let evicted = self.streams[site].evicted;
        match msg {
            Msg::Event { occ, .. } => {
                if evicted {
                    self.metrics.evict_refused += 1;
                } else {
                    self.accept_notification(site, occ, ctx);
                }
            }
            Msg::Heartbeat { watermark, .. } => {
                self.metrics.heartbeats_received += 1;
                self.tracker.update(site, watermark);
                self.release_round(ctx);
            }
            Msg::Batch {
                watermark, events, ..
            } => {
                self.metrics.batches_received += 1;
                self.metrics.batch_size_max = self.metrics.batch_size_max.max(events.len());
                if evicted {
                    self.metrics.evict_refused += events.len() as u64;
                } else {
                    // The WAL (or a retransmit buffer in tests) may still
                    // hold a reference; consume in place when we own the
                    // only copy, clone per occurrence otherwise.
                    match std::sync::Arc::try_unwrap(events) {
                        Ok(owned) => {
                            for occ in owned {
                                self.accept_notification(site, occ, ctx);
                            }
                        }
                        Err(shared) => {
                            for occ in shared.iter().cloned() {
                                self.accept_notification(site, occ, ctx);
                            }
                        }
                    }
                }
                self.tracker.update(site, watermark);
                self.release_round(ctx);
            }
            Msg::Hello { watermark, .. } => {
                // The epoch transition already ran at first sight (see
                // `epoch_transition`); consuming the Hello in order marks
                // the rejoin complete: the returning site's backlog is
                // drained and its fresh watermark promise takes effect.
                self.tracker.update(site, watermark);
                if let Some(t0) = self.streams[site].rejoined_at.take() {
                    self.metrics.rejoin_latency_ns += ctx.true_now().get().saturating_sub(t0.get());
                }
                self.release_round(ctx);
            }
            Msg::Routed {
                watermark, events, ..
            } => {
                // Subscription-routed site traffic (partitioned plane): the
                // subset of the site's stream this replica subscribes to,
                // plus the site's watermark (carried on every uplink).
                self.metrics.routed_received += 1;
                if evicted {
                    self.metrics.evict_refused += events.len() as u64;
                } else {
                    match std::sync::Arc::try_unwrap(events) {
                        Ok(owned) => {
                            for ev in owned {
                                self.accept_routed(site, ev, ctx);
                            }
                        }
                        Err(shared) => {
                            for ev in shared.iter().cloned() {
                                self.accept_routed(site, ev, ctx);
                            }
                        }
                    }
                }
                self.tracker.update(site, watermark);
                self.release_round(ctx);
            }
            Msg::Relay {
                promise, events, ..
            } => {
                // Peer-replica traffic: forwarded cascade events plus the
                // peer's promise. No tracker update — peers are ordered by
                // promises, not site watermarks.
                self.handle_relay(site, &promise, events, ctx);
            }
            Msg::Start
            | Msg::Inject { .. }
            | Msg::Crash
            | Msg::Restart
            | Msg::Evict { .. }
            | Msg::Ack { .. } => {
                debug_assert!(false, "sequence-numbered control message");
            }
        }
    }

    /// Run the release machinery appropriate to this deployment: the
    /// partitioned round when this coordinator is a replica, the classic
    /// stability-buffer walk otherwise.
    pub(super) fn release_round(&mut self, ctx: &mut impl CoordCtx) {
        if self.part.is_some() {
            self.release_partitioned(ctx);
        } else {
            self.release_stable(ctx);
        }
    }

    pub(super) fn seq_of(msg: &Msg) -> Option<u64> {
        match msg {
            Msg::Event { seq, .. }
            | Msg::Heartbeat { seq, .. }
            | Msg::Batch { seq, .. }
            | Msg::Hello { seq, .. }
            | Msg::Routed { seq, .. }
            | Msg::Relay { seq, .. } => Some(*seq),
            _ => None,
        }
    }

    pub(super) fn epoch_of(msg: &Msg) -> Option<u64> {
        match msg {
            Msg::Event { epoch, .. }
            | Msg::Heartbeat { epoch, .. }
            | Msg::Batch { epoch, .. }
            | Msg::Hello { epoch, .. }
            | Msg::Routed { epoch, .. } => Some(*epoch),
            // Replica → replica streams have no incarnation epochs (a
            // recovered replica resumes its durable sequence space).
            Msg::Relay { .. } => Some(0),
            _ => None,
        }
    }

    /// React to the **first sight** of a `Msg::Hello` carrying a higher
    /// epoch than the stream's (in or out of order — it runs before
    /// sequence handling, and exactly once per epoch because it raises the
    /// stream epoch it is gated on):
    ///
    /// * parked reassembly state from the dead incarnation is dropped (its
    ///   sequence numbers may collide with the new incarnation's);
    /// * the in-order frontier falls to `min(next, base_seq)` — a
    ///   non-durable restart resets the site's sequence space below the old
    ///   frontier, a durable one resumes at or above it (so `min` is a
    ///   no-op there and no delivered prefix is ever re-opened);
    /// * an evicted site is un-evicted: its watermark pin drops from +∞
    ///   back to the Hello's fresh promise and its stall state clears.
    pub(super) fn epoch_transition(
        &mut self,
        site: usize,
        epoch: u64,
        base_seq: u64,
        watermark: u64,
        ctx: &mut impl CoordCtx,
    ) {
        if self.wal_failed.is_some() {
            return;
        }
        if self.wal.is_some() && !self.replaying {
            self.wal_append(WalRecord::HelloSeen {
                site: site as u32,
                at: ctx.true_now().get(),
                epoch,
                base_seq,
                watermark,
            });
            if self.wal_failed.is_some() {
                return;
            }
        }
        let dropped = std::mem::take(&mut self.streams[site].parked).len();
        self.parked_total -= dropped;
        self.streams[site].epoch = epoch;
        self.streams[site].next = self.streams[site].next.min(base_seq);
        self.streams[site].rejoined_at = Some(ctx.true_now());
        let was_evicted = std::mem::replace(&mut self.streams[site].evicted, false);
        if was_evicted {
            self.tracker.reset(site, watermark);
            let st = &mut self.stall[site];
            if st.suspect {
                st.suspect = false;
                self.metrics.suspect_sites -= 1;
            }
            st.stalled_checks = 0;
            st.last_wm = watermark;
        }
        self.metrics.rejoins += 1;
        self.metrics.epoch_max = self.metrics.epoch_max.max(epoch);
    }

    /// Stop waiting for `site`: its watermark promise becomes +∞ and its
    /// future notifications are refused (buffered ones still release).
    pub(super) fn evict(&mut self, site: usize, ctx: &mut impl CoordCtx) {
        if site >= self.streams.len() || self.streams[site].evicted || self.wal_failed.is_some() {
            return;
        }
        if self.wal.is_some() && !self.replaying {
            self.wal_append(WalRecord::Evicted {
                site: site as u32,
                at: ctx.true_now().get(),
            });
            if self.wal_failed.is_some() {
                return;
            }
        }
        self.streams[site].evicted = true;
        self.tracker.update(site, u64::MAX);
        self.release_round(ctx);
    }

    /// Send `site`'s cumulative ack, scoped to its current epoch (a site
    /// ignores acks from an epoch other than its own).
    pub(super) fn send_ack(&mut self, to: NodeIdx, site: usize, ctx: &mut impl CoordCtx) {
        self.metrics.acks_sent += 1;
        let cum_seq = self.streams[site].next;
        let epoch = self.streams[site].epoch;
        ctx.send(to, Msg::Ack { cum_seq, epoch });
    }

    /// Periodic round: re-send every stream's cumulative ack (repairing
    /// acks lost on the return path — peer relay streams included, their
    /// stream index is their node index), run the stall detector, re-arm.
    pub(super) fn ack_round(&mut self, ctx: &mut impl CoordCtx) {
        let own_slot = self
            .part
            .as_ref()
            .map(|p| p.n_sites + p.replica)
            .unwrap_or(usize::MAX);
        for site in 0..self.streams.len() {
            if site == own_slot {
                continue;
            }
            self.send_ack(NodeIdx(site as u32), site, ctx);
        }
        self.stall_check(ctx);
        ctx.set_timer(self.ack_interval, ACK_TIMER_TAG);
    }

    /// Mark a site *suspect* when its watermark has not advanced for
    /// `stall_intervals` consecutive rounds in which some other site's
    /// did (a globally idle system suspects nobody). Suspicion clears as
    /// soon as the watermark moves again; with `auto_evict` it escalates
    /// to eviction instead.
    pub(super) fn stall_check(&mut self, ctx: &mut impl CoordCtx) {
        if self.stall_intervals == 0 {
            return;
        }
        let n = self.stall.len();
        let mut advanced = vec![false; n];
        let mut any_advanced = false;
        for (i, adv) in advanced.iter_mut().enumerate() {
            if self.streams[i].evicted {
                continue;
            }
            let wm = self.tracker.site_watermark(i);
            if wm > self.stall[i].last_wm {
                self.stall[i].last_wm = wm;
                *adv = true;
                any_advanced = true;
            }
        }
        let mut to_evict = Vec::new();
        for (i, &adv) in advanced.iter().enumerate() {
            if self.streams[i].evicted {
                continue;
            }
            let st = &mut self.stall[i];
            if adv {
                st.stalled_checks = 0;
                if st.suspect {
                    st.suspect = false;
                    self.metrics.suspect_sites -= 1;
                }
            } else if any_advanced {
                st.stalled_checks += 1;
                if st.suspect {
                    self.metrics.stall_ns += u128::from(self.ack_interval.get());
                } else if st.stalled_checks >= self.stall_intervals {
                    st.suspect = true;
                    self.metrics.suspect_sites += 1;
                    if self.auto_evict {
                        self.metrics.auto_evictions += 1;
                        to_evict.push(i);
                    }
                }
            }
        }
        for site in to_evict {
            self.evict(site, ctx);
        }
    }

    /// The full message-delivery state machine (the body of
    /// [`decs_simnet::Actor::on_message`]): control messages, the
    /// incarnation-epoch filter, and sequence-number reassembly with
    /// park/drain/dup handling.
    pub(super) fn deliver(&mut self, from: NodeIdx, msg: Msg, ctx: &mut impl CoordCtx) {
        if let Msg::Evict { site } = msg {
            // Operator action: treat the site's watermark as +∞ so the
            // remaining buffer can stabilize without it.
            self.evict(site as usize, ctx);
            return;
        }
        if matches!(msg, Msg::Start) {
            // Engine control: arm the periodic ack/stall-check round and —
            // on a replica — the relay retransmission round.
            if self.ack_interval.get() > 0 {
                ctx.set_timer(self.ack_interval, ACK_TIMER_TAG);
            }
            if let Some(part) = &self.part {
                if part.relay_retx.get() > 0 {
                    ctx.set_timer(part.relay_retx, RELAY_RETX_TAG);
                }
            }
            return;
        }
        let site = from.0 as usize;
        if let Msg::Ack { cum_seq, .. } = msg {
            // A peer replica acking our relay stream (sites never ack the
            // coordinator). Classic deployments fall through to the
            // seq gate below, which drops the echo.
            if self.part.is_some() && site >= self.part.as_ref().expect("partitioned").n_sites {
                self.on_peer_ack(site, cum_seq);
                return;
            }
        }
        let Some(seq) = Self::seq_of(&msg) else {
            return; // Inject/Ack echoes are not coordinator traffic
        };
        debug_assert!(site < self.streams.len(), "unknown site {site}");
        if self.wal_failed.is_some() {
            // Fail-stop after a WAL error: dropping without acking keeps
            // the durable log prefix exactly the consumed-input stream —
            // sites retransmit into the replacement coordinator instead.
            return;
        }
        // Incarnation-epoch filter, ahead of sequence handling: the two
        // incarnations' sequence spaces may overlap.
        let msg_epoch = Self::epoch_of(&msg).unwrap_or(0);
        let stream_epoch = self.streams[site].epoch;
        if msg_epoch < stream_epoch {
            // In-flight traffic from a dead incarnation.
            self.metrics.epoch_filtered += 1;
            return;
        }
        if msg_epoch > stream_epoch {
            match &msg {
                Msg::Hello {
                    seq,
                    epoch,
                    watermark,
                } => {
                    let (s, e, w) = (*seq, *epoch, *watermark);
                    self.epoch_transition(site, e, s, w, ctx);
                    // Fall through: the Hello itself is sequence-handled
                    // against the just-lowered frontier like any message.
                }
                _ => {
                    // New-incarnation data racing ahead of its Hello. Drop
                    // it unacked; retransmission re-delivers it once the
                    // Hello has landed and bumped the stream epoch.
                    self.metrics.epoch_filtered += 1;
                    return;
                }
            }
        }
        let stream = &mut self.streams[site];
        match seq.cmp(&stream.next) {
            std::cmp::Ordering::Equal => {
                stream.next += 1;
                self.handle_in_order(site, msg, ctx);
                // Drain any parked successors.
                loop {
                    if self.wal_failed.is_some() {
                        break;
                    }
                    let stream = &mut self.streams[site];
                    let Some(m) = stream.parked.remove(&stream.next) else {
                        break;
                    };
                    self.parked_total -= 1;
                    stream.next += 1;
                    self.handle_in_order(site, m, ctx);
                }
                if self.wal_failed.is_some() {
                    // The frontier advance was never durably logged — do
                    // not ack it, or the site would stop retransmitting a
                    // message no recovery will ever see.
                    return;
                }
                // Cumulative ack on every in-order delivery: the site trims
                // its retransmit buffer as soon as the frontier moves.
                self.send_ack(from, site, ctx);
            }
            std::cmp::Ordering::Greater => {
                if stream.parked.insert(seq, msg).is_some() {
                    // A second copy of an already-parked message
                    // (retransmitted or link-duplicated): the overwrite is
                    // idempotent.
                    self.metrics.duplicates_dropped += 1;
                    return;
                }
                self.metrics.reassembly_parks += 1;
                self.parked_total += 1;
                if self.parked_cap > 0 && stream.parked.len() > self.parked_cap {
                    // Backpressure: discard the parked message farthest
                    // from the in-order frontier. Cumulative acks never
                    // cover it, so the sender retransmits it later.
                    let (&victim, _) = stream.parked.iter().next_back().expect("non-empty");
                    stream.parked.remove(&victim);
                    self.parked_total -= 1;
                    self.metrics.parked_dropped += 1;
                }
                self.metrics.parked_peak = self.metrics.parked_peak.max(self.parked_total);
            }
            std::cmp::Ordering::Less => {
                // An already-delivered sequence number: a retransmitted or
                // link-duplicated copy. Drop it and re-ack so the sender
                // learns its delivery even if the original ack was lost.
                self.metrics.duplicates_dropped += 1;
                self.send_ack(from, site, ctx);
            }
        }
    }
}
