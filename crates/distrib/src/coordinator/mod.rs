//! The coordinator (global event detector).
//!
//! Receives stamped primitive-event notifications and watermarks from
//! every site — either per-event (`Msg::Event` + `Msg::Heartbeat`) or
//! coalesced into `Msg::Batch`es — reassembles each site's FIFO stream,
//! buffers notifications until the watermark stability rule releases them,
//! drains the stable prefix in watermark-bounded batches into an
//! [`AnyDetector`] — the hash-consed shared plan by default, or one
//! event-graph shard per composite definition with plan sharing disabled —
//! in a canonical order, and services the detector's timer requests from
//! its own clock. Detections are identical in both transport modes and
//! with either backend.
//!
//! The implementation is split by concern:
//!
//! * [`compile`] — building the detector from definition lists (shared by
//!   engine construction and crash recovery);
//! * [`delivery`] — per-site FIFO reassembly, incarnation epochs, acks,
//!   stall detection and eviction;
//! * [`release`] — the stability buffer, canonical release order, operator
//!   GC and detector feeding (including timer fires);
//! * [`recovery`] — WAL appends, snapshots, and crash recovery;
//! * [`partition`] — the multi-replica detection plane: partition keys,
//!   the promise protocol, and replica → replica relays.

pub(crate) mod compile;
mod delivery;
pub(crate) mod partition;
mod recovery;
mod release;

use crate::config::ReleasePolicy;
use crate::durability::{SnapshotStore, WalWriter};
use crate::metrics::Metrics;
use crate::protocol::Msg;
use crate::watermark::WatermarkTracker;
use decs_chronos::Nanos;
use decs_core::CompositeTimestamp;
use decs_simnet::{Actor, Ctx, NodeIdx};
use decs_snoop::{AnyDetector, EventBatch, EventId, Occurrence, ShardId, TimerId};
use std::collections::{BTreeMap, HashMap, HashSet};

/// The slice of [`Ctx`] the coordinator's state transitions actually use.
///
/// Every state-mutating internal method is generic over this trait so the
/// *same code* runs in two worlds: live (a real [`Ctx`] — sends go on the
/// wire, timers get armed) and WAL replay (a [`ReplayCtx`] — `true_now`
/// reads the logged time, sends and timer arms are swallowed, because the
/// recovery harness re-arms surviving timers itself and the peers already
/// received the originals). Recovery being "the normal feed path with a
/// different context" is what makes replay equivalence an identity rather
/// than a parallel reimplementation to keep in sync.
pub(crate) trait CoordCtx {
    /// Current true time (live: simulation clock; replay: logged time).
    fn true_now(&self) -> Nanos;
    /// Arm a timer (no-op during replay).
    fn set_timer(&mut self, delay: Nanos, tag: u64);
    /// Send a message (no-op during replay).
    fn send(&mut self, to: NodeIdx, msg: Msg);
}

impl CoordCtx for Ctx<'_, Msg> {
    fn true_now(&self) -> Nanos {
        Ctx::true_now(self)
    }
    fn set_timer(&mut self, delay: Nanos, tag: u64) {
        Ctx::set_timer(self, delay, tag);
    }
    fn send(&mut self, to: NodeIdx, msg: Msg) {
        Ctx::send(self, to, msg);
    }
}

/// The replay world: time is read from the log, effects on the outside
/// world are suppressed.
pub(crate) struct ReplayCtx {
    /// The true time recorded with the record being replayed.
    pub now: Nanos,
}

impl CoordCtx for ReplayCtx {
    fn true_now(&self) -> Nanos {
        self.now
    }
    fn set_timer(&mut self, _delay: Nanos, _tag: u64) {}
    fn send(&mut self, _to: NodeIdx, _msg: Msg) {}
}

/// Canonical release key: (max global tick, origin site, per-site arrival
/// counter). The counter is assigned when the notification enters the
/// stability buffer, in reassembled FIFO order, so it is the same whether
/// the notification traveled as its own `Msg::Event` or inside a
/// `Msg::Batch` — detection stays a pure function of the workload,
/// independent of both delivery order and transport mode.
pub(crate) type ReleaseKey = (u64, u32, u64);

/// Timer tag reserved for the periodic ack/stall-check round. Detector
/// timer tags count up from 0, so the two can never collide.
pub(crate) const ACK_TIMER_TAG: u64 = u64::MAX;

/// Timer tag reserved for the periodic replica → replica relay
/// retransmission round (partitioned deployments only).
pub(crate) const RELAY_RETX_TAG: u64 = u64::MAX - 1;

#[derive(Debug, Default)]
pub(crate) struct SiteStream {
    pub(crate) next: u64,
    pub(crate) parked: BTreeMap<u64, Msg>,
    /// Notifications buffered from this site so far (release-key counter).
    /// **Not** reset on an epoch bump: release keys must stay unique for
    /// the stream's lifetime, across incarnations.
    pub(crate) arrivals: u64,
    /// Evicted sites keep their stream bookkeeping (so retransmissions are
    /// acked and die down) but their notifications are refused.
    pub(crate) evicted: bool,
    /// The site's current incarnation epoch. Messages carrying a lower
    /// epoch are stale traffic from a dead incarnation and are filtered;
    /// a higher epoch (first seen on a `Msg::Hello`) triggers the rejoin
    /// transition.
    pub(crate) epoch: u64,
    /// True time the current epoch's `Hello` was first seen, pending its
    /// in-order consumption — the interval is the rejoin latency.
    pub(crate) rejoined_at: Option<Nanos>,
}

/// Per-site stall-detector state.
#[derive(Debug, Default, Clone)]
pub(crate) struct StallState {
    /// Watermark observed at the last check round.
    pub(crate) last_wm: u64,
    /// Consecutive check rounds without watermark progress while some
    /// other site progressed.
    pub(crate) stalled_checks: u64,
    /// Whether the site is currently suspect.
    pub(crate) suspect: bool,
}

/// A detection produced by the coordinator, with bookkeeping times.
#[derive(Debug, Clone)]
pub struct RawDetection {
    /// The composite occurrence.
    pub occ: Occurrence<CompositeTimestamp>,
    /// True time at which the coordinator produced it.
    pub detected_at: Nanos,
}

/// The coordinator actor.
pub struct CoordinatorNode {
    pub(crate) detector: AnyDetector<CompositeTimestamp>,
    /// Reusable columnar staging batch for release rounds (cleared after
    /// every feed; steady state allocates nothing).
    pub(crate) ingest: EventBatch<CompositeTimestamp>,
    pub(crate) tracker: WatermarkTracker,
    pub(crate) streams: Vec<SiteStream>,
    pub(crate) buffer: BTreeMap<ReleaseKey, (Occurrence<CompositeTimestamp>, Nanos)>,
    /// Completed detections (drained by the engine after a run).
    pub detections: Vec<RawDetection>,
    /// Metrics counters.
    pub metrics: Metrics,
    pub(crate) timer_map: HashMap<u64, (ShardId, TimerId)>,
    pub(crate) next_tag: u64,
    pub(crate) gg_nanos: u64,
    pub(crate) policy: ReleasePolicy,
    /// Whether release rounds garbage-collect operator buffers.
    pub(crate) buffer_gc: bool,
    /// Last watermark the operator buffers were collected at (GC only runs
    /// when the low bound strictly advances).
    pub(crate) last_gc_low: u64,
    /// Event types whose *arrival* is itself a reportable detection
    /// (site-local composite events detected at the sites).
    pub(crate) reportable: HashSet<EventId>,
    /// Period of the ack/stall-check timer (`ZERO` disables it; armed by
    /// `Msg::Start`).
    pub(crate) ack_interval: Nanos,
    /// Stall threshold in check rounds (`0` disables stall detection).
    pub(crate) stall_intervals: u64,
    /// Escalate suspect sites to eviction.
    pub(crate) auto_evict: bool,
    /// Bound on each site's parked reassembly buffer (`0` = unbounded).
    pub(crate) parked_cap: usize,
    /// Stall-detector state, one entry per site.
    pub(crate) stall: Vec<StallState>,
    /// Parked messages across all site streams (for `parked_peak`).
    pub(crate) parked_total: usize,
    /// Write-ahead log of consumed inputs (`None` = durability off).
    pub(crate) wal: Option<WalWriter>,
    /// Snapshot store paired with the WAL.
    pub(crate) snapshots: Option<SnapshotStore>,
    /// Minimum watermark advance (global ticks) between snapshots.
    pub(crate) snapshot_interval: u64,
    /// Watermark at which the last snapshot was taken.
    pub(crate) last_snapshot_wm: u64,
    /// Absolute due time (true-time ns) of every armed detector timer, so
    /// a snapshot can record what to re-arm after recovery.
    pub(crate) timer_due: HashMap<u64, u64>,
    /// True while `recover` is replaying the WAL: appends, snapshots, sends
    /// and timer arms are all suppressed.
    pub(crate) replaying: bool,
    /// Detections ever drained by the engine (kept aligned across
    /// crash/recovery by `WalRecord::Drained`).
    pub(crate) drained: u64,
    /// High-water mark of the canonical release order, *exclusive*: every
    /// global tick strictly below it has been released (or proven dead by
    /// operator-buffer GC); 0 means nothing has passed yet. A notification
    /// stamped below it arrived after its slot in the release order was
    /// passed — only possible from an evicted-then-rejoined site's
    /// pre-crash backlog — and is refused as stale rather than released
    /// out of order.
    pub(crate) release_horizon: u64,
    /// Set on the first WAL append/sync failure; from then on the
    /// coordinator is fail-stop: it drops every input unprocessed (and
    /// unacked) so the log prefix stays exactly the consumed-input stream
    /// and recovery from it is still sound.
    pub(crate) wal_failed: Option<String>,
    /// Partitioned-plane state (`None` = classic single coordinator).
    pub(crate) part: Option<partition::PartitionState>,
}

impl std::fmt::Debug for CoordinatorNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoordinatorNode")
            .field("buffered", &self.buffer.len())
            .field("detections", &self.detections.len())
            .finish_non_exhaustive()
    }
}

impl CoordinatorNode {
    /// Coordinator over `sites` sites, running a pre-compiled detector —
    /// either backend ([`decs_snoop::ShardedDetector`] or
    /// [`decs_snoop::PlanDetector`]) converts into the [`AnyDetector`]
    /// this takes. `gg_nanos` is the duration of one global tick (for
    /// timer delays).
    pub fn new(
        sites: usize,
        detector: impl Into<AnyDetector<CompositeTimestamp>>,
        gg_nanos: u64,
    ) -> Self {
        Self::with_policy(sites, detector, gg_nanos, ReleasePolicy::Stable)
    }

    /// Coordinator with an explicit release policy (the `Immediate` policy
    /// exists for the ablation experiments).
    pub fn with_policy(
        sites: usize,
        detector: impl Into<AnyDetector<CompositeTimestamp>>,
        gg_nanos: u64,
        policy: ReleasePolicy,
    ) -> Self {
        let detector = detector.into();
        let plan = detector.plan_stats();
        let metrics = Metrics {
            shard_count: detector.shard_count(),
            stage_count: detector.stage_count(),
            worker_count: detector.worker_count(),
            plan_nodes: plan.plan_nodes,
            shared_nodes: plan.shared_nodes,
            sharing_ratio: plan.sharing_ratio,
            ..Metrics::default()
        };
        CoordinatorNode {
            detector,
            ingest: EventBatch::new(),
            tracker: WatermarkTracker::new(sites),
            streams: (0..sites).map(|_| SiteStream::default()).collect(),
            buffer: BTreeMap::new(),
            detections: Vec::new(),
            metrics,
            timer_map: HashMap::new(),
            next_tag: 0,
            gg_nanos,
            policy,
            buffer_gc: true,
            last_gc_low: 0,
            reportable: HashSet::new(),
            ack_interval: Nanos::ZERO,
            stall_intervals: 0,
            auto_evict: false,
            parked_cap: 0,
            stall: vec![StallState::default(); sites],
            parked_total: 0,
            wal: None,
            snapshots: None,
            snapshot_interval: 0,
            last_snapshot_wm: 0,
            timer_due: HashMap::new(),
            replaying: false,
            drained: 0,
            release_horizon: 0,
            wal_failed: None,
            part: None,
        }
    }

    /// Turn this coordinator into one replica of a partitioned detection
    /// plane: attach the partition state and extend the stream table with
    /// one reassembly stream per replica (peer relays ride the same
    /// seq/ack machinery as site streams; stream index = node index, so
    /// sites occupy `0..n_sites` and replicas `n_sites..n_sites + n`).
    /// The watermark tracker and stall detector stay site-sized — peers
    /// are ordered by promises, not watermarks.
    pub(crate) fn enable_partition(&mut self, state: partition::PartitionState) {
        for _ in 0..state.n_replicas {
            self.streams.push(SiteStream::default());
        }
        self.metrics.replica_count = state.n_replicas;
        self.part = Some(state);
    }

    /// Configure the fault-tolerance machinery: the periodic ack/stall
    /// timer (armed when the engine delivers `Msg::Start`), the stall
    /// threshold, automatic eviction of suspect sites, and the parked
    /// reassembly-buffer bound. All off in a bare coordinator.
    pub fn set_fault_tolerance(
        &mut self,
        ack_interval: Nanos,
        stall_intervals: u64,
        auto_evict: bool,
        parked_cap: usize,
    ) {
        self.ack_interval = ack_interval;
        self.stall_intervals = stall_intervals;
        self.auto_evict = auto_evict;
        self.parked_cap = parked_cap;
    }

    /// Enable or disable operator-buffer GC (on by default). GC is
    /// behavior-preserving, so this only trades memory for release-round
    /// work; the off switch exists for ablation and the occupancy bench.
    pub fn set_buffer_gc(&mut self, enabled: bool) {
        self.buffer_gc = enabled;
    }

    /// Mark event types whose arrivals are reported as detections in their
    /// own right (used for site-local composite events).
    pub fn set_reportable(&mut self, ids: impl IntoIterator<Item = EventId>) {
        self.reportable = ids.into_iter().collect();
    }

    /// Read access to the watermark tracker (tests/diagnostics).
    pub fn tracker(&self) -> &WatermarkTracker {
        &self.tracker
    }

    /// Number of notifications awaiting stability.
    pub fn buffered(&self) -> usize {
        match &self.part {
            Some(p) => p.pbuffer.len(),
            None => self.buffer.len(),
        }
    }

    /// A site's current incarnation epoch.
    pub fn site_epoch(&self, site: usize) -> u64 {
        self.streams.get(site).map(|s| s.epoch).unwrap_or(0)
    }

    /// Whether durability has fail-stopped on a WAL I/O error, and why.
    /// A failed coordinator drops every further input unprocessed.
    pub fn wal_failed(&self) -> Option<&str> {
        self.wal_failed.as_deref()
    }
}

impl Actor for CoordinatorNode {
    type Msg = Msg;

    fn on_message(&mut self, from: NodeIdx, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
        self.deliver(from, msg, ctx);
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut Ctx<'_, Msg>) {
        self.timer_fire(tag, ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decs_core::cts;
    use decs_snoop::{Context, EventExpr, EventId, ShardedDetector};
    use std::io;

    fn detector() -> (ShardedDetector<CompositeTimestamp>, EventId) {
        let mut d = ShardedDetector::new();
        d.register("A").unwrap();
        d.register("B").unwrap();
        let x = d
            .define(
                "X",
                &EventExpr::seq(EventExpr::prim("A"), EventExpr::prim("B")),
                Context::Chronicle,
            )
            .unwrap();
        (d, x)
    }

    // Drive the coordinator directly through a one-node simulation so we
    // get a real Ctx.
    use decs_chronos::{GlobalTimeBase, Granularity, LocalClock, Precision, TruncMode};
    use decs_simnet::{LinkConfig, Simulation, SiteTimeSource};

    fn coordinator_sim(sites: usize) -> Simulation<CoordinatorNode> {
        let (d, _) = detector();
        let base = GlobalTimeBase::new(
            Granularity::per_second(10).unwrap(),
            TruncMode::Floor,
            Precision::from_nanos(1_000_000),
        )
        .unwrap();
        let src = SiteTimeSource::new(
            99u32.into(),
            LocalClock::perfect(Granularity::per_second(100).unwrap()),
            base,
        );
        let coord = CoordinatorNode::new(sites, d, 100_000_000);
        Simulation::new(vec![(coord, src)], LinkConfig::instant(), 1)
    }

    fn ev(ty: u32, seq: u64, s: u32, g: u64, l: u64) -> Msg {
        Msg::Event {
            seq,
            epoch: 0,
            occ: Occurrence::bare(EventId(ty), cts(&[(s, g, l)])),
        }
    }

    fn hb(seq: u64, w: u64) -> Msg {
        Msg::Heartbeat {
            seq,
            epoch: 0,
            watermark: w,
        }
    }

    fn occ(ty: u32, s: u32, g: u64, l: u64) -> Occurrence<CompositeTimestamp> {
        Occurrence::bare(EventId(ty), cts(&[(s, g, l)]))
    }

    // NOTE: `inject` delivers with from == node, so we cannot use it to
    // fake multi-site senders through the public API; instead these tests
    // exercise the handler directly via a tiny two-site harness in the
    // engine tests. Here we check the single-site path (site index 0 ==
    // coordinator node index 0 in this reduced sim).

    #[test]
    fn stability_gates_release_and_detection() {
        let mut sim = coordinator_sim(1);
        let n = decs_simnet::NodeIdx(0);
        // A@(s0, g5), B@(s0, g6) arrive, then watermarks advance.
        sim.inject(Nanos(10), n, ev(0, 0, 0, 5, 50));
        sim.inject(Nanos(20), n, ev(1, 1, 0, 6, 60));
        sim.inject(Nanos(30), n, hb(2, 6));
        sim.run_to_completion();
        {
            let c = sim.node(n);
            // Watermark 6 releases only g ≤ 4: nothing yet.
            assert_eq!(c.buffered(), 2);
            assert!(c.detections.is_empty());
        }
        sim.inject(Nanos(40), n, hb(3, 8));
        sim.run_to_completion();
        {
            let c = sim.node(n);
            // Watermark 8 releases g ≤ 6: both, in order; SEQ fires.
            assert_eq!(c.buffered(), 0);
            assert_eq!(c.detections.len(), 1);
            assert_eq!(c.metrics.events_released, 2);
        }
    }

    #[test]
    fn reassembly_reorders_back() {
        let mut sim = coordinator_sim(1);
        let n = decs_simnet::NodeIdx(0);
        // Deliver seq 1 before seq 0 (simulating network reordering).
        sim.inject(Nanos(10), n, ev(1, 1, 0, 6, 60));
        sim.inject(Nanos(20), n, ev(0, 0, 0, 5, 50));
        sim.inject(Nanos(30), n, hb(2, 9));
        sim.run_to_completion();
        let c = sim.node(n);
        assert_eq!(c.metrics.reassembly_parks, 1);
        assert_eq!(c.metrics.events_received, 2);
        // Release order is canonical (by global tick): A then B → SEQ.
        assert_eq!(c.detections.len(), 1);
    }

    #[test]
    fn batch_transport_matches_per_event_transport() {
        // The same workload delivered as two batches instead of two events
        // plus two heartbeats: identical release and detection.
        let mut sim = coordinator_sim(1);
        let n = decs_simnet::NodeIdx(0);
        sim.inject(
            Nanos(10),
            n,
            Msg::Batch {
                seq: 0,
                epoch: 0,
                watermark: 6,
                events: std::sync::Arc::new(vec![occ(0, 0, 5, 50), occ(1, 0, 6, 60)]),
            },
        );
        sim.run_to_completion();
        {
            let c = sim.node(n);
            // Watermark 6 releases only g ≤ 4: both still buffered.
            assert_eq!(c.buffered(), 2);
            assert!(c.detections.is_empty());
            assert_eq!(c.metrics.batches_received, 1);
            assert_eq!(c.metrics.batch_size_max, 2);
        }
        // An empty batch is exactly a heartbeat.
        sim.inject(
            Nanos(20),
            n,
            Msg::Batch {
                seq: 1,
                epoch: 0,
                watermark: 8,
                events: std::sync::Arc::new(vec![]),
            },
        );
        sim.run_to_completion();
        let c = sim.node(n);
        assert_eq!(c.buffered(), 0);
        assert_eq!(c.detections.len(), 1);
        assert_eq!(c.metrics.events_received, 2);
        assert_eq!(c.metrics.events_released, 2);
        assert_eq!(c.metrics.release_batches, 1);
        assert_eq!(c.metrics.messages_processed, 2);
        assert_eq!(c.metrics.heartbeats_received, 0);
        assert_eq!(c.metrics.shard_count, 1);
    }

    #[test]
    fn hello_bumps_epoch_clears_parked_and_filters_stale_traffic() {
        let mut sim = coordinator_sim(1);
        let n = decs_simnet::NodeIdx(0);
        sim.inject(Nanos(10), n, ev(0, 0, 0, 5, 50));
        // Park a stale message from what will become the dead incarnation.
        sim.inject(Nanos(20), n, ev(1, 7, 0, 6, 60));
        sim.run_to_completion();
        assert_eq!(sim.node(n).metrics.reassembly_parks, 1);
        assert_eq!(sim.node(n).site_epoch(0), 0);
        // Non-durable restart: the new incarnation starts its sequence
        // space at 0 and announces itself.
        sim.inject(
            Nanos(30),
            n,
            Msg::Hello {
                seq: 0,
                epoch: 1,
                watermark: 0,
            },
        );
        sim.run_to_completion();
        {
            let c = sim.node(n);
            assert_eq!(c.site_epoch(0), 1);
            assert_eq!(c.metrics.rejoins, 1);
            assert_eq!(c.metrics.epoch_max, 1);
            // The parked epoch-0 message is gone, and the Hello was itself
            // consumed in order at the lowered frontier (0 → 1).
            assert_eq!(c.metrics.parked_peak, 1);
        }
        // Old-incarnation traffic still in flight is filtered, not parked.
        sim.inject(Nanos(40), n, ev(1, 8, 0, 6, 60));
        // New-incarnation traffic flows normally (seq 1 follows the Hello).
        sim.inject(
            Nanos(50),
            n,
            Msg::Event {
                seq: 1,
                epoch: 1,
                occ: Occurrence::bare(EventId(1), cts(&[(0, 6, 60)])),
            },
        );
        sim.inject(
            Nanos(60),
            n,
            Msg::Heartbeat {
                seq: 2,
                epoch: 1,
                watermark: 9,
            },
        );
        sim.run_to_completion();
        let c = sim.node(n);
        assert_eq!(c.metrics.epoch_filtered, 1);
        // A@g5 (epoch 0, pre-crash) then B@g6 (epoch 1) still detect SEQ:
        // the crash did not disturb surviving notifications.
        assert_eq!(c.detections.len(), 1);
    }

    #[test]
    fn data_ahead_of_its_hello_is_dropped_until_hello_lands() {
        let mut sim = coordinator_sim(1);
        let n = decs_simnet::NodeIdx(0);
        // Epoch-1 data races ahead of its Hello: dropped unacked.
        sim.inject(
            Nanos(10),
            n,
            Msg::Event {
                seq: 1,
                epoch: 1,
                occ: Occurrence::bare(EventId(0), cts(&[(0, 5, 50)])),
            },
        );
        sim.run_to_completion();
        {
            let c = sim.node(n);
            assert_eq!(c.metrics.epoch_filtered, 1);
            assert_eq!(c.metrics.events_received, 0);
        }
        // The Hello lands; the retransmitted copy of the same event is now
        // accepted in order behind it.
        sim.inject(
            Nanos(20),
            n,
            Msg::Hello {
                seq: 0,
                epoch: 1,
                watermark: 0,
            },
        );
        sim.inject(
            Nanos(30),
            n,
            Msg::Event {
                seq: 1,
                epoch: 1,
                occ: Occurrence::bare(EventId(0), cts(&[(0, 5, 50)])),
            },
        );
        sim.run_to_completion();
        let c = sim.node(n);
        assert_eq!(c.metrics.events_received, 1);
        assert_eq!(c.site_epoch(0), 1);
    }

    #[test]
    fn stale_notification_below_release_horizon_is_refused() {
        let mut sim = coordinator_sim(1);
        let n = decs_simnet::NodeIdx(0);
        sim.inject(Nanos(10), n, ev(0, 0, 0, 5, 50));
        sim.inject(Nanos(20), n, hb(1, 8));
        sim.run_to_completion();
        // g=5 released: the horizon is now 5.
        assert_eq!(sim.node(n).metrics.events_released, 1);
        // A notification at g=4 violates the site's own w=8 promise — only
        // an evicted-then-rejoined site's pre-crash backlog can do this.
        // It is refused, not released out of order.
        sim.inject(Nanos(30), n, ev(1, 2, 0, 4, 40));
        sim.run_to_completion();
        let c = sim.node(n);
        assert_eq!(c.metrics.stale_refused, 1);
        assert_eq!(c.buffered(), 0);
        assert_eq!(c.metrics.events_received, 1);
    }

    #[test]
    fn lagging_watermark_blocks() {
        let mut sim = coordinator_sim(1);
        let n = decs_simnet::NodeIdx(0);
        sim.inject(Nanos(10), n, ev(0, 0, 0, 5, 50));
        sim.inject(Nanos(20), n, hb(1, 6)); // not enough: needs > 6+? g=5 needs w > 6
        sim.run_to_completion();
        assert_eq!(sim.node(n).buffered(), 1);
        sim.inject(Nanos(30), n, hb(2, 7));
        sim.run_to_completion();
        assert_eq!(sim.node(n).buffered(), 0);
    }

    #[test]
    fn wal_write_error_fail_stops_consumption_cleanly() {
        use crate::durability::{WalSink, WalWriter};
        use std::io::Write;

        // A sink whose device has died: every write errors out. Swapped in
        // mid-run to model the disk failing underneath a healthy log.
        struct DeadDisk;
        impl Write for DeadDisk {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("disk gone"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        impl WalSink for DeadDisk {
            fn sync_data(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let dir = std::env::temp_dir().join(format!("decs-coord-failstop-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut sim = coordinator_sim(1);
        let n = decs_simnet::NodeIdx(0);
        sim.node_mut(n).set_durability(&dir, u64::MAX).unwrap();
        sim.inject(Nanos(10), n, ev(0, 0, 0, 5, 50));
        sim.run_to_completion();
        {
            let c = sim.node_mut(n);
            assert_eq!(c.metrics.events_received, 1);
            assert!(c.wal_failed().is_none());
            c.wal = Some(WalWriter::with_sink(Box::new(DeadDisk), dir.join("<dead>")));
        }
        // The next delivery hits the dead disk: the append fails *before*
        // the message is applied, so disk state still matches applied
        // state; from then on every input is dropped unprocessed.
        sim.inject(Nanos(20), n, ev(1, 1, 0, 6, 60));
        sim.inject(Nanos(30), n, hb(2, 9));
        sim.run_to_completion();
        let c = sim.node(n);
        assert_eq!(c.metrics.wal_errors, 1, "one failing append, counted once");
        assert!(c.wal_failed().unwrap().contains("disk gone"));
        assert_eq!(
            c.metrics.events_received, 1,
            "the unloggable event must not be consumed"
        );
        assert!(
            c.detections.is_empty(),
            "the dropped watermark must not release anything"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
