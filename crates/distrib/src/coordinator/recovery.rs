//! Durability: WAL appends, snapshotting, and crash recovery. See
//! [`crate::durability`] for the formats and the recovery invariants.

use super::{CoordinatorNode, RawDetection, ReplayCtx};
use crate::durability::{
    read_wal, ArmedTimer, BufferedNotification, CoordinatorSnapshot, PendingDetection,
    SnapshotStore, WalRecord, WalWriter,
};
use decs_chronos::{GlobalTicks, LocalTicks, Nanos, SiteId};
use decs_core::{CompositeTimestamp, PrimitiveTimestamp};
use decs_snoop::{ShardId, Snapshot, TimerId};
use std::io;
use std::path::Path;

impl CoordinatorNode {
    /// Append one record to the WAL (no-op during replay or with
    /// durability off) and refresh the WAL metrics. Durability I/O errors
    /// are **fail-stop**: a coordinator that silently stopped logging
    /// would recover into a state that *looks* valid and detects wrongly,
    /// so on the first error the node records the failure and thereafter
    /// drops every input unprocessed (see `wal_failed`).
    pub(super) fn wal_append(&mut self, rec: WalRecord) {
        if self.replaying {
            return;
        }
        if let Some(w) = self.wal.as_mut() {
            match w.append(&rec) {
                Ok(()) => {
                    self.metrics.wal_appends = w.appends();
                    self.metrics.wal_bytes = w.bytes();
                }
                Err(e) => self.wal_fail(e),
            }
        }
    }

    /// Enter the fail-stop state on a durability I/O error.
    pub(super) fn wal_fail(&mut self, e: io::Error) {
        self.metrics.wal_errors += 1;
        if self.wal_failed.is_none() {
            self.wal_failed = Some(e.to_string());
        }
        self.wal = None;
        self.snapshots = None;
    }

    /// Record that the engine drained `count` finished detections, so a
    /// recovered coordinator does not re-report them.
    pub(crate) fn note_drained(&mut self, count: u64) {
        if count == 0 {
            return;
        }
        self.drained += count;
        if self.wal.is_some() && !self.replaying {
            self.wal_append(WalRecord::Drained { count });
        }
    }

    /// Enable durability with a **fresh** log: any previous WAL and
    /// snapshots in `dir` are discarded. `snapshot_interval` is in global
    /// ticks of minimum-watermark advance between snapshots.
    pub fn set_durability(&mut self, dir: &Path, snapshot_interval: u64) -> io::Result<()> {
        let store = SnapshotStore::open(dir)?;
        store.reset()?;
        let wal = WalWriter::create(dir)?;
        self.metrics.wal_appends = 0;
        self.metrics.wal_bytes = 0;
        self.wal = Some(wal);
        self.snapshots = Some(store);
        self.snapshot_interval = snapshot_interval;
        self.last_snapshot_wm = 0;
        Ok(())
    }

    /// Take a snapshot if the minimum watermark advanced enough since the
    /// last one. Called at the end of every release round (a quiescent
    /// point for both detector backends).
    pub(super) fn maybe_snapshot(&mut self) {
        if self.replaying || self.snapshots.is_none() || self.wal.is_none() {
            return;
        }
        if self.part.is_some() {
            // Replica durability is WAL-only: the snapshot format does not
            // cover the partition state (pbuffer, promises, relay windows),
            // so recovery always replays the full log. The relay windows
            // are rebuilt by that replay; the post-recovery retransmission
            // round resends them and peers dedup.
            return;
        }
        let wm = self.tracker.min_watermark();
        // `u64::MAX` means every site is evicted — the watermark is the
        // empty-min sentinel, not progress.
        if wm == u64::MAX || wm <= self.last_snapshot_wm {
            return;
        }
        if wm - self.last_snapshot_wm < self.snapshot_interval {
            return;
        }
        self.last_snapshot_wm = wm;
        self.take_snapshot();
    }

    pub(super) fn take_snapshot(&mut self) {
        let wal = self.wal.as_mut().expect("durability on");
        // The snapshot claims "wal_records inputs are already applied
        // here", so those records must be on disk before the claim is.
        if let Err(e) = wal.sync() {
            self.wal_fail(e);
            return;
        }
        let wal_records = wal.appends();
        let mut timers: Vec<ArmedTimer> = self
            .timer_map
            .iter()
            .map(|(&tag, &(shard, timer_id))| ArmedTimer {
                tag,
                shard: shard as u64,
                timer: timer_id.0,
                due_ns: self.timer_due.get(&tag).copied().unwrap_or(0),
            })
            .collect();
        timers.sort_by_key(|t| t.tag);
        let snap = CoordinatorSnapshot {
            wal_records,
            detector: self.detector.save_state(),
            streams: self
                .streams
                .iter()
                .map(|s| (s.next, s.arrivals, s.evicted, s.epoch))
                .collect(),
            watermarks: (0..self.streams.len())
                .map(|i| self.tracker.site_watermark(i))
                .collect(),
            buffer: self
                .buffer
                .iter()
                .map(
                    |(&(max_global, site, arrival), (occ, arrived))| BufferedNotification {
                        max_global,
                        site,
                        arrival,
                        occ: occ.clone(),
                        arrived_ns: arrived.get(),
                    },
                )
                .collect(),
            timers,
            next_tag: self.next_tag,
            detections: self
                .detections
                .iter()
                .map(|d| PendingDetection {
                    occ: d.occ.clone(),
                    detected_at_ns: d.detected_at.get(),
                })
                .collect(),
            drained: self.drained,
            metrics: self.metrics.clone(),
            last_gc_low: self.last_gc_low,
            stall: self
                .stall
                .iter()
                .map(|s| (s.last_wm, s.stalled_checks, s.suspect))
                .collect(),
            release_horizon: self.release_horizon,
        };
        if let Err(e) = self.snapshots.as_ref().expect("durability on").save(&snap) {
            self.wal_fail(e);
            return;
        }
        self.metrics.snapshots_taken += 1;
    }

    pub(super) fn restore_snapshot(&mut self, snap: CoordinatorSnapshot) -> io::Result<()> {
        let sites = self.streams.len();
        if snap.streams.len() != sites
            || snap.watermarks.len() != sites
            || snap.stall.len() != sites
        {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "snapshot site count mismatch",
            ));
        }
        self.detector.restore_state(snap.detector).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("detector restore: {e}"))
        })?;
        for (stream, &(next, arrivals, evicted, epoch)) in
            self.streams.iter_mut().zip(&snap.streams)
        {
            stream.next = next;
            stream.arrivals = arrivals;
            stream.evicted = evicted;
            stream.epoch = epoch;
            stream.rejoined_at = None;
            // Parked messages are outside the durability boundary: they
            // were never acked, so their sites retransmit them.
            stream.parked.clear();
        }
        self.parked_total = 0;
        for (i, &wm) in snap.watermarks.iter().enumerate() {
            self.tracker.update(i, wm);
        }
        self.buffer = snap
            .buffer
            .into_iter()
            .map(|b| {
                (
                    (b.max_global, b.site, b.arrival),
                    (b.occ, Nanos(b.arrived_ns)),
                )
            })
            .collect();
        self.timer_map.clear();
        self.timer_due.clear();
        for t in &snap.timers {
            self.timer_map
                .insert(t.tag, (t.shard as ShardId, TimerId(t.timer)));
            self.timer_due.insert(t.tag, t.due_ns);
        }
        self.next_tag = snap.next_tag;
        self.detections = snap
            .detections
            .into_iter()
            .map(|d| RawDetection {
                occ: d.occ,
                detected_at: Nanos(d.detected_at_ns),
            })
            .collect();
        self.drained = snap.drained;
        self.metrics = snap.metrics;
        self.last_gc_low = snap.last_gc_low;
        self.release_horizon = snap.release_horizon;
        for (st, &(last_wm, stalled_checks, suspect)) in self.stall.iter_mut().zip(&snap.stall) {
            st.last_wm = last_wm;
            st.stalled_checks = stalled_checks;
            st.suspect = suspect;
        }
        Ok(())
    }

    /// Replay one WAL record through the normal consumption path.
    pub(super) fn replay_record(&mut self, rec: WalRecord) -> io::Result<()> {
        match rec {
            WalRecord::Delivered { site, at, msg } => {
                let site = site as usize;
                if site >= self.streams.len() {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "WAL names an unknown site",
                    ));
                }
                let Some(seq) = Self::seq_of(&msg) else {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "WAL Delivered carries an unsequenced message",
                    ));
                };
                // The WAL is the in-order consumption stream, so the
                // reassembly frontier follows it directly.
                self.streams[site].next = seq + 1;
                let mut ctx = ReplayCtx { now: Nanos(at) };
                self.handle_in_order(site, msg, &mut ctx);
            }
            WalRecord::TimerFired {
                tag,
                at,
                site,
                global,
                local,
            } => {
                self.timer_due.remove(&tag);
                let Some((shard, timer_id)) = self.timer_map.remove(&tag) else {
                    // A fire for a timer the snapshot no longer tracked —
                    // tolerated, same as the live idempotence rule.
                    return Ok(());
                };
                let ts = CompositeTimestamp::singleton(PrimitiveTimestamp::new(
                    SiteId(site),
                    GlobalTicks(global),
                    LocalTicks(local),
                ));
                let mut ctx = ReplayCtx { now: Nanos(at) };
                self.fire_detector_timer(shard, timer_id, ts, &mut ctx);
            }
            WalRecord::Evicted { site, at } => {
                let mut ctx = ReplayCtx { now: Nanos(at) };
                self.evict(site as usize, &mut ctx);
            }
            WalRecord::Drained { count } => {
                let n = (count as usize).min(self.detections.len());
                self.detections.drain(..n);
                if let Some(part) = &mut self.part {
                    // Partition keys are index-aligned with detections.
                    part.keys.drain(..n.min(part.keys.len()));
                }
                self.drained += count;
            }
            WalRecord::HelloSeen {
                site,
                at,
                epoch,
                base_seq,
                watermark,
            } => {
                let site = site as usize;
                if site >= self.streams.len() {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "WAL names an unknown site",
                    ));
                }
                let mut ctx = ReplayCtx { now: Nanos(at) };
                self.epoch_transition(site, epoch, base_seq, watermark, &mut ctx);
            }
        }
        Ok(())
    }

    /// Rebuild this (freshly constructed) coordinator from the durability
    /// directory: load the newest usable snapshot, replay the WAL suffix
    /// through the normal feed path, truncate any torn tail, and resume
    /// logging. Returns the detector timers that were armed at crash time
    /// as `(tag, due_true_time_ns)` pairs, sorted by due time — the
    /// harness must re-schedule them for the replacement node.
    pub fn recover(&mut self, dir: &Path, snapshot_interval: u64) -> io::Result<Vec<(u64, u64)>> {
        let t0 = std::time::Instant::now();
        let store = SnapshotStore::open(dir)?;
        let scan = read_wal(dir)?;
        let total = scan.records.len() as u64;
        let mut skip = 0u64;
        if let Some(snap) = store.load_best(total)? {
            skip = snap.wal_records;
            self.restore_snapshot(snap)?;
        }
        self.replaying = true;
        for rec in scan.records.into_iter().skip(skip as usize) {
            if let Err(e) = self.replay_record(rec) {
                self.replaying = false;
                return Err(e);
            }
        }
        self.replaying = false;
        // Resume the log where validity ended — a torn or corrupt tail is
        // truncated away so it can never shadow future appends.
        let wal = WalWriter::resume(dir, scan.valid_len, total)?;
        self.metrics.wal_appends = wal.appends();
        self.metrics.wal_bytes = wal.bytes();
        self.metrics.recovery_replayed = total - skip;
        self.metrics.recovery_ns = t0.elapsed().as_nanos() as u64;
        self.wal = Some(wal);
        self.snapshots = Some(store);
        self.snapshot_interval = snapshot_interval;
        let wm = self.tracker.min_watermark();
        if wm != u64::MAX {
            self.last_snapshot_wm = wm;
        }
        let mut due: Vec<(u64, u64)> = self.timer_due.iter().map(|(&tag, &at)| (tag, at)).collect();
        due.sort_by_key(|&(tag, at)| (at, tag));
        Ok(due)
    }
}
