//! The partitioned detection plane: per-replica partition state and the
//! cross-replica release/promise/relay protocol.
//!
//! With `coordinator_replicas = n ≥ 2` the global definitions are split
//! across `n` coordinator replicas (rendezvous-hashed by definition name).
//! Each replica runs a **severed** detector — the cascade that would feed
//! a detection back into downstream definitions is cut, because the
//! downstream definition may live on another replica — and the replica
//! plane re-creates the cascade explicitly: every detection is assigned a
//! **partition key** and either re-fed locally or forwarded to the
//! subscribing replicas as a first-class event ([`Msg::Relay`]).
//!
//! # The partition key
//!
//! [`PartKey`] `= (root, depth, path)` identifies a buffered item's slot
//! in the canonical global release order:
//!
//! * `root` is the release key `(max_global, origin, ordinal)` of the
//!   cascade root — a site-originated notification keyed by its stamp's
//!   maximum global tick, its origin stream, and the site-assigned stamp
//!   **ordinal** (the site's position counter over *all* stamped
//!   occurrences, shared across uplinks, so replicas receiving disjoint
//!   subsets of one site's stream still agree on the interleaving);
//! * `depth` is the cascade depth below the root (0 = the root itself);
//! * `path` is the canonical identity of every cascade step from the root
//!   down to this item — [`PathStep`]s ordered exactly like the
//!   single-coordinator cascade enumerates its per-trigger rounds.
//!
//! The single coordinator's release order (roots by release key; per
//! root, breadth-first cascade rounds sorted canonically per trigger) is
//! precisely lexicographic `PartKey` order, so per-replica detection
//! streams emitted in `PartKey` order merge — by key — into a stream
//! bit-identical to the `n = 1` deployment (`tests/prop_partition.rs`).
//!
//! # The promise protocol
//!
//! Site watermarks order roots, but nothing intrinsic orders a replica's
//! local roots against a peer's in-flight relays. Each replica therefore
//! maintains a **promise vector** `P[1..=max_depth]` — `P[d]` is a
//! [`PlanePos`] strictly below every (non-immediate) depth-`d` relay it
//! will ever send — attached to every `Msg::Relay`. A buffered item
//! releases only when its coarse position is `≤` every peer's
//! whole-vector minimum (and its root is stable under the ordinary
//! watermark rule), so no peer can later relay anything that should have
//! sorted before it.
//!
//! The stratification by depth is what makes the protocol *live*. A
//! scalar promise is inherently circular: my future relays include
//! cascades of your future relays and vice versa, so two idle replicas
//! each cap the other's promise and neither ever advances (the least
//! fixpoint of a mutual `min` is stuck at its seed). Stratified, the
//! recursion is acyclic in `d`, because a cascade step strictly
//! increases depth:
//!
//! * `own = min((min_watermark − 1, 0, 0, 0), buffer minimum)` — every
//!   future cascade of a root not yet received, or of an item still
//!   buffered, is strictly after `own` (a site at watermark `w` can
//!   still deliver stamps at `w − 1`; cascades sit at depth ≥ 1, hence
//!   strictly after `(w − 1, 0, 0, 0)`);
//! * `P[1] = own` — depth-1 relays are cascades of roots only, so the
//!   bound needs **no peer term** and always advances with the
//!   watermark;
//! * `P[d] = min(own, min_q peer_P_q[d − 1])` — a depth-`d` relay is the
//!   cascade of some depth-`(d−1)` input, which is either buffered here
//!   (covered by `own`) or a peer's future relay (strictly after the
//!   peer's advertised `P[d − 1]`).
//!
//! The vector is nonincreasing in `d`, so a peer's last element bounds
//! all its future relays — that is the release gate. After quiescence
//! the watermark term propagates one stratum per exchange round:
//! `max_depth` gossip rounds carry every component to `(w − 1, 0, 0, 0)`
//! and the plane drains. This is frontier propagation over the
//! depth-stratified could-result-in order, specialised to the acyclic
//! definition DAG.
//!
//! Promises are monotone (clamped componentwise by `max` against the
//! last sent vector) and a pure promise advance with nothing staged is
//! sent as an empty `Msg::Relay`. Gossip is deliberately **eager** (one
//! relay per peer per advancing release round, not per released item):
//! the stratified frontier advances one stratum per exchange, and a
//! replica's own floor is capped by the peers' *echo* of its earlier
//! strata — so any gossip deferral turns the drain pipeline into a
//! ping-pong crawl of `2 × strata` deferral periods per buffered item.
//! The volume stays scalable because rounds batch: sends per replica are
//! bounded by its consumed messages × peers, while its detection work
//! shrinks with the partition count.
//!
//! Timer-derived detections are the one exception: their stamps sit ahead
//! of the site watermarks, so they bypass the buffer entirely — relays
//! are flagged `immediate`, fed on arrival, and excluded from the promise
//! contract (and from the bit-identity oracle, which covers non-temporal
//! plans).

use super::{CoordCtx, CoordinatorNode, RawDetection};
use crate::protocol::{Msg, PathStep, PlanePos, RelayedEvent, RoutedEvent};
use decs_chronos::Nanos;
use decs_core::CompositeTimestamp;
use decs_simnet::NodeIdx;
use decs_snoop::{EventId, Occurrence, ShardFeedResult};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;

/// A buffered item's slot in the canonical global release order:
/// `(root release key, cascade depth, cascade path)`, compared
/// lexicographically (see the module docs).
pub(crate) type PartKey = ((u64, u32, u64), u32, Vec<PathStep>);

/// The coarse (path-free) position of a partition key — the granularity
/// at which promises bound the future.
pub(crate) fn coarse(key: &PartKey) -> PlanePos {
    PlanePos {
        g: key.0 .0,
        site: key.0 .1,
        ordinal: key.0 .2,
        depth: key.1,
    }
}

/// One peer's outbound relay stream: sequence counter, the relays staged
/// for the next flush, and the sent-but-unacked window (resent by the
/// periodic relay retransmission round; trimmed by the peer's cumulative
/// acks).
#[derive(Debug, Default)]
pub(crate) struct OutRelay {
    pub(crate) next_seq: u64,
    pub(crate) staged: Vec<RelayedEvent>,
    pub(crate) unacked: VecDeque<(u64, Msg)>,
}

/// Everything a coordinator replica adds on top of the classic
/// coordinator: the catalog translation tables, the partitioned stability
/// buffer, and the peer promise/relay state.
#[derive(Debug)]
pub(crate) struct PartitionState {
    /// This replica's index in `0..n_replicas`.
    pub(crate) replica: usize,
    /// Leaf sites (stream indices `0..n_sites`; peers occupy
    /// `n_sites..n_sites + n_replicas`).
    pub(crate) n_sites: usize,
    /// Total coordinator replicas.
    pub(crate) n_replicas: usize,
    /// Replica-local event id → full-catalog id.
    pub(crate) to_global: Vec<u32>,
    /// Full-catalog event id → replica-local id (input and owned types
    /// only).
    pub(crate) to_local: HashMap<u32, u32>,
    /// Full-catalog composite type → bitmask of replicas whose
    /// definitions subscribe to it (may include this replica: a local
    /// cross-definition reference re-feeds through the buffer instead of
    /// the wire). A mask rather than a list so the per-detection consumer
    /// walk allocates nothing.
    pub(crate) fwd: HashMap<u32, u64>,
    /// Full-catalog type → bitmask of *peer* replicas the type's cascade
    /// closure inside this replica can forward to (absent = reaches no
    /// peer). Compile-time-derived; drives subscription-filtered
    /// promises.
    pub(crate) reach: HashMap<u32, u64>,
    /// Union of `reach`: every peer this replica can ever relay anything
    /// to. Promises are only gossiped along these edges — a peer outside
    /// the mask never waits on this replica.
    pub(crate) reach_peers: u64,
    /// The converse: bitmask of peers that can ever relay to *this*
    /// replica. Only their bounds gate releases, floor GC, and the
    /// stratified promise folds; with no gaters the replica releases on
    /// watermark stability alone, fully decoupled from the plane.
    pub(crate) gaters: u64,
    /// The partitioned stability buffer (replaces the classic
    /// `ReleaseKey` buffer): roots *and* relayed cascade items, ordered
    /// by partition key.
    pub(crate) pbuffer: BTreeMap<PartKey, (Occurrence<CompositeTimestamp>, Nanos)>,
    /// Per peer `q`, the refcounted coarse positions of buffered items
    /// whose type can reach `q` (own slot unused). The first key is the
    /// only buffered position that must clamp the promise sent to `q`:
    /// items that cannot forward to `q` never produce a `q`-bound relay,
    /// so they are invisible to `q`'s release gate.
    pub(crate) pending: Vec<BTreeMap<PlanePos, u32>>,
    /// Per-peer depth-stratified promise bounds: `peer_bound[q][d - 1]`
    /// lower-bounds peer `q`'s future depth-`d` relays (this replica's
    /// own slot stays all-[`PlanePos::MAX`] so it never gates a release).
    pub(crate) peer_bound: Vec<Vec<PlanePos>>,
    /// Per-peer outbound relay streams (own slot unused).
    pub(crate) out: Vec<OutRelay>,
    /// The largest engine-facing promise vector ever computed (the merge
    /// cut's monotone clamp; unfiltered — every buffered item yields
    /// detections, so the engine floor clamps at the full buffer head).
    pub(crate) last_promise: Vec<PlanePos>,
    /// Per peer, the largest promise vector ever sent to it (promises
    /// are monotone componentwise per destination; own slot unused).
    pub(crate) last_sent: Vec<Vec<PlanePos>>,
    /// Partition key of every entry in `detections`, index-aligned —
    /// the engine merges replica streams by key. Truncated in lockstep
    /// with `detections` by `WalRecord::Drained` replay.
    pub(crate) keys: Vec<PartKey>,
    /// Counter minting unique root ordinals for coordinator-clock timer
    /// fires (their roots are keyed `(g, n_sites + replica, ordinal)`).
    pub(crate) fire_ordinal: u64,
    /// Set when anything promise-relevant changed: a peer bound fold, a
    /// pending-set mutation, or a staged relay. Together with a watermark
    /// check this lets `advance_promise` skip recomputation on the bulk
    /// of consumed messages — heartbeats between watermark ticks and
    /// purely intra-partition traffic.
    pub(crate) promise_stale: bool,
    /// Set whenever an item was fed through the severed detector since
    /// the last operator-occupancy sample; lets the release round skip
    /// the full buffer walk when nothing could have changed.
    pub(crate) fed_since_sample: bool,
    /// The watermark `advance_promise` last ran against.
    pub(crate) last_w: u64,
    /// Period of the relay retransmission round (`ZERO` disables it).
    pub(crate) relay_retx: Nanos,
}

impl PartitionState {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        replica: usize,
        n_sites: usize,
        n_replicas: usize,
        to_global: Vec<u32>,
        to_local: HashMap<u32, u32>,
        fwd: HashMap<u32, u64>,
        reach: HashMap<u32, u64>,
        reach_peers: u64,
        gaters: u64,
        max_depth: u32,
        relay_retx: Nanos,
    ) -> Self {
        let strata = max_depth.max(1) as usize;
        let mut peer_bound = vec![vec![PlanePos::MIN; strata]; n_replicas];
        peer_bound[replica] = vec![PlanePos::MAX; strata];
        PartitionState {
            replica,
            n_sites,
            n_replicas,
            to_global,
            to_local,
            fwd,
            reach,
            reach_peers,
            gaters,
            pbuffer: BTreeMap::new(),
            pending: vec![BTreeMap::new(); n_replicas],
            peer_bound,
            out: (0..n_replicas).map(|_| OutRelay::default()).collect(),
            last_promise: vec![PlanePos::MIN; strata],
            last_sent: vec![vec![PlanePos::MIN; strata]; n_replicas],
            keys: Vec::new(),
            fire_ordinal: 0,
            promise_stale: true,
            fed_since_sample: false,
            last_w: 0,
            relay_retx,
        }
    }

    /// Strict lower bound on *everything* peer `q` will ever relay: the
    /// minimum of its promise vector — its last element, since promise
    /// vectors are nonincreasing in depth.
    fn peer_floor(&self, q: usize) -> PlanePos {
        *self.peer_bound[q].last().expect("nonempty promise")
    }

    /// Record a newly buffered item in the per-peer pending sets of every
    /// peer its type can reach.
    fn note_pending(&mut self, ty: u32, pos: PlanePos) {
        let mask = self.reach.get(&ty).copied().unwrap_or(0);
        if mask == 0 {
            return;
        }
        self.promise_stale = true;
        for q in 0..self.n_replicas {
            if q != self.replica && mask & (1 << q) != 0 {
                *self.pending[q].entry(pos).or_insert(0) += 1;
            }
        }
    }

    /// Drop a released item from the per-peer pending sets.
    fn drop_pending(&mut self, ty: u32, pos: PlanePos) {
        let mask = self.reach.get(&ty).copied().unwrap_or(0);
        if mask == 0 {
            return;
        }
        self.promise_stale = true;
        for q in 0..self.n_replicas {
            if q != self.replica && mask & (1 << q) != 0 {
                match self.pending[q].get_mut(&pos) {
                    Some(n) if *n > 1 => *n -= 1,
                    Some(_) => {
                        self.pending[q].remove(&pos);
                    }
                    None => debug_assert!(false, "pending underflow"),
                }
            }
        }
    }
}

impl CoordinatorNode {
    /// Buffer one subscription-routed notification from `site` under its
    /// root partition key. The partitioned analogue of
    /// `accept_notification` — the same stale-horizon refusal applies,
    /// and the root key's ordinal is the *site's* stamp counter rather
    /// than a per-coordinator arrival counter (replicas seeing disjoint
    /// subsets of the stream must still agree on the interleaving).
    pub(super) fn accept_routed(&mut self, site: usize, ev: RoutedEvent, ctx: &mut impl CoordCtx) {
        let g = ev.occ.time.max_global();
        if g < self.release_horizon {
            self.metrics.stale_refused += 1;
            return;
        }
        self.metrics.events_received += 1;
        let now = ctx.true_now();
        let key: PartKey = ((g, site as u32, ev.ordinal), 0, Vec::new());
        let len = {
            let part = self.part.as_mut().expect("partitioned");
            part.note_pending(ev.occ.ty.0, coarse(&key));
            part.pbuffer.insert(key, (ev.occ, now));
            part.pbuffer.len()
        };
        self.metrics.max_buffered = self.metrics.max_buffered.max(len);
    }

    /// Consume one in-order `Msg::Relay` from the peer behind stream
    /// index `stream`: raise its promise bound, buffer (or, for
    /// immediate relays, feed) the forwarded events, then run a release
    /// round — the bound advance may have unlocked the buffer head, and
    /// this replica's own promise may move in response.
    pub(super) fn handle_relay(
        &mut self,
        stream: usize,
        promise: &[PlanePos],
        events: Arc<Vec<RelayedEvent>>,
        ctx: &mut impl CoordCtx,
    ) {
        let now = ctx.true_now();
        let immediates = {
            let part = self.part.as_mut().expect("partitioned");
            let q = stream - part.n_sites;
            debug_assert!(q < part.n_replicas && q != part.replica, "bad relay peer");
            debug_assert_eq!(promise.len(), part.peer_bound[q].len(), "promise strata");
            let mut folded = false;
            for (b, &p) in part.peer_bound[q].iter_mut().zip(promise) {
                if p > *b {
                    *b = p;
                    folded = true;
                }
            }
            // A duplicate (retransmitted) relay that advances nothing and
            // carries nothing leaves the release gate, the promise, and
            // the buffer untouched — skip the round entirely.
            if !folded && events.is_empty() {
                return;
            }
            part.promise_stale = true;
            let mut immediates = Vec::new();
            for ev in events.iter() {
                let key: PartKey = (ev.root, ev.depth, ev.path.clone());
                if ev.immediate {
                    immediates.push((key, ev.occ.clone()));
                } else {
                    part.note_pending(ev.occ.ty.0, coarse(&key));
                    part.pbuffer.insert(key, (ev.occ.clone(), now));
                }
            }
            immediates
        };
        self.metrics.relays_received += events.len() as u64;
        for (key, occ) in immediates {
            self.feed_partitioned(key, occ, true, ctx);
        }
        self.release_partitioned(ctx);
    }

    /// Trim peer `q`'s unacked relay window up to its cumulative ack.
    pub(super) fn on_peer_ack(&mut self, stream: usize, cum_seq: u64) {
        let part = self.part.as_mut().expect("partitioned");
        let q = stream - part.n_sites;
        if q >= part.n_replicas {
            return;
        }
        let win = &mut part.out[q].unacked;
        while win.front().is_some_and(|&(seq, _)| seq < cum_seq) {
            win.pop_front();
        }
    }

    /// The partitioned release round: drain the buffer head while it is
    /// releasable — root stable under the watermark rule *and* coarse
    /// position at or below every peer's promise — feeding each item
    /// through the severed detector and cascading its detections
    /// explicitly. Then collect operator garbage, advance this replica's
    /// promise, and flush staged relays.
    pub(super) fn release_partitioned(&mut self, ctx: &mut impl CoordCtx) {
        loop {
            let Some(pos) = ({
                let part = self.part.as_ref().expect("partitioned");
                part.pbuffer.first_key_value().map(|(k, _)| coarse(k))
            }) else {
                break;
            };
            if !self.tracker.is_stable(pos.g) {
                break;
            }
            let released = {
                let part = self.part.as_ref().expect("partitioned");
                (0..part.n_replicas).all(|q| {
                    q == part.replica
                        || part.gaters & (1 << q) == 0
                        || pos <= part.peer_floor(q)
                })
            };
            if !released {
                break;
            }
            let (key, occ, arrived) = {
                let part = self.part.as_mut().expect("partitioned");
                let (key, (occ, arrived)) = part.pbuffer.pop_first().expect("present");
                part.drop_pending(occ.ty.0, pos);
                (key, occ, arrived)
            };
            self.release_horizon = self.release_horizon.max(pos.g + 1);
            self.metrics.events_released += 1;
            self.metrics.stability_latency_sum_ns +=
                u128::from(ctx.true_now().get().saturating_sub(arrived.get()));
            self.feed_partitioned(key, occ, false, ctx);
        }
        self.gc_partitioned();
        if self.part.as_ref().expect("partitioned").fed_since_sample {
            self.part.as_mut().expect("partitioned").fed_since_sample = false;
            self.sample_occupancy();
        }
        self.advance_promise(ctx);
    }

    /// Feed one released (or immediate) item through the severed
    /// detector: translate its type into the replica catalog, feed, and
    /// cascade the resulting detections under `key`. Parameter tuples
    /// keep their full-catalog source ids end to end — only the
    /// occurrence's routing type crosses the translation boundary.
    fn feed_partitioned(
        &mut self,
        key: PartKey,
        occ: Occurrence<CompositeTimestamp>,
        immediate: bool,
        ctx: &mut impl CoordCtx,
    ) {
        let local = {
            let part = self.part.as_ref().expect("partitioned");
            match part.to_local.get(&occ.ty.0) {
                Some(&l) => EventId(l),
                None => {
                    debug_assert!(false, "unsubscribed type routed to replica");
                    return;
                }
            }
        };
        let r = self.detector.feed(Occurrence {
            ty: local,
            time: occ.time,
            params: occ.params,
            uid: occ.uid,
        });
        self.part.as_mut().expect("partitioned").fed_since_sample = true;
        self.absorb_partitioned(r, &key, immediate, ctx);
    }

    /// The partitioned analogue of `absorb`: arm requested timers, and
    /// assign every detection of this (severed, single-trigger) round its
    /// partition key — parent path extended by the detection's canonical
    /// step — then report it, forward it to subscribing peers, and
    /// re-buffer (or, in immediate mode, recursively feed) it locally
    /// when this replica's own definitions subscribe.
    fn absorb_partitioned(
        &mut self,
        r: ShardFeedResult<CompositeTimestamp>,
        parent: &PartKey,
        immediate: bool,
        ctx: &mut impl CoordCtx,
    ) {
        for (shard, t) in r.timers {
            let tag = self.next_tag;
            self.next_tag += 1;
            let delay = Nanos(t.delay_ticks * self.gg_nanos);
            self.timer_map.insert(tag, (shard, t.id));
            self.timer_due
                .insert(tag, ctx.true_now().get().saturating_add(delay.get()));
            ctx.set_timer(delay, tag);
        }
        let now = ctx.true_now();
        let mut deferred: Vec<(PartKey, Occurrence<CompositeTimestamp>)> = Vec::new();
        for (i, det) in r.detected.iter().enumerate() {
            let (global_ty, consumers) = {
                let part = self.part.as_ref().expect("partitioned");
                let ty = part.to_global[det.ty.0 as usize];
                (ty, part.fwd.get(&ty).copied().unwrap_or(0))
            };
            // Index among equal (time, type) detections of the same
            // round: the tie-breaker that keeps the path order total.
            let dup = r.detected[..i]
                .iter()
                .filter(|d| d.ty == det.ty && d.time == det.time)
                .count() as u32;
            let mut path = parent.2.clone();
            path.push(PathStep {
                time: det.time.clone(),
                ty: global_ty,
                dup,
            });
            let child: PartKey = (parent.0, parent.1 + 1, path);
            let occ = Occurrence {
                ty: EventId(global_ty),
                time: det.time.clone(),
                params: det.params.clone(),
                uid: det.uid,
            };
            self.metrics.detections += 1;
            self.detections.push(RawDetection {
                occ: occ.clone(),
                detected_at: now,
            });
            self.part
                .as_mut()
                .expect("partitioned")
                .keys
                .push(child.clone());
            let mut cmask = consumers;
            while cmask != 0 {
                let c = cmask.trailing_zeros() as usize;
                cmask &= cmask - 1;
                let part = self.part.as_mut().expect("partitioned");
                if c == part.replica {
                    if immediate {
                        deferred.push((child.clone(), occ.clone()));
                    } else {
                        part.note_pending(global_ty, coarse(&child));
                        part.pbuffer.insert(child.clone(), (occ.clone(), now));
                    }
                } else {
                    self.metrics.relay_events += 1;
                    part.promise_stale = true;
                    part.out[c].staged.push(RelayedEvent {
                        root: child.0,
                        depth: child.1,
                        path: child.2.clone(),
                        immediate,
                        occ: occ.clone(),
                    });
                }
            }
        }
        for (key, occ) in deferred {
            self.feed_partitioned(key, occ, true, ctx);
        }
    }

    /// The shared promise shape, computed into `out` (allocation-free on
    /// the hot path): `P[1]` is the own-input term alone (noncircular —
    /// it always advances with the watermark); `P[d]` additionally folds
    /// in every peer's advertised `P[d − 1]` (see the module docs for
    /// the stratification argument). Clamped monotone componentwise
    /// against `last`.
    fn promise_into(&self, head: Option<PlanePos>, last: &[PlanePos], out: &mut Vec<PlanePos>) {
        let part = self.part.as_ref().expect("partitioned");
        // Roots not yet received can sit at `min_watermark − 1` (the
        // stability rule releases only `g ≤ w − 2`, so a site at
        // watermark `w` may still deliver stamps at `w − 1`). Their
        // cascade detections/relays are at depth ≥ 1, hence strictly
        // after `(w − 1, 0, 0, 0)`.
        let mut own = PlanePos {
            g: self.tracker.min_watermark().saturating_sub(1),
            site: 0,
            ordinal: 0,
            depth: 0,
        };
        if let Some(h) = head {
            own = own.min(h);
        }
        out.clear();
        out.resize(last.len(), own);
        for d in 1..out.len() {
            for q in 0..part.n_replicas {
                if q != part.replica && part.gaters & (1 << q) != 0 {
                    out[d] = out[d].min(part.peer_bound[q][d - 1]);
                }
            }
        }
        for (slot, &prev) in out.iter_mut().zip(last) {
            *slot = (*slot).max(prev);
        }
    }

    /// The engine-facing promise vector: the own term clamps at the full
    /// buffer head, because *every* buffered item yields detections the
    /// engine's merge must wait for.
    pub(crate) fn current_promise(&self) -> Vec<PlanePos> {
        let part = self.part.as_ref().expect("partitioned");
        let head = part.pbuffer.first_key_value().map(|(k, _)| coarse(k));
        let mut p = Vec::new();
        self.promise_into(head, &part.last_promise, &mut p);
        p
    }

    /// Strict lower bound on every future (non-immediate) detection and
    /// relay of this replica: the engine's merge cut.
    pub(crate) fn promise_floor(&self) -> PlanePos {
        *self.current_promise().last().expect("nonempty promise")
    }

    /// Recompute the engine-facing promise and each peer's
    /// **subscription-filtered** promise; flush every peer stream that
    /// has staged relays (the latest promise rides along) or whose
    /// promise advanced. The per-peer own term clamps only at the
    /// earliest buffered item whose type's cascade closure can forward
    /// to that peer — items that cannot reach it never produce a relay
    /// it must wait for, so with sparse cross-partition coupling whole
    /// watermark ticks of independent items release in one exchange
    /// instead of one item per gossip round trip. The stratified fold
    /// stays unfiltered: relay-sourced cascades are bounded through the
    /// peers' own advertised strata, whatever their types.
    ///
    /// A *pure* promise advance with nothing staged is still sent
    /// eagerly — the peers' release gates wait on it, and a replica's
    /// own floor is capped by the peers' *echo* of its earlier strata,
    /// so deferring gossip to a timer would stretch every
    /// cross-partition item's release into `2 × strata` deferral
    /// periods. The whole round is skipped when nothing
    /// promise-relevant changed since the last run (the common case for
    /// heartbeats between watermark ticks and for purely
    /// intra-partition traffic).
    fn advance_promise(&mut self, ctx: &mut impl CoordCtx) {
        let w = self.tracker.min_watermark();
        let (peers, me, strata) = {
            let part = self.part.as_mut().expect("partitioned");
            if !part.promise_stale && part.last_w == w {
                return;
            }
            part.promise_stale = false;
            part.last_w = w;
            (part.n_replicas, part.replica, part.last_promise.len())
        };
        let p = self.current_promise();
        self.part.as_mut().expect("partitioned").last_promise = p;
        let mut scratch: Vec<PlanePos> = Vec::with_capacity(strata);
        for q in 0..peers {
            if q == me {
                continue;
            }
            // A peer this replica can never relay to never waits on its
            // promise — nothing to gossip (and nothing can be staged).
            let unreachable = {
                let part = self.part.as_ref().expect("partitioned");
                let unreachable = part.reach_peers & (1 << q) == 0;
                debug_assert!(!unreachable || part.out[q].staged.is_empty());
                unreachable
            };
            if unreachable {
                continue;
            }
            let send = {
                let part = self.part.as_ref().expect("partitioned");
                let head = part.pending[q].keys().next().copied();
                self.promise_into(head, &part.last_sent[q], &mut scratch);
                !part.out[q].staged.is_empty() || scratch[..] != part.last_sent[q][..]
            };
            if send {
                self.part.as_mut().expect("partitioned").last_sent[q].copy_from_slice(&scratch);
                self.send_relay(q, ctx);
            }
        }
    }

    /// Flush peer `q`'s staged relays (possibly none — a pure promise
    /// advance) as one sequence-numbered `Msg::Relay`, retained in the
    /// unacked window for retransmission.
    fn send_relay(&mut self, q: usize, ctx: &mut impl CoordCtx) {
        let (node, msg) = {
            let part = self.part.as_mut().expect("partitioned");
            let promise = part.last_sent[q].clone();
            let node = NodeIdx((part.n_sites + q) as u32);
            let out = &mut part.out[q];
            let seq = out.next_seq;
            out.next_seq += 1;
            let msg = Msg::Relay {
                seq,
                promise,
                events: Arc::new(std::mem::take(&mut out.staged)),
            };
            out.unacked.push_back((seq, msg.clone()));
            (node, msg)
        };
        self.metrics.relays_sent += 1;
        ctx.send(node, msg);
    }

    /// The periodic relay retransmission round: resend every unacked
    /// relay on every peer stream (the peer dedups by sequence number
    /// and re-acks), then re-arm. The round runs unconditionally so the
    /// timer chain survives replica crash/recovery the same way the ack
    /// round's does.
    pub(super) fn relay_retx_round(&mut self, ctx: &mut impl CoordCtx) {
        let mut resend: Vec<(NodeIdx, Msg)> = Vec::new();
        let period = {
            let part = self.part.as_ref().expect("partitioned");
            for q in 0..part.n_replicas {
                if q == part.replica {
                    continue;
                }
                let node = NodeIdx((part.n_sites + q) as u32);
                for (_, msg) in &part.out[q].unacked {
                    resend.push((node, msg.clone()));
                }
            }
            part.relay_retx
        };
        self.metrics.relay_retransmits += resend.len() as u64;
        for (node, msg) in resend {
            ctx.send(node, msg);
        }
        ctx.set_timer(period, super::RELAY_RETX_TAG);
    }

    /// Operator-buffer GC under partitioning: the classic
    /// `min_watermark − 2` low bound additionally floors at every peer's
    /// promise and the buffer head — future relayed feeds can reach back
    /// to the peer bounds, which may trail this replica's own watermark
    /// view.
    fn gc_partitioned(&mut self) {
        if self.buffer_gc {
            let mut low = self.tracker.min_watermark();
            {
                let part = self.part.as_ref().expect("partitioned");
                for q in 0..part.n_replicas {
                    if q != part.replica && part.gaters & (1 << q) != 0 {
                        low = low.min(part.peer_floor(q).g);
                    }
                }
                if let Some((k, _)) = part.pbuffer.first_key_value() {
                    low = low.min(k.0 .0);
                }
            }
            let low = low.saturating_sub(2);
            if low > self.last_gc_low {
                self.last_gc_low = low;
                self.release_horizon = self.release_horizon.max(low + 1);
                self.metrics.gc_evicted += self.detector.advance_watermark(low);
            }
        }
    }

    /// Sample operator-buffer occupancy into the metrics. Walks every
    /// operator node, so the partitioned release round only calls it
    /// after feeding something — occupancy cannot change on a round that
    /// released nothing.
    fn sample_occupancy(&mut self) {
        self.metrics.node_buffered = self.detector.buffered_occupancy();
        self.metrics.node_buffer_peak = self
            .metrics
            .node_buffer_peak
            .max(self.metrics.node_buffered);
    }

    /// Service a detector timer fire with a coordinator-clock stamp —
    /// shared by the live timer path and WAL replay. Partitioned
    /// replicas run the cascade in **immediate mode**: the stamp sits
    /// ahead of the site watermarks, so buffering it for stability would
    /// deadlock; detections are reported, relayed (flagged immediate)
    /// and re-fed on the spot, keyed under a fresh coordinator-clock
    /// root `(g, n_sites + replica, fire_ordinal)`.
    pub(super) fn fire_detector_timer(
        &mut self,
        shard: decs_snoop::ShardId,
        timer_id: decs_snoop::TimerId,
        ts: CompositeTimestamp,
        ctx: &mut impl CoordCtx,
    ) {
        let g = ts.max_global();
        self.metrics.timer_fires += 1;
        let r = match self.detector.fire_timer(shard, timer_id, ts) {
            Ok(r) => r,
            Err(_) => {
                debug_assert!(false, "detector rejected timer");
                return;
            }
        };
        if self.part.is_some() {
            let root = {
                let part = self.part.as_mut().expect("partitioned");
                let ordinal = part.fire_ordinal;
                part.fire_ordinal += 1;
                (g, (part.n_sites + part.replica) as u32, ordinal)
            };
            let parent: PartKey = (root, 0, Vec::new());
            self.absorb_partitioned(r, &parent, true, ctx);
            self.advance_promise(ctx);
        } else {
            self.absorb(r, ctx);
        }
    }
}
