//! The coordinator (global event detector).
//!
//! Receives stamped primitive-event notifications and watermarks from
//! every site — either per-event (`Msg::Event` + `Msg::Heartbeat`) or
//! coalesced into `Msg::Batch`es — reassembles each site's FIFO stream,
//! buffers notifications until the watermark stability rule releases them,
//! drains the stable prefix in watermark-bounded batches into an
//! [`AnyDetector`] — the hash-consed shared plan by default, or one
//! event-graph shard per composite definition with plan sharing disabled —
//! in a canonical order, and services the detector's timer requests from
//! its own clock. Detections are identical in both transport modes and
//! with either backend.

use crate::config::ReleasePolicy;
use crate::durability::{
    read_wal, ArmedTimer, BufferedNotification, CoordinatorSnapshot, PendingDetection,
    SnapshotStore, WalRecord, WalWriter,
};
use crate::metrics::Metrics;
use crate::protocol::Msg;
use crate::watermark::WatermarkTracker;
use decs_chronos::{GlobalTicks, LocalTicks, Nanos, SiteId};
use decs_core::{CompositeTimestamp, PrimitiveTimestamp};
use decs_simnet::{Actor, Ctx, NodeIdx};
use decs_snoop::{
    AnyDetector, EventBatch, EventId, Occurrence, ShardFeedResult, ShardId, Snapshot, TimerId,
};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::io;
use std::path::Path;

/// The slice of [`Ctx`] the coordinator's state transitions actually use.
///
/// Every state-mutating internal method is generic over this trait so the
/// *same code* runs in two worlds: live (a real [`Ctx`] — sends go on the
/// wire, timers get armed) and WAL replay (a [`ReplayCtx`] — `true_now`
/// reads the logged time, sends and timer arms are swallowed, because the
/// recovery harness re-arms surviving timers itself and the peers already
/// received the originals). Recovery being "the normal feed path with a
/// different context" is what makes replay equivalence an identity rather
/// than a parallel reimplementation to keep in sync.
pub(crate) trait CoordCtx {
    /// Current true time (live: simulation clock; replay: logged time).
    fn true_now(&self) -> Nanos;
    /// Arm a timer (no-op during replay).
    fn set_timer(&mut self, delay: Nanos, tag: u64);
    /// Send a message (no-op during replay).
    fn send(&mut self, to: NodeIdx, msg: Msg);
}

impl CoordCtx for Ctx<'_, Msg> {
    fn true_now(&self) -> Nanos {
        Ctx::true_now(self)
    }
    fn set_timer(&mut self, delay: Nanos, tag: u64) {
        Ctx::set_timer(self, delay, tag);
    }
    fn send(&mut self, to: NodeIdx, msg: Msg) {
        Ctx::send(self, to, msg);
    }
}

/// The replay world: time is read from the log, effects on the outside
/// world are suppressed.
pub(crate) struct ReplayCtx {
    /// The true time recorded with the record being replayed.
    pub now: Nanos,
}

impl CoordCtx for ReplayCtx {
    fn true_now(&self) -> Nanos {
        self.now
    }
    fn set_timer(&mut self, _delay: Nanos, _tag: u64) {}
    fn send(&mut self, _to: NodeIdx, _msg: Msg) {}
}

/// Canonical release key: (max global tick, origin site, per-site arrival
/// counter). The counter is assigned when the notification enters the
/// stability buffer, in reassembled FIFO order, so it is the same whether
/// the notification traveled as its own `Msg::Event` or inside a
/// `Msg::Batch` — detection stays a pure function of the workload,
/// independent of both delivery order and transport mode.
type ReleaseKey = (u64, u32, u64);

/// Timer tag reserved for the periodic ack/stall-check round. Detector
/// timer tags count up from 0, so the two can never collide.
const ACK_TIMER_TAG: u64 = u64::MAX;

#[derive(Debug, Default)]
struct SiteStream {
    next: u64,
    parked: BTreeMap<u64, Msg>,
    /// Notifications buffered from this site so far (release-key counter).
    /// **Not** reset on an epoch bump: release keys must stay unique for
    /// the stream's lifetime, across incarnations.
    arrivals: u64,
    /// Evicted sites keep their stream bookkeeping (so retransmissions are
    /// acked and die down) but their notifications are refused.
    evicted: bool,
    /// The site's current incarnation epoch. Messages carrying a lower
    /// epoch are stale traffic from a dead incarnation and are filtered;
    /// a higher epoch (first seen on a `Msg::Hello`) triggers the rejoin
    /// transition.
    epoch: u64,
    /// True time the current epoch's `Hello` was first seen, pending its
    /// in-order consumption — the interval is the rejoin latency.
    rejoined_at: Option<Nanos>,
}

/// Per-site stall-detector state.
#[derive(Debug, Default, Clone)]
struct StallState {
    /// Watermark observed at the last check round.
    last_wm: u64,
    /// Consecutive check rounds without watermark progress while some
    /// other site progressed.
    stalled_checks: u64,
    /// Whether the site is currently suspect.
    suspect: bool,
}

/// A detection produced by the coordinator, with bookkeeping times.
#[derive(Debug, Clone)]
pub struct RawDetection {
    /// The composite occurrence.
    pub occ: Occurrence<CompositeTimestamp>,
    /// True time at which the coordinator produced it.
    pub detected_at: Nanos,
}

/// The coordinator actor.
pub struct CoordinatorNode {
    detector: AnyDetector<CompositeTimestamp>,
    /// Reusable columnar staging batch for release rounds (cleared after
    /// every feed; steady state allocates nothing).
    ingest: EventBatch<CompositeTimestamp>,
    tracker: WatermarkTracker,
    streams: Vec<SiteStream>,
    buffer: BTreeMap<ReleaseKey, (Occurrence<CompositeTimestamp>, Nanos)>,
    /// Completed detections (drained by the engine after a run).
    pub detections: Vec<RawDetection>,
    /// Metrics counters.
    pub metrics: Metrics,
    timer_map: HashMap<u64, (ShardId, TimerId)>,
    next_tag: u64,
    gg_nanos: u64,
    policy: ReleasePolicy,
    /// Whether release rounds garbage-collect operator buffers.
    buffer_gc: bool,
    /// Last watermark the operator buffers were collected at (GC only runs
    /// when the low bound strictly advances).
    last_gc_low: u64,
    /// Event types whose *arrival* is itself a reportable detection
    /// (site-local composite events detected at the sites).
    reportable: HashSet<EventId>,
    /// Period of the ack/stall-check timer (`ZERO` disables it; armed by
    /// `Msg::Start`).
    ack_interval: Nanos,
    /// Stall threshold in check rounds (`0` disables stall detection).
    stall_intervals: u64,
    /// Escalate suspect sites to eviction.
    auto_evict: bool,
    /// Bound on each site's parked reassembly buffer (`0` = unbounded).
    parked_cap: usize,
    /// Stall-detector state, one entry per site.
    stall: Vec<StallState>,
    /// Parked messages across all site streams (for `parked_peak`).
    parked_total: usize,
    /// Write-ahead log of consumed inputs (`None` = durability off).
    wal: Option<WalWriter>,
    /// Snapshot store paired with the WAL.
    snapshots: Option<SnapshotStore>,
    /// Minimum watermark advance (global ticks) between snapshots.
    snapshot_interval: u64,
    /// Watermark at which the last snapshot was taken.
    last_snapshot_wm: u64,
    /// Absolute due time (true-time ns) of every armed detector timer, so
    /// a snapshot can record what to re-arm after recovery.
    timer_due: HashMap<u64, u64>,
    /// True while `recover` is replaying the WAL: appends, snapshots, sends
    /// and timer arms are all suppressed.
    replaying: bool,
    /// Detections ever drained by the engine (kept aligned across
    /// crash/recovery by `WalRecord::Drained`).
    drained: u64,
    /// High-water mark of the canonical release order, *exclusive*: every
    /// global tick strictly below it has been released (or proven dead by
    /// operator-buffer GC); 0 means nothing has passed yet. A notification
    /// stamped below it arrived after its slot in the release order was
    /// passed — only possible from an evicted-then-rejoined site's
    /// pre-crash backlog — and is refused as stale rather than released
    /// out of order.
    release_horizon: u64,
    /// Set on the first WAL append/sync failure; from then on the
    /// coordinator is fail-stop: it drops every input unprocessed (and
    /// unacked) so the log prefix stays exactly the consumed-input stream
    /// and recovery from it is still sound.
    wal_failed: Option<String>,
}

impl std::fmt::Debug for CoordinatorNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoordinatorNode")
            .field("buffered", &self.buffer.len())
            .field("detections", &self.detections.len())
            .finish_non_exhaustive()
    }
}

impl CoordinatorNode {
    /// Coordinator over `sites` sites, running a pre-compiled detector —
    /// either backend ([`decs_snoop::ShardedDetector`] or
    /// [`decs_snoop::PlanDetector`]) converts into the [`AnyDetector`]
    /// this takes. `gg_nanos` is the duration of one global tick (for
    /// timer delays).
    pub fn new(
        sites: usize,
        detector: impl Into<AnyDetector<CompositeTimestamp>>,
        gg_nanos: u64,
    ) -> Self {
        Self::with_policy(sites, detector, gg_nanos, ReleasePolicy::Stable)
    }

    /// Coordinator with an explicit release policy (the `Immediate` policy
    /// exists for the ablation experiments).
    pub fn with_policy(
        sites: usize,
        detector: impl Into<AnyDetector<CompositeTimestamp>>,
        gg_nanos: u64,
        policy: ReleasePolicy,
    ) -> Self {
        let detector = detector.into();
        let plan = detector.plan_stats();
        let metrics = Metrics {
            shard_count: detector.shard_count(),
            stage_count: detector.stage_count(),
            worker_count: detector.worker_count(),
            plan_nodes: plan.plan_nodes,
            shared_nodes: plan.shared_nodes,
            sharing_ratio: plan.sharing_ratio,
            ..Metrics::default()
        };
        CoordinatorNode {
            detector,
            ingest: EventBatch::new(),
            tracker: WatermarkTracker::new(sites),
            streams: (0..sites).map(|_| SiteStream::default()).collect(),
            buffer: BTreeMap::new(),
            detections: Vec::new(),
            metrics,
            timer_map: HashMap::new(),
            next_tag: 0,
            gg_nanos,
            policy,
            buffer_gc: true,
            last_gc_low: 0,
            reportable: HashSet::new(),
            ack_interval: Nanos::ZERO,
            stall_intervals: 0,
            auto_evict: false,
            parked_cap: 0,
            stall: vec![StallState::default(); sites],
            parked_total: 0,
            wal: None,
            snapshots: None,
            snapshot_interval: 0,
            last_snapshot_wm: 0,
            timer_due: HashMap::new(),
            replaying: false,
            drained: 0,
            release_horizon: 0,
            wal_failed: None,
        }
    }

    /// Configure the fault-tolerance machinery: the periodic ack/stall
    /// timer (armed when the engine delivers `Msg::Start`), the stall
    /// threshold, automatic eviction of suspect sites, and the parked
    /// reassembly-buffer bound. All off in a bare coordinator.
    pub fn set_fault_tolerance(
        &mut self,
        ack_interval: Nanos,
        stall_intervals: u64,
        auto_evict: bool,
        parked_cap: usize,
    ) {
        self.ack_interval = ack_interval;
        self.stall_intervals = stall_intervals;
        self.auto_evict = auto_evict;
        self.parked_cap = parked_cap;
    }

    /// Enable or disable operator-buffer GC (on by default). GC is
    /// behavior-preserving, so this only trades memory for release-round
    /// work; the off switch exists for ablation and the occupancy bench.
    pub fn set_buffer_gc(&mut self, enabled: bool) {
        self.buffer_gc = enabled;
    }

    /// Mark event types whose arrivals are reported as detections in their
    /// own right (used for site-local composite events).
    pub fn set_reportable(&mut self, ids: impl IntoIterator<Item = EventId>) {
        self.reportable = ids.into_iter().collect();
    }

    /// Read access to the watermark tracker (tests/diagnostics).
    pub fn tracker(&self) -> &WatermarkTracker {
        &self.tracker
    }

    /// Number of notifications awaiting stability.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// A site's current incarnation epoch.
    pub fn site_epoch(&self, site: usize) -> u64 {
        self.streams.get(site).map(|s| s.epoch).unwrap_or(0)
    }

    /// Whether durability has fail-stopped on a WAL I/O error, and why.
    /// A failed coordinator drops every further input unprocessed.
    pub fn wal_failed(&self) -> Option<&str> {
        self.wal_failed.as_deref()
    }

    fn absorb(&mut self, r: ShardFeedResult<CompositeTimestamp>, ctx: &mut impl CoordCtx) {
        for (shard, t) in r.timers {
            let tag = self.next_tag;
            self.next_tag += 1;
            let delay = Nanos(t.delay_ticks * self.gg_nanos);
            self.timer_map.insert(tag, (shard, t.id));
            // Recorded even during replay: the due time is derived from the
            // logged consumption time, so a recovered coordinator re-arms
            // timers at exactly the instants the crashed one had pending.
            self.timer_due
                .insert(tag, ctx.true_now().get().saturating_add(delay.get()));
            ctx.set_timer(delay, tag);
        }
        for occ in r.detected {
            self.metrics.detections += 1;
            self.detections.push(RawDetection {
                occ,
                detected_at: ctx.true_now(),
            });
        }
    }

    /// Drain the stable prefix of the buffer in one watermark-bounded
    /// batch: collect every released notification first (the buffer walk
    /// is cheap and canonical), then feed them as a single **columnar**
    /// batch — types, stamps and parameter handles staged
    /// struct-of-arrays in the reusable [`EventBatch`], materialized only
    /// for routed types at delivery. The parameter lists ride as `Arc`
    /// bumps; re-minted occurrence uids are fresh either way.
    fn release_stable(&mut self, ctx: &mut impl CoordCtx) {
        let columnar = self.reportable.is_empty();
        debug_assert!(self.ingest.is_empty(), "staging batch left dirty");
        let mut batch = Vec::new();
        while let Some((&key, _)) = self.buffer.iter().next() {
            if !self.tracker.is_stable(key.0) {
                break;
            }
            let (occ, arrived) = self.buffer.remove(&key).expect("present");
            self.release_horizon = self.release_horizon.max(key.0 + 1);
            self.metrics.events_released += 1;
            self.metrics.stability_latency_sum_ns +=
                u128::from(ctx.true_now().get().saturating_sub(arrived.get()));
            if columnar {
                self.ingest.push_list(occ.ty, occ.time, occ.params);
            } else {
                batch.push(occ);
            }
        }
        if !self.ingest.is_empty() {
            self.metrics.release_batches += 1;
            self.metrics.batch_ingest_events += self.ingest.len() as u64;
            self.metrics.arena_bytes = self
                .metrics
                .arena_bytes
                .max(self.ingest.arena_bytes() as u64);
            let r = self.detector.feed_batch_columnar(&self.ingest);
            self.ingest.clear();
            self.absorb(r, ctx);
        } else if !batch.is_empty() {
            self.metrics.release_batches += 1;
            // Site-local composite arrivals are reported interleaved
            // with the global graph's own detections, so keep the
            // per-event feed order observable.
            for occ in batch {
                self.feed_released(occ, ctx);
            }
        }
        self.gc_operator_buffers();
        // End of a release round is the quiescent point: the detector has
        // no half-processed batch, and GC has just refreshed occupancy.
        self.maybe_snapshot();
    }

    /// Let the detector's operator nodes reclaim buffered state the
    /// watermark proves dead, and refresh the occupancy metrics.
    ///
    /// The low bound is `min_watermark − 2`: everything the coordinator can
    /// still feed has all member globals `≥` that. Stability releases
    /// stamps with `max_global ≤ min − 2`, so buffer residue and future
    /// releases have `max_global ≥ min − 1`; by Theorem 5.1 the members of
    /// a `Max`-combined stamp are pairwise concurrent, so their globals
    /// span at most one tick — all `≥ min − 2`. Coordinator-clock timer
    /// stamps sit at the current global tick, ahead of every received
    /// watermark under the `2g_g` clock-sync assumption (Prop 4.1).
    fn gc_operator_buffers(&mut self) {
        if self.buffer_gc {
            let low = self.tracker.min_watermark().saturating_sub(2);
            if low > self.last_gc_low {
                self.last_gc_low = low;
                // Operator buffers below `low` are gone: a late notification
                // at or below it could no longer combine correctly, so the
                // stale horizon advances with the GC bound too.
                self.release_horizon = self.release_horizon.max(low + 1);
                self.metrics.gc_evicted += self.detector.advance_watermark(low);
            }
        }
        self.metrics.node_buffered = self.detector.buffered_occupancy();
        self.metrics.node_buffer_peak = self
            .metrics
            .node_buffer_peak
            .max(self.metrics.node_buffered);
        self.metrics.worker_count = self.detector.worker_count();
        self.metrics.parallel_rounds = self.detector.parallel_rounds();
        self.metrics.pool_busy_ns = self.detector.pool_busy_ns();
        self.metrics.ring_full_spins = self.detector.ring_full_spins();
    }

    /// Feed a released notification: report it if it is itself a
    /// site-local composite detection, then run the global graph.
    fn feed_released(&mut self, occ: Occurrence<CompositeTimestamp>, ctx: &mut impl CoordCtx) {
        if self.reportable.contains(&occ.ty) {
            self.metrics.detections += 1;
            self.detections.push(RawDetection {
                occ: occ.clone(),
                detected_at: ctx.true_now(),
            });
        }
        let r = self.detector.feed(occ);
        self.absorb(r, ctx);
    }

    /// Buffer (or, under `Immediate`, directly feed) one reassembled
    /// notification. The release key's third component is the per-site
    /// arrival counter — identical for the `Event` and `Batch` transports.
    fn accept_notification(
        &mut self,
        site: usize,
        occ: Occurrence<CompositeTimestamp>,
        ctx: &mut impl CoordCtx,
    ) {
        match self.policy {
            ReleasePolicy::Stable => {
                if occ.time.max_global() < self.release_horizon {
                    // Its slot in the canonical release order has already
                    // been passed — the pre-crash backlog of an evicted,
                    // now rejoining site (a healthy site's watermark
                    // promise makes this provably unreachable). Refuse it
                    // *without* consuming an arrival counter, so surviving
                    // notifications keep the same release keys as a run in
                    // which the stale backlog never arrived.
                    self.metrics.stale_refused += 1;
                    return;
                }
                self.metrics.events_received += 1;
                let arrival = self.streams[site].arrivals;
                self.streams[site].arrivals += 1;
                let key: ReleaseKey = (occ.time.max_global(), site as u32, arrival);
                self.buffer.insert(key, (occ, ctx.true_now()));
                self.metrics.max_buffered = self.metrics.max_buffered.max(self.buffer.len());
            }
            ReleasePolicy::Immediate => {
                self.metrics.events_received += 1;
                self.metrics.events_released += 1;
                self.feed_released(occ, ctx);
            }
        }
    }

    fn handle_in_order(&mut self, site: usize, msg: Msg, ctx: &mut impl CoordCtx) {
        if self.wal_failed.is_some() {
            // Fail-stopped: `wal == None` no longer means durability-off.
            return;
        }
        // Log before applying: recovery replays exactly the in-order
        // consumption stream. Parked messages are logged here — when they
        // are consumed — not on arrival; until then the ack protocol keeps
        // them the sender's responsibility.
        if self.wal.is_some() && !self.replaying {
            self.wal_append(WalRecord::Delivered {
                site: site as u32,
                at: ctx.true_now().get(),
                msg: msg.clone(),
            });
            if self.wal_failed.is_some() {
                // The message could not be logged: fail-stop *before*
                // applying it, so disk state still matches applied state.
                return;
            }
        }
        self.metrics.messages_processed += 1;
        // Evicted sites: stream bookkeeping continues (their retransmits
        // must be acked into silence) but new notifications are refused and
        // their watermark promises stay pinned at +∞.
        let evicted = self.streams[site].evicted;
        match msg {
            Msg::Event { occ, .. } => {
                if evicted {
                    self.metrics.evict_refused += 1;
                } else {
                    self.accept_notification(site, occ, ctx);
                }
            }
            Msg::Heartbeat { watermark, .. } => {
                self.metrics.heartbeats_received += 1;
                self.tracker.update(site, watermark);
                self.release_stable(ctx);
            }
            Msg::Batch {
                watermark, events, ..
            } => {
                self.metrics.batches_received += 1;
                self.metrics.batch_size_max = self.metrics.batch_size_max.max(events.len());
                if evicted {
                    self.metrics.evict_refused += events.len() as u64;
                } else {
                    // The WAL (or a retransmit buffer in tests) may still
                    // hold a reference; consume in place when we own the
                    // only copy, clone per occurrence otherwise.
                    match std::sync::Arc::try_unwrap(events) {
                        Ok(owned) => {
                            for occ in owned {
                                self.accept_notification(site, occ, ctx);
                            }
                        }
                        Err(shared) => {
                            for occ in shared.iter().cloned() {
                                self.accept_notification(site, occ, ctx);
                            }
                        }
                    }
                }
                self.tracker.update(site, watermark);
                self.release_stable(ctx);
            }
            Msg::Hello { watermark, .. } => {
                // The epoch transition already ran at first sight (see
                // `epoch_transition`); consuming the Hello in order marks
                // the rejoin complete: the returning site's backlog is
                // drained and its fresh watermark promise takes effect.
                self.tracker.update(site, watermark);
                if let Some(t0) = self.streams[site].rejoined_at.take() {
                    self.metrics.rejoin_latency_ns += ctx.true_now().get().saturating_sub(t0.get());
                }
                self.release_stable(ctx);
            }
            Msg::Start
            | Msg::Inject { .. }
            | Msg::Crash
            | Msg::Restart
            | Msg::Evict { .. }
            | Msg::Ack { .. } => {
                debug_assert!(false, "sequence-numbered control message");
            }
        }
    }

    fn seq_of(msg: &Msg) -> Option<u64> {
        match msg {
            Msg::Event { seq, .. }
            | Msg::Heartbeat { seq, .. }
            | Msg::Batch { seq, .. }
            | Msg::Hello { seq, .. } => Some(*seq),
            _ => None,
        }
    }

    fn epoch_of(msg: &Msg) -> Option<u64> {
        match msg {
            Msg::Event { epoch, .. }
            | Msg::Heartbeat { epoch, .. }
            | Msg::Batch { epoch, .. }
            | Msg::Hello { epoch, .. } => Some(*epoch),
            _ => None,
        }
    }

    /// React to the **first sight** of a `Msg::Hello` carrying a higher
    /// epoch than the stream's (in or out of order — it runs before
    /// sequence handling, and exactly once per epoch because it raises the
    /// stream epoch it is gated on):
    ///
    /// * parked reassembly state from the dead incarnation is dropped (its
    ///   sequence numbers may collide with the new incarnation's);
    /// * the in-order frontier falls to `min(next, base_seq)` — a
    ///   non-durable restart resets the site's sequence space below the old
    ///   frontier, a durable one resumes at or above it (so `min` is a
    ///   no-op there and no delivered prefix is ever re-opened);
    /// * an evicted site is un-evicted: its watermark pin drops from +∞
    ///   back to the Hello's fresh promise and its stall state clears.
    fn epoch_transition(
        &mut self,
        site: usize,
        epoch: u64,
        base_seq: u64,
        watermark: u64,
        ctx: &mut impl CoordCtx,
    ) {
        if self.wal_failed.is_some() {
            return;
        }
        if self.wal.is_some() && !self.replaying {
            self.wal_append(WalRecord::HelloSeen {
                site: site as u32,
                at: ctx.true_now().get(),
                epoch,
                base_seq,
                watermark,
            });
            if self.wal_failed.is_some() {
                return;
            }
        }
        let dropped = std::mem::take(&mut self.streams[site].parked).len();
        self.parked_total -= dropped;
        self.streams[site].epoch = epoch;
        self.streams[site].next = self.streams[site].next.min(base_seq);
        self.streams[site].rejoined_at = Some(ctx.true_now());
        let was_evicted = std::mem::replace(&mut self.streams[site].evicted, false);
        if was_evicted {
            self.tracker.reset(site, watermark);
            let st = &mut self.stall[site];
            if st.suspect {
                st.suspect = false;
                self.metrics.suspect_sites -= 1;
            }
            st.stalled_checks = 0;
            st.last_wm = watermark;
        }
        self.metrics.rejoins += 1;
        self.metrics.epoch_max = self.metrics.epoch_max.max(epoch);
    }

    /// Stop waiting for `site`: its watermark promise becomes +∞ and its
    /// future notifications are refused (buffered ones still release).
    fn evict(&mut self, site: usize, ctx: &mut impl CoordCtx) {
        if site >= self.streams.len() || self.streams[site].evicted || self.wal_failed.is_some() {
            return;
        }
        if self.wal.is_some() && !self.replaying {
            self.wal_append(WalRecord::Evicted {
                site: site as u32,
                at: ctx.true_now().get(),
            });
            if self.wal_failed.is_some() {
                return;
            }
        }
        self.streams[site].evicted = true;
        self.tracker.update(site, u64::MAX);
        self.release_stable(ctx);
    }

    /// Send `site`'s cumulative ack, scoped to its current epoch (a site
    /// ignores acks from an epoch other than its own).
    fn send_ack(&mut self, to: NodeIdx, site: usize, ctx: &mut impl CoordCtx) {
        self.metrics.acks_sent += 1;
        let cum_seq = self.streams[site].next;
        let epoch = self.streams[site].epoch;
        ctx.send(to, Msg::Ack { cum_seq, epoch });
    }

    /// Periodic round: re-send every site's cumulative ack (repairing acks
    /// lost on the return path), run the stall detector, re-arm.
    fn ack_round(&mut self, ctx: &mut impl CoordCtx) {
        for site in 0..self.streams.len() {
            self.send_ack(NodeIdx(site as u32), site, ctx);
        }
        self.stall_check(ctx);
        ctx.set_timer(self.ack_interval, ACK_TIMER_TAG);
    }

    /// Mark a site *suspect* when its watermark has not advanced for
    /// `stall_intervals` consecutive rounds in which some other site's
    /// did (a globally idle system suspects nobody). Suspicion clears as
    /// soon as the watermark moves again; with `auto_evict` it escalates
    /// to eviction instead.
    fn stall_check(&mut self, ctx: &mut impl CoordCtx) {
        if self.stall_intervals == 0 {
            return;
        }
        let n = self.stall.len();
        let mut advanced = vec![false; n];
        let mut any_advanced = false;
        for (i, adv) in advanced.iter_mut().enumerate() {
            if self.streams[i].evicted {
                continue;
            }
            let wm = self.tracker.site_watermark(i);
            if wm > self.stall[i].last_wm {
                self.stall[i].last_wm = wm;
                *adv = true;
                any_advanced = true;
            }
        }
        let mut to_evict = Vec::new();
        for (i, &adv) in advanced.iter().enumerate() {
            if self.streams[i].evicted {
                continue;
            }
            let st = &mut self.stall[i];
            if adv {
                st.stalled_checks = 0;
                if st.suspect {
                    st.suspect = false;
                    self.metrics.suspect_sites -= 1;
                }
            } else if any_advanced {
                st.stalled_checks += 1;
                if st.suspect {
                    self.metrics.stall_ns += u128::from(self.ack_interval.get());
                } else if st.stalled_checks >= self.stall_intervals {
                    st.suspect = true;
                    self.metrics.suspect_sites += 1;
                    if self.auto_evict {
                        self.metrics.auto_evictions += 1;
                        to_evict.push(i);
                    }
                }
            }
        }
        for site in to_evict {
            self.evict(site, ctx);
        }
    }
}

/// Durability: WAL appends, snapshotting, and crash recovery. See
/// [`crate::durability`] for the formats and the recovery invariants.
impl CoordinatorNode {
    /// Append one record to the WAL (no-op during replay or with
    /// durability off) and refresh the WAL metrics. Durability I/O errors
    /// are **fail-stop**: a coordinator that silently stopped logging
    /// would recover into a state that *looks* valid and detects wrongly,
    /// so on the first error the node records the failure and thereafter
    /// drops every input unprocessed (see `wal_failed`).
    fn wal_append(&mut self, rec: WalRecord) {
        if self.replaying {
            return;
        }
        if let Some(w) = self.wal.as_mut() {
            match w.append(&rec) {
                Ok(()) => {
                    self.metrics.wal_appends = w.appends();
                    self.metrics.wal_bytes = w.bytes();
                }
                Err(e) => self.wal_fail(e),
            }
        }
    }

    /// Enter the fail-stop state on a durability I/O error.
    fn wal_fail(&mut self, e: io::Error) {
        self.metrics.wal_errors += 1;
        if self.wal_failed.is_none() {
            self.wal_failed = Some(e.to_string());
        }
        self.wal = None;
        self.snapshots = None;
    }

    /// Record that the engine drained `count` finished detections, so a
    /// recovered coordinator does not re-report them.
    pub(crate) fn note_drained(&mut self, count: u64) {
        if count == 0 {
            return;
        }
        self.drained += count;
        if self.wal.is_some() && !self.replaying {
            self.wal_append(WalRecord::Drained { count });
        }
    }

    /// Enable durability with a **fresh** log: any previous WAL and
    /// snapshots in `dir` are discarded. `snapshot_interval` is in global
    /// ticks of minimum-watermark advance between snapshots.
    pub fn set_durability(&mut self, dir: &Path, snapshot_interval: u64) -> io::Result<()> {
        let store = SnapshotStore::open(dir)?;
        store.reset()?;
        let wal = WalWriter::create(dir)?;
        self.metrics.wal_appends = 0;
        self.metrics.wal_bytes = 0;
        self.wal = Some(wal);
        self.snapshots = Some(store);
        self.snapshot_interval = snapshot_interval;
        self.last_snapshot_wm = 0;
        Ok(())
    }

    /// Take a snapshot if the minimum watermark advanced enough since the
    /// last one. Called at the end of every release round (a quiescent
    /// point for both detector backends).
    fn maybe_snapshot(&mut self) {
        if self.replaying || self.snapshots.is_none() || self.wal.is_none() {
            return;
        }
        let wm = self.tracker.min_watermark();
        // `u64::MAX` means every site is evicted — the watermark is the
        // empty-min sentinel, not progress.
        if wm == u64::MAX || wm <= self.last_snapshot_wm {
            return;
        }
        if wm - self.last_snapshot_wm < self.snapshot_interval {
            return;
        }
        self.last_snapshot_wm = wm;
        self.take_snapshot();
    }

    fn take_snapshot(&mut self) {
        let wal = self.wal.as_mut().expect("durability on");
        // The snapshot claims "wal_records inputs are already applied
        // here", so those records must be on disk before the claim is.
        if let Err(e) = wal.sync() {
            self.wal_fail(e);
            return;
        }
        let wal_records = wal.appends();
        let mut timers: Vec<ArmedTimer> = self
            .timer_map
            .iter()
            .map(|(&tag, &(shard, timer_id))| ArmedTimer {
                tag,
                shard: shard as u64,
                timer: timer_id.0,
                due_ns: self.timer_due.get(&tag).copied().unwrap_or(0),
            })
            .collect();
        timers.sort_by_key(|t| t.tag);
        let snap = CoordinatorSnapshot {
            wal_records,
            detector: self.detector.save_state(),
            streams: self
                .streams
                .iter()
                .map(|s| (s.next, s.arrivals, s.evicted, s.epoch))
                .collect(),
            watermarks: (0..self.streams.len())
                .map(|i| self.tracker.site_watermark(i))
                .collect(),
            buffer: self
                .buffer
                .iter()
                .map(
                    |(&(max_global, site, arrival), (occ, arrived))| BufferedNotification {
                        max_global,
                        site,
                        arrival,
                        occ: occ.clone(),
                        arrived_ns: arrived.get(),
                    },
                )
                .collect(),
            timers,
            next_tag: self.next_tag,
            detections: self
                .detections
                .iter()
                .map(|d| PendingDetection {
                    occ: d.occ.clone(),
                    detected_at_ns: d.detected_at.get(),
                })
                .collect(),
            drained: self.drained,
            metrics: self.metrics.clone(),
            last_gc_low: self.last_gc_low,
            stall: self
                .stall
                .iter()
                .map(|s| (s.last_wm, s.stalled_checks, s.suspect))
                .collect(),
            release_horizon: self.release_horizon,
        };
        if let Err(e) = self.snapshots.as_ref().expect("durability on").save(&snap) {
            self.wal_fail(e);
            return;
        }
        self.metrics.snapshots_taken += 1;
    }

    fn restore_snapshot(&mut self, snap: CoordinatorSnapshot) -> io::Result<()> {
        let sites = self.streams.len();
        if snap.streams.len() != sites
            || snap.watermarks.len() != sites
            || snap.stall.len() != sites
        {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "snapshot site count mismatch",
            ));
        }
        self.detector.restore_state(snap.detector).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("detector restore: {e}"))
        })?;
        for (stream, &(next, arrivals, evicted, epoch)) in
            self.streams.iter_mut().zip(&snap.streams)
        {
            stream.next = next;
            stream.arrivals = arrivals;
            stream.evicted = evicted;
            stream.epoch = epoch;
            stream.rejoined_at = None;
            // Parked messages are outside the durability boundary: they
            // were never acked, so their sites retransmit them.
            stream.parked.clear();
        }
        self.parked_total = 0;
        for (i, &wm) in snap.watermarks.iter().enumerate() {
            self.tracker.update(i, wm);
        }
        self.buffer = snap
            .buffer
            .into_iter()
            .map(|b| {
                (
                    (b.max_global, b.site, b.arrival),
                    (b.occ, Nanos(b.arrived_ns)),
                )
            })
            .collect();
        self.timer_map.clear();
        self.timer_due.clear();
        for t in &snap.timers {
            self.timer_map
                .insert(t.tag, (t.shard as ShardId, TimerId(t.timer)));
            self.timer_due.insert(t.tag, t.due_ns);
        }
        self.next_tag = snap.next_tag;
        self.detections = snap
            .detections
            .into_iter()
            .map(|d| RawDetection {
                occ: d.occ,
                detected_at: Nanos(d.detected_at_ns),
            })
            .collect();
        self.drained = snap.drained;
        self.metrics = snap.metrics;
        self.last_gc_low = snap.last_gc_low;
        self.release_horizon = snap.release_horizon;
        for (st, &(last_wm, stalled_checks, suspect)) in self.stall.iter_mut().zip(&snap.stall) {
            st.last_wm = last_wm;
            st.stalled_checks = stalled_checks;
            st.suspect = suspect;
        }
        Ok(())
    }

    /// Replay one WAL record through the normal consumption path.
    fn replay_record(&mut self, rec: WalRecord) -> io::Result<()> {
        match rec {
            WalRecord::Delivered { site, at, msg } => {
                let site = site as usize;
                if site >= self.streams.len() {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "WAL names an unknown site",
                    ));
                }
                let Some(seq) = Self::seq_of(&msg) else {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "WAL Delivered carries an unsequenced message",
                    ));
                };
                // The WAL is the in-order consumption stream, so the
                // reassembly frontier follows it directly.
                self.streams[site].next = seq + 1;
                let mut ctx = ReplayCtx { now: Nanos(at) };
                self.handle_in_order(site, msg, &mut ctx);
            }
            WalRecord::TimerFired {
                tag,
                at,
                site,
                global,
                local,
            } => {
                self.timer_due.remove(&tag);
                let Some((shard, timer_id)) = self.timer_map.remove(&tag) else {
                    // A fire for a timer the snapshot no longer tracked —
                    // tolerated, same as the live idempotence rule.
                    return Ok(());
                };
                let ts = CompositeTimestamp::singleton(PrimitiveTimestamp::new(
                    SiteId(site),
                    GlobalTicks(global),
                    LocalTicks(local),
                ));
                self.metrics.timer_fires += 1;
                let mut ctx = ReplayCtx { now: Nanos(at) };
                if let Ok(r) = self.detector.fire_timer(shard, timer_id, ts) {
                    self.absorb(r, &mut ctx);
                }
            }
            WalRecord::Evicted { site, at } => {
                let mut ctx = ReplayCtx { now: Nanos(at) };
                self.evict(site as usize, &mut ctx);
            }
            WalRecord::Drained { count } => {
                let n = (count as usize).min(self.detections.len());
                self.detections.drain(..n);
                self.drained += count;
            }
            WalRecord::HelloSeen {
                site,
                at,
                epoch,
                base_seq,
                watermark,
            } => {
                let site = site as usize;
                if site >= self.streams.len() {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "WAL names an unknown site",
                    ));
                }
                let mut ctx = ReplayCtx { now: Nanos(at) };
                self.epoch_transition(site, epoch, base_seq, watermark, &mut ctx);
            }
        }
        Ok(())
    }

    /// Rebuild this (freshly constructed) coordinator from the durability
    /// directory: load the newest usable snapshot, replay the WAL suffix
    /// through the normal feed path, truncate any torn tail, and resume
    /// logging. Returns the detector timers that were armed at crash time
    /// as `(tag, due_true_time_ns)` pairs, sorted by due time — the
    /// harness must re-schedule them for the replacement node.
    pub fn recover(&mut self, dir: &Path, snapshot_interval: u64) -> io::Result<Vec<(u64, u64)>> {
        let t0 = std::time::Instant::now();
        let store = SnapshotStore::open(dir)?;
        let scan = read_wal(dir)?;
        let total = scan.records.len() as u64;
        let mut skip = 0u64;
        if let Some(snap) = store.load_best(total)? {
            skip = snap.wal_records;
            self.restore_snapshot(snap)?;
        }
        self.replaying = true;
        for rec in scan.records.into_iter().skip(skip as usize) {
            if let Err(e) = self.replay_record(rec) {
                self.replaying = false;
                return Err(e);
            }
        }
        self.replaying = false;
        // Resume the log where validity ended — a torn or corrupt tail is
        // truncated away so it can never shadow future appends.
        let wal = WalWriter::resume(dir, scan.valid_len, total)?;
        self.metrics.wal_appends = wal.appends();
        self.metrics.wal_bytes = wal.bytes();
        self.metrics.recovery_replayed = total - skip;
        self.metrics.recovery_ns = t0.elapsed().as_nanos() as u64;
        self.wal = Some(wal);
        self.snapshots = Some(store);
        self.snapshot_interval = snapshot_interval;
        let wm = self.tracker.min_watermark();
        if wm != u64::MAX {
            self.last_snapshot_wm = wm;
        }
        let mut due: Vec<(u64, u64)> = self.timer_due.iter().map(|(&tag, &at)| (tag, at)).collect();
        due.sort_by_key(|&(tag, at)| (at, tag));
        Ok(due)
    }
}

impl Actor for CoordinatorNode {
    type Msg = Msg;

    fn on_message(&mut self, from: NodeIdx, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
        if let Msg::Evict { site } = msg {
            // Operator action: treat the site's watermark as +∞ so the
            // remaining buffer can stabilize without it.
            self.evict(site as usize, ctx);
            return;
        }
        if matches!(msg, Msg::Start) {
            // Engine control: arm the periodic ack/stall-check round.
            if self.ack_interval.get() > 0 {
                ctx.set_timer(self.ack_interval, ACK_TIMER_TAG);
            }
            return;
        }
        let site = from.0 as usize;
        let Some(seq) = Self::seq_of(&msg) else {
            return; // Inject/Ack echoes are not coordinator traffic
        };
        debug_assert!(site < self.streams.len(), "unknown site {site}");
        if self.wal_failed.is_some() {
            // Fail-stop after a WAL error: dropping without acking keeps
            // the durable log prefix exactly the consumed-input stream —
            // sites retransmit into the replacement coordinator instead.
            return;
        }
        // Incarnation-epoch filter, ahead of sequence handling: the two
        // incarnations' sequence spaces may overlap.
        let msg_epoch = Self::epoch_of(&msg).unwrap_or(0);
        let stream_epoch = self.streams[site].epoch;
        if msg_epoch < stream_epoch {
            // In-flight traffic from a dead incarnation.
            self.metrics.epoch_filtered += 1;
            return;
        }
        if msg_epoch > stream_epoch {
            match &msg {
                Msg::Hello {
                    seq,
                    epoch,
                    watermark,
                } => {
                    let (s, e, w) = (*seq, *epoch, *watermark);
                    self.epoch_transition(site, e, s, w, ctx);
                    // Fall through: the Hello itself is sequence-handled
                    // against the just-lowered frontier like any message.
                }
                _ => {
                    // New-incarnation data racing ahead of its Hello. Drop
                    // it unacked; retransmission re-delivers it once the
                    // Hello has landed and bumped the stream epoch.
                    self.metrics.epoch_filtered += 1;
                    return;
                }
            }
        }
        let stream = &mut self.streams[site];
        match seq.cmp(&stream.next) {
            std::cmp::Ordering::Equal => {
                stream.next += 1;
                self.handle_in_order(site, msg, ctx);
                // Drain any parked successors.
                loop {
                    if self.wal_failed.is_some() {
                        break;
                    }
                    let stream = &mut self.streams[site];
                    let Some(m) = stream.parked.remove(&stream.next) else {
                        break;
                    };
                    self.parked_total -= 1;
                    stream.next += 1;
                    self.handle_in_order(site, m, ctx);
                }
                if self.wal_failed.is_some() {
                    // The frontier advance was never durably logged — do
                    // not ack it, or the site would stop retransmitting a
                    // message no recovery will ever see.
                    return;
                }
                // Cumulative ack on every in-order delivery: the site trims
                // its retransmit buffer as soon as the frontier moves.
                self.send_ack(from, site, ctx);
            }
            std::cmp::Ordering::Greater => {
                if stream.parked.insert(seq, msg).is_some() {
                    // A second copy of an already-parked message
                    // (retransmitted or link-duplicated): the overwrite is
                    // idempotent.
                    self.metrics.duplicates_dropped += 1;
                    return;
                }
                self.metrics.reassembly_parks += 1;
                self.parked_total += 1;
                if self.parked_cap > 0 && stream.parked.len() > self.parked_cap {
                    // Backpressure: discard the parked message farthest
                    // from the in-order frontier. Cumulative acks never
                    // cover it, so the sender retransmits it later.
                    let (&victim, _) = stream.parked.iter().next_back().expect("non-empty");
                    stream.parked.remove(&victim);
                    self.parked_total -= 1;
                    self.metrics.parked_dropped += 1;
                }
                self.metrics.parked_peak = self.metrics.parked_peak.max(self.parked_total);
            }
            std::cmp::Ordering::Less => {
                // An already-delivered sequence number: a retransmitted or
                // link-duplicated copy. Drop it and re-ack so the sender
                // learns its delivery even if the original ack was lost.
                self.metrics.duplicates_dropped += 1;
                self.send_ack(from, site, ctx);
            }
        }
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut Ctx<'_, Msg>) {
        if self.wal_failed.is_some() {
            // Fail-stop: a timer fire is a consumed input too, and it can
            // no longer be logged.
            return;
        }
        if tag == ACK_TIMER_TAG {
            self.ack_round(ctx);
            return;
        }
        let Some((shard, timer_id)) = self.timer_map.remove(&tag) else {
            // Not an error: after crash recovery a timer can be queued
            // twice — the crashed node's arming survives in the simulation
            // queue *and* the recovery harness re-arms it for the
            // replacement node. `timer_map.remove` makes the fire
            // idempotent; the loser lands here and is ignored.
            return;
        };
        self.timer_due.remove(&tag);
        // Stamp the fire with the coordinator's own clock — periodic
        // occurrences carry genuine (site, global, local) triples.
        let Ok(parts) = ctx.stamp() else {
            return;
        };
        if self.wal.is_some() && !self.replaying {
            // The minted stamp is logged part-by-part: replay must rebuild
            // the identical timestamp without consulting any clock.
            self.wal_append(WalRecord::TimerFired {
                tag,
                at: Ctx::true_now(ctx).get(),
                site: parts.site.0,
                global: parts.global.get(),
                local: parts.local.get(),
            });
            if self.wal_failed.is_some() {
                return;
            }
        }
        let ts = CompositeTimestamp::singleton(PrimitiveTimestamp::new(
            parts.site,
            parts.global,
            parts.local,
        ));
        self.metrics.timer_fires += 1;
        match self.detector.fire_timer(shard, timer_id, ts) {
            Ok(r) => self.absorb(r, ctx),
            Err(_) => debug_assert!(false, "detector rejected timer"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decs_core::cts;
    use decs_snoop::{Context, EventExpr, EventId, ShardedDetector};

    fn detector() -> (ShardedDetector<CompositeTimestamp>, EventId) {
        let mut d = ShardedDetector::new();
        d.register("A").unwrap();
        d.register("B").unwrap();
        let x = d
            .define(
                "X",
                &EventExpr::seq(EventExpr::prim("A"), EventExpr::prim("B")),
                Context::Chronicle,
            )
            .unwrap();
        (d, x)
    }

    // Drive the coordinator directly through a one-node simulation so we
    // get a real Ctx.
    use decs_chronos::{GlobalTimeBase, Granularity, LocalClock, Precision, TruncMode};
    use decs_simnet::{LinkConfig, Simulation, SiteTimeSource};

    fn coordinator_sim(sites: usize) -> Simulation<CoordinatorNode> {
        let (d, _) = detector();
        let base = GlobalTimeBase::new(
            Granularity::per_second(10).unwrap(),
            TruncMode::Floor,
            Precision::from_nanos(1_000_000),
        )
        .unwrap();
        let src = SiteTimeSource::new(
            99u32.into(),
            LocalClock::perfect(Granularity::per_second(100).unwrap()),
            base,
        );
        let coord = CoordinatorNode::new(sites, d, 100_000_000);
        Simulation::new(vec![(coord, src)], LinkConfig::instant(), 1)
    }

    fn ev(ty: u32, seq: u64, s: u32, g: u64, l: u64) -> Msg {
        Msg::Event {
            seq,
            epoch: 0,
            occ: Occurrence::bare(EventId(ty), cts(&[(s, g, l)])),
        }
    }

    fn hb(seq: u64, w: u64) -> Msg {
        Msg::Heartbeat {
            seq,
            epoch: 0,
            watermark: w,
        }
    }

    fn occ(ty: u32, s: u32, g: u64, l: u64) -> Occurrence<CompositeTimestamp> {
        Occurrence::bare(EventId(ty), cts(&[(s, g, l)]))
    }

    // NOTE: `inject` delivers with from == node, so we cannot use it to
    // fake multi-site senders through the public API; instead these tests
    // exercise the handler directly via a tiny two-site harness in the
    // engine tests. Here we check the single-site path (site index 0 ==
    // coordinator node index 0 in this reduced sim).

    #[test]
    fn stability_gates_release_and_detection() {
        let mut sim = coordinator_sim(1);
        let n = decs_simnet::NodeIdx(0);
        // A@(s0, g5), B@(s0, g6) arrive, then watermarks advance.
        sim.inject(Nanos(10), n, ev(0, 0, 0, 5, 50));
        sim.inject(Nanos(20), n, ev(1, 1, 0, 6, 60));
        sim.inject(Nanos(30), n, hb(2, 6));
        sim.run_to_completion();
        {
            let c = sim.node(n);
            // Watermark 6 releases only g ≤ 4: nothing yet.
            assert_eq!(c.buffered(), 2);
            assert!(c.detections.is_empty());
        }
        sim.inject(Nanos(40), n, hb(3, 8));
        sim.run_to_completion();
        {
            let c = sim.node(n);
            // Watermark 8 releases g ≤ 6: both, in order; SEQ fires.
            assert_eq!(c.buffered(), 0);
            assert_eq!(c.detections.len(), 1);
            assert_eq!(c.metrics.events_released, 2);
        }
    }

    #[test]
    fn reassembly_reorders_back() {
        let mut sim = coordinator_sim(1);
        let n = decs_simnet::NodeIdx(0);
        // Deliver seq 1 before seq 0 (simulating network reordering).
        sim.inject(Nanos(10), n, ev(1, 1, 0, 6, 60));
        sim.inject(Nanos(20), n, ev(0, 0, 0, 5, 50));
        sim.inject(Nanos(30), n, hb(2, 9));
        sim.run_to_completion();
        let c = sim.node(n);
        assert_eq!(c.metrics.reassembly_parks, 1);
        assert_eq!(c.metrics.events_received, 2);
        // Release order is canonical (by global tick): A then B → SEQ.
        assert_eq!(c.detections.len(), 1);
    }

    #[test]
    fn batch_transport_matches_per_event_transport() {
        // The same workload delivered as two batches instead of two events
        // plus two heartbeats: identical release and detection.
        let mut sim = coordinator_sim(1);
        let n = decs_simnet::NodeIdx(0);
        sim.inject(
            Nanos(10),
            n,
            Msg::Batch {
                seq: 0,
                epoch: 0,
                watermark: 6,
                events: std::sync::Arc::new(vec![occ(0, 0, 5, 50), occ(1, 0, 6, 60)]),
            },
        );
        sim.run_to_completion();
        {
            let c = sim.node(n);
            // Watermark 6 releases only g ≤ 4: both still buffered.
            assert_eq!(c.buffered(), 2);
            assert!(c.detections.is_empty());
            assert_eq!(c.metrics.batches_received, 1);
            assert_eq!(c.metrics.batch_size_max, 2);
        }
        // An empty batch is exactly a heartbeat.
        sim.inject(
            Nanos(20),
            n,
            Msg::Batch {
                seq: 1,
                epoch: 0,
                watermark: 8,
                events: std::sync::Arc::new(vec![]),
            },
        );
        sim.run_to_completion();
        let c = sim.node(n);
        assert_eq!(c.buffered(), 0);
        assert_eq!(c.detections.len(), 1);
        assert_eq!(c.metrics.events_received, 2);
        assert_eq!(c.metrics.events_released, 2);
        assert_eq!(c.metrics.release_batches, 1);
        assert_eq!(c.metrics.messages_processed, 2);
        assert_eq!(c.metrics.heartbeats_received, 0);
        assert_eq!(c.metrics.shard_count, 1);
    }

    #[test]
    fn hello_bumps_epoch_clears_parked_and_filters_stale_traffic() {
        let mut sim = coordinator_sim(1);
        let n = decs_simnet::NodeIdx(0);
        sim.inject(Nanos(10), n, ev(0, 0, 0, 5, 50));
        // Park a stale message from what will become the dead incarnation.
        sim.inject(Nanos(20), n, ev(1, 7, 0, 6, 60));
        sim.run_to_completion();
        assert_eq!(sim.node(n).metrics.reassembly_parks, 1);
        assert_eq!(sim.node(n).site_epoch(0), 0);
        // Non-durable restart: the new incarnation starts its sequence
        // space at 0 and announces itself.
        sim.inject(
            Nanos(30),
            n,
            Msg::Hello {
                seq: 0,
                epoch: 1,
                watermark: 0,
            },
        );
        sim.run_to_completion();
        {
            let c = sim.node(n);
            assert_eq!(c.site_epoch(0), 1);
            assert_eq!(c.metrics.rejoins, 1);
            assert_eq!(c.metrics.epoch_max, 1);
            // The parked epoch-0 message is gone, and the Hello was itself
            // consumed in order at the lowered frontier (0 → 1).
            assert_eq!(c.metrics.parked_peak, 1);
        }
        // Old-incarnation traffic still in flight is filtered, not parked.
        sim.inject(Nanos(40), n, ev(1, 8, 0, 6, 60));
        // New-incarnation traffic flows normally (seq 1 follows the Hello).
        sim.inject(
            Nanos(50),
            n,
            Msg::Event {
                seq: 1,
                epoch: 1,
                occ: Occurrence::bare(EventId(1), cts(&[(0, 6, 60)])),
            },
        );
        sim.inject(
            Nanos(60),
            n,
            Msg::Heartbeat {
                seq: 2,
                epoch: 1,
                watermark: 9,
            },
        );
        sim.run_to_completion();
        let c = sim.node(n);
        assert_eq!(c.metrics.epoch_filtered, 1);
        // A@g5 (epoch 0, pre-crash) then B@g6 (epoch 1) still detect SEQ:
        // the crash did not disturb surviving notifications.
        assert_eq!(c.detections.len(), 1);
    }

    #[test]
    fn data_ahead_of_its_hello_is_dropped_until_hello_lands() {
        let mut sim = coordinator_sim(1);
        let n = decs_simnet::NodeIdx(0);
        // Epoch-1 data races ahead of its Hello: dropped unacked.
        sim.inject(
            Nanos(10),
            n,
            Msg::Event {
                seq: 1,
                epoch: 1,
                occ: Occurrence::bare(EventId(0), cts(&[(0, 5, 50)])),
            },
        );
        sim.run_to_completion();
        {
            let c = sim.node(n);
            assert_eq!(c.metrics.epoch_filtered, 1);
            assert_eq!(c.metrics.events_received, 0);
        }
        // The Hello lands; the retransmitted copy of the same event is now
        // accepted in order behind it.
        sim.inject(
            Nanos(20),
            n,
            Msg::Hello {
                seq: 0,
                epoch: 1,
                watermark: 0,
            },
        );
        sim.inject(
            Nanos(30),
            n,
            Msg::Event {
                seq: 1,
                epoch: 1,
                occ: Occurrence::bare(EventId(0), cts(&[(0, 5, 50)])),
            },
        );
        sim.run_to_completion();
        let c = sim.node(n);
        assert_eq!(c.metrics.events_received, 1);
        assert_eq!(c.site_epoch(0), 1);
    }

    #[test]
    fn stale_notification_below_release_horizon_is_refused() {
        let mut sim = coordinator_sim(1);
        let n = decs_simnet::NodeIdx(0);
        sim.inject(Nanos(10), n, ev(0, 0, 0, 5, 50));
        sim.inject(Nanos(20), n, hb(1, 8));
        sim.run_to_completion();
        // g=5 released: the horizon is now 5.
        assert_eq!(sim.node(n).metrics.events_released, 1);
        // A notification at g=4 violates the site's own w=8 promise — only
        // an evicted-then-rejoined site's pre-crash backlog can do this.
        // It is refused, not released out of order.
        sim.inject(Nanos(30), n, ev(1, 2, 0, 4, 40));
        sim.run_to_completion();
        let c = sim.node(n);
        assert_eq!(c.metrics.stale_refused, 1);
        assert_eq!(c.buffered(), 0);
        assert_eq!(c.metrics.events_received, 1);
    }

    #[test]
    fn lagging_watermark_blocks() {
        let mut sim = coordinator_sim(1);
        let n = decs_simnet::NodeIdx(0);
        sim.inject(Nanos(10), n, ev(0, 0, 0, 5, 50));
        sim.inject(Nanos(20), n, hb(1, 6)); // not enough: needs > 6+? g=5 needs w > 6
        sim.run_to_completion();
        assert_eq!(sim.node(n).buffered(), 1);
        sim.inject(Nanos(30), n, hb(2, 7));
        sim.run_to_completion();
        assert_eq!(sim.node(n).buffered(), 0);
    }

    #[test]
    fn wal_write_error_fail_stops_consumption_cleanly() {
        use crate::durability::{WalSink, WalWriter};
        use std::io::Write;

        // A sink whose device has died: every write errors out. Swapped in
        // mid-run to model the disk failing underneath a healthy log.
        struct DeadDisk;
        impl Write for DeadDisk {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("disk gone"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        impl WalSink for DeadDisk {
            fn sync_data(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let dir = std::env::temp_dir().join(format!("decs-coord-failstop-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut sim = coordinator_sim(1);
        let n = decs_simnet::NodeIdx(0);
        sim.node_mut(n).set_durability(&dir, u64::MAX).unwrap();
        sim.inject(Nanos(10), n, ev(0, 0, 0, 5, 50));
        sim.run_to_completion();
        {
            let c = sim.node_mut(n);
            assert_eq!(c.metrics.events_received, 1);
            assert!(c.wal_failed().is_none());
            c.wal = Some(WalWriter::with_sink(Box::new(DeadDisk), dir.join("<dead>")));
        }
        // The next delivery hits the dead disk: the append fails *before*
        // the message is applied, so disk state still matches applied
        // state; from then on every input is dropped unprocessed.
        sim.inject(Nanos(20), n, ev(1, 1, 0, 6, 60));
        sim.inject(Nanos(30), n, hb(2, 9));
        sim.run_to_completion();
        let c = sim.node(n);
        assert_eq!(c.metrics.wal_errors, 1, "one failing append, counted once");
        assert!(c.wal_failed().unwrap().contains("disk gone"));
        assert_eq!(
            c.metrics.events_received, 1,
            "the unloggable event must not be consumed"
        );
        assert!(
            c.detections.is_empty(),
            "the dropped watermark must not release anything"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
