//! The coordinator (global event detector).
//!
//! Receives stamped primitive-event notifications and watermarks from
//! every site — either per-event (`Msg::Event` + `Msg::Heartbeat`) or
//! coalesced into `Msg::Batch`es — reassembles each site's FIFO stream,
//! buffers notifications until the watermark stability rule releases them,
//! drains the stable prefix in watermark-bounded batches into an
//! [`AnyDetector`] — the hash-consed shared plan by default, or one
//! event-graph shard per composite definition with plan sharing disabled —
//! in a canonical order, and services the detector's timer requests from
//! its own clock. Detections are identical in both transport modes and
//! with either backend.

use crate::config::ReleasePolicy;
use crate::metrics::Metrics;
use crate::protocol::Msg;
use crate::watermark::WatermarkTracker;
use decs_chronos::Nanos;
use decs_core::{CompositeTimestamp, PrimitiveTimestamp};
use decs_simnet::{Actor, Ctx, NodeIdx};
use decs_snoop::{AnyDetector, EventId, Occurrence, ShardFeedResult, ShardId, TimerId};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Canonical release key: (max global tick, origin site, per-site arrival
/// counter). The counter is assigned when the notification enters the
/// stability buffer, in reassembled FIFO order, so it is the same whether
/// the notification traveled as its own `Msg::Event` or inside a
/// `Msg::Batch` — detection stays a pure function of the workload,
/// independent of both delivery order and transport mode.
type ReleaseKey = (u64, u32, u64);

/// Timer tag reserved for the periodic ack/stall-check round. Detector
/// timer tags count up from 0, so the two can never collide.
const ACK_TIMER_TAG: u64 = u64::MAX;

#[derive(Debug, Default)]
struct SiteStream {
    next: u64,
    parked: BTreeMap<u64, Msg>,
    /// Notifications buffered from this site so far (release-key counter).
    arrivals: u64,
    /// Evicted sites keep their stream bookkeeping (so retransmissions are
    /// acked and die down) but their notifications are refused.
    evicted: bool,
}

/// Per-site stall-detector state.
#[derive(Debug, Default, Clone)]
struct StallState {
    /// Watermark observed at the last check round.
    last_wm: u64,
    /// Consecutive check rounds without watermark progress while some
    /// other site progressed.
    stalled_checks: u64,
    /// Whether the site is currently suspect.
    suspect: bool,
}

/// A detection produced by the coordinator, with bookkeeping times.
#[derive(Debug, Clone)]
pub struct RawDetection {
    /// The composite occurrence.
    pub occ: Occurrence<CompositeTimestamp>,
    /// True time at which the coordinator produced it.
    pub detected_at: Nanos,
}

/// The coordinator actor.
pub struct CoordinatorNode {
    detector: AnyDetector<CompositeTimestamp>,
    tracker: WatermarkTracker,
    streams: Vec<SiteStream>,
    buffer: BTreeMap<ReleaseKey, (Occurrence<CompositeTimestamp>, Nanos)>,
    /// Completed detections (drained by the engine after a run).
    pub detections: Vec<RawDetection>,
    /// Metrics counters.
    pub metrics: Metrics,
    timer_map: HashMap<u64, (ShardId, TimerId)>,
    next_tag: u64,
    gg_nanos: u64,
    policy: ReleasePolicy,
    /// Whether release rounds garbage-collect operator buffers.
    buffer_gc: bool,
    /// Last watermark the operator buffers were collected at (GC only runs
    /// when the low bound strictly advances).
    last_gc_low: u64,
    /// Event types whose *arrival* is itself a reportable detection
    /// (site-local composite events detected at the sites).
    reportable: HashSet<EventId>,
    /// Period of the ack/stall-check timer (`ZERO` disables it; armed by
    /// `Msg::Start`).
    ack_interval: Nanos,
    /// Stall threshold in check rounds (`0` disables stall detection).
    stall_intervals: u64,
    /// Escalate suspect sites to eviction.
    auto_evict: bool,
    /// Bound on each site's parked reassembly buffer (`0` = unbounded).
    parked_cap: usize,
    /// Stall-detector state, one entry per site.
    stall: Vec<StallState>,
    /// Parked messages across all site streams (for `parked_peak`).
    parked_total: usize,
}

impl std::fmt::Debug for CoordinatorNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoordinatorNode")
            .field("buffered", &self.buffer.len())
            .field("detections", &self.detections.len())
            .finish_non_exhaustive()
    }
}

impl CoordinatorNode {
    /// Coordinator over `sites` sites, running a pre-compiled detector —
    /// either backend ([`decs_snoop::ShardedDetector`] or
    /// [`decs_snoop::PlanDetector`]) converts into the [`AnyDetector`]
    /// this takes. `gg_nanos` is the duration of one global tick (for
    /// timer delays).
    pub fn new(
        sites: usize,
        detector: impl Into<AnyDetector<CompositeTimestamp>>,
        gg_nanos: u64,
    ) -> Self {
        Self::with_policy(sites, detector, gg_nanos, ReleasePolicy::Stable)
    }

    /// Coordinator with an explicit release policy (the `Immediate` policy
    /// exists for the ablation experiments).
    pub fn with_policy(
        sites: usize,
        detector: impl Into<AnyDetector<CompositeTimestamp>>,
        gg_nanos: u64,
        policy: ReleasePolicy,
    ) -> Self {
        let detector = detector.into();
        let plan = detector.plan_stats();
        let metrics = Metrics {
            shard_count: detector.shard_count(),
            stage_count: detector.stage_count(),
            worker_count: detector.worker_count(),
            plan_nodes: plan.plan_nodes,
            shared_nodes: plan.shared_nodes,
            sharing_ratio: plan.sharing_ratio,
            ..Metrics::default()
        };
        CoordinatorNode {
            detector,
            tracker: WatermarkTracker::new(sites),
            streams: (0..sites).map(|_| SiteStream::default()).collect(),
            buffer: BTreeMap::new(),
            detections: Vec::new(),
            metrics,
            timer_map: HashMap::new(),
            next_tag: 0,
            gg_nanos,
            policy,
            buffer_gc: true,
            last_gc_low: 0,
            reportable: HashSet::new(),
            ack_interval: Nanos::ZERO,
            stall_intervals: 0,
            auto_evict: false,
            parked_cap: 0,
            stall: vec![StallState::default(); sites],
            parked_total: 0,
        }
    }

    /// Configure the fault-tolerance machinery: the periodic ack/stall
    /// timer (armed when the engine delivers `Msg::Start`), the stall
    /// threshold, automatic eviction of suspect sites, and the parked
    /// reassembly-buffer bound. All off in a bare coordinator.
    pub fn set_fault_tolerance(
        &mut self,
        ack_interval: Nanos,
        stall_intervals: u64,
        auto_evict: bool,
        parked_cap: usize,
    ) {
        self.ack_interval = ack_interval;
        self.stall_intervals = stall_intervals;
        self.auto_evict = auto_evict;
        self.parked_cap = parked_cap;
    }

    /// Enable or disable operator-buffer GC (on by default). GC is
    /// behavior-preserving, so this only trades memory for release-round
    /// work; the off switch exists for ablation and the occupancy bench.
    pub fn set_buffer_gc(&mut self, enabled: bool) {
        self.buffer_gc = enabled;
    }

    /// Mark event types whose arrivals are reported as detections in their
    /// own right (used for site-local composite events).
    pub fn set_reportable(&mut self, ids: impl IntoIterator<Item = EventId>) {
        self.reportable = ids.into_iter().collect();
    }

    /// Read access to the watermark tracker (tests/diagnostics).
    pub fn tracker(&self) -> &WatermarkTracker {
        &self.tracker
    }

    /// Number of notifications awaiting stability.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    fn absorb(&mut self, r: ShardFeedResult<CompositeTimestamp>, ctx: &mut Ctx<'_, Msg>) {
        for (shard, t) in r.timers {
            let tag = self.next_tag;
            self.next_tag += 1;
            self.timer_map.insert(tag, (shard, t.id));
            ctx.set_timer(Nanos(t.delay_ticks * self.gg_nanos), tag);
        }
        for occ in r.detected {
            self.metrics.detections += 1;
            self.detections.push(RawDetection {
                occ,
                detected_at: ctx.true_now(),
            });
        }
    }

    /// Drain the stable prefix of the buffer in one watermark-bounded
    /// batch: collect every released notification first (the buffer walk
    /// is cheap and canonical), then feed them as a single batch so the
    /// sharded detector can fan the whole batch out to its shards.
    fn release_stable(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let mut batch = Vec::new();
        while let Some((&key, _)) = self.buffer.iter().next() {
            if !self.tracker.is_stable(key.0) {
                break;
            }
            let (occ, arrived) = self.buffer.remove(&key).expect("present");
            self.metrics.events_released += 1;
            self.metrics.stability_latency_sum_ns +=
                u128::from(ctx.true_now().get().saturating_sub(arrived.get()));
            batch.push(occ);
        }
        if !batch.is_empty() {
            self.metrics.release_batches += 1;
            if self.reportable.is_empty() {
                let r = self.detector.feed_batch(batch);
                self.absorb(r, ctx);
            } else {
                // Site-local composite arrivals are reported interleaved
                // with the global graph's own detections, so keep the
                // per-event feed order observable.
                for occ in batch {
                    self.feed_released(occ, ctx);
                }
            }
        }
        self.gc_operator_buffers();
    }

    /// Let the detector's operator nodes reclaim buffered state the
    /// watermark proves dead, and refresh the occupancy metrics.
    ///
    /// The low bound is `min_watermark − 2`: everything the coordinator can
    /// still feed has all member globals `≥` that. Stability releases
    /// stamps with `max_global ≤ min − 2`, so buffer residue and future
    /// releases have `max_global ≥ min − 1`; by Theorem 5.1 the members of
    /// a `Max`-combined stamp are pairwise concurrent, so their globals
    /// span at most one tick — all `≥ min − 2`. Coordinator-clock timer
    /// stamps sit at the current global tick, ahead of every received
    /// watermark under the `2g_g` clock-sync assumption (Prop 4.1).
    fn gc_operator_buffers(&mut self) {
        if self.buffer_gc {
            let low = self.tracker.min_watermark().saturating_sub(2);
            if low > self.last_gc_low {
                self.last_gc_low = low;
                self.metrics.gc_evicted += self.detector.advance_watermark(low);
            }
        }
        self.metrics.node_buffered = self.detector.buffered_occupancy();
        self.metrics.node_buffer_peak = self
            .metrics
            .node_buffer_peak
            .max(self.metrics.node_buffered);
        self.metrics.worker_count = self.detector.worker_count();
        self.metrics.parallel_rounds = self.detector.parallel_rounds();
        self.metrics.pool_busy_ns = self.detector.pool_busy_ns();
    }

    /// Feed a released notification: report it if it is itself a
    /// site-local composite detection, then run the global graph.
    fn feed_released(&mut self, occ: Occurrence<CompositeTimestamp>, ctx: &mut Ctx<'_, Msg>) {
        if self.reportable.contains(&occ.ty) {
            self.metrics.detections += 1;
            self.detections.push(RawDetection {
                occ: occ.clone(),
                detected_at: ctx.true_now(),
            });
        }
        let r = self.detector.feed(occ);
        self.absorb(r, ctx);
    }

    /// Buffer (or, under `Immediate`, directly feed) one reassembled
    /// notification. The release key's third component is the per-site
    /// arrival counter — identical for the `Event` and `Batch` transports.
    fn accept_notification(
        &mut self,
        site: usize,
        occ: Occurrence<CompositeTimestamp>,
        ctx: &mut Ctx<'_, Msg>,
    ) {
        self.metrics.events_received += 1;
        match self.policy {
            ReleasePolicy::Stable => {
                let arrival = self.streams[site].arrivals;
                self.streams[site].arrivals += 1;
                let key: ReleaseKey = (occ.time.max_global(), site as u32, arrival);
                self.buffer.insert(key, (occ, ctx.true_now()));
                self.metrics.max_buffered = self.metrics.max_buffered.max(self.buffer.len());
            }
            ReleasePolicy::Immediate => {
                self.metrics.events_released += 1;
                self.feed_released(occ, ctx);
            }
        }
    }

    fn handle_in_order(&mut self, site: usize, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
        self.metrics.messages_processed += 1;
        // Evicted sites: stream bookkeeping continues (their retransmits
        // must be acked into silence) but new notifications are refused and
        // their watermark promises stay pinned at +∞.
        let evicted = self.streams[site].evicted;
        match msg {
            Msg::Event { occ, .. } => {
                if evicted {
                    self.metrics.evict_refused += 1;
                } else {
                    self.accept_notification(site, occ, ctx);
                }
            }
            Msg::Heartbeat { watermark, .. } => {
                self.metrics.heartbeats_received += 1;
                self.tracker.update(site, watermark);
                self.release_stable(ctx);
            }
            Msg::Batch {
                watermark, events, ..
            } => {
                self.metrics.batches_received += 1;
                self.metrics.batch_size_max = self.metrics.batch_size_max.max(events.len());
                if evicted {
                    self.metrics.evict_refused += events.len() as u64;
                } else {
                    for occ in events {
                        self.accept_notification(site, occ, ctx);
                    }
                }
                self.tracker.update(site, watermark);
                self.release_stable(ctx);
            }
            Msg::Start | Msg::Inject { .. } | Msg::Crash | Msg::Evict { .. } | Msg::Ack { .. } => {
                debug_assert!(false, "sequence-numbered control message");
            }
        }
    }

    fn seq_of(msg: &Msg) -> Option<u64> {
        match msg {
            Msg::Event { seq, .. } | Msg::Heartbeat { seq, .. } | Msg::Batch { seq, .. } => {
                Some(*seq)
            }
            _ => None,
        }
    }

    /// Stop waiting for `site`: its watermark promise becomes +∞ and its
    /// future notifications are refused (buffered ones still release).
    fn evict(&mut self, site: usize, ctx: &mut Ctx<'_, Msg>) {
        if site >= self.streams.len() || self.streams[site].evicted {
            return;
        }
        self.streams[site].evicted = true;
        self.tracker.update(site, u64::MAX);
        self.release_stable(ctx);
    }

    fn send_ack(&mut self, to: NodeIdx, cum_seq: u64, ctx: &mut Ctx<'_, Msg>) {
        self.metrics.acks_sent += 1;
        ctx.send(to, Msg::Ack { cum_seq });
    }

    /// Periodic round: re-send every site's cumulative ack (repairing acks
    /// lost on the return path), run the stall detector, re-arm.
    fn ack_round(&mut self, ctx: &mut Ctx<'_, Msg>) {
        for site in 0..self.streams.len() {
            let next = self.streams[site].next;
            self.send_ack(NodeIdx(site as u32), next, ctx);
        }
        self.stall_check(ctx);
        ctx.set_timer(self.ack_interval, ACK_TIMER_TAG);
    }

    /// Mark a site *suspect* when its watermark has not advanced for
    /// `stall_intervals` consecutive rounds in which some other site's
    /// did (a globally idle system suspects nobody). Suspicion clears as
    /// soon as the watermark moves again; with `auto_evict` it escalates
    /// to eviction instead.
    fn stall_check(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if self.stall_intervals == 0 {
            return;
        }
        let n = self.stall.len();
        let mut advanced = vec![false; n];
        let mut any_advanced = false;
        for (i, adv) in advanced.iter_mut().enumerate() {
            if self.streams[i].evicted {
                continue;
            }
            let wm = self.tracker.site_watermark(i);
            if wm > self.stall[i].last_wm {
                self.stall[i].last_wm = wm;
                *adv = true;
                any_advanced = true;
            }
        }
        let mut to_evict = Vec::new();
        for (i, &adv) in advanced.iter().enumerate() {
            if self.streams[i].evicted {
                continue;
            }
            let st = &mut self.stall[i];
            if adv {
                st.stalled_checks = 0;
                if st.suspect {
                    st.suspect = false;
                    self.metrics.suspect_sites -= 1;
                }
            } else if any_advanced {
                st.stalled_checks += 1;
                if st.suspect {
                    self.metrics.stall_ns += u128::from(self.ack_interval.get());
                } else if st.stalled_checks >= self.stall_intervals {
                    st.suspect = true;
                    self.metrics.suspect_sites += 1;
                    if self.auto_evict {
                        self.metrics.auto_evictions += 1;
                        to_evict.push(i);
                    }
                }
            }
        }
        for site in to_evict {
            self.evict(site, ctx);
        }
    }
}

impl Actor for CoordinatorNode {
    type Msg = Msg;

    fn on_message(&mut self, from: NodeIdx, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
        if let Msg::Evict { site } = msg {
            // Operator action: treat the site's watermark as +∞ so the
            // remaining buffer can stabilize without it.
            self.evict(site as usize, ctx);
            return;
        }
        if matches!(msg, Msg::Start) {
            // Engine control: arm the periodic ack/stall-check round.
            if self.ack_interval.get() > 0 {
                ctx.set_timer(self.ack_interval, ACK_TIMER_TAG);
            }
            return;
        }
        let site = from.0 as usize;
        let Some(seq) = Self::seq_of(&msg) else {
            return; // Inject/Ack echoes are not coordinator traffic
        };
        debug_assert!(site < self.streams.len(), "unknown site {site}");
        let stream = &mut self.streams[site];
        match seq.cmp(&stream.next) {
            std::cmp::Ordering::Equal => {
                stream.next += 1;
                self.handle_in_order(site, msg, ctx);
                // Drain any parked successors.
                loop {
                    let stream = &mut self.streams[site];
                    let Some(m) = stream.parked.remove(&stream.next) else {
                        break;
                    };
                    self.parked_total -= 1;
                    stream.next += 1;
                    self.handle_in_order(site, m, ctx);
                }
                // Cumulative ack on every in-order delivery: the site trims
                // its retransmit buffer as soon as the frontier moves.
                let next = self.streams[site].next;
                self.send_ack(from, next, ctx);
            }
            std::cmp::Ordering::Greater => {
                if stream.parked.insert(seq, msg).is_some() {
                    // A second copy of an already-parked message
                    // (retransmitted or link-duplicated): the overwrite is
                    // idempotent.
                    self.metrics.duplicates_dropped += 1;
                    return;
                }
                self.metrics.reassembly_parks += 1;
                self.parked_total += 1;
                if self.parked_cap > 0 && stream.parked.len() > self.parked_cap {
                    // Backpressure: discard the parked message farthest
                    // from the in-order frontier. Cumulative acks never
                    // cover it, so the sender retransmits it later.
                    let (&victim, _) = stream.parked.iter().next_back().expect("non-empty");
                    stream.parked.remove(&victim);
                    self.parked_total -= 1;
                    self.metrics.parked_dropped += 1;
                }
                self.metrics.parked_peak = self.metrics.parked_peak.max(self.parked_total);
            }
            std::cmp::Ordering::Less => {
                // An already-delivered sequence number: a retransmitted or
                // link-duplicated copy. Drop it and re-ack so the sender
                // learns its delivery even if the original ack was lost.
                self.metrics.duplicates_dropped += 1;
                let next = stream.next;
                self.send_ack(from, next, ctx);
            }
        }
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut Ctx<'_, Msg>) {
        if tag == ACK_TIMER_TAG {
            self.ack_round(ctx);
            return;
        }
        let Some((shard, timer_id)) = self.timer_map.remove(&tag) else {
            debug_assert!(false, "unknown coordinator timer tag {tag}");
            return;
        };
        // Stamp the fire with the coordinator's own clock — periodic
        // occurrences carry genuine (site, global, local) triples.
        let Ok(parts) = ctx.stamp() else {
            return;
        };
        let ts = CompositeTimestamp::singleton(PrimitiveTimestamp::new(
            parts.site,
            parts.global,
            parts.local,
        ));
        self.metrics.timer_fires += 1;
        match self.detector.fire_timer(shard, timer_id, ts) {
            Ok(r) => self.absorb(r, ctx),
            Err(_) => debug_assert!(false, "detector rejected timer"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decs_core::cts;
    use decs_snoop::{Context, EventExpr, EventId, ShardedDetector};

    fn detector() -> (ShardedDetector<CompositeTimestamp>, EventId) {
        let mut d = ShardedDetector::new();
        d.register("A").unwrap();
        d.register("B").unwrap();
        let x = d
            .define(
                "X",
                &EventExpr::seq(EventExpr::prim("A"), EventExpr::prim("B")),
                Context::Chronicle,
            )
            .unwrap();
        (d, x)
    }

    // Drive the coordinator directly through a one-node simulation so we
    // get a real Ctx.
    use decs_chronos::{GlobalTimeBase, Granularity, LocalClock, Precision, TruncMode};
    use decs_simnet::{LinkConfig, Simulation, SiteTimeSource};

    fn coordinator_sim(sites: usize) -> Simulation<CoordinatorNode> {
        let (d, _) = detector();
        let base = GlobalTimeBase::new(
            Granularity::per_second(10).unwrap(),
            TruncMode::Floor,
            Precision::from_nanos(1_000_000),
        )
        .unwrap();
        let src = SiteTimeSource::new(
            99u32.into(),
            LocalClock::perfect(Granularity::per_second(100).unwrap()),
            base,
        );
        let coord = CoordinatorNode::new(sites, d, 100_000_000);
        Simulation::new(vec![(coord, src)], LinkConfig::instant(), 1)
    }

    fn ev(ty: u32, seq: u64, s: u32, g: u64, l: u64) -> Msg {
        Msg::Event {
            seq,
            occ: Occurrence::bare(EventId(ty), cts(&[(s, g, l)])),
        }
    }

    fn hb(seq: u64, w: u64) -> Msg {
        Msg::Heartbeat { seq, watermark: w }
    }

    fn occ(ty: u32, s: u32, g: u64, l: u64) -> Occurrence<CompositeTimestamp> {
        Occurrence::bare(EventId(ty), cts(&[(s, g, l)]))
    }

    // NOTE: `inject` delivers with from == node, so we cannot use it to
    // fake multi-site senders through the public API; instead these tests
    // exercise the handler directly via a tiny two-site harness in the
    // engine tests. Here we check the single-site path (site index 0 ==
    // coordinator node index 0 in this reduced sim).

    #[test]
    fn stability_gates_release_and_detection() {
        let mut sim = coordinator_sim(1);
        let n = decs_simnet::NodeIdx(0);
        // A@(s0, g5), B@(s0, g6) arrive, then watermarks advance.
        sim.inject(Nanos(10), n, ev(0, 0, 0, 5, 50));
        sim.inject(Nanos(20), n, ev(1, 1, 0, 6, 60));
        sim.inject(Nanos(30), n, hb(2, 6));
        sim.run_to_completion();
        {
            let c = sim.node(n);
            // Watermark 6 releases only g ≤ 4: nothing yet.
            assert_eq!(c.buffered(), 2);
            assert!(c.detections.is_empty());
        }
        sim.inject(Nanos(40), n, hb(3, 8));
        sim.run_to_completion();
        {
            let c = sim.node(n);
            // Watermark 8 releases g ≤ 6: both, in order; SEQ fires.
            assert_eq!(c.buffered(), 0);
            assert_eq!(c.detections.len(), 1);
            assert_eq!(c.metrics.events_released, 2);
        }
    }

    #[test]
    fn reassembly_reorders_back() {
        let mut sim = coordinator_sim(1);
        let n = decs_simnet::NodeIdx(0);
        // Deliver seq 1 before seq 0 (simulating network reordering).
        sim.inject(Nanos(10), n, ev(1, 1, 0, 6, 60));
        sim.inject(Nanos(20), n, ev(0, 0, 0, 5, 50));
        sim.inject(Nanos(30), n, hb(2, 9));
        sim.run_to_completion();
        let c = sim.node(n);
        assert_eq!(c.metrics.reassembly_parks, 1);
        assert_eq!(c.metrics.events_received, 2);
        // Release order is canonical (by global tick): A then B → SEQ.
        assert_eq!(c.detections.len(), 1);
    }

    #[test]
    fn batch_transport_matches_per_event_transport() {
        // The same workload delivered as two batches instead of two events
        // plus two heartbeats: identical release and detection.
        let mut sim = coordinator_sim(1);
        let n = decs_simnet::NodeIdx(0);
        sim.inject(
            Nanos(10),
            n,
            Msg::Batch {
                seq: 0,
                watermark: 6,
                events: vec![occ(0, 0, 5, 50), occ(1, 0, 6, 60)],
            },
        );
        sim.run_to_completion();
        {
            let c = sim.node(n);
            // Watermark 6 releases only g ≤ 4: both still buffered.
            assert_eq!(c.buffered(), 2);
            assert!(c.detections.is_empty());
            assert_eq!(c.metrics.batches_received, 1);
            assert_eq!(c.metrics.batch_size_max, 2);
        }
        // An empty batch is exactly a heartbeat.
        sim.inject(
            Nanos(20),
            n,
            Msg::Batch {
                seq: 1,
                watermark: 8,
                events: vec![],
            },
        );
        sim.run_to_completion();
        let c = sim.node(n);
        assert_eq!(c.buffered(), 0);
        assert_eq!(c.detections.len(), 1);
        assert_eq!(c.metrics.events_received, 2);
        assert_eq!(c.metrics.events_released, 2);
        assert_eq!(c.metrics.release_batches, 1);
        assert_eq!(c.metrics.messages_processed, 2);
        assert_eq!(c.metrics.heartbeats_received, 0);
        assert_eq!(c.metrics.shard_count, 1);
    }

    #[test]
    fn lagging_watermark_blocks() {
        let mut sim = coordinator_sim(1);
        let n = decs_simnet::NodeIdx(0);
        sim.inject(Nanos(10), n, ev(0, 0, 0, 5, 50));
        sim.inject(Nanos(20), n, hb(1, 6)); // not enough: needs > 6+? g=5 needs w > 6
        sim.run_to_completion();
        assert_eq!(sim.node(n).buffered(), 1);
        sim.inject(Nanos(30), n, hb(2, 7));
        sim.run_to_completion();
        assert_eq!(sim.node(n).buffered(), 0);
    }
}
