//! Engine metrics.

use serde::{Deserialize, Serialize};

/// Counters and simple statistics collected by the coordinator.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Event notifications received (after reassembly).
    pub events_received: u64,
    /// Heartbeats received.
    pub heartbeats_received: u64,
    /// Notifications released into the detector.
    pub events_released: u64,
    /// Named composite detections produced.
    pub detections: u64,
    /// Messages that arrived out of sequence and were parked.
    pub reassembly_parks: u64,
    /// High-water mark of the stability buffer.
    pub max_buffered: usize,
    /// Sum over released events of (release true-time − arrival true-time),
    /// in nanoseconds (stability latency).
    pub stability_latency_sum_ns: u128,
    /// Timer fires serviced for temporal operators.
    pub timer_fires: u64,
    /// Protocol messages the coordinator processed in order (events,
    /// heartbeats and batches — the per-message work of the hot path).
    pub messages_processed: u64,
    /// `Msg::Batch` messages received.
    pub batches_received: u64,
    /// Largest number of occurrences carried by a single batch.
    pub batch_size_max: usize,
    /// Watermark-bounded release rounds that fed at least one notification.
    pub release_batches: u64,
    /// Definition shards in the coordinator's event graph.
    pub shard_count: usize,
    /// Unique operator nodes in the coordinator's compiled plan (with the
    /// unshared backends: total nodes across independent graphs).
    pub plan_nodes: usize,
    /// Plan nodes shared by more than one definition (0 with plan sharing
    /// disabled — every definition compiles independently).
    pub shared_nodes: usize,
    /// Fraction of operator instances eliminated by cross-definition
    /// sharing: `1 − plan_nodes / position_count`.
    pub sharing_ratio: f64,
    /// Operator-buffer entries reclaimed by watermark-driven GC.
    pub gc_evicted: u64,
    /// Occurrences currently buffered inside operator nodes (as of the last
    /// release round).
    pub node_buffered: usize,
    /// High-water mark of [`Metrics::node_buffered`].
    pub node_buffer_peak: usize,
    /// Worker threads in the persistent shard pool (0 = serial path).
    pub worker_count: usize,
    /// Rounds dispatched to the pool (one per batch fan-out or cascade
    /// wave; 0 on the serial path).
    pub parallel_rounds: u64,
    /// Topological stages of the definition dependency DAG (1 when every
    /// definition is independent).
    pub stage_count: usize,
    /// Cumulative busy time across pool workers, in nanoseconds.
    pub pool_busy_ns: u64,
    /// Messages resent by site retransmission timers (aggregated over
    /// sites by the engine; 0 in a bare coordinator).
    pub retransmits: u64,
    /// Cumulative acknowledgements the coordinator sent.
    pub acks_sent: u64,
    /// Already-delivered sequence numbers received again (retransmitted or
    /// link-duplicated copies) and ignored.
    pub duplicates_dropped: u64,
    /// High-water mark of parked (out-of-order) messages summed over all
    /// site streams.
    pub parked_peak: usize,
    /// Parked messages discarded because a site's reassembly buffer hit
    /// its bound (backpressure; the sender's retransmission recovers them).
    pub parked_dropped: u64,
    /// Sites currently marked suspect by the stall detector.
    pub suspect_sites: usize,
    /// Cumulative nanoseconds sites spent in the suspect state.
    pub stall_ns: u128,
    /// Notifications refused because their origin site was evicted.
    pub evict_refused: u64,
    /// Suspect sites escalated to eviction by the stall detector.
    pub auto_evictions: u64,
    /// Records appended to the write-ahead log (lifetime of the log file,
    /// surviving recovery).
    pub wal_appends: u64,
    /// Bytes written to the write-ahead log, including frame headers.
    pub wal_bytes: u64,
    /// Operator-state snapshots persisted.
    pub snapshots_taken: u64,
    /// WAL records replayed by the most recent recovery.
    pub recovery_replayed: u64,
    /// Wall-clock nanoseconds the most recent recovery took (snapshot load
    /// plus WAL replay).
    pub recovery_ns: u64,
    /// Notifications fed through the columnar (struct-of-arrays) release
    /// path instead of per-event feeds.
    pub batch_ingest_events: u64,
    /// High-water mark of bytes staged in the columnar batch's parameter
    /// arena during a release round.
    pub arena_bytes: u64,
    /// Cumulative producer-side spins on full worker rings (lock-free
    /// hand-off backpressure; 0 on the serial path).
    pub ring_full_spins: u64,
    /// Site restarts (aggregated over sites by the engine; 0 in a bare
    /// coordinator).
    pub site_restarts: u64,
    /// Epoch-bump rejoin handshakes the coordinator completed (one per
    /// first-seen `Msg::Hello` with a higher epoch).
    pub rejoins: u64,
    /// Highest incarnation epoch seen across all site streams.
    pub epoch_max: u64,
    /// Sum over rejoins of (Hello consumed in order − Hello first seen),
    /// nanoseconds: how long each returning site took to re-deliver its
    /// backlog and resume in-order progress.
    pub rejoin_latency_ns: u64,
    /// Notifications refused because their stamp sorted at or below the
    /// coordinator's release/GC horizon — the pre-crash backlog of an
    /// evicted-then-rejoined site, whose slots in the canonical release
    /// order were already passed while its watermark was pinned at +∞.
    /// Provably zero for healthy (never-evicted) sites.
    pub stale_refused: u64,
    /// Messages dropped by the incarnation-epoch filter: stale traffic
    /// from a dead incarnation, or new-incarnation data racing ahead of
    /// its (retransmitted) `Msg::Hello`.
    pub epoch_filtered: u64,
    /// WAL append/sync failures surfaced (site or coordinator). Non-zero
    /// means durability has been disabled on the failing node and — for
    /// the coordinator — input consumption has halted to keep the log
    /// prefix-consistent (see `docs/OPERATIONS.md`).
    pub wal_errors: u64,
    /// Coordinator replicas in the detection plane (1 = the classic
    /// single-coordinator deployment; engine-aggregated metrics only).
    pub replica_count: usize,
    /// `Msg::Relay` messages this replica sent to peers (forwarded
    /// detections and pure promise advances).
    pub relays_sent: u64,
    /// Cross-partition composite events forwarded replica → replica.
    pub relay_events: u64,
    /// Relay messages resent by the replica retransmission timer.
    pub relay_retransmits: u64,
    /// Relayed composite events received from peer replicas and fed as
    /// first-class primitive events.
    pub relays_received: u64,
    /// Subscription-routed messages (`Msg::Routed`) received from sites.
    pub routed_received: u64,
    /// Wall-clock nanoseconds spent inside this coordinator's message and
    /// timer handlers (engine-timed at the actor dispatch boundary). In a
    /// partitioned plane each replica accumulates only its own handler
    /// time, so the *maximum* across replicas is the critical path a
    /// parallel deployment would pay — see `Engine::replica_busy_ns`.
    pub busy_ns: u64,
}

impl Metrics {
    /// Mean stability latency in nanoseconds (0 when nothing was released).
    pub fn mean_stability_latency_ns(&self) -> u64 {
        if self.events_released == 0 {
            0
        } else {
            (self.stability_latency_sum_ns / u128::from(self.events_released)) as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_latency() {
        let mut m = Metrics::default();
        assert_eq!(m.mean_stability_latency_ns(), 0);
        m.events_released = 4;
        m.stability_latency_sum_ns = 400;
        assert_eq!(m.mean_stability_latency_ns(), 100);
    }
}
