//! Watermark tracking and the stability rule.
//!
//! The `2g_g`-order between a buffered notification and a *future* one is
//! only decidable once the future one's global tick is known to be far
//! enough away. Each site's heartbeat promises "everything I send from now
//! on has global tick ≥ w". A buffered notification whose timestamp has
//! maximum global tick `g` is **stable** when every site's promise exceeds
//! `g + 1`: any event still in flight or unborn will have global tick
//! `≥ w > g + 1`, hence strictly *after* the notification in the `2g_g`
//! order — it can no longer precede it or be concurrent with it.
//!
//! (Events from the same site are already FIFO-reassembled, so same-site
//! local ordering is preserved by arrival order.)

use serde::{Deserialize, Serialize};

/// Tracks each site's promised minimum future global tick.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WatermarkTracker {
    marks: Vec<u64>,
}

impl WatermarkTracker {
    /// Tracker for `sites` sites, all watermarks at 0.
    pub fn new(sites: usize) -> Self {
        WatermarkTracker {
            marks: vec![0; sites],
        }
    }

    /// Update a site's watermark (monotonic; regressions are ignored).
    pub fn update(&mut self, site: usize, watermark: u64) {
        if let Some(m) = self.marks.get_mut(site) {
            *m = (*m).max(watermark);
        }
    }

    /// Force-set a site's watermark, **non**-monotonically. The only
    /// caller is un-eviction: an evicted site's mark is pinned at
    /// `u64::MAX`, and a rejoin must drop it back to the site's fresh
    /// promise or the pin would outlive the eviction forever. Ordinary
    /// watermark traffic must go through [`WatermarkTracker::update`].
    pub fn reset(&mut self, site: usize, watermark: u64) {
        if let Some(m) = self.marks.get_mut(site) {
            *m = watermark;
        }
    }

    /// The ensemble watermark: the minimum promise across sites.
    pub fn min_watermark(&self) -> u64 {
        self.marks.iter().copied().min().unwrap_or(0)
    }

    /// A site's current watermark.
    pub fn site_watermark(&self, site: usize) -> u64 {
        self.marks.get(site).copied().unwrap_or(0)
    }

    /// The stability rule: is a notification with maximum global tick `g`
    /// safe to release?
    pub fn is_stable(&self, g: u64) -> bool {
        self.min_watermark() > g + 1
    }

    /// Number of tracked sites.
    pub fn len(&self) -> usize {
        self.marks.len()
    }

    /// Whether no sites are tracked.
    pub fn is_empty(&self) -> bool {
        self.marks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_over_sites() {
        let mut w = WatermarkTracker::new(3);
        assert_eq!(w.min_watermark(), 0);
        w.update(0, 10);
        w.update(1, 7);
        w.update(2, 12);
        assert_eq!(w.min_watermark(), 7);
        assert_eq!(w.site_watermark(2), 12);
    }

    #[test]
    fn monotonic_updates() {
        let mut w = WatermarkTracker::new(1);
        w.update(0, 10);
        w.update(0, 5); // regression ignored
        assert_eq!(w.min_watermark(), 10);
    }

    #[test]
    fn reset_unpins_an_evicted_mark() {
        let mut w = WatermarkTracker::new(2);
        w.update(0, 10);
        w.update(1, u64::MAX); // eviction pin
        assert!(w.is_stable(8));
        w.reset(1, 3); // un-eviction: non-monotone force-set
        assert_eq!(w.site_watermark(1), 3);
        assert_eq!(w.min_watermark(), 3);
        assert!(!w.is_stable(8));
        w.reset(9, 1); // out-of-range ignored, like update
        assert_eq!(w.min_watermark(), 3);
    }

    #[test]
    fn stability_needs_strict_gap() {
        let mut w = WatermarkTracker::new(2);
        w.update(0, 10);
        w.update(1, 10);
        // g + 1 < 10 ⟹ g ≤ 8.
        assert!(w.is_stable(8));
        assert!(!w.is_stable(9));
        assert!(!w.is_stable(10));
    }

    #[test]
    fn one_lagging_site_blocks_everything() {
        let mut w = WatermarkTracker::new(3);
        w.update(0, 100);
        w.update(2, 100);
        assert!(!w.is_stable(0)); // site 1 never promised anything
        w.update(1, 3);
        assert!(w.is_stable(1));
        assert!(!w.is_stable(2));
    }

    #[test]
    fn out_of_range_site_is_ignored() {
        let mut w = WatermarkTracker::new(1);
        w.update(5, 100);
        assert_eq!(w.min_watermark(), 0);
    }

    #[test]
    fn empty_tracker() {
        let w = WatermarkTracker::new(0);
        assert!(w.is_empty());
        assert_eq!(w.min_watermark(), 0);
    }
}
